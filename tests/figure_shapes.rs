//! Shape-level regression tests: the qualitative results of Figures
//! 8-10 must hold at reduced scale. These guard the *scientific*
//! content of the reproduction — if a change makes TLR stop beating
//! BASE under contention, or makes strict timestamp order as good as
//! the §3.2 relaxation, something fundamental broke even if every
//! correctness test still passes.

use tlr_repro::core::run::{run_workload, RunReport};
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::workloads::micro::{doubly_linked_list, multiple_counter, single_counter};

fn run(scheme: Scheme, procs: usize, w: &dyn tlr_repro::core::run::WorkloadSpec) -> RunReport {
    let mut cfg = MachineConfig::paper_default(scheme, procs);
    cfg.max_cycles = 400_000_000;
    let r = run_workload(&cfg, w);
    r.assert_valid();
    r
}

fn cycles(scheme: Scheme, procs: usize, w: &dyn tlr_repro::core::run::WorkloadSpec) -> u64 {
    run(scheme, procs, w).stats.parallel_cycles
}

#[test]
fn figure8_shape_sle_equals_tlr_and_beats_base() {
    // Coarse-grain / no conflicts: SLE and TLR behave identically and
    // both crush BASE at high processor counts.
    let procs = 8;
    let w = multiple_counter(procs, 1024);
    let base = cycles(Scheme::Base, procs, &w);
    let sle = cycles(Scheme::Sle, procs, &w);
    let tlr = cycles(Scheme::Tlr, procs, &w);
    assert!(
        (sle as f64 - tlr as f64).abs() / tlr as f64 <= 0.25,
        "SLE ({sle}) and TLR ({tlr}) must be near-identical without conflicts"
    );
    assert!(tlr * 4 < base, "TLR must beat BASE decisively ({tlr} vs {base})");
}

#[test]
fn figure8_shape_tlr_scales_down_with_processors() {
    // Same total work: more processors means fewer cycles under TLR.
    let total = 2048;
    let c2 = cycles(Scheme::Tlr, 2, &multiple_counter(2, total));
    let c8 = cycles(Scheme::Tlr, 8, &multiple_counter(8, total));
    assert!(
        (c8 as f64) < c2 as f64 * 0.45,
        "near-linear scaling expected: 2p {c2}, 8p {c8}"
    );
}

#[test]
fn figure9_shape_ordering_under_high_conflict() {
    // Fine-grain / high conflict at 8 processors: TLR < strict-ts <
    // SLE < BASE (and MCS pays its software overhead over TLR).
    let procs = 8;
    let w = single_counter(procs, 1024);
    let base = cycles(Scheme::Base, procs, &w);
    let mcs = cycles(Scheme::Mcs, procs, &w);
    let sle = cycles(Scheme::Sle, procs, &w);
    let strict = cycles(Scheme::TlrStrictTs, procs, &w);
    let tlr = cycles(Scheme::Tlr, procs, &w);
    assert!(tlr < strict, "relaxation must help: tlr {tlr} vs strict {strict}");
    assert!(strict < base, "even strict TLR beats BASE: {strict} vs {base}");
    assert!(sle < base, "SLE lands between BASE and TLR: {sle} vs {base}");
    assert!(tlr < sle, "TLR beats SLE under conflicts: {tlr} vs {sle}");
    assert!(tlr < mcs, "TLR avoids MCS's software overhead: {tlr} vs {mcs}");
}

#[test]
fn figure9_shape_tlr_stays_flat() {
    // The defining Figure 9 result: adding processors to the same
    // total work barely moves TLR (hardware queueing on the data).
    let total = 1024;
    let c4 = cycles(Scheme::Tlr, 4, &single_counter(4, total));
    let c12 = cycles(Scheme::Tlr, 12, &single_counter(12, total));
    assert!(
        (c12 as f64) < c4 as f64 * 1.35,
        "TLR must stay near-flat: 4p {c4}, 12p {c12}"
    );
    // ...while BASE degrades markedly over the same range.
    let b4 = cycles(Scheme::Base, 4, &single_counter(4, total));
    let b12 = cycles(Scheme::Base, 12, &single_counter(12, total));
    assert!(
        (b12 as f64) > b4 as f64 * 1.5,
        "BASE must degrade with contention: 4p {b4}, 12p {b12}"
    );
}

#[test]
fn figure10_shape_tlr_exploits_deque_concurrency() {
    let procs = 8;
    let w = doubly_linked_list(procs, 512);
    let base = cycles(Scheme::Base, procs, &w);
    let tlr = cycles(Scheme::Tlr, procs, &w);
    assert!(tlr < base, "TLR must beat BASE on the deque: {tlr} vs {base}");
}

#[test]
fn figure9_events_show_queueing_not_restarting() {
    // Mechanism check: relaxed TLR's conflicts are absorbed by
    // deferral (many deferrals, few restarts); strict-ts restarts far
    // more on the same workload.
    let procs = 8;
    let w = single_counter(procs, 1024);
    let relaxed = run(Scheme::Tlr, procs, &w);
    let strict = run(Scheme::TlrStrictTs, procs, &w);
    let r_restarts = relaxed.stats.total_restarts();
    let r_defers = relaxed.stats.sum(|n| n.requests_deferred);
    assert!(
        r_restarts * 5 < r_defers,
        "relaxed TLR: restarts {r_restarts} should be rare vs deferrals {r_defers}"
    );
    assert!(
        strict.stats.total_restarts() > r_restarts * 4,
        "strict-ts restarts ({}) must dwarf relaxed ({r_restarts})",
        strict.stats.total_restarts()
    );
}
