//! Root-level entry point for the hermetic verification subsystem:
//! guarantees the serializability oracle and schedule fuzzer run on a
//! plain `cargo test` from the repository root (the `tlr-check` crate
//! repeats this with its own sweep when testing the workspace).
//!
//! Together the three tests below execute well over 200 distinct
//! (seed, config) cases, each asserting that the TLR machine's final
//! state matches the serial reference and is explained by the
//! machine's own commit order.

use tlr_check::fuzz;
use tlr_check::oracle::OracleWorkload;
use tlr_check::Source;
use tlr_sim::config::{MachineConfig, RetentionPolicy, Scheme};
use tlr_sim::pool::{CellCoords, Job, Pool};
use tlr_sim::SimRng;

/// Deterministic sweep: scheme x retention x procs, one seeded
/// workload per cell (5 * 2 * 3 = 30 cells), fanned out across the
/// worker pool. Each cell's seed is `SimRng::nth(root, index)` — the
/// exact value the historical serial loop drew from its sequential
/// stream — so the covered cases are unchanged and independent of
/// both execution order and worker count.
#[test]
fn oracle_sweep_all_schemes() {
    let root = 0x5eed_cafe;
    let mut cells = Vec::new();
    for scheme in Scheme::ALL {
        for retention in [RetentionPolicy::Deferral, RetentionPolicy::Nack] {
            for procs in [1usize, 2, 4] {
                let index = cells.len() as u64;
                cells.push((scheme, retention, procs, SimRng::nth(root, index)));
            }
        }
    }
    let jobs = cells
        .iter()
        .map(|&(scheme, retention, procs, seed)| {
            let coords = CellCoords {
                workload: "oracle-sweep".to_string(),
                scheme: format!("{} {retention:?}", scheme.label()),
                procs,
                seed,
            };
            Job::new(coords, move |_| {
                let mut cfg = MachineConfig::paper_default(scheme, procs);
                cfg.retention = retention;
                cfg.max_cycles = 50_000_000;
                let mut s = Source::from_seed(seed);
                let w = OracleWorkload::arbitrary(&mut s, procs, 6);
                w.check(&cfg).map_err(|e| {
                    format!("sweep cell {} / {retention:?} / {procs}p: {e}\n  workload: {w:?}", scheme.label())
                })
            })
        })
        .collect();
    for cell in Pool::from_env().scatter_indexed(jobs) {
        match cell {
            Err(e) if e.cancelled => continue,
            Err(e) => panic!("{e}"),
            Ok(Err(violation)) => panic!("{violation}"),
            Ok(Ok(())) => {}
        }
    }
}

/// Randomized schedule exploration against the serializability oracle.
#[test]
fn fuzz_schedules_against_oracle() {
    fuzz::fuzz_schedules("root-schedule-fuzz-oracle", 140);
}

/// Randomized configurations against the micro workloads' validators.
#[test]
fn fuzz_micro_workloads() {
    fuzz::fuzz_micro("root-schedule-fuzz-micro", 60);
}

/// Chaos matrix: 50 fault seeds x {BASE, SLE, TLR}, intensity cycling
/// over every fault kind (network jitter, bus reordering, capacity
/// squeezes, spurious aborts), each cell run through the
/// serializability oracle with a hard cycle budget — so a fault that
/// broke safety *or* starved a transaction out of its commit fails the
/// sweep with its (seed, scheme, intensity) coordinates.
#[test]
fn fault_matrix_never_breaks_serializability() {
    fuzz::fault_matrix("root-fault-matrix", 0xfa17_5eed, 50, &Pool::from_env());
}
