//! §4 stability properties: non-blocking behaviour, restartable
//! critical sections, and the resource-constraint fallbacks of §3.3.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Program, Reg};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;
const COUNTER: u64 = 0x200;
const HOLDER: u64 = 0x280;

/// Endless increment loop; `HOLDER` advertises who is inside the
/// critical section; register r3 counts completed sections.
fn worker(me: usize, dwell: u32) -> Arc<Program> {
    let mut a = Asm::new(format!("worker-{me}"));
    let lock = a.reg();
    let counter = a.reg();
    let holder = a.reg();
    let done_count = a.reg();
    assert_eq!(done_count, Reg(3));
    let v = a.reg();
    let myid = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(counter, COUNTER);
    a.li(holder, HOLDER);
    a.li(myid, me as u64 + 1);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.store(myid, holder, 0);
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.delay(dwell);
    a.store(v, counter, 0);
    a.store(r.zero, holder, 0);
    tatas::release(&mut a, lock, &r);
    a.addi(done_count, done_count, 1);
    a.rand_delay(20, 120);
    a.jmp(top);
    a.done(); // unreachable; loop is endless
    Arc::new(a.finish())
}

fn build(scheme: Scheme, procs: usize) -> Machine {
    let cfg = MachineConfig::paper_default(scheme, procs);
    Machine::new(cfg, (0..procs).map(|i| worker(i, 20)).collect(), HashSet::from([Addr(LOCK)]))
}

/// Runs until some thread is inside its critical section; returns it.
fn catch_victim(m: &mut Machine, scheme: Scheme, procs: usize) -> usize {
    for _ in 0..1_000_000 {
        m.step();
        if scheme.elision_enabled() {
            if let Some(v) = (0..procs).find(|&i| m.in_txn(i)) {
                return v;
            }
        } else {
            let h = m.final_word(Addr(HOLDER));
            if h != 0 {
                return h as usize - 1;
            }
        }
    }
    panic!("no thread ever entered a critical section");
}

fn total_progress(m: &Machine, procs: usize, except: usize) -> u64 {
    (0..procs).filter(|&i| i != except).map(|i| m.reg(i, Reg(3))).sum()
}

#[test]
fn descheduled_holder_blocks_others_under_base() {
    let procs = 4;
    let mut m = build(Scheme::Base, procs);
    let victim = catch_victim(&mut m, Scheme::Base, procs);
    m.deschedule(victim);
    let before = total_progress(&m, procs, victim);
    for _ in 0..150_000 {
        m.step();
    }
    let after = total_progress(&m, procs, victim);
    // The lock is held by the sleeping thread: nobody completes more
    // than the sections already in flight.
    assert!(after - before <= 1, "BASE should convoy, progressed {}", after - before);
    // Re-scheduling resumes the system.
    m.reschedule(victim);
    for _ in 0..150_000 {
        m.step();
    }
    assert!(total_progress(&m, procs, victim) > after + 10, "resumes after re-schedule");
}

#[test]
fn descheduled_thread_does_not_block_others_under_tlr() {
    let procs = 4;
    let mut m = build(Scheme::Tlr, procs);
    let victim = catch_victim(&mut m, Scheme::Tlr, procs);
    m.deschedule(victim);
    let before = total_progress(&m, procs, victim);
    for _ in 0..150_000 {
        m.step();
    }
    let after = total_progress(&m, procs, victim);
    assert!(
        after - before > 50,
        "TLR is non-blocking: others must keep committing, got {}",
        after - before
    );
    assert_eq!(m.final_word(Addr(LOCK)), 0, "the lock was never actually held");
}

#[test]
fn killed_thread_leaves_consistent_state_under_tlr() {
    // §4 restartable critical sections: killing a thread mid-
    // transaction discards its speculative updates; the shared
    // counter equals the completed critical sections of everyone.
    let procs = 4;
    let mut m = build(Scheme::Tlr, procs);
    let victim = catch_victim(&mut m, Scheme::Tlr, procs);
    m.kill(victim);
    for _ in 0..100_000 {
        m.step();
    }
    let done: u64 = (0..procs).map(|i| m.reg(i, Reg(3))).sum();
    // Let pending sections finish counting: run a few more cycles and
    // re-sample until stable.
    let mut counter = m.final_word(Addr(COUNTER));
    for _ in 0..50_000 {
        m.step();
    }
    counter = counter.max(m.final_word(Addr(COUNTER)));
    let done2: u64 = (0..procs).map(|i| m.reg(i, Reg(3))).sum();
    assert!(done2 >= done);
    // Consistency: counter is within the sections currently being
    // retired (the victim's aborted section must NOT have leaked a
    // partial update).
    assert!(
        counter >= done && counter <= done2 + 1,
        "counter {counter} vs completed sections {done}..{done2}"
    );
}

#[test]
fn io_inside_critical_section_falls_back_to_lock() {
    // §2.2: "operations that cannot be undone (e.g., I/O)" force TLR
    // to acquire the lock.
    let mut a = Asm::new("io-cs");
    let lock = a.reg();
    let n = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, 8);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.io();
    tatas::release(&mut a, lock, &r);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    let p = Arc::new(a.finish());
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 2);
    let mut m = Machine::new(cfg, vec![p.clone(), p], HashSet::from([Addr(LOCK)]));
    m.run().expect("quiesces");
    let s = m.stats();
    assert!(s.sum(|n| n.fallbacks_io) > 0, "I/O must abort the elision");
    assert_eq!(m.final_word(Addr(LOCK)), 0);
}

#[test]
fn write_buffer_overflow_falls_back_to_lock() {
    // §3.3: a critical section writing more unique lines than the
    // write buffer holds cannot be locally buffered.
    let mut a = Asm::new("big-cs");
    let lock = a.reg();
    let p_reg = a.reg();
    let end = a.reg();
    let n = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, 4);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.li(p_reg, 0x10000);
    a.li(end, 0x10000 + 80 * 64); // 80 lines > 64-entry write buffer
    let row = a.here();
    a.store(r.one, p_reg, 0);
    a.addi(p_reg, p_reg, 64);
    a.blt(p_reg, end, row);
    tatas::release(&mut a, lock, &r);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    let p = Arc::new(a.finish());
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 2);
    let mut m = Machine::new(cfg, vec![p.clone(), p], HashSet::from([Addr(LOCK)]));
    m.run().expect("quiesces");
    assert!(m.stats().sum(|n| n.fallbacks_resource) > 0, "resource fallback expected");
    for i in 0..80u64 {
        assert_eq!(m.final_word(Addr(0x10000 + i * 64)), 1, "line {i} written");
    }
}

#[test]
fn nesting_beyond_depth_treated_as_data() {
    // §4: "Multiple nested locks can also be elided if hardware for
    // tracking these elisions is sufficient. If some inner lock cannot
    // be elided ... the inner lock is treated as data."
    let depth = 10; // > max_elision_depth (8)
    let nest_counter: u64 = 0x2000; // clear of the nested-lock range
    let mut a = Asm::new("nested");
    let base = a.reg();
    let n = a.reg();
    let v = a.reg();
    let counter = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(base, LOCK);
    a.li(counter, nest_counter);
    a.li(n, 6);
    let top = a.here();
    for d in 0..depth {
        tatas::acquire_off(&mut a, base, (d * 64) as i64, &r);
    }
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.store(v, counter, 0);
    for d in (0..depth).rev() {
        tatas::release_off(&mut a, base, (d * 64) as i64, &r);
    }
    a.rand_delay(2, 10);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    let p = Arc::new(a.finish());
    let locks: HashSet<Addr> = (0..depth).map(|d| Addr(LOCK + d * 64)).collect();
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 3);
    let mut m = Machine::new(cfg, vec![p.clone(), p.clone(), p], locks);
    m.run().expect("quiesces");
    assert_eq!(m.final_word(Addr(nest_counter)), 18, "mutual exclusion holds across nesting");
    for d in 0..depth {
        assert_eq!(m.final_word(Addr(LOCK + d * 64)), 0, "lock {d} free at end");
    }
}

#[test]
fn deep_nesting_within_depth_elides_fully() {
    let depth = 4; // within max_elision_depth
    let nest_counter: u64 = 0x2000;
    let mut a = Asm::new("nested-ok");
    let base = a.reg();
    let n = a.reg();
    let v = a.reg();
    let counter = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(base, LOCK);
    a.li(counter, nest_counter);
    a.li(n, 10);
    let top = a.here();
    for d in 0..depth {
        tatas::acquire_off(&mut a, base, (d * 64) as i64, &r);
    }
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.store(v, counter, 0);
    for d in (0..depth).rev() {
        tatas::release_off(&mut a, base, (d * 64) as i64, &r);
    }
    a.rand_delay(2, 10);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    let p = Arc::new(a.finish());
    let locks: HashSet<Addr> = (0..depth).map(|d| Addr(LOCK + d * 64)).collect();
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 2);
    let mut m = Machine::new(cfg, vec![p.clone(), p], locks);
    m.run().expect("quiesces");
    assert_eq!(m.final_word(Addr(nest_counter)), 20);
    assert!(m.stats().total_commits() > 0, "nested transactions committed lock-free");
}

#[test]
fn guaranteed_footprint_never_falls_back() {
    // §4: "if the system has a 16 entry victim cache and a 4-way data
    // cache, the programmer can be sure any transaction accessing 20
    // cache lines or less is ensured a lock-free execution." We shrink
    // the hierarchy and aim every accessed line at ONE cache set (the
    // worst case) — a transaction within the guaranteed footprint must
    // never take a resource fallback.
    let mut cfg = MachineConfig::paper_default(Scheme::Tlr, 2);
    cfg.l1_sets = 4;
    cfg.l1_ways = 2;
    cfg.victim_entries = 4;
    // The guarantee is a *resource* guarantee: give each processor a
    // disjoint footprint (the lock word lives in a different set, so
    // it does not consume hot-set capacity).
    let lines = cfg.guaranteed_txn_written_lines() as u64 - 1; // data + lock line headroom
    let set_stride = cfg.l1_sets as u64 * 64; // same set every time
    let worker = |base: u64| {
        let mut a = Asm::new("footprint");
        let lock = a.reg();
        let p_reg = a.reg();
        let n = a.reg();
        let i = a.reg();
        let lim = a.reg();
        let r = TatasRegs::alloc(&mut a);
        tatas::init_regs(&mut a, &r);
        a.li(lock, LOCK + 64); // set 1, away from the data set
        a.li(n, 12);
        let top = a.here();
        tatas::acquire(&mut a, lock, &r);
        a.li(p_reg, base);
        a.li(i, 0);
        a.li(lim, lines);
        let row = a.here();
        a.store(r.one, p_reg, 0);
        a.addi(p_reg, p_reg, set_stride as i64);
        a.addi(i, i, 1);
        a.blt(i, lim, row);
        tatas::release(&mut a, lock, &r);
        a.rand_delay(2, 16);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    };
    let mut m = Machine::new(
        cfg,
        vec![worker(0x40000), worker(0x80000)],
        HashSet::from([Addr(LOCK + 64)]),
    );
    m.run().expect("quiesces");
    let s = m.stats();
    assert_eq!(
        s.sum(|n| n.fallbacks_resource),
        0,
        "a transaction within the architectural footprint must never exhaust resources"
    );
    assert!(s.total_commits() > 0);
}

#[test]
fn footprint_beyond_guarantee_falls_back_but_stays_correct() {
    // One line past the guarantee, all in one set: the victim cache
    // overflows with transactional lines and TLR must acquire the
    // lock instead — correctness is unconditional either way (§3.3).
    let mut cfg = MachineConfig::paper_default(Scheme::Tlr, 2);
    cfg.l1_sets = 4;
    cfg.l1_ways = 2;
    cfg.victim_entries = 4;
    let lines = cfg.guaranteed_txn_lines() as u64 + 2;
    let set_stride = cfg.l1_sets as u64 * 64;
    let mut a = Asm::new("overflow");
    let lock = a.reg();
    let p_reg = a.reg();
    let n = a.reg();
    let i = a.reg();
    let lim = a.reg();
    let v = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, 6);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.li(p_reg, 0x40000);
    a.li(i, 0);
    a.li(lim, lines);
    let row = a.here();
    a.load(v, p_reg, 0);
    a.addi(v, v, 1);
    a.store(v, p_reg, 0);
    a.addi(p_reg, p_reg, set_stride as i64);
    a.addi(i, i, 1);
    a.blt(i, lim, row);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 16);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    let p = Arc::new(a.finish());
    let mut m = Machine::new(cfg, vec![p.clone(), p], HashSet::from([Addr(LOCK)]));
    m.run().expect("quiesces");
    assert!(m.stats().sum(|n| n.fallbacks_resource) > 0, "overflow must force fallbacks");
    for k in 0..lines {
        assert_eq!(m.final_word(Addr(0x40000 + k * set_stride)), 12, "line {k} counted");
    }
}

#[test]
fn preemptive_scheduling_stays_correct_under_tlr() {
    // §4 / §3.3: a preempted transaction is discarded and retried;
    // frequent preemption costs time, never correctness.
    use tlr_repro::core::{run_preemptive, Preemption};
    let procs = 4;
    let iters = 40u64;
    let mut a = Asm::new("preempt-worker");
    let lock = a.reg();
    let counter = a.reg();
    let n = a.reg();
    let v = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(counter, COUNTER);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.delay(15);
    a.store(v, counter, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 16);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    let p = Arc::new(a.finish());
    let cfg = MachineConfig::paper_default(Scheme::Tlr, procs);
    let mut m = Machine::new(cfg, vec![p; procs], HashSet::from([Addr(LOCK)]));
    let report = run_preemptive(&mut m, Preemption::new(500, 300)).expect("quiesces");
    assert_eq!(m.final_word(Addr(COUNTER)), procs as u64 * iters);
    assert!(report.preemptions > 10, "preemption actually happened");
    assert!(
        report.preempted_in_txn > 0,
        "some preemptions landed inside critical sections and were absorbed"
    );
    assert_eq!(m.final_word(Addr(LOCK)), 0);
}

#[test]
fn preemptive_scheduling_correct_under_every_scheme() {
    use tlr_repro::core::Preemption;
    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        let procs = 3;
        let mut m = {
            let cfg = MachineConfig::paper_default(scheme, procs);
            Machine::new(cfg, (0..procs).map(|i| worker(i, 10)).collect(), HashSet::from([Addr(LOCK)]))
        };
        // The endless `worker` never finishes; bound the run and check
        // invariants mid-flight instead.
        let mut preempted = 0u64;
        let p = Preemption::new(800, 400);
        let mut next_preempt = p.quantum;
        let mut paused: Option<(usize, u64)> = None;
        for _ in 0..400_000u64 {
            if let Some((v, at)) = paused {
                if m.cycle() >= at {
                    m.reschedule(v);
                    paused = None;
                }
            }
            if paused.is_none() && m.cycle() >= next_preempt {
                let v = (m.cycle() as usize) % procs;
                m.deschedule(v);
                preempted += 1;
                paused = Some((v, m.cycle() + p.pause));
                next_preempt = m.cycle() + p.quantum;
            }
            m.step();
        }
        if let Some((v, _)) = paused {
            m.reschedule(v);
        }
        // Invariant: the counter equals the number of completed
        // critical sections (+ in-flight slack). The counter line may
        // be in flight on the data network at any instant, so sample
        // over a settling window.
        let done: u64 = (0..procs).map(|i| m.reg(i, Reg(3))).sum();
        let mut counter = m.final_word(Addr(COUNTER));
        for _ in 0..5_000 {
            m.step();
            counter = counter.max(m.final_word(Addr(COUNTER)));
        }
        let done_after: u64 = (0..procs).map(|i| m.reg(i, Reg(3))).sum();
        assert!(
            counter >= done.saturating_sub(1) && counter <= done_after + procs as u64,
            "{scheme}: counter {counter} vs completed {done}..{done_after}"
        );
        assert!(preempted > 100);
    }
}
