//! Additional coverage of TLR's conflict-resolution paths: read-vs-
//! write deferral asymmetry, long probe chains, and the untimestamped
//! Restart policy under sustained racing.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Program};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme, UntimestampedPolicy};
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;

fn run_machine(cfg: MachineConfig, programs: Vec<Arc<Program>>) -> Machine {
    let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
    m.run().expect("quiesce");
    m
}

fn cfg(scheme: Scheme, procs: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(scheme, procs);
    c.max_cycles = 300_000_000;
    c
}

/// A critical section that only *reads* `watch` and increments `out`.
fn reader_cs(watch: u64, out: u64, iters: u64) -> Arc<Program> {
    let mut a = Asm::new("reader-cs");
    let lock = a.reg();
    let w = a.reg();
    let o = a.reg();
    let n = a.reg();
    let v = a.reg();
    let acc = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(w, watch);
    a.li(o, out);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.load(acc, w, 0); // read-only access to the contended line
    a.load(v, o, 0);
    a.add(v, v, r.one);
    a.store(v, o, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 14);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

/// A critical section that *writes* `watch`.
fn writer_cs(watch: u64, iters: u64) -> Arc<Program> {
    let mut a = Asm::new("writer-cs");
    let lock = a.reg();
    let w = a.reg();
    let n = a.reg();
    let v = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(w, watch);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.load(v, w, 0);
    a.addi(v, v, 1);
    a.store(v, w, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 14);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

#[test]
fn readers_and_writer_mix_serializably() {
    // Three read-only critical sections against one writer on the same
    // line: read-read never conflicts; read-write resolves by
    // timestamp. All increments must land and every reader's count
    // must be exact.
    const WATCH: u64 = 0x2000;
    const ITERS: u64 = 48;
    let outs = [0x3000u64, 0x4000, 0x5000];
    let m = run_machine(
        cfg(Scheme::Tlr, 4),
        vec![
            reader_cs(WATCH, outs[0], ITERS),
            reader_cs(WATCH, outs[1], ITERS),
            reader_cs(WATCH, outs[2], ITERS),
            writer_cs(WATCH, ITERS),
        ],
    );
    assert_eq!(m.final_word(Addr(WATCH)), ITERS);
    for &o in &outs {
        assert_eq!(m.final_word(Addr(o)), ITERS, "reader at 0x{o:x}");
    }
    assert_eq!(m.final_word(Addr(LOCK)), 0);
}

#[test]
fn pure_readers_share_without_conflicts() {
    // With no writer, the contended line stays Shared among all
    // transactions: zero conflict restarts expected after warmup.
    const WATCH: u64 = 0x2000;
    const ITERS: u64 = 64;
    let m = run_machine(
        cfg(Scheme::Tlr, 4),
        (0..4).map(|i| reader_cs(WATCH, 0x3000 + i * 0x1000, ITERS)).collect(),
    );
    for i in 0..4u64 {
        assert_eq!(m.final_word(Addr(0x3000 + i * 0x1000)), ITERS);
    }
    let s = m.stats();
    assert_eq!(
        s.sum(|n| n.restarts_conflict),
        0,
        "read-sharing must not cause timestamp conflicts"
    );
}

#[test]
fn long_chains_across_five_processors() {
    // Five processors, five blocks, rotated write orders: longer
    // coherence chains than Figure 6's three-node example, still
    // resolved by markers/probes/timestamps.
    const ITERS: u64 = 16;
    let blocks = [0x2000u64, 0x3000, 0x4000, 0x5000, 0x6000];
    let mk = |rot: usize| {
        let mut a = Asm::new(format!("rot-{rot}"));
        let lock = a.reg();
        let n = a.reg();
        let v = a.reg();
        let addr = a.reg();
        let r = TatasRegs::alloc(&mut a);
        tatas::init_regs(&mut a, &r);
        a.li(lock, LOCK);
        a.li(n, ITERS);
        let top = a.here();
        tatas::acquire(&mut a, lock, &r);
        for k in 0..blocks.len() {
            let b = blocks[(rot + k) % blocks.len()];
            if k > 0 {
                a.delay(8);
            }
            a.li(addr, b);
            a.load(v, addr, 0);
            a.addi(v, v, 1);
            a.store(v, addr, 0);
        }
        tatas::release(&mut a, lock, &r);
        a.rand_delay(2, 12);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    };
    let m = run_machine(cfg(Scheme::Tlr, 5), (0..5).map(mk).collect());
    for &b in &blocks {
        assert_eq!(m.final_word(Addr(b)), 5 * ITERS, "block 0x{b:x}");
    }
}

#[test]
fn untimestamped_restart_policy_under_sustained_racing() {
    // A non-critical-section racer hammering a word in the
    // transaction's line under the Restart policy: every conflicting
    // untimestamped access forces a misspeculation, yet both sides
    // stay exact and the system stays live.
    const WATCH: u64 = 0x2000;
    const ITERS: u64 = 40;
    let racer = {
        let mut a = Asm::new("racer");
        let addr = a.reg();
        let n = a.reg();
        let v = a.reg();
        let zero = a.reg();
        a.li(zero, 0);
        a.li(addr, WATCH + 8);
        a.li(n, ITERS);
        let top = a.here();
        a.load(v, addr, 0);
        a.addi(v, v, 1);
        a.store(v, addr, 0);
        a.rand_delay(2, 10);
        a.addi(n, n, -1);
        a.bne(n, zero, top);
        a.done();
        Arc::new(a.finish())
    };
    let mut c = cfg(Scheme::Tlr, 3);
    c.untimestamped_policy = UntimestampedPolicy::Restart;
    let m = run_machine(c, vec![writer_cs(WATCH, ITERS), writer_cs(WATCH, ITERS), racer]);
    assert_eq!(m.final_word(Addr(WATCH)), 2 * ITERS, "locked updates exact");
    assert_eq!(m.final_word(Addr(WATCH + 8)), ITERS, "racing updates exact");
}

#[test]
fn deferred_queue_capacity_one_still_serializable() {
    // The most spartan deferral hardware: one queue entry. Overflow
    // degrades to conflict losses, never to incorrectness.
    let mut c = cfg(Scheme::Tlr, 8);
    c.deferred_queue_entries = 1;
    const WATCH: u64 = 0x2000;
    const ITERS: u64 = 32;
    let m = run_machine(c, vec![writer_cs(WATCH, ITERS); 8]);
    assert_eq!(m.final_word(Addr(WATCH)), 8 * ITERS);
}

#[test]
fn mixed_schemes_would_be_equal_results() {
    // The same mixed read/write workload produces identical final
    // state under every scheme (the cross-scheme serializability
    // contract on a fresh shape).
    const WATCH: u64 = 0x2000;
    const ITERS: u64 = 24;
    let mut results = Vec::new();
    for scheme in Scheme::ALL {
        let m = run_machine(
            cfg(scheme, 3),
            vec![
                reader_cs(WATCH, 0x3000, ITERS),
                writer_cs(WATCH, ITERS),
                writer_cs(WATCH, ITERS),
            ],
        );
        results.push((m.final_word(Addr(WATCH)), m.final_word(Addr(0x3000))));
    }
    for w in &results {
        assert_eq!(*w, (2 * ITERS, ITERS));
    }
}
