//! Integration tests replaying the paper's worked examples.
//!
//! * Figures 2 and 4: two processors writing blocks A and B in
//!   reverse order inside the same critical section — without
//!   conflict resolution both restart forever; with TLR the earlier
//!   timestamp retains ownership, defers the other's request, and
//!   both commit lock-free.
//! * Figure 6: three processors forming a cyclic wait across two
//!   blocks, broken by marker/probe priority propagation (§3.1.1).
//! * Figure 7: several processors hammering one line form a hardware
//!   queue on the data itself — requests are deferred and serviced
//!   in order, with no lock traffic (§6.1).

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Program};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sim::trace::TraceKind;
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;

/// A critical section writing the given blocks in order, `iters`
/// times, with a dwell between writes to widen the conflict window.
fn writer(blocks: &[u64], iters: u64, dwell: u32) -> Arc<Program> {
    let mut a = Asm::new(format!("writer-{blocks:?}"));
    let lock = a.reg();
    let n = a.reg();
    let v = a.reg();
    let addr = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    for (i, &b) in blocks.iter().enumerate() {
        if i > 0 {
            a.delay(dwell);
        }
        a.li(addr, b);
        a.load(v, addr, 0);
        a.addi(v, v, 1);
        a.store(v, addr, 0);
    }
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 10);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn run_machine(scheme: Scheme, programs: Vec<Arc<Program>>) -> Machine {
    let mut cfg = MachineConfig::paper_default(scheme, programs.len());
    cfg.max_cycles = 20_000_000;
    let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
    m.enable_trace();
    m.run().expect("TLR guarantees forward progress");
    m
}

#[test]
fn figure2_4_reverse_order_writers_commit_lock_free() {
    const A: u64 = 0x2000;
    const B: u64 = 0x3000;
    const ITERS: u64 = 16;
    let m = run_machine(Scheme::Tlr, vec![writer(&[A, B], ITERS, 15), writer(&[B, A], ITERS, 15)]);
    // Serializability: every critical section's increments landed.
    assert_eq!(m.final_word(Addr(A)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(B)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(LOCK)), 0, "lock never left held");
    let stats = m.stats();
    // Both processors committed lock-free transactions.
    assert!(stats.nodes[0].commits > 0 && stats.nodes[1].commits > 0);
    // Conflicts actually occurred and were resolved by deferral
    // (Figure 4's key difference from Figure 2).
    assert!(
        stats.sum(|n| n.requests_deferred) > 0,
        "reverse-order writers must experience deferred conflicts"
    );
}

#[test]
fn figure2_4_conflicts_are_fair() {
    // The loser restarts but keeps its timestamp, so it eventually
    // wins: neither processor starves even under constant conflict.
    const A: u64 = 0x2000;
    const B: u64 = 0x3000;
    const ITERS: u64 = 24;
    let m = run_machine(Scheme::Tlr, vec![writer(&[A, B], ITERS, 25), writer(&[B, A], ITERS, 25)]);
    assert_eq!(m.final_word(Addr(A)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(B)), 2 * ITERS);
    for n in &m.stats().nodes {
        // The first execution per lock site trains the elision
        // predictor (a real acquisition), so allow a small shortfall.
        assert!(
            n.commits >= ITERS - 3,
            "starvation freedom: thread committed only {} of {ITERS}",
            n.commits
        );
    }
}

#[test]
fn figure6_three_processor_cycle_broken_by_probes() {
    // Three processors, three blocks, rotated access orders: the
    // request-response decoupling can form the cyclic wait of
    // Figure 6; probes must break it (the run completing at all is
    // the theorem, traced probes are the mechanism's witness).
    const A: u64 = 0x2000;
    const B: u64 = 0x3000;
    const C: u64 = 0x4000;
    const ITERS: u64 = 24;
    let m = run_machine(
        Scheme::Tlr,
        vec![
            writer(&[A, B, C], ITERS, 12),
            writer(&[B, C, A], ITERS, 12),
            writer(&[C, A, B], ITERS, 12),
        ],
    );
    for addr in [A, B, C] {
        assert_eq!(m.final_word(Addr(addr)), 3 * ITERS, "block 0x{addr:x}");
    }
    let stats = m.stats();
    assert!(stats.sum(|n| n.markers_sent) > 0, "chains must announce themselves via markers");
}

#[test]
fn figure7_hardware_queue_on_data() {
    // Four processors incrementing one counter: under TLR the
    // processors queue on the data line itself and transfer it
    // directly, with deferrals and no lock acquisitions after the
    // one training pass per processor (§6.1).
    const COUNTER: u64 = 0x2000;
    const ITERS: u64 = 32;
    let m = run_machine(Scheme::Tlr, vec![writer(&[COUNTER], ITERS, 0); 4]);
    assert_eq!(m.final_word(Addr(COUNTER)), 4 * ITERS);
    let stats = m.stats();
    assert!(stats.sum(|n| n.requests_deferred) > 0, "queueing happens via deferrals");
    // After the per-processor training acquisition, the lock is never
    // acquired again: at most one LockAcquired event per node.
    let acquisitions = m
        .trace()
        .count(|e| matches!(e.kind, TraceKind::LockAcquired { .. }));
    assert!(
        acquisitions <= 4 + 2,
        "lock-free execution: only training acquisitions expected, saw {acquisitions}"
    );
}

#[test]
fn sle_alone_falls_back_under_conflicts() {
    // The same Figure 2 scenario under plain SLE: correctness is
    // preserved but conflicts force lock acquisitions (the limitation
    // TLR removes).
    const A: u64 = 0x2000;
    const B: u64 = 0x3000;
    const ITERS: u64 = 16;
    let m = run_machine(Scheme::Sle, vec![writer(&[A, B], ITERS, 15), writer(&[B, A], ITERS, 15)]);
    assert_eq!(m.final_word(Addr(A)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(B)), 2 * ITERS);
    assert!(
        m.stats().total_fallbacks() > 0,
        "SLE must fall back to the lock when data conflicts persist"
    );
}
