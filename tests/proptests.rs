//! Property-based tests: randomized workload shapes and machine
//! configurations must always produce the serial result.

use proptest::prelude::*;

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::run::run_workload;
use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Program};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sync::tatas::{self, TatasRegs};
use tlr_repro::workloads::micro;

const LOCK: u64 = 0x100;

/// A worker incrementing a subset of shared words under one lock,
/// with per-thread iteration counts and delays.
fn subset_worker(words: &[u64], iters: u64, delay: (u32, u32)) -> Arc<Program> {
    let mut a = Asm::new("prop-worker");
    let lock = a.reg();
    let n = a.reg();
    let v = a.reg();
    let addr = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    for &w in words {
        a.li(addr, w);
        a.load(v, addr, 0);
        a.addi(v, v, 1);
        a.store(v, addr, 0);
    }
    tatas::release(&mut a, lock, &r);
    if delay.1 > 0 {
        a.rand_delay(delay.0.min(delay.1), delay.1);
    }
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn scheme_from(ix: u8) -> Scheme {
    Scheme::ALL[ix as usize % Scheme::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Random per-thread word subsets, iteration counts, delays, seed
    /// and scheme: final word values must equal the sum of increments
    /// by the threads that touch each word.
    #[test]
    fn lock_protected_increments_are_serializable(
        scheme_ix in 0u8..5,
        seed in 0u64..1000,
        threads in prop::collection::vec(
            (
                prop::collection::vec(0u64..6, 1..4), // word indices
                1u64..12,                             // iterations
                (0u32..4, 1u32..16),                  // delay bounds
            ),
            1..5,
        ),
    ) {
        let scheme = scheme_from(scheme_ix);
        let word_addr = |ix: u64| 0x2000 + ix * 64;
        let programs: Vec<_> = threads
            .iter()
            .map(|(words, iters, delay)| {
                let addrs: Vec<u64> = words.iter().map(|&w| word_addr(w)).collect();
                subset_worker(&addrs, *iters, *delay)
            })
            .collect();
        // MCS scheme still runs the TATAS program here: the machine
        // flags are what matter (MCS == Base hardware).
        let mut cfg = MachineConfig::paper_default(scheme, programs.len());
        cfg.seed = seed;
        cfg.max_cycles = 200_000_000;
        let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
        m.run().expect("quiesce");
        let mut expect = [0u64; 6];
        for (words, iters, _) in &threads {
            for &w in words {
                expect[w as usize] += *iters;
            }
        }
        for (w, &e) in expect.iter().enumerate() {
            prop_assert_eq!(m.final_word(Addr(word_addr(w as u64))), e, "word {}", w);
        }
        prop_assert_eq!(m.final_word(Addr(LOCK)), 0);
    }

    /// The doubly-linked list keeps its structural invariants for
    /// arbitrary sizes, processor counts, schemes and seeds.
    #[test]
    fn dll_structure_preserved(
        scheme_ix in 0u8..5,
        procs in 1usize..5,
        pairs in 4u64..40,
        seed in 0u64..1000,
    ) {
        let scheme = scheme_from(scheme_ix);
        let w = micro::doubly_linked_list(procs, pairs);
        let mut cfg = MachineConfig::paper_default(scheme, procs);
        cfg.seed = seed;
        cfg.max_cycles = 200_000_000;
        let report = run_workload(&cfg, &w);
        prop_assert!(report.validation.is_ok(), "{:?}", report.validation);
    }

    /// Tiny caches and buffers (constant resource fallbacks) never
    /// break correctness.
    #[test]
    fn resource_starved_configuration_correct(
        wb_lines in 2usize..8,
        victim in 1usize..4,
        procs in 1usize..4,
    ) {
        let mut cfg = MachineConfig::small(Scheme::Tlr, procs);
        cfg.write_buffer_lines = wb_lines;
        cfg.victim_entries = victim;
        cfg.max_cycles = 200_000_000;
        let w = micro::single_counter(procs, 48);
        let report = run_workload(&cfg, &w);
        prop_assert!(report.validation.is_ok(), "{:?}", report.validation);
    }

    /// Narrow timestamps (frequent rollover) preserve correctness and
    /// forward progress (§2.1.2 rollover handling).
    #[test]
    fn narrow_timestamps_roll_over_safely(bits in 4u32..10, procs in 2usize..5) {
        let mut cfg = MachineConfig::paper_default(Scheme::Tlr, procs);
        cfg.timestamp_bits = bits;
        cfg.max_cycles = 200_000_000;
        let w = micro::single_counter(procs, 64);
        let report = run_workload(&cfg, &w);
        prop_assert!(report.validation.is_ok(), "{:?}", report.validation);
    }
}
