//! Property-based tests: randomized workload shapes and machine
//! configurations must always produce the serial result. Runs on the
//! in-repo `tlr-check` engine; failures print a `TLR_CHECK_SEED`
//! reproduction line and a minimized choice sequence.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_check::{check, gen, Source};
use tlr_repro::core::run::run_workload;
use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Program};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sync::tatas::{self, TatasRegs};
use tlr_repro::workloads::micro;

const LOCK: u64 = 0x100;

/// A worker incrementing a subset of shared words under one lock,
/// with per-thread iteration counts and delays.
fn subset_worker(words: &[u64], iters: u64, delay: (u32, u32)) -> Arc<Program> {
    let mut a = Asm::new("prop-worker");
    let lock = a.reg();
    let n = a.reg();
    let v = a.reg();
    let addr = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    for &w in words {
        a.li(addr, w);
        a.load(v, addr, 0);
        a.addi(v, v, 1);
        a.store(v, addr, 0);
    }
    tatas::release(&mut a, lock, &r);
    if delay.1 > 0 {
        a.rand_delay(delay.0.min(delay.1), delay.1);
    }
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn arbitrary_scheme(s: &mut Source) -> Scheme {
    *s.pick(&Scheme::ALL)
}

/// Random per-thread word subsets, iteration counts, delays, seed and
/// scheme: final word values must equal the sum of increments by the
/// threads that touch each word.
#[test]
fn lock_protected_increments_are_serializable() {
    check("lock_protected_increments_are_serializable", 24, |s| {
        let scheme = arbitrary_scheme(s);
        let seed = s.u64_in(0..=999);
        let threads = gen::vec_of(s, 1..=4, |s| {
            (
                gen::vec_of(s, 1..=3, |s| s.u64_in(0..=5)), // word indices
                s.u64_in(1..=11),                           // iterations
                (s.u32_in(0..=3), s.u32_in(1..=15)),        // delay bounds
            )
        });
        let word_addr = |ix: u64| 0x2000 + ix * 64;
        let programs: Vec<_> = threads
            .iter()
            .map(|(words, iters, delay)| {
                let addrs: Vec<u64> = words.iter().map(|&w| word_addr(w)).collect();
                subset_worker(&addrs, *iters, *delay)
            })
            .collect();
        // MCS scheme still runs the TATAS program here: the machine
        // flags are what matter (MCS == Base hardware).
        let mut cfg = MachineConfig::paper_default(scheme, programs.len());
        cfg.seed = seed;
        cfg.max_cycles = 200_000_000;
        let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
        m.run().map_err(|e| format!("{e}"))?;
        let mut expect = [0u64; 6];
        for (words, iters, _) in &threads {
            for &w in words {
                expect[w as usize] += *iters;
            }
        }
        for (w, &e) in expect.iter().enumerate() {
            let got = m.final_word(Addr(word_addr(w as u64)));
            if got != e {
                return Err(format!("word {w}: {got} != {e} ({scheme:?}, {threads:?})"));
            }
        }
        let lock = m.final_word(Addr(LOCK));
        if lock != 0 {
            return Err(format!("lock left as {lock}"));
        }
        Ok(())
    });
}

/// The doubly-linked list keeps its structural invariants for
/// arbitrary sizes, processor counts, schemes and seeds.
#[test]
fn dll_structure_preserved() {
    check("dll_structure_preserved", 24, |s| {
        let scheme = arbitrary_scheme(s);
        let procs = s.usize_in(1..=4);
        let pairs = s.u64_in(4..=39);
        let seed = s.u64_in(0..=999);
        let w = micro::doubly_linked_list(procs, pairs);
        let mut cfg = MachineConfig::paper_default(scheme, procs);
        cfg.seed = seed;
        cfg.max_cycles = 200_000_000;
        let report = run_workload(&cfg, &w);
        report
            .validation
            .clone()
            .map_err(|e| format!("{e} ({scheme:?}, {procs}p, {pairs} pairs, seed {seed})"))
    });
}

/// Tiny caches and buffers (constant resource fallbacks) never break
/// correctness.
#[test]
fn resource_starved_configuration_correct() {
    check("resource_starved_configuration_correct", 24, |s| {
        let wb_lines = s.usize_in(2..=7);
        let victim = s.usize_in(1..=3);
        let procs = s.usize_in(1..=3);
        let mut cfg = MachineConfig::small(Scheme::Tlr, procs);
        cfg.write_buffer_lines = wb_lines;
        cfg.victim_entries = victim;
        cfg.max_cycles = 200_000_000;
        let w = micro::single_counter(procs, 48);
        let report = run_workload(&cfg, &w);
        report
            .validation
            .clone()
            .map_err(|e| format!("{e} (wb={wb_lines}, victim={victim}, {procs}p)"))
    });
}

/// Narrow timestamps (frequent rollover) preserve correctness and
/// forward progress (§2.1.2 rollover handling).
#[test]
fn narrow_timestamps_roll_over_safely() {
    check("narrow_timestamps_roll_over_safely", 24, |s| {
        let bits = s.u32_in(4..=9);
        let procs = s.usize_in(2..=4);
        let mut cfg = MachineConfig::paper_default(Scheme::Tlr, procs);
        cfg.timestamp_bits = bits;
        cfg.max_cycles = 200_000_000;
        let w = micro::single_counter(procs, 64);
        let report = run_workload(&cfg, &w);
        report
            .validation
            .clone()
            .map_err(|e| format!("{e} (bits={bits}, {procs}p)"))
    });
}
