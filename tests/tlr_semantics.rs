//! TLR-specific semantic properties, asserted through the machine's
//! statistics and final state: deferral behaviour, the §3.2
//! relaxation, timestamp fairness, un-timestamped request policies,
//! and the §3.1.2 escalation.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Program};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme, UntimestampedPolicy};
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;
const COUNTER: u64 = 0x2000;

fn increment_worker(iters: u64) -> Arc<Program> {
    let mut a = Asm::new("incr");
    let lock = a.reg();
    let counter = a.reg();
    let n = a.reg();
    let v = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(counter, COUNTER);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.store(v, counter, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 16);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn run(cfg: MachineConfig, programs: Vec<Arc<Program>>) -> Machine {
    let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
    m.run().expect("quiesce");
    m
}

fn cfg(scheme: Scheme, procs: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(scheme, procs);
    c.max_cycles = 200_000_000;
    c
}

#[test]
fn tlr_defers_instead_of_restarting_on_single_block() {
    // Single contended block: the §3.2 relaxation lets even
    // later-timestamp owners defer, so restarts stay near zero while
    // deferrals carry the traffic (Figure 9's "ideal queued
    // behaviour").
    let iters = 64;
    let m = run(cfg(Scheme::Tlr, 8), vec![increment_worker(iters); 8]);
    assert_eq!(m.final_word(Addr(COUNTER)), 8 * iters);
    let s = m.stats();
    let deferred = s.sum(|n| n.requests_deferred);
    let restarts = s.total_restarts();
    assert!(deferred > 0, "contention must be absorbed by deferrals");
    assert!(
        restarts * 4 < deferred,
        "restarts ({restarts}) should be rare relative to deferrals ({deferred})"
    );
    assert!(s.sum(|n| n.single_block_relaxations) > 0, "the §3.2 relaxation fired");
}

#[test]
fn strict_ts_restarts_more_than_relaxed_tlr() {
    let iters = 64;
    let relaxed = run(cfg(Scheme::Tlr, 8), vec![increment_worker(iters); 8]);
    let strict = run(cfg(Scheme::TlrStrictTs, 8), vec![increment_worker(iters); 8]);
    assert_eq!(relaxed.final_word(Addr(COUNTER)), 8 * iters);
    assert_eq!(strict.final_word(Addr(COUNTER)), 8 * iters);
    assert!(
        strict.stats().total_restarts() > relaxed.stats().total_restarts(),
        "strict timestamp order must cause more protocol/timestamp-order mismatch restarts \
         (strict {}, relaxed {})",
        strict.stats().total_restarts(),
        relaxed.stats().total_restarts()
    );
    assert!(
        relaxed.stats().sum(|n| n.single_block_relaxations) > 0,
        "relaxed mode uses the optimization"
    );
    assert_eq!(
        strict.stats().sum(|n| n.single_block_relaxations),
        0,
        "strict mode never relaxes"
    );
}

#[test]
fn untimestamped_conflicts_deferred_as_lowest_priority() {
    // One thread updates data under the lock; another writes the same
    // line from *outside* any critical section (a benign data race,
    // §2.2). Under the default policy the un-timestamped request is
    // deferred and ordered after the transaction.
    let locker = {
        let mut a = Asm::new("locker");
        let lock = a.reg();
        let counter = a.reg();
        let n = a.reg();
        let v = a.reg();
        let r = TatasRegs::alloc(&mut a);
        tatas::init_regs(&mut a, &r);
        a.li(lock, LOCK);
        a.li(counter, COUNTER);
        a.li(n, 48);
        let top = a.here();
        tatas::acquire(&mut a, lock, &r);
        a.load(v, counter, 0);
        a.addi(v, v, 1);
        a.delay(10);
        a.store(v, counter, 0);
        tatas::release(&mut a, lock, &r);
        a.rand_delay(2, 10);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    };
    let racer = {
        let mut a = Asm::new("racer");
        let addr = a.reg();
        let n = a.reg();
        let v = a.reg();
        let zero = a.reg();
        a.li(zero, 0);
        // Writes a *different word of the same line* (no value race,
        // but a coherence-level conflict with the transaction).
        a.li(addr, COUNTER + 8);
        a.li(n, 48);
        let top = a.here();
        a.load(v, addr, 0);
        a.addi(v, v, 1);
        a.store(v, addr, 0);
        a.rand_delay(4, 20);
        a.addi(n, n, -1);
        a.bne(n, zero, top);
        a.done();
        Arc::new(a.finish())
    };
    for policy in [UntimestampedPolicy::DeferAsLowestPriority, UntimestampedPolicy::Restart] {
        let mut c = cfg(Scheme::Tlr, 2);
        c.untimestamped_policy = policy;
        let m = run(c, vec![locker.clone(), racer.clone()]);
        assert_eq!(m.final_word(Addr(COUNTER)), 48, "{policy:?}: locked counter");
        assert_eq!(m.final_word(Addr(COUNTER + 8)), 48, "{policy:?}: racing counter");
    }
}

#[test]
fn lock_stays_shared_and_unwritten_under_tlr() {
    // §6.1: "no explicit lock requests are generated" in steady state.
    // After training, exclusive bus traffic for the lock line should
    // vanish: the total GetX count must be far below the number of
    // critical sections.
    let iters = 96;
    let procs = 4;
    let m = run(cfg(Scheme::Tlr, procs), vec![increment_worker(iters); procs]);
    let s = m.stats();
    let sections = procs as u64 * iters;
    assert!(s.total_commits() >= sections - 8, "almost every section committed lock-free");
    // BASE would issue at least one lock GetX per section; TLR's
    // exclusive traffic is only for the counter data line.
    assert!(
        s.bus.get_x < sections + 64,
        "lock-free execution should not generate per-section lock writes (get_x = {})",
        s.bus.get_x
    );
}

#[test]
fn escalation_engages_after_repeated_sharer_invalidations() {
    // With the read-modify-write predictor disabled, counter loads
    // come in Shared and get invalidated by other writers; §3.1.2's
    // escalation (exclusive fetches) must engage and keep the system
    // progressing.
    let mut c = cfg(Scheme::Tlr, 6);
    c.rmw_predictor_enabled = false;
    let iters = 48;
    let m = run(c, vec![increment_worker(iters); 6]);
    assert_eq!(m.final_word(Addr(COUNTER)), 6 * iters);
    let s = m.stats();
    assert!(
        s.sum(|n| n.rmw_upgraded_loads) > 0,
        "escalated loads fetch exclusive despite the predictor being off"
    );
}

#[test]
fn commits_do_not_starve_any_node() {
    // Starvation freedom: with identical work, every node's commit
    // count lands close to the mean.
    let iters = 64;
    let procs = 8;
    let m = run(cfg(Scheme::Tlr, procs), vec![increment_worker(iters); procs]);
    for (i, n) in m.stats().nodes.iter().enumerate() {
        assert!(
            n.commits + n.fallbacks() >= iters - 2,
            "node {i} completed only {} sections",
            n.commits + n.fallbacks()
        );
    }
}

#[test]
fn sle_statistics_show_fallbacks_under_data_conflicts() {
    let iters = 64;
    let m = run(cfg(Scheme::Sle, 8), vec![increment_worker(iters); 8]);
    assert_eq!(m.final_word(Addr(COUNTER)), 8 * iters);
    let s = m.stats();
    assert!(s.sum(|n| n.fallbacks_conflict) > 0, "SLE acquires the lock under conflicts");
    assert_eq!(s.sum(|n| n.requests_deferred), 0, "SLE never defers");
}

#[test]
fn base_never_elides() {
    let m = run(cfg(Scheme::Base, 4), vec![increment_worker(32); 4]);
    let s = m.stats();
    assert_eq!(s.sum(|n| n.elisions_started), 0);
    assert_eq!(s.sum(|n| n.sc_elided), 0);
    assert_eq!(s.total_commits(), 0);
    assert_eq!(m.final_word(Addr(COUNTER)), 4 * 32);
}

#[test]
fn nack_retention_policy_is_serializable_and_retries() {
    use tlr_repro::sim::config::RetentionPolicy;
    // §3: "With NACK-based techniques, a processor refuses to process
    // an incoming request (and thus retains ownership) by sending a
    // negative acknowledgement (NACK) to the requestor. Doing so
    // forces the requestor to retry at a future time."
    let iters = 48;
    let procs = 6;
    let mut c = cfg(Scheme::Tlr, procs);
    c.retention = RetentionPolicy::Nack;
    let m = run(c, vec![increment_worker(iters); procs]);
    assert_eq!(m.final_word(Addr(COUNTER)), procs as u64 * iters);
    let s = m.stats();
    assert!(s.sum(|n| n.nacks_sent) > 0, "conflicts must be refused via NACKs");
    assert_eq!(s.sum(|n| n.nacks_sent), s.sum(|n| n.nacks_received));
    // Requests that crossed the ordering window before the NACK could
    // be asserted still ride the deferral machinery; the NACKs are the
    // dominant retention mechanism here, not the only one.
}

#[test]
fn deferral_beats_nack_on_contended_counter() {
    use tlr_repro::sim::config::RetentionPolicy;
    // The paper chose deferral partly because the deferred request is
    // answered with a direct data transfer the moment the transaction
    // commits; NACKed requesters burn bus bandwidth and latency on
    // retries. Measure the difference.
    let iters = 64;
    let procs = 8;
    let deferral = run(cfg(Scheme::Tlr, procs), vec![increment_worker(iters); procs]);
    let mut c = cfg(Scheme::Tlr, procs);
    c.retention = RetentionPolicy::Nack;
    let nack = run(c, vec![increment_worker(iters); procs]);
    assert_eq!(deferral.final_word(Addr(COUNTER)), procs as u64 * iters);
    assert_eq!(nack.final_word(Addr(COUNTER)), procs as u64 * iters);
    assert!(
        deferral.stats().parallel_cycles <= nack.stats().parallel_cycles,
        "deferral ({}) should not be slower than NACK ({})",
        deferral.stats().parallel_cycles,
        nack.stats().parallel_cycles
    );
    assert!(
        nack.stats().bus.total() > deferral.stats().bus.total(),
        "NACK retries must generate extra bus traffic"
    );
}
