//! Cross-scheme serializability: every workload, under every hardware
//! scheme, at several processor counts, must produce exactly the
//! serial result. This is the paper's functional-checker role
//! (§5.3), applied as final-state validation.

use tlr_repro::core::run::run_workload;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::workloads::apps;
use tlr_repro::workloads::micro;

fn cfg(scheme: Scheme, procs: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(scheme, procs);
    c.max_cycles = 400_000_000;
    c
}

#[test]
fn microbenchmarks_serializable_everywhere() {
    for procs in [1, 2, 3, 8] {
        for scheme in Scheme::ALL {
            run_workload(&cfg(scheme, procs), &micro::multiple_counter(procs, 96)).assert_valid();
            run_workload(&cfg(scheme, procs), &micro::single_counter(procs, 96)).assert_valid();
            run_workload(&cfg(scheme, procs), &micro::doubly_linked_list(procs, 48)).assert_valid();
        }
    }
}

#[test]
fn applications_serializable_under_every_scheme() {
    let procs = 4;
    for scheme in Scheme::ALL {
        for w in apps::figure11_apps(procs, 24) {
            run_workload(&cfg(scheme, procs), w.as_ref()).assert_valid();
        }
    }
}

#[test]
fn coarse_grain_mp3d_serializable() {
    for scheme in [Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr] {
        run_workload(&cfg(scheme, 4), &apps::mp3d_coarse(4, 48, 128)).assert_valid();
    }
}

#[test]
fn sixteen_processors_high_contention() {
    // The paper's largest configuration on the most contended
    // microbenchmark.
    for scheme in [Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr, Scheme::TlrStrictTs] {
        run_workload(&cfg(scheme, 16), &micro::single_counter(16, 160)).assert_valid();
    }
}

#[test]
fn rmw_predictor_off_still_serializable() {
    // The exp_rmw_predictor configuration (BASE-no-opt) and TLR
    // without the predictor (more upgrade-induced restarts) both stay
    // correct.
    for scheme in [Scheme::Base, Scheme::Tlr] {
        let mut c = cfg(scheme, 4);
        c.rmw_predictor_enabled = false;
        run_workload(&c, &micro::single_counter(4, 96)).assert_valid();
        run_workload(&c, &micro::doubly_linked_list(4, 48)).assert_valid();
    }
}

#[test]
fn untimestamped_restart_policy_serializable() {
    use tlr_repro::sim::config::UntimestampedPolicy;
    let mut c = cfg(Scheme::Tlr, 4);
    c.untimestamped_policy = UntimestampedPolicy::Restart;
    run_workload(&c, &micro::single_counter(4, 96)).assert_valid();
    run_workload(&c, &micro::doubly_linked_list(4, 48)).assert_valid();
}

#[test]
fn jitter_and_seed_sweep_stays_serializable() {
    // Different latency perturbations exercise different interleavings
    // (the Alameldeen methodology); correctness must hold for all.
    for seed in [1, 2, 3, 4, 5] {
        for jitter in [0, 3] {
            let mut c = cfg(Scheme::Tlr, 4);
            c.seed = seed;
            c.latency_jitter = jitter;
            run_workload(&c, &micro::doubly_linked_list(4, 48)).assert_valid();
            run_workload(&c, &micro::single_counter(4, 64)).assert_valid();
        }
    }
}

#[test]
fn determinism_same_seed_same_cycles() {
    let w = micro::single_counter(4, 64);
    let a = run_workload(&cfg(Scheme::Tlr, 4), &w);
    let b = run_workload(&cfg(Scheme::Tlr, 4), &w);
    assert_eq!(a.stats.parallel_cycles, b.stats.parallel_cycles, "simulator must be deterministic");
    assert_eq!(a.stats.total_commits(), b.stats.total_commits());
}

#[test]
fn different_seeds_perturb_timing_not_results() {
    let w = micro::doubly_linked_list(3, 36);
    let mut c1 = cfg(Scheme::Tlr, 3);
    c1.seed = 111;
    let mut c2 = cfg(Scheme::Tlr, 3);
    c2.seed = 222;
    let a = run_workload(&c1, &w);
    let b = run_workload(&c2, &w);
    a.assert_valid();
    b.assert_valid();
}
