//! Facade crate for the TLR reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so that examples
//! and downstream users can depend on a single crate. See the
//! workspace `README.md` for an overview and `DESIGN.md` for the
//! system inventory.
//!
//! # Quickstart
//!
//! ```no_run
//! use tlr_repro::prelude::*;
//!
//! // Run the single-counter microbenchmark under TLR on 4 processors.
//! let workload = single_counter(4, 256);
//! let report = run_workload(&MachineConfig::paper_default(Scheme::Tlr, 4), &workload);
//! println!("{} cycles", report.stats.parallel_cycles);
//! ```

pub use tlr_core as core;
pub use tlr_cpu as cpu;
pub use tlr_mem as mem;
pub use tlr_sim as sim;
pub use tlr_sync as sync;
pub use tlr_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tlr_core::run::{run_workload, RunReport, WorkloadSpec};
    pub use tlr_core::Machine;
    pub use tlr_sim::config::{MachineConfig, Scheme};
    pub use tlr_workloads::micro::{doubly_linked_list, multiple_counter, single_counter};
}
