//! Facade crate for the TLR reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so that examples
//! and downstream users can depend on a single crate. See the
//! workspace `README.md` for an overview and `DESIGN.md` for the
//! system inventory.
//!
//! # Quickstart
//!
//! ```no_run
//! use tlr_repro::prelude::*;
//!
//! // Run the single-counter microbenchmark under TLR on 4 processors.
//! let workload = single_counter(4, 256);
//! let cfg = MachineConfig::builder().scheme(Scheme::Tlr).procs(4).build();
//! let report = run_workload(&cfg, &workload);
//! assert!(report.is_valid());
//! println!("{} cycles", report.stats.parallel_cycles);
//! ```
//!
//! The builder also threads the deterministic fault-injection layer
//! through the machine (off by default — bit-identical to a build
//! that never mentions it):
//!
//! ```no_run
//! use tlr_repro::prelude::*;
//!
//! let cfg = MachineConfig::builder()
//!     .scheme(Scheme::Tlr)
//!     .procs(4)
//!     .faults(FaultConfig::intensity(0xc4a0_5eed, 2))
//!     .build();
//! let report = run_workload(&cfg, &single_counter(4, 256));
//! assert!(report.is_valid(), "faults perturb timing, never correctness");
//! ```
//!
//! Contention management is pluggable ([`tlr_core::policy`]): the
//! paper's timestamp order is the default, and the builder selects the
//! alternatives:
//!
//! ```no_run
//! use tlr_repro::prelude::*;
//!
//! let cfg = MachineConfig::builder()
//!     .scheme(Scheme::Tlr)
//!     .procs(4)
//!     .policy(PolicyKind::Karma)
//!     .build();
//! let report = run_workload(&cfg, &single_counter(4, 256));
//! assert!(report.is_valid(), "policies trade cycles, never correctness");
//! ```

pub use tlr_core as core;
pub use tlr_cpu as cpu;
pub use tlr_mem as mem;
pub use tlr_sim as sim;
pub use tlr_sync as sync;
pub use tlr_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tlr_core::policy::{
        policy_for, ConflictPolicy, KarmaSize, LazySubscription, SeededBackoff, TimestampOrder,
    };
    pub use tlr_core::run::{run_workload, RunReport, WorkloadSpec};
    pub use tlr_core::Machine;
    pub use tlr_sim::config::{MachineConfig, MachineConfigBuilder, PolicyKind, Scheme};
    pub use tlr_sim::fault::FaultConfig;
    pub use tlr_workloads::micro::{doubly_linked_list, multiple_counter, single_counter};
}
