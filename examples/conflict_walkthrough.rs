//! The paper's worked example (Figures 2 and 4): two processors whose
//! critical sections write blocks A and B in *reverse order* of each
//! other — the canonical livelock scenario for naive lock-free
//! speculation, resolved by TLR's timestamp-based deferral.
//!
//! ```text
//! cargo run --release --example conflict_walkthrough
//! ```
//!
//! With tracing enabled, the run prints the deferrals (the winner
//! retaining ownership and buffering the loser's request), the
//! loser's restarts, and both processors' lock-free commits.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::Machine;
use tlr_repro::cpu::Asm;
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sim::trace::TraceKind;
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;
const A: u64 = 0x200;
const B: u64 = 0x300;
const ITERS: u64 = 8;

/// Builds one processor's program: repeatedly enter the critical
/// section and write the two blocks in the given order.
fn program(first: u64, second: u64) -> Arc<tlr_repro::cpu::Program> {
    let mut a = Asm::new(format!("writer-{first:x}-{second:x}"));
    let lock = a.reg();
    let fst = a.reg();
    let snd = a.reg();
    let n = a.reg();
    let v = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(fst, first);
    a.li(snd, second);
    a.li(n, ITERS);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    // Write first block, dwell a little, write second block — the
    // dwell widens the window in which the two transactions overlap.
    a.load(v, fst, 0);
    a.addi(v, v, 1);
    a.store(v, fst, 0);
    a.delay(10);
    a.load(v, snd, 0);
    a.addi(v, v, 1);
    a.store(v, snd, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 10);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn main() {
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 2);
    let mut m = Machine::new(
        cfg,
        vec![program(A, B), program(B, A)], // reverse orders (Figure 2)
        HashSet::from([Addr(LOCK)]),
    );
    m.enable_trace();
    m.run().expect("quiesces — TLR guarantees forward progress");

    println!("Figure 2/4 walkthrough: P0 writes A then B; P1 writes B then A.\n");
    for e in m.trace().events() {
        let what = match &e.kind {
            TraceKind::TxnStart { lock_addr } => format!("begin lock-free txn (lock 0x{lock_addr:x})"),
            TraceKind::TxnCommit { read_set, write_set, .. } => {
                format!("commit (atomic, lock never acquired; footprint {read_set}r/{write_set}w)")
            }
            TraceKind::TxnRestart { .. } => "restart (lost conflict, timestamp retained)".into(),
            TraceKind::Defer { line, from, .. } => {
                format!("defer P{from}'s conflicting request for line 0x{line:x}")
            }
            TraceKind::ServiceDeferred { line, to } => {
                format!("service deferred request: send line 0x{line:x} to P{to}")
            }
            TraceKind::ConflictLost { line, .. } => {
                format!("lose conflict on line 0x{line:x} (earlier timestamp wins)")
            }
            TraceKind::Marker { line, to } => format!("marker to P{to} for line 0x{line:x}"),
            TraceKind::Probe { line, to } => format!("probe to P{to} for line 0x{line:x}"),
            TraceKind::NackSent { line, to } => {
                format!("NACK P{to}'s request for line 0x{line:x} (retry later)")
            }
            TraceKind::LockAcquired { .. } => "acquire lock (predictor training pass)".into(),
            TraceKind::LockReleased { .. } => "release lock".into(),
            TraceKind::TxnFallback { reason } => format!("fallback to lock ({reason})"),
            TraceKind::FaultInjected { kind, .. } => format!("injected fault ({kind})"),
        };
        println!("[{:>7}] P{} {}", e.cycle, e.node, what);
    }

    let stats = m.stats();
    println!("\ncommits: {}  restarts: {}  deferrals: {}", stats.total_commits(), stats.total_restarts(), stats.sum(|n| n.requests_deferred));
    println!("final A = {}, B = {} (each written once per critical section: {} expected)",
        m.final_word(Addr(A)), m.final_word(Addr(B)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(A)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(B)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(LOCK)), 0, "the lock was never left held");
}
