//! §4 under a preemptive scheduler: periodic OS preemptions land on
//! whatever the thread was doing — including the middle of critical
//! sections.
//!
//! ```text
//! cargo run --release --example preemption
//! ```
//!
//! Under BASE every preemption of a lock holder convoys the whole
//! machine for the pause; under TLR the preempted transaction is
//! discarded (the lock was never held) and the others keep going.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::{run_preemptive, Machine, Preemption};
use tlr_repro::cpu::Asm;
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;
const COUNTER: u64 = 0x2000;
const PROCS: usize = 8;
const ITERS: u64 = 256;

fn worker() -> Arc<tlr_repro::cpu::Program> {
    let mut a = Asm::new("worker");
    let lock = a.reg();
    let counter = a.reg();
    let n = a.reg();
    let v = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(counter, COUNTER);
    a.li(n, ITERS);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.delay(25); // dwell: preemptions often land inside the section
    a.store(v, counter, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(4, 24);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn main() {
    println!(
        "{PROCS} threads x {ITERS} critical sections, preempted every 2000 cycles for 1500:\n"
    );
    println!("{:<14} {:>12} {:>13} {:>16}", "scheme", "cycles", "preemptions", "mid-transaction");
    let mut base_cycles = 0;
    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        let cfg = MachineConfig::paper_default(scheme, PROCS);
        let mut m = Machine::new(cfg, vec![worker(); PROCS], HashSet::from([Addr(LOCK)]));
        let report = run_preemptive(&mut m, Preemption::new(2000, 1500)).expect("quiesces");
        assert_eq!(m.final_word(Addr(COUNTER)), PROCS as u64 * ITERS, "serializable");
        let cycles = m.stats().parallel_cycles;
        if scheme == Scheme::Base {
            base_cycles = cycles;
        }
        println!(
            "{:<14} {:>12} {:>13} {:>16}",
            scheme.label(),
            cycles,
            report.preemptions,
            report.preempted_in_txn
        );
        if scheme == Scheme::Tlr {
            println!(
                "\nTLR finishes {:.2}x faster than BASE under the same preemption",
                base_cycles as f64 / cycles as f64
            );
        }
    }
    println!("pattern: a preempted BASE holder keeps the lock across its pause and");
    println!("convoys everyone; a preempted TLR transaction is simply discarded.");
}
