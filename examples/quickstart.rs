//! Quickstart: run one microbenchmark under every hardware scheme and
//! compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The single-counter workload (Figure 9 of the paper) has no
//! exploitable parallelism — every processor increments the same
//! word — so it isolates how efficiently each scheme serializes
//! conflicting critical sections. Expect BASE to burn cycles on lock
//! contention, MCS to queue in software, and TLR to queue in hardware
//! on the data itself with zero lock traffic.

use tlr_repro::prelude::*;

fn main() {
    let procs = 8;
    let total_increments = 2048;
    println!("single-counter: {procs} processors, {total_increments} total increments\n");
    println!(
        "{:<26} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "scheme", "cycles", "commits", "restarts", "deferrals", "lock-cyc"
    );
    for scheme in Scheme::ALL {
        let workload = single_counter(procs, total_increments);
        let cfg = MachineConfig::paper_default(scheme, procs);
        let report = run_workload(&cfg, &workload);
        report.assert_valid();
        println!(
            "{:<26} {:>12} {:>9} {:>9} {:>10} {:>10}",
            scheme.label(),
            report.stats.parallel_cycles,
            report.stats.total_commits(),
            report.stats.total_restarts(),
            report.stats.sum(|n| n.requests_deferred),
            report.stats.total_lock_cycles(),
        );
    }
    println!("\nEvery run validated: the final counter equals the serial result, so");
    println!("each scheme executed all critical sections serializably.");
}
