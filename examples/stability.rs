//! §4 stability demonstration: what happens when the OS de-schedules
//! a thread in the middle of a critical section.
//!
//! ```text
//! cargo run --release --example stability
//! ```
//!
//! Under BASE, the de-scheduled thread *holds the lock*, so every
//! other thread spins until it is re-scheduled — the classic
//! convoying/priority-inversion hazard. Under TLR the lock was never
//! acquired: the victim's speculative updates are discarded, the lock
//! stays free, and the other threads keep committing — a non-blocking
//! execution.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_repro::core::Machine;
use tlr_repro::cpu::{Asm, Reg};
use tlr_repro::mem::Addr;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;
const COUNTER: u64 = 0x200;
const HOLDER: u64 = 0x280;
const PROCS: usize = 4;
/// Register holding the remaining iteration count (progress probe).
const N_REG: Reg = Reg(3);

fn program(me: usize) -> Arc<tlr_repro::cpu::Program> {
    let mut a = Asm::new(format!("worker-{me}"));
    let lock = a.reg();
    let counter = a.reg();
    let holder = a.reg();
    assert_eq!(a.reg(), N_REG); // iteration counter lives in r3
    let v = a.reg();
    let myid = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(counter, COUNTER);
    a.li(holder, HOLDER);
    a.li(N_REG, 1_000_000); // effectively infinite; we sample progress
    a.li(myid, me as u64 + 1);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.store(myid, holder, 0); // advertise who is inside
    a.load(v, counter, 0);
    a.addi(v, v, 1);
    a.delay(20); // dwell inside the critical section
    a.store(v, counter, 0);
    a.store(r.zero, holder, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(20, 120);
    a.addi(N_REG, N_REG, -1);
    a.bne(N_REG, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn run(scheme: Scheme) -> (u64, u64) {
    let cfg = MachineConfig::paper_default(scheme, PROCS);
    let mut m =
        Machine::new(cfg, (0..PROCS).map(program).collect(), HashSet::from([Addr(LOCK)]));
    // Warm up, then catch a thread inside its critical section.
    let victim = loop {
        m.step();
        if scheme.elision_enabled() {
            if let Some(v) = (0..PROCS).find(|&i| m.in_txn(i)) {
                break v;
            }
        } else {
            let h = m.final_word(Addr(HOLDER));
            if h != 0 {
                break h as usize - 1;
            }
        }
    };
    m.deschedule(victim);
    let before = m.final_word(Addr(COUNTER));
    for _ in 0..200_000 {
        m.step();
    }
    let after = m.final_word(Addr(COUNTER));
    m.reschedule(victim);
    (victim as u64, after - before)
}

fn main() {
    println!("De-scheduling a thread inside its critical section (§4):\n");
    for scheme in [Scheme::Base, Scheme::Tlr] {
        let (victim, progress) = run(scheme);
        println!(
            "{:<14} victim P{victim}: other threads completed {progress:>6} critical sections while it slept",
            scheme.label()
        );
    }
    println!("\nBASE convoys behind the held lock; TLR discards the victim's");
    println!("speculative state, leaves the lock free, and the rest of the");
    println!("system keeps making progress (non-blocking execution).");
}
