//! The §6.3 programmability headline: with TLR, one coarse lock over
//! the whole data structure performs like (or better than) carefully
//! engineered fine-grain locks, because serialization happens on
//! actual data conflicts, not on the lock.
//!
//! ```text
//! cargo run --release --example lock_granularity
//! ```

use tlr_repro::core::run::run_workload;
use tlr_repro::sim::config::{MachineConfig, Scheme};
use tlr_repro::workloads::apps::{mp3d, mp3d_coarse};

fn main() {
    let procs = 8;
    let iters = 256;
    let cells = 1024;
    println!("mp3d kernel: {procs} processors, {iters} cell updates each, {cells} cells\n");
    println!("{:<30} {:>12}", "configuration", "cycles");
    let fine = mp3d(procs, iters, cells);
    let coarse = mp3d_coarse(procs, iters, cells);
    let mut results = Vec::new();
    for (label, scheme, w) in [
        ("BASE, per-cell locks", Scheme::Base, &fine),
        ("TLR,  per-cell locks", Scheme::Tlr, &fine),
        ("BASE, one coarse lock", Scheme::Base, &coarse),
        ("TLR,  one coarse lock", Scheme::Tlr, &coarse),
    ] {
        let cfg = MachineConfig::paper_default(scheme, procs);
        let r = run_workload(&cfg, w);
        r.assert_valid();
        println!("{label:<30} {:>12}", r.stats.parallel_cycles);
        results.push((label, r.stats.parallel_cycles));
    }
    let base_fine = results[0].1 as f64;
    let tlr_coarse = results[3].1 as f64;
    println!(
        "\nTLR with ONE lock vs BASE with {cells} locks: {:.2}x speedup",
        base_fine / tlr_coarse
    );
    println!("\"Reasoning about granularity of locks is not required\" (§8): the");
    println!("programmer writes the simple coarse-grain code and the hardware");
    println!("extracts the fine-grain parallelism.");
}
