//! Pure MOESI transition rules.
//!
//! These functions encode, as side-effect-free tables, what a snooping
//! cache does to its own copy when another node's request is ordered
//! on the address bus, and what state a requester installs a fill in.
//! The *policy* decisions layered on top by TLR (defer vs. service)
//! live in `tlr-core`; the rules here are the plain protocol the paper
//! builds on without modification ("We do not require changes to the
//! coherence protocol state transitions", §3).

use tlr_sim::NodeId;

use crate::line::Moesi;
use crate::msg::{BusReqKind, DataGrant};

/// What a snooping cache must do to its copy of a line when another
/// node's request is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopOutcome {
    /// The state the local copy transitions to.
    pub next: Moesi,
    /// Whether this cache is responsible for supplying the data
    /// (it was the protocol owner).
    pub supply: bool,
}

/// Snoop transition for a *remote* request of `kind` against a local
/// copy in `state`.
///
/// # Panics
///
/// Panics on an impossible combination (e.g. snooping a remote
/// `Upgrade` while holding the line in Modified — the protocol cannot
/// produce it because an upgrade requester holds a Shared copy, which
/// excludes remote M/E).
pub fn snoop(state: Moesi, kind: BusReqKind) -> SnoopOutcome {
    use BusReqKind::*;
    use Moesi::*;
    match (state, kind) {
        (Invalid, _) => SnoopOutcome { next: Invalid, supply: false },
        // Writebacks from other nodes never touch our copy: the
        // writer held the only valid cached copy (M) or is the owner
        // of a shared line (O) and the write-back does not invalidate
        // sharers.
        (s, WriteBack) => SnoopOutcome { next: s, supply: false },
        // Remote GetS: owners supply; M degrades to Owned (dirty
        // shared), E degrades to Shared (clean), O and S stay.
        (Modified, GetS) => SnoopOutcome { next: Owned, supply: true },
        (Owned, GetS) => SnoopOutcome { next: Owned, supply: true },
        (Exclusive, GetS) => SnoopOutcome { next: Shared, supply: true },
        (Shared, GetS) => SnoopOutcome { next: Shared, supply: false },
        // Remote GetX: everyone invalidates; owners supply.
        (Modified, GetX) => SnoopOutcome { next: Invalid, supply: true },
        (Owned, GetX) => SnoopOutcome { next: Invalid, supply: true },
        (Exclusive, GetX) => SnoopOutcome { next: Invalid, supply: true },
        (Shared, GetX) => SnoopOutcome { next: Invalid, supply: false },
        // Remote Upgrade: requester already has data; sharers and the
        // owner invalidate without supplying.
        (Shared, Upgrade) => SnoopOutcome { next: Invalid, supply: false },
        (Owned, Upgrade) => SnoopOutcome { next: Invalid, supply: false },
        (Modified | Exclusive, Upgrade) => {
            unreachable!("remote Upgrade while holding M/E: requester would hold S, impossible")
        }
    }
}

/// The state a requester installs a fill in, given the request kind
/// and whether other caches held copies at order time.
pub fn fill_grant(kind: BusReqKind, other_sharers: bool, from_cache: bool) -> DataGrant {
    match kind {
        BusReqKind::GetX | BusReqKind::Upgrade => DataGrant::Modified,
        BusReqKind::GetS => {
            if other_sharers || from_cache {
                // A cache supplied (it retains O or degrades to S), or
                // other Shared copies exist.
                DataGrant::Shared
            } else {
                DataGrant::Exclusive
            }
        }
        BusReqKind::WriteBack => unreachable!("writebacks receive no fill"),
    }
}

/// What the home directory decides when a request reaches its bank's
/// ordering point. This is the directory-protocol analogue of the
/// snooping machine's owner-ledger consultation: the same rules,
/// expressed over the directory's (owner, sharer-vector) entry instead
/// of a broadcast snoop of every cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirOutcome {
    /// The cache designated to supply (the registered owner, when it
    /// is not the requester itself). `None` means memory supplies.
    pub supplier: Option<NodeId>,
    /// Whether any node other than the requester is registered as
    /// holding a copy — decides Shared vs. Exclusive grants exactly as
    /// the snooping machine's cache scan does. The sharer vector is
    /// imprecise (silent clean evictions are never reported), so this
    /// may be a stale positive; that only downgrades a grant from
    /// Exclusive to Shared, never the reverse.
    pub other_sharers: bool,
    /// Whether the entry's owner field moves to the requester at the
    /// ordering point: always for an exclusive request, and for a GetS
    /// granted with no supplier and no other sharers (the Exclusive
    /// grant). Mirrors the snooping ledger rule verbatim.
    pub take_ownership: bool,
}

/// Directory ordering decision for a request of `kind` from
/// `requester`, given the home entry's registered `owner` and whether
/// any *other* node is registered as a sharer (`other_holders`).
///
/// Writebacks never come through here: they retire at the ordering
/// point without a grant (see `Directory::retire_writeback`).
pub fn dir_order(
    kind: BusReqKind,
    requester: NodeId,
    owner: Option<NodeId>,
    other_holders: bool,
) -> DirOutcome {
    debug_assert!(
        matches!(kind, BusReqKind::GetS | BusReqKind::GetX),
        "only data requests consult the directory entry"
    );
    let supplier = owner.filter(|&o| o != requester);
    let other_sharers = other_holders || supplier.is_some();
    DirOutcome {
        supplier,
        other_sharers,
        take_ownership: kind == BusReqKind::GetX || (supplier.is_none() && !other_sharers),
    }
}

/// The state a granted fill installs as.
pub fn grant_state(grant: DataGrant) -> Moesi {
    match grant {
        DataGrant::Shared => Moesi::Shared,
        DataGrant::Exclusive => Moesi::Exclusive,
        DataGrant::Modified => Moesi::Modified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BusReqKind::*;
    use Moesi::*;

    #[test]
    fn gets_snoop_table() {
        assert_eq!(snoop(Modified, GetS), SnoopOutcome { next: Owned, supply: true });
        assert_eq!(snoop(Owned, GetS), SnoopOutcome { next: Owned, supply: true });
        assert_eq!(snoop(Exclusive, GetS), SnoopOutcome { next: Shared, supply: true });
        assert_eq!(snoop(Shared, GetS), SnoopOutcome { next: Shared, supply: false });
        assert_eq!(snoop(Invalid, GetS), SnoopOutcome { next: Invalid, supply: false });
    }

    #[test]
    fn getx_snoop_table() {
        for (s, supplies) in [(Modified, true), (Owned, true), (Exclusive, true), (Shared, false)] {
            let out = snoop(s, GetX);
            assert_eq!(out.next, Invalid);
            assert_eq!(out.supply, supplies, "{s:?}");
        }
    }

    #[test]
    fn upgrade_snoop_table() {
        assert_eq!(snoop(Shared, Upgrade), SnoopOutcome { next: Invalid, supply: false });
        assert_eq!(snoop(Owned, Upgrade), SnoopOutcome { next: Invalid, supply: false });
        assert_eq!(snoop(Invalid, Upgrade), SnoopOutcome { next: Invalid, supply: false });
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn upgrade_against_modified_is_impossible() {
        snoop(Modified, Upgrade);
    }

    #[test]
    fn writeback_leaves_others_untouched() {
        for s in [Invalid, Shared, Exclusive, Owned, Modified] {
            assert_eq!(snoop(s, WriteBack).next, s);
            assert!(!snoop(s, WriteBack).supply);
        }
    }

    #[test]
    fn fill_grants() {
        assert_eq!(fill_grant(GetX, true, true), DataGrant::Modified);
        assert_eq!(fill_grant(Upgrade, false, false), DataGrant::Modified);
        assert_eq!(fill_grant(GetS, true, false), DataGrant::Shared);
        assert_eq!(fill_grant(GetS, false, true), DataGrant::Shared);
        assert_eq!(fill_grant(GetS, false, false), DataGrant::Exclusive);
    }

    #[test]
    fn grant_states() {
        assert_eq!(grant_state(DataGrant::Shared), Shared);
        assert_eq!(grant_state(DataGrant::Exclusive), Exclusive);
        assert_eq!(grant_state(DataGrant::Modified), Modified);
    }

    #[test]
    fn dir_order_mirrors_the_snooping_ledger() {
        // No owner, no sharers: GetS takes ownership (Exclusive grant).
        let d = dir_order(GetS, 1, None, false);
        assert_eq!(d, DirOutcome { supplier: None, other_sharers: false, take_ownership: true });
        // A remote owner supplies and keeps ownership on GetS...
        let d = dir_order(GetS, 1, Some(0), true);
        assert_eq!(d.supplier, Some(0));
        assert!(d.other_sharers && !d.take_ownership);
        // ...but loses it on GetX.
        let d = dir_order(GetX, 1, Some(0), true);
        assert_eq!(d.supplier, Some(0));
        assert!(d.other_sharers && d.take_ownership);
        // The requester re-reading its own line is not its own supplier.
        let d = dir_order(GetS, 0, Some(0), false);
        assert_eq!(d.supplier, None);
        assert!(!d.other_sharers, "self-ownership is not an other-sharer");
        // Sharers without an owner force a Shared grant, no ownership.
        let d = dir_order(GetS, 1, None, true);
        assert_eq!(d, DirOutcome { supplier: None, other_sharers: true, take_ownership: false });
        // GetX always takes ownership, even from a cold entry.
        assert!(dir_order(GetX, 2, None, false).take_ownership);
    }

    #[test]
    fn snoop_never_invents_permissions() {
        // Property: a snoop outcome never grants more rights than the
        // original state had.
        fn rank(s: Moesi) -> u8 {
            match s {
                Invalid => 0,
                Shared => 1,
                Owned => 2,
                Exclusive => 3,
                Modified => 4,
            }
        }
        for s in [Invalid, Shared, Owned] {
            for k in [GetS, GetX, Upgrade, WriteBack] {
                assert!(rank(snoop(s, k).next) <= rank(s));
            }
        }
        for s in [Exclusive, Modified] {
            for k in [GetS, GetX, WriteBack] {
                assert!(rank(snoop(s, k).next) <= rank(s));
            }
        }
    }
}
