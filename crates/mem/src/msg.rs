//! Coherence messages.
//!
//! The address network carries [`BusRequest`]s (broadcast, ordered);
//! the data network carries [`NetMsg`]s point-to-point: data
//! responses, and the TLR-specific *marker* and *probe* messages of
//! §3.1.1 ("Marker messages are directed messages sent in response to
//! a request for a block under conflict for which data is not provided
//! immediately"; probes "propagate a conflict request upstream in a
//! cache coherence protocol chain").

use tlr_sim::{Cycle, NodeId};

use crate::addr::LineAddr;
use crate::line::LineData;
use crate::timestamp::Timestamp;

/// The kind of an address-bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusReqKind {
    /// Read a shared copy.
    GetS,
    /// Read an exclusive copy (the paper's `rd_X`).
    GetX,
    /// Upgrade an existing Shared copy to Modified without a data
    /// transfer.
    Upgrade,
    /// Write a dirty evicted line back to the shared L2/memory.
    WriteBack,
}

impl BusReqKind {
    /// Whether the request demands exclusive ownership.
    pub fn is_exclusive(self) -> bool {
        matches!(self, BusReqKind::GetX | BusReqKind::Upgrade)
    }
}

/// One address-bus transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusRequest {
    /// The requesting node.
    pub requester: NodeId,
    /// The line concerned.
    pub line: LineAddr,
    /// Transaction kind.
    pub kind: BusReqKind,
    /// The requester's transaction timestamp, if the request was
    /// generated within a transaction ("Misses generated within a
    /// transaction carry a timestamp", §3).
    pub ts: Option<Timestamp>,
    /// Contention-manager credit riding along with the timestamp
    /// (meaningful only under the karma conflict policy; 0 otherwise).
    pub karma: u32,
    /// Writeback payload (present only for [`BusReqKind::WriteBack`]).
    pub wb_data: Option<LineData>,
    /// Cycle the request entered bus arbitration (for queueing
    /// statistics).
    pub enqueued_at: Cycle,
}

impl BusRequest {
    /// The home directory bank responsible for ordering this request:
    /// lines are interleaved across banks by low-order line address,
    /// so hot lines on different addresses land on different ordering
    /// points.
    pub fn home_bank(&self, banks: usize) -> usize {
        (self.line.0 % banks as u64) as usize
    }
}

/// The coherence state granted to a requester when its data arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataGrant {
    /// Install in Shared.
    Shared,
    /// Install in Exclusive (clean, no other sharers).
    Exclusive,
    /// Install in Modified (response to GetX/Upgrade).
    Modified,
}

/// A point-to-point message on the data network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// A data response completing an outstanding miss.
    Data {
        /// Destination node.
        to: NodeId,
        /// The filled line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// State to install the line in.
        grant: DataGrant,
        /// Whether a cache (rather than L2/memory) supplied the data.
        from_cache: bool,
    },
    /// Marker (§3.1.1): tells `to` that `from` holds the block (or is
    /// ordered before it) and is not supplying data immediately, so
    /// `to` knows its upstream neighbour in the chain.
    Marker {
        /// Destination (the downstream requester).
        to: NodeId,
        /// Sender (the upstream holder).
        from: NodeId,
        /// The block concerned.
        line: LineAddr,
    },
    /// Negative acknowledgement (the NACK-based retention policy of
    /// §3): the owner refuses to supply; the requester must retry its
    /// bus request.
    Nack {
        /// Destination (the refused requester).
        to: NodeId,
        /// The block concerned.
        line: LineAddr,
    },
    /// Probe (§3.1.1): propagates a conflicting request's timestamp
    /// upstream toward the cache that actually holds the data, so that
    /// a lower-priority holder releases ownership and breaks the
    /// cyclic wait.
    Probe {
        /// Destination (the upstream neighbour).
        to: NodeId,
        /// The block concerned.
        line: LineAddr,
        /// Timestamp of the conflicting (downstream) request.
        ts: Timestamp,
        /// Contention-manager credit of the conflicting request
        /// (karma policy only; 0 otherwise).
        karma: u32,
    },
}

impl NetMsg {
    /// The destination node of the message.
    pub fn destination(&self) -> NodeId {
        match *self {
            NetMsg::Data { to, .. }
            | NetMsg::Marker { to, .. }
            | NetMsg::Probe { to, .. }
            | NetMsg::Nack { to, .. } => to,
        }
    }

    /// Short lowercase label, used by debug logs when chaos runs need
    /// to attribute a reordered delivery to a message kind.
    pub fn label(&self) -> &'static str {
        match self {
            NetMsg::Data { .. } => "data",
            NetMsg::Marker { .. } => "marker",
            NetMsg::Nack { .. } => "nack",
            NetMsg::Probe { .. } => "probe",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusivity() {
        assert!(!BusReqKind::GetS.is_exclusive());
        assert!(BusReqKind::GetX.is_exclusive());
        assert!(BusReqKind::Upgrade.is_exclusive());
        assert!(!BusReqKind::WriteBack.is_exclusive());
    }

    #[test]
    fn destinations() {
        let d = NetMsg::Data {
            to: 3,
            line: LineAddr(1),
            data: LineData::zeroed(),
            grant: DataGrant::Modified,
            from_cache: true,
        };
        assert_eq!(d.destination(), 3);
        let m = NetMsg::Marker { to: 1, from: 0, line: LineAddr(9) };
        assert_eq!(m.destination(), 1);
        let p = NetMsg::Probe { to: 2, line: LineAddr(9), ts: Timestamp::new(0, 0), karma: 0 };
        assert_eq!(p.destination(), 2);
        assert_eq!(d.label(), "data");
        assert_eq!(m.label(), "marker");
        assert_eq!(p.label(), "probe");
        assert_eq!(NetMsg::Nack { to: 0, line: LineAddr(9) }.label(), "nack");
    }
}
