//! Victim cache (§3.3).
//!
//! "Victim caches are small, fast, fully associative structures that
//! buffer cache lines evicted from the main cache due to conflict and
//! capacity misses. The victim cache can be extended with a
//! speculative access bit per entry to achieve the same functionality
//! as a regular cache." — the paper uses a 16-entry victim cache in
//! its stability discussion (§4).

use crate::addr::LineAddr;
use crate::line::CacheLine;

/// A small fully-associative victim cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct VictimCache {
    entries: Vec<CacheLine>,
    capacity: usize,
}

impl VictimCache {
    /// Creates a victim cache holding up to `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        VictimCache { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Inserts an evicted L1 line. If full, the least recently used
    /// entry is evicted and returned (the caller writes it back if
    /// dirty — or, if it is transactional, the transaction has run out
    /// of buffering and must fall back to the lock).
    pub fn insert(&mut self, entry: CacheLine) -> Option<CacheLine> {
        debug_assert!(
            !self.entries.iter().any(|l| l.line == entry.line),
            "duplicate line in victim cache"
        );
        let mut evicted = None;
        if self.entries.len() == self.capacity {
            // Prefer evicting non-transactional entries.
            let pos =
                self.entries.iter().rposition(|l| !l.spec_accessed()).unwrap_or(self.entries.len() - 1);
            evicted = Some(self.entries.remove(pos));
        }
        self.entries.insert(0, entry);
        evicted
    }

    /// Removes and returns the entry for `line` (a victim-cache hit:
    /// the line is swapped back into the L1 by the caller).
    pub fn take(&mut self, line: LineAddr) -> Option<CacheLine> {
        let pos = self.entries.iter().position(|l| l.line == line)?;
        Some(self.entries.remove(pos))
    }

    /// Looks at the entry for `line` without removing it.
    pub fn peek(&self, line: LineAddr) -> Option<&CacheLine> {
        self.entries.iter().find(|l| l.line == line)
    }

    /// Mutable access without changing LRU order.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut CacheLine> {
        self.entries.iter_mut().find(|l| l.line == line)
    }

    /// Iterates over resident entries.
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine> {
        self.entries.iter()
    }

    /// Iterates mutably over resident entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> {
        self.entries.iter_mut()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the victim cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the victim cache is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Configured capacity in lines. Under a chaos capacity squeeze
    /// ([`tlr_sim::fault::FaultConfig::effective_victim_entries`])
    /// this is smaller than the nominal `MachineConfig` value.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all transactional access bits.
    pub fn clear_spec_bits(&mut self) {
        for e in &mut self.entries {
            e.clear_spec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{LineData, Moesi};

    fn mk(line: u64) -> CacheLine {
        CacheLine::new(LineAddr(line), Moesi::Modified, LineData::zeroed())
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut v = VictimCache::new(2);
        v.insert(mk(1));
        assert_eq!(v.len(), 1);
        assert!(v.peek(LineAddr(1)).is_some());
        let got = v.take(LineAddr(1)).unwrap();
        assert_eq!(got.line, LineAddr(1));
        assert!(v.is_empty());
    }

    #[test]
    fn overflow_evicts_lru_non_transactional_first() {
        let mut v = VictimCache::new(2);
        let mut spec = mk(1);
        spec.spec_written = true;
        v.insert(spec);
        v.insert(mk(2));
        // Full; LRU is line 1 but it is transactional, so line 2 goes.
        let e = v.insert(mk(3)).unwrap();
        assert_eq!(e.line, LineAddr(2));
        assert!(v.peek(LineAddr(1)).is_some());
    }

    #[test]
    fn overflow_of_all_transactional_returns_transactional_line() {
        let mut v = VictimCache::new(1);
        let mut spec = mk(1);
        spec.spec_read = true;
        v.insert(spec);
        let e = v.insert(mk(2)).unwrap();
        assert!(e.spec_accessed(), "caller detects transactional overflow -> fallback");
    }

    #[test]
    fn fullness_tracking() {
        let mut v = VictimCache::new(2);
        assert_eq!(v.capacity(), 2);
        assert!(!v.is_full());
        v.insert(mk(1));
        v.insert(mk(2));
        assert!(v.is_full());
    }

    #[test]
    fn chaos_squeeze_keeps_a_usable_cache() {
        use tlr_sim::fault::FaultConfig;
        let f = FaultConfig::intensity(1, FaultConfig::MAX_INTENSITY);
        for node in 0..8 {
            let mut v = VictimCache::new(f.effective_victim_entries(node, 4));
            assert!((1..=4).contains(&v.capacity()));
            // Even a fully squeezed cache still admits a line.
            assert!(v.insert(mk(1)).is_none());
        }
    }
}
