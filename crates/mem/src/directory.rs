//! Home-node directory coherence: the scalable alternative to the
//! broadcast snooping bus.
//!
//! The snooping machine has a single ordering point (bus arbitration)
//! and discovers conflicts by broadcasting every request to every
//! cache. That tops out around 16 processors (§5.3 evaluates exactly
//! there). A directory machine instead interleaves lines across home
//! banks; each bank holds a per-line entry — the registered owner plus
//! a sharer bit-vector — and *orders* the requests for its lines
//! independently of every other bank. Requests travel point-to-point
//! to the home (reusing the [`crate::network`] delivery calendar), are
//! ordered one per bank per occupancy window, and coherence actions
//! (interventions, invalidations, TLR's marker/probe deferral traffic
//! of §3.1.1) are *directed* at the registered owner and sharers
//! instead of broadcast — which is what lets TLR's timestamp-ordered
//! conflict resolution run at 32–256 processors.
//!
//! The transition rules are deliberately the snooping machine's
//! owner-ledger rules re-expressed over explicit entries (see
//! [`crate::protocol::dir_order`]): the paper's claim is that TLR
//! needs *no new protocol states*, only the ability to carry a
//! timestamp and direct a probe — so the directory adds bookkeeping,
//! never new coherence semantics. The sharer vector is imprecise in
//! the standard way: silent clean evictions are never reported, so a
//! stale sharer bit can downgrade a grant from Exclusive to Shared or
//! direct a spurious (no-op) invalidation, but never lets two owners
//! coexist.

use std::collections::HashMap;
use std::collections::VecDeque;

use tlr_sim::events::Schedulable;
use tlr_sim::fault::NetFault;
use tlr_sim::{Cycle, NodeId};

use crate::addr::LineAddr;
use crate::msg::BusRequest;
use crate::network::Network;
use crate::protocol::{self, DirOutcome};

/// A fixed-capacity bit-set of node ids — the directory's sharer
/// vector. Sized once for the machine's processor count; insert,
/// remove and membership are O(1), iteration is O(words).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// An empty set able to hold ids `0..nodes`.
    pub fn new(nodes: usize) -> Self {
        NodeSet { words: vec![0; nodes.div_ceil(64)] }
    }

    /// Adds `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = (id / 64, id % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, b) = (id / 64, id % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.words.get(id / 64).is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether any member other than `id` is present.
    pub fn any_other(&self, id: NodeId) -> bool {
        self.words.iter().enumerate().any(|(w, &word)| {
            let masked = if w == id / 64 { word & !(1 << (id % 64)) } else { word };
            masked != 0
        })
    }

    /// Members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter(move |b| word & (1 << b) != 0).map(move |b| w * 64 + b)
        })
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// One line's directory entry: the registered owner (the cache
/// designated to supply and the target of probes) and the sharer
/// vector (every node registered as holding a valid copy — the owner
/// included, which is the invariant the property tests pin).
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// Registered owner, mirroring the snooping machine's ledger.
    pub owner: Option<NodeId>,
    /// Registered holders of valid copies (imprecise: never shrinks on
    /// silent clean evictions).
    pub sharers: NodeSet,
}

/// What the directory decides for a request at its ordering point,
/// before the decision is committed: who supplies, whether the grant
/// must be Shared, and exactly which caches must observe the request
/// (the directed replacement for a broadcast snoop).
#[derive(Debug, Clone)]
pub struct OrderDecision {
    /// The cache designated to supply, if any (else memory).
    pub supplier: Option<NodeId>,
    /// Whether nodes other than the requester hold registered copies.
    pub other_sharers: bool,
    /// The caches that must process this ordered request: the
    /// requester, the supplier, and — for exclusive requests — every
    /// registered sharer (they hold copies to invalidate, or in-flight
    /// shared fills to mark).
    pub targets: NodeSet,
}

/// One home bank: a FIFO of arrived-but-unordered requests plus its
/// occupancy window. Banks order independently — that multiplicity of
/// ordering points is the entire scalability argument.
#[derive(Debug, Clone)]
struct Bank {
    queue: VecDeque<BusRequest>,
    busy_until: Cycle,
}

/// The banked home directory. Requests are [`Directory::send`]-ed into
/// a point-to-point request network (fixed flight latency, same-cycle
/// sends delivered in send order), land in their home bank's FIFO, and
/// are ordered at most one per bank per occupancy window by
/// [`Directory::tick_into`]. The ordering decision is split into a
/// pure [`Directory::peek_order`] and a mutating
/// [`Directory::commit_order`] so the machine can annul a NACKed
/// request *before* any state transfers — exactly as the snooping
/// ordering point returns before its ledger update.
#[derive(Debug, Clone)]
pub struct Directory {
    nodes: usize,
    entries: HashMap<LineAddr, DirEntry>,
    inbound: Network<BusRequest>,
    banks: Vec<Bank>,
    occupancy: u64,
    req_latency: u64,
    /// Requests sitting in bank FIFOs (arrived, not yet ordered).
    queued: usize,
    /// Total requests ordered across all banks.
    ordered: u64,
}

impl Directory {
    /// A directory for `nodes` processors with `banks` home banks
    /// (clamped to at least one), per-bank ordering `occupancy`, and a
    /// `req_latency`-cycle request flight to the home.
    pub fn new(nodes: usize, banks: usize, occupancy: u64, req_latency: u64) -> Self {
        Directory {
            nodes,
            entries: HashMap::new(),
            inbound: Network::new(),
            banks: (0..banks.max(1)).map(|_| Bank { queue: VecDeque::new(), busy_until: 0 }).collect(),
            occupancy,
            req_latency,
            queued: 0,
            ordered: 0,
        }
    }

    /// Installs a delivery-jitter fault hook on the request network
    /// (chaos runs only): individual request flights are delayed by a
    /// bounded, seed-derived amount, which can reorder the home bank's
    /// arrival order — the directory analogue of perturbed bus
    /// arbitration. Nothing is ever dropped.
    pub fn set_fault(&mut self, fault: Option<NetFault>) {
        self.inbound.set_fault(fault);
    }

    /// Number of request flights the fault hook has delayed.
    pub fn fault_injections(&self) -> u64 {
        self.inbound.fault_injections()
    }

    /// Sends `req` toward its home bank; it arrives `req_latency`
    /// cycles later (plus any fault-injected jitter).
    pub fn send(&mut self, now: Cycle, req: BusRequest) {
        self.inbound.send(now + self.req_latency, req);
    }

    /// Delivers every request flight due at or before `now` into its
    /// home bank FIFO, then orders at most one request per free bank
    /// (bank-index order, which keeps both engines byte-identical),
    /// appending the ordered requests to `out`.
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<BusRequest>) {
        let nbanks = self.banks.len();
        while let Some(req) = self.inbound.pop_ready(now) {
            self.banks[req.home_bank(nbanks)].queue.push_back(req);
            self.queued += 1;
        }
        for bank in &mut self.banks {
            if bank.busy_until <= now {
                if let Some(req) = bank.queue.pop_front() {
                    bank.busy_until = now + self.occupancy;
                    self.queued -= 1;
                    self.ordered += 1;
                    out.push(req);
                }
            }
        }
    }

    /// The ordering decision for `req` against the current entry,
    /// without committing it. `req` must be a GetS or GetX (upgrades
    /// are modeled as GetX; writebacks retire via
    /// [`Directory::retire_writeback`]).
    pub fn peek_order(&self, req: &BusRequest) -> OrderDecision {
        let entry = self.entries.get(&req.line);
        let owner = entry.and_then(|e| e.owner);
        let other_holders = entry.is_some_and(|e| e.sharers.any_other(req.requester));
        let DirOutcome { supplier, other_sharers, .. } =
            protocol::dir_order(req.kind, req.requester, owner, other_holders);
        let mut targets = NodeSet::new(self.nodes);
        targets.insert(req.requester);
        if let Some(s) = supplier {
            targets.insert(s);
        }
        if req.kind.is_exclusive() {
            if let Some(e) = entry {
                for s in e.sharers.iter() {
                    targets.insert(s);
                }
            }
        }
        OrderDecision { supplier, other_sharers, targets }
    }

    /// Commits `req`'s ordering decision to the entry: registers the
    /// requester as a sharer, moves ownership per
    /// [`protocol::dir_order`], and — for exclusive requests — clears
    /// every other sharer bit (their copies are being invalidated).
    /// Not called for NACK-annulled requests: their entry is untouched.
    pub fn commit_order(&mut self, req: &BusRequest) {
        let nodes = self.nodes;
        let entry = self
            .entries
            .entry(req.line)
            .or_insert_with(|| DirEntry { owner: None, sharers: NodeSet::new(nodes) });
        let decision =
            protocol::dir_order(req.kind, req.requester, entry.owner, entry.sharers.any_other(req.requester));
        if req.kind.is_exclusive() {
            entry.sharers.clear();
        }
        entry.sharers.insert(req.requester);
        if decision.take_ownership {
            entry.owner = Some(req.requester);
        }
    }

    /// Retires a non-cancelled writeback ordered at the home: the
    /// writer no longer holds the line, so its ownership (if still
    /// registered) and sharer bit are dropped. A cancelled writeback —
    /// the writer re-acquired the line before the writeback ordered —
    /// never reaches here, matching the snooping retirement rule.
    pub fn retire_writeback(&mut self, line: LineAddr, node: NodeId) {
        if let Some(entry) = self.entries.get_mut(&line) {
            if entry.owner == Some(node) {
                entry.owner = None;
            }
            entry.sharers.remove(node);
        }
    }

    /// The registered owner of `line`, if any.
    pub fn owner(&self, line: LineAddr) -> Option<NodeId> {
        self.entries.get(&line).and_then(|e| e.owner)
    }

    /// The registered sharers of `line` (empty for untracked lines).
    pub fn sharers(&self, line: LineAddr) -> NodeSet {
        self.entries
            .get(&line)
            .map_or_else(|| NodeSet::new(self.nodes), |e| e.sharers.clone())
    }

    /// Requests in flight or queued at a bank, awaiting ordering.
    /// Drain-timing-invariant (in-flight and bank-queued are summed),
    /// so both engines report the same depth at the same cycle.
    pub fn pending(&self) -> usize {
        self.inbound.len() + self.queued
    }

    /// Whether no requests are in flight or queued — the directory's
    /// contribution to machine quiescence.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total requests ordered across all banks. Each ordered request
    /// occupies its bank for `occupancy` cycles, so per-bank occupancy
    /// is `ordered * occupancy / (banks * elapsed)` — the directory's
    /// saturation metric, the analogue of bus utilization.
    pub fn ordered_count(&self) -> u64 {
        self.ordered
    }

    /// Number of home banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// The configured per-bank ordering occupancy in cycles.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// The configured request-network flight latency in cycles.
    pub fn req_latency(&self) -> u64 {
        self.req_latency
    }

    /// Total request flights ever sent toward the home banks.
    pub fn sent_count(&self) -> u64 {
        self.inbound.sent_count()
    }

    /// The next cycle at which [`Directory::tick_into`] can make
    /// progress: the earliest in-flight arrival, or the earliest
    /// busy-window expiry of a bank with queued work. `None` when
    /// nothing is pending (then a tick is a guaranteed no-op).
    pub fn next_order_cycle(&self, now: Cycle) -> Option<Cycle> {
        let mut wake: Option<Cycle> = None;
        let mut consider = |c: Cycle| wake = Some(wake.map_or(c, |w: Cycle| w.min(c)));
        if let Some(c) = self.inbound.next_ready() {
            consider(c.max(now + 1));
        }
        for bank in &self.banks {
            if !bank.queue.is_empty() {
                consider(bank.busy_until.max(now + 1));
            }
        }
        wake
    }
}

impl Schedulable for Directory {
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        self.next_order_cycle(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::BusReqKind;

    fn req(node: NodeId, line: u64, kind: BusReqKind) -> BusRequest {
        BusRequest { requester: node, line: LineAddr(line), kind, ts: None, karma: 0, wb_data: None, enqueued_at: 0 }
    }

    fn ordered_at(dir: &mut Directory, now: Cycle) -> Vec<BusRequest> {
        let mut out = Vec::new();
        dir.tick_into(now, &mut out);
        out
    }

    #[test]
    fn node_set_basics() {
        let mut s = NodeSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(199));
        assert!(!s.insert(199), "re-insert reports not fresh");
        assert!(s.contains(0) && s.contains(199) && !s.contains(100));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 199]);
        assert!(s.any_other(0) && s.any_other(5));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.any_other(199), "only 199 left");
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn requests_fly_then_order_one_per_bank_window() {
        let mut dir = Directory::new(4, 2, 4, 10);
        dir.send(0, req(0, 0, BusReqKind::GetS)); // bank 0
        dir.send(0, req(1, 1, BusReqKind::GetS)); // bank 1
        dir.send(0, req(2, 2, BusReqKind::GetS)); // bank 0, behind node 0
        assert!(ordered_at(&mut dir, 9).is_empty(), "still in flight");
        assert_eq!(dir.pending(), 3);
        // At arrival, both banks order in parallel — two per tick.
        let first = ordered_at(&mut dir, 10);
        assert_eq!(first.len(), 2);
        assert_eq!((first[0].requester, first[1].requester), (0, 1));
        assert!(ordered_at(&mut dir, 13).is_empty(), "banks busy until 14");
        let second = ordered_at(&mut dir, 14);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].requester, 2);
        assert_eq!(dir.ordered_count(), 3);
        assert!(dir.is_empty());
    }

    #[test]
    fn entry_transitions_mirror_the_snooping_ledger() {
        let mut dir = Directory::new(4, 1, 1, 0);
        // Cold GetS: exclusive grant, requester becomes owner.
        let g = req(0, 7, BusReqKind::GetS);
        let d = dir.peek_order(&g);
        assert_eq!((d.supplier, d.other_sharers), (None, false));
        dir.commit_order(&g);
        assert_eq!(dir.owner(LineAddr(7)), Some(0));
        assert!(dir.sharers(LineAddr(7)).contains(0));
        // Second reader: owner supplies and keeps ownership.
        let g1 = req(1, 7, BusReqKind::GetS);
        let d = dir.peek_order(&g1);
        assert_eq!((d.supplier, d.other_sharers), (Some(0), true));
        assert!(d.targets.contains(0) && d.targets.contains(1));
        assert!(!d.targets.contains(2), "GetS is directed, not broadcast");
        dir.commit_order(&g1);
        assert_eq!(dir.owner(LineAddr(7)), Some(0));
        assert_eq!(dir.sharers(LineAddr(7)).len(), 2);
        // Writer: every registered sharer is targeted, ownership moves,
        // the sharer vector collapses to the writer.
        let x = req(2, 7, BusReqKind::GetX);
        let d = dir.peek_order(&x);
        assert_eq!(d.supplier, Some(0));
        for n in [0, 1, 2] {
            assert!(d.targets.contains(n), "node {n} targeted");
        }
        dir.commit_order(&x);
        assert_eq!(dir.owner(LineAddr(7)), Some(2));
        assert_eq!(dir.sharers(LineAddr(7)).iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn writeback_retirement_clears_the_writer() {
        let mut dir = Directory::new(4, 1, 1, 0);
        dir.commit_order(&req(3, 9, BusReqKind::GetX));
        dir.retire_writeback(LineAddr(9), 3);
        assert_eq!(dir.owner(LineAddr(9)), None);
        assert!(dir.sharers(LineAddr(9)).is_empty());
        // Retiring someone else's writeback never steals ownership.
        dir.commit_order(&req(1, 9, BusReqKind::GetX));
        dir.retire_writeback(LineAddr(9), 3);
        assert_eq!(dir.owner(LineAddr(9)), Some(1));
    }

    #[test]
    fn owner_is_always_a_sharer() {
        // The invariant the property wall leans on: any registered
        // owner appears in its own sharer vector.
        let mut dir = Directory::new(8, 2, 2, 5);
        let kinds = [BusReqKind::GetS, BusReqKind::GetX];
        for i in 0..40u64 {
            let r = req((i % 8) as usize, i % 5, kinds[(i % 2) as usize]);
            dir.commit_order(&r);
            for line in 0..5 {
                if let Some(o) = dir.owner(LineAddr(line)) {
                    assert!(dir.sharers(LineAddr(line)).contains(o));
                }
            }
        }
    }

    #[test]
    fn nack_annulment_leaves_the_entry_untouched() {
        let mut dir = Directory::new(4, 1, 1, 0);
        dir.commit_order(&req(0, 3, BusReqKind::GetX));
        // Peek for a conflicting request, then *don't* commit (NACK).
        let d = dir.peek_order(&req(1, 3, BusReqKind::GetX));
        assert_eq!(d.supplier, Some(0));
        assert_eq!(dir.owner(LineAddr(3)), Some(0), "annulled request transfers nothing");
        assert_eq!(dir.sharers(LineAddr(3)).iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn next_order_cycle_tracks_flights_and_busy_banks() {
        let mut dir = Directory::new(4, 1, 4, 10);
        assert_eq!(dir.next_order_cycle(0), None, "idle directory never wakes");
        dir.send(0, req(0, 0, BusReqKind::GetS));
        dir.send(0, req(1, 0, BusReqKind::GetS));
        assert_eq!(dir.next_order_cycle(0), Some(10), "wake at arrival");
        assert_eq!(ordered_at(&mut dir, 10).len(), 1);
        // Second request queued behind the busy bank.
        assert_eq!(dir.next_order_cycle(10), Some(14), "wake at window expiry");
        assert_eq!(dir.next_wake(13), Some(14));
        assert_eq!(ordered_at(&mut dir, 14).len(), 1);
        assert_eq!(dir.next_order_cycle(14), None);
    }

    #[test]
    fn fault_hook_jitters_arrivals_but_drops_nothing() {
        use tlr_sim::fault::FaultConfig;
        let mut fair = Directory::new(4, 1, 1, 5);
        let mut chaos = Directory::new(4, 1, 1, 5);
        chaos.set_fault(FaultConfig::intensity(0x5eed, 4).net_fault());
        for i in 0..200u64 {
            fair.send(i, req((i % 4) as usize, i, BusReqKind::GetS));
            chaos.send(i, req((i % 4) as usize, i, BusReqKind::GetS));
        }
        let (mut fair_order, mut chaos_order) = (Vec::new(), Vec::new());
        for now in 0..600 {
            fair.tick_into(now, &mut fair_order);
            chaos.tick_into(now, &mut chaos_order);
        }
        assert_eq!(fair_order.len(), 200);
        assert_eq!(chaos_order.len(), 200, "jitter must not lose requests");
        assert!(chaos.fault_injections() > 0);
        let f: Vec<u64> = fair_order.iter().map(|r| r.line.0).collect();
        let c: Vec<u64> = chaos_order.iter().map(|r| r.line.0).collect();
        assert_ne!(f, c, "arrival order must actually change");
        assert_eq!(fair.fault_injections(), 0);
    }
}
