//! Non-speculative store buffer.
//!
//! The paper's processors implement an aggressive Total Store Ordering
//! memory model with a 64-entry write buffer (Table 2). Outside of
//! transactions, retired stores enter this FIFO and drain to the cache
//! as ownership is obtained; younger loads forward from it (TSO allows
//! a load to bypass older stores as long as it sees its own
//! processor's stores).

use std::collections::VecDeque;

use crate::addr::Addr;

/// A FIFO store buffer with store-to-load forwarding.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<(Addr, u64)>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a buffer with the given entry capacity.
    pub fn new(capacity: usize) -> Self {
        StoreBuffer { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Enqueues a retired store.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; callers must check
    /// [`StoreBuffer::is_full`] first (the core stalls instead).
    pub fn push(&mut self, addr: Addr, val: u64) {
        assert!(!self.is_full(), "store buffer overflow");
        self.entries.push_back((addr, val));
    }

    /// The oldest store, next to drain to the cache.
    pub fn head(&self) -> Option<(Addr, u64)> {
        self.entries.front().copied()
    }

    /// Removes the oldest store after it has been written to the
    /// cache.
    pub fn pop(&mut self) -> Option<(Addr, u64)> {
        self.entries.pop_front()
    }

    /// Store-to-load forwarding: the youngest buffered value for
    /// `addr`, if any.
    pub fn forward(&self, addr: Addr) -> Option<u64> {
        self.entries.iter().rev().find(|(a, _)| *a == addr).map(|&(_, v)| v)
    }

    /// Whether any buffered store targets the given address's line.
    pub fn has_store_to_line(&self, line: crate::addr::LineAddr) -> bool {
        self.entries.iter().any(|(a, _)| a.line() == line)
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty (memory fences and SC wait for
    /// this).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is at capacity (the core must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        sb.push(Addr(0), 1);
        sb.push(Addr(8), 2);
        assert_eq!(sb.head(), Some((Addr(0), 1)));
        assert_eq!(sb.pop(), Some((Addr(0), 1)));
        assert_eq!(sb.pop(), Some((Addr(8), 2)));
        assert_eq!(sb.pop(), None);
    }

    #[test]
    fn forwarding_returns_youngest() {
        let mut sb = StoreBuffer::new(4);
        sb.push(Addr(8), 1);
        sb.push(Addr(16), 2);
        sb.push(Addr(8), 3);
        assert_eq!(sb.forward(Addr(8)), Some(3));
        assert_eq!(sb.forward(Addr(16)), Some(2));
        assert_eq!(sb.forward(Addr(24)), None);
    }

    #[test]
    fn line_membership() {
        let mut sb = StoreBuffer::new(4);
        sb.push(Addr(8), 1);
        assert!(sb.has_store_to_line(Addr(56).line()));
        assert!(!sb.has_store_to_line(Addr(64).line()));
    }

    #[test]
    fn capacity() {
        let mut sb = StoreBuffer::new(2);
        sb.push(Addr(0), 0);
        assert!(!sb.is_full());
        sb.push(Addr(8), 0);
        assert!(sb.is_full());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_when_full_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(Addr(0), 0);
        sb.push(Addr(8), 0);
    }
}
