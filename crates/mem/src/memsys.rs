//! Shared L2 cache and backing memory (Table 2: 4 MB L2 at 12 cycles,
//! memory at 70 cycles).
//!
//! The L2 is shared by all processors and sits behind the address
//! bus: when no L1 can supply a requested line, the L2 (on a hit) or
//! memory supplies it. Dirty L1 evictions write back into the L2;
//! dirty L2 evictions spill to backing memory. Backing memory is a
//! sparse map so arbitrarily laid-out workload images are cheap.

use std::collections::HashMap;

use tlr_sim::events::Schedulable;
use tlr_sim::Cycle;

use crate::addr::{Addr, LineAddr};
use crate::cache::Cache;
use crate::line::{CacheLine, LineData, Moesi};

/// The shared L2 plus backing memory.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l2: Cache,
    backing: HashMap<LineAddr, LineData>,
    l2_latency: u64,
    mem_latency: u64,
}

/// The outcome of a memory-side access: when the data is ready and
/// whether the L2 supplied it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessResult {
    /// Additional latency beyond the request reaching the memory
    /// system.
    pub latency: u64,
    /// Whether the L2 hit (12 cycles) rather than memory (70 cycles).
    pub l2_hit: bool,
}

impl MemorySystem {
    /// Creates a memory system with an L2 of `l2_sets` x `l2_ways`
    /// lines and the given access latencies.
    pub fn new(l2_sets: usize, l2_ways: usize, l2_latency: u64, mem_latency: u64) -> Self {
        MemorySystem { l2: Cache::new(l2_sets, l2_ways), backing: HashMap::new(), l2_latency, mem_latency }
    }

    /// Writes one word of the initial memory image (used by workloads
    /// before simulation starts; bypasses timing).
    pub fn init_word(&mut self, addr: Addr, val: u64) {
        let line = addr.line();
        if let Some(l) = self.l2.get_mut(line) {
            l.data.set_word(addr, val);
            return;
        }
        self.backing.entry(line).or_default().set_word(addr, val);
    }

    /// Reads a line for a requester, filling the L2 on a miss.
    /// Returns the data and the supply latency.
    pub fn supply(&mut self, line: LineAddr) -> (LineData, MemAccessResult) {
        if let Some(l) = self.l2.get_mut(line) {
            return (l.data, MemAccessResult { latency: self.l2_latency, l2_hit: true });
        }
        let data = self.backing.get(&line).copied().unwrap_or_default();
        self.fill_l2(line, data, false);
        (data, MemAccessResult { latency: self.mem_latency, l2_hit: false })
    }

    /// Accepts a writeback of a dirty line from an L1.
    pub fn writeback(&mut self, line: LineAddr, data: LineData) {
        if let Some(l) = self.l2.get_mut(line) {
            l.data = data;
            l.state = Moesi::Modified; // dirty-in-L2 marker
            return;
        }
        self.fill_l2(line, data, true);
    }

    fn fill_l2(&mut self, line: LineAddr, data: LineData, dirty: bool) {
        let state = if dirty { Moesi::Modified } else { Moesi::Exclusive };
        if let Some(evicted) = self.l2.insert(CacheLine::new(line, state, data)) {
            if evicted.state == Moesi::Modified {
                self.backing.insert(evicted.line, evicted.data);
            } else {
                // Clean eviction: keep backing in sync so later misses
                // observe the line's data.
                self.backing.entry(evicted.line).or_insert(evicted.data);
            }
        }
    }

    /// The memory system's current value of a word (L2 if present,
    /// else backing). Used for end-of-run validation together with
    /// dirty lines still held in L1s.
    pub fn word(&self, addr: Addr) -> u64 {
        let line = addr.line();
        if let Some(l) = self.l2.peek(line) {
            return l.data.word(addr);
        }
        self.backing.get(&line).map(|d| d.word(addr)).unwrap_or(0)
    }

    /// Configured L2 hit latency.
    pub fn l2_latency(&self) -> u64 {
        self.l2_latency
    }

    /// Configured memory latency.
    pub fn mem_latency(&self) -> u64 {
        self.mem_latency
    }
}

impl Schedulable for MemorySystem {
    /// The memory side is purely reactive: [`MemorySystem::supply`]
    /// answers synchronously at the bus ordering point and the access
    /// latency rides on the returned [`MemAccessResult`] (the fill's
    /// network delivery carries the delay). There is no internal timer
    /// that could fire on its own, so the memory system never asks to
    /// be woken.
    fn next_wake(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(4, 2, 12, 70)
    }

    #[test]
    fn cold_supply_comes_from_memory_then_l2() {
        let mut m = sys();
        m.init_word(Addr(8), 42);
        let (data, r) = m.supply(LineAddr(0));
        assert_eq!(data.word(Addr(8)), 42);
        assert!(!r.l2_hit);
        assert_eq!(r.latency, 70);
        let (_, r2) = m.supply(LineAddr(0));
        assert!(r2.l2_hit);
        assert_eq!(r2.latency, 12);
    }

    #[test]
    fn writeback_visible_to_later_supply() {
        let mut m = sys();
        let mut d = LineData::zeroed();
        d.set_word(Addr(0), 7);
        m.writeback(LineAddr(0), d);
        let (got, r) = m.supply(LineAddr(0));
        assert_eq!(got.word(Addr(0)), 7);
        assert!(r.l2_hit);
    }

    #[test]
    fn dirty_l2_eviction_spills_to_backing() {
        let mut m = sys();
        // 4 sets x 2 ways; lines 0, 4, 8 share set 0.
        let mut d = LineData::zeroed();
        d.set_word(Addr(0), 1);
        m.writeback(LineAddr(0), d);
        m.supply(LineAddr(4));
        m.supply(LineAddr(8)); // evicts LRU (line 0, dirty)
        assert_eq!(m.word(Addr(0)), 1, "dirty eviction reached backing");
        let (got, _) = m.supply(LineAddr(0));
        assert_eq!(got.word(Addr(0)), 1);
    }

    #[test]
    fn init_word_updates_resident_l2_line() {
        let mut m = sys();
        m.supply(LineAddr(1)); // brings zeroed line into L2
        m.init_word(Addr(64), 9);
        assert_eq!(m.word(Addr(64)), 9);
        let (got, _) = m.supply(LineAddr(1));
        assert_eq!(got.word(Addr(64)), 9);
    }

    #[test]
    fn unknown_addresses_read_zero() {
        let m = sys();
        assert_eq!(m.word(Addr(0xdead00)), 0);
    }
}
