//! MOESI coherence states and cache lines.
//!
//! The paper's target system uses a Sun Gigaplane-type MOESI broadcast
//! snooping protocol (Table 2). Each L1 line additionally carries the
//! transactional *access bit* support of Figure 5 — we keep separate
//! speculatively-read and speculatively-written bits so that the
//! conflict rules (read-write vs write-write) can be expressed
//! precisely.

use crate::addr::{Addr, LineAddr, WORDS_PER_LINE};

/// A MOESI coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Moesi {
    /// Not present / no permissions.
    #[default]
    Invalid,
    /// Clean shared copy; other caches and/or memory may hold copies.
    Shared,
    /// Clean exclusive copy; no other cache holds the line.
    Exclusive,
    /// Dirty shared copy; this cache is responsible for supplying the
    /// line and eventually writing it back.
    Owned,
    /// Dirty exclusive copy.
    Modified,
}

impl Moesi {
    /// Whether the line holds usable data.
    pub fn is_valid(self) -> bool {
        self != Moesi::Invalid
    }

    /// Whether this cache supplies data on a snoop hit (it is the
    /// protocol owner of the block). In MOESI, E also supplies a clean
    /// copy.
    pub fn supplies(self) -> bool {
        matches!(self, Moesi::Modified | Moesi::Owned | Moesi::Exclusive)
    }

    /// Whether the line may be written without a bus transaction.
    /// Writing an `Exclusive` line silently upgrades it to `Modified`.
    pub fn writable(self) -> bool {
        matches!(self, Moesi::Modified | Moesi::Exclusive)
    }

    /// Whether eviction must write the line back.
    pub fn dirty(self) -> bool {
        matches!(self, Moesi::Modified | Moesi::Owned)
    }

    /// Whether the paper would call the block *retainable*: "a block
    /// in an exclusively owned coherence state" (Figure 3 caption) —
    /// requests for it are forwarded to this cache, which may defer
    /// them. Owned is included: the O holder supplies data.
    pub fn retainable(self) -> bool {
        self.supplies()
    }
}

/// The 64 bytes of a cache line, as eight 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineData(pub [u64; WORDS_PER_LINE]);

impl LineData {
    /// A zero-filled line.
    pub fn zeroed() -> Self {
        LineData::default()
    }

    /// Reads the word containing `addr`.
    pub fn word(&self, addr: Addr) -> u64 {
        self.0[addr.word_index()]
    }

    /// Writes the word containing `addr`.
    pub fn set_word(&mut self, addr: Addr, val: u64) {
        self.0[addr.word_index()] = val;
    }
}

/// One L1 / victim-cache line: state, data, and the transactional
/// access bits of Figure 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine {
    /// Which memory line this entry caches.
    pub line: LineAddr,
    /// Coherence state.
    pub state: Moesi,
    /// Non-speculative data. Speculative updates live in the write
    /// buffer until commit, so this stays the pre-transaction value
    /// ("valid non-speculative data" the paper responds with on a
    /// restart).
    pub data: LineData,
    /// Set when the line was read inside the current transaction.
    pub spec_read: bool,
    /// Set when the line was written inside the current transaction
    /// (the new value is buffered in the write buffer).
    pub spec_written: bool,
    /// Cycle at which the request that brought this copy in was
    /// *ordered* on the address bus. Snoops of requests ordered before
    /// this point do not affect the copy (they were satisfied by the
    /// coherence chain that ultimately produced it).
    pub acquired_at: u64,
}

impl CacheLine {
    /// Creates a line in the given state with the given data.
    pub fn new(line: LineAddr, state: Moesi, data: LineData) -> Self {
        CacheLine { line, state, data, spec_read: false, spec_written: false, acquired_at: 0 }
    }

    /// Whether the line was accessed within the current transaction
    /// (either access bit set).
    pub fn spec_accessed(&self) -> bool {
        self.spec_read || self.spec_written
    }

    /// Clears both access bits (transaction end / `end_defer`).
    pub fn clear_spec(&mut self) {
        self.spec_read = false;
        self.spec_written = false;
    }

    /// Whether an incoming request of the given exclusivity conflicts
    /// with this line's transactional use: a data conflict occurs if,
    /// of all threads accessing a location, at least one is writing
    /// (§1). A read request conflicts only with speculative writes; an
    /// exclusive request conflicts with any speculative access.
    pub fn conflicts_with(&self, incoming_is_exclusive: bool) -> bool {
        if incoming_is_exclusive {
            self.spec_accessed()
        } else {
            self.spec_written
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        use Moesi::*;
        assert!(!Invalid.is_valid());
        for s in [Shared, Exclusive, Owned, Modified] {
            assert!(s.is_valid());
        }
        assert!(Modified.supplies() && Owned.supplies() && Exclusive.supplies());
        assert!(!Shared.supplies() && !Invalid.supplies());
        assert!(Modified.writable() && Exclusive.writable());
        assert!(!Owned.writable() && !Shared.writable());
        assert!(Modified.dirty() && Owned.dirty());
        assert!(!Exclusive.dirty() && !Shared.dirty());
        assert!(Modified.retainable() && Owned.retainable() && Exclusive.retainable());
        assert!(!Shared.retainable());
    }

    #[test]
    fn line_data_word_access() {
        let mut d = LineData::zeroed();
        d.set_word(Addr(8), 42);
        d.set_word(Addr(64 + 8), 99); // same word index, different line base
        assert_eq!(d.word(Addr(8)), 99);
        assert_eq!(d.word(Addr(0)), 0);
    }

    #[test]
    fn conflict_matrix() {
        let mut l = CacheLine::new(LineAddr(1), Moesi::Modified, LineData::zeroed());
        // No speculative access: no conflicts.
        assert!(!l.conflicts_with(true));
        assert!(!l.conflicts_with(false));
        // Speculatively read: conflicts only with incoming writes.
        l.spec_read = true;
        assert!(l.conflicts_with(true));
        assert!(!l.conflicts_with(false));
        // Speculatively written: conflicts with everything.
        l.spec_read = false;
        l.spec_written = true;
        assert!(l.conflicts_with(true));
        assert!(l.conflicts_with(false));
    }

    #[test]
    fn clear_spec_resets_bits() {
        let mut l = CacheLine::new(LineAddr(1), Moesi::Shared, LineData::zeroed());
        l.spec_read = true;
        l.spec_written = true;
        assert!(l.spec_accessed());
        l.clear_spec();
        assert!(!l.spec_accessed());
    }
}
