//! Speculative write buffer.
//!
//! "During speculative execution, data modified is buffered in the
//! write buffer ... Since writes are merged in the write buffer and
//! memory locations can be re-written within the write buffer (because
//! atomicity is guaranteed), the number of unique cache lines written
//! to within the critical section determines the size of the write
//! buffer." (§3.3, Table 2: 64 entries of 64 bytes.)

use crate::addr::{Addr, LineAddr, WORDS_PER_LINE};
use crate::line::LineData;

/// One write-buffer entry: a line's speculatively written words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbEntry {
    /// Which line the entry buffers.
    pub line: LineAddr,
    /// Bitmask of words that have been written.
    pub mask: u8,
    /// The written words (unwritten words are unspecified).
    pub data: LineData,
}

/// Error returned when the write buffer cannot accept another unique
/// line: the transaction has exceeded its buffering resources and must
/// fall back to acquiring the lock (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBufferFull;

impl std::fmt::Display for WriteBufferFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("speculative write buffer is full")
    }
}

impl std::error::Error for WriteBufferFull {}

/// The speculative write buffer: per-line word-merged updates that
/// become visible atomically at commit.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: Vec<WbEntry>,
    capacity: usize,
}

impl WriteBuffer {
    /// Creates a buffer holding up to `capacity` unique lines.
    pub fn new(capacity: usize) -> Self {
        WriteBuffer { entries: Vec::new(), capacity }
    }

    /// Configured capacity in unique lines. Under a chaos capacity
    /// squeeze this is smaller than the nominal `MachineConfig` value.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffers a speculative word store, merging into an existing
    /// entry for the same line when possible.
    ///
    /// # Errors
    ///
    /// Returns [`WriteBufferFull`] when the store would require a new
    /// entry and the buffer is at capacity; the caller abandons the
    /// elision and acquires the lock.
    pub fn write(&mut self, addr: Addr, val: u64) -> Result<(), WriteBufferFull> {
        let line = addr.line();
        let idx = addr.word_index();
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.mask |= 1 << idx;
            e.data.0[idx] = val;
            return Ok(());
        }
        if self.entries.len() == self.capacity {
            return Err(WriteBufferFull);
        }
        let mut e = WbEntry { line, mask: 1 << idx, data: LineData::zeroed() };
        e.data.0[idx] = val;
        self.entries.push(e);
        Ok(())
    }

    /// Reads the buffered value of a word, if it has been written.
    /// Speculative loads must check here before the cache so that a
    /// transaction sees its own stores.
    pub fn read_word(&self, addr: Addr) -> Option<u64> {
        let line = addr.line();
        let idx = addr.word_index();
        self.entries
            .iter()
            .find(|e| e.line == line)
            .filter(|e| e.mask & (1 << idx) != 0)
            .map(|e| e.data.0[idx])
    }

    /// Whether the buffer holds writes for the given line.
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Applies an entry's written words onto a line's data (used at
    /// commit to merge the buffered words into the cache line).
    pub fn apply_entry(entry: &WbEntry, data: &mut LineData) {
        for i in 0..WORDS_PER_LINE {
            if entry.mask & (1 << i) != 0 {
                data.0[i] = entry.data.0[i];
            }
        }
    }

    /// All buffered entries (commit walks these).
    pub fn entries(&self) -> &[WbEntry] {
        &self.entries
    }

    /// Discards all buffered writes (misspeculation: "the speculative
    /// updates are discarded").
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of unique lines buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no writes are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_forwards() {
        let mut wb = WriteBuffer::new(4);
        wb.write(Addr(8), 7).unwrap();
        assert_eq!(wb.read_word(Addr(8)), Some(7));
        assert_eq!(wb.read_word(Addr(16)), None, "unwritten word of same line");
        assert_eq!(wb.read_word(Addr(64 + 8)), None, "different line");
    }

    #[test]
    fn rewrites_merge_into_one_entry() {
        let mut wb = WriteBuffer::new(1);
        wb.write(Addr(0), 1).unwrap();
        wb.write(Addr(0), 2).unwrap();
        wb.write(Addr(56), 3).unwrap();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.read_word(Addr(0)), Some(2));
        assert_eq!(wb.read_word(Addr(56)), Some(3));
    }

    #[test]
    fn capacity_counts_unique_lines() {
        let mut wb = WriteBuffer::new(2);
        wb.write(Addr(0), 1).unwrap();
        wb.write(Addr(64), 2).unwrap();
        assert_eq!(wb.write(Addr(128), 3), Err(WriteBufferFull));
        // Rewriting existing lines still works at capacity.
        wb.write(Addr(8), 9).unwrap();
    }

    #[test]
    fn apply_entry_merges_only_written_words() {
        let mut wb = WriteBuffer::new(1);
        wb.write(Addr(8), 11).unwrap();
        wb.write(Addr(24), 33).unwrap();
        let mut base = LineData([100, 101, 102, 103, 104, 105, 106, 107]);
        WriteBuffer::apply_entry(&wb.entries()[0], &mut base);
        assert_eq!(base.0, [100, 11, 102, 33, 104, 105, 106, 107]);
    }

    #[test]
    fn clear_discards_everything() {
        let mut wb = WriteBuffer::new(2);
        wb.write(Addr(0), 1).unwrap();
        wb.clear();
        assert!(wb.is_empty());
        assert_eq!(wb.read_word(Addr(0)), None);
    }
}
