//! The ordered, split-transaction broadcast address bus.
//!
//! Modeled on the Sun Gigaplane (Table 2): requests from all nodes
//! arbitrate for the address bus; the winning request is *ordered*
//! (this is the coherence order for its block) and broadcast to every
//! snooper. Data moves separately on the point-to-point data network —
//! "the response (often the data) may appear an arbitrary time later
//! and any number of other requests and responses may occur between
//! the two sub-coherence-transactions" (§3).

use std::collections::VecDeque;

use tlr_sim::events::Schedulable;
use tlr_sim::fault::BusFault;
use tlr_sim::{Cycle, NodeId};

use crate::msg::BusRequest;

/// The address bus: per-node request queues, round-robin arbitration,
/// fixed occupancy per ordered transaction. An installed [`BusFault`]
/// hook may start individual arbitration scans at a seed-chosen node
/// instead of the round-robin successor — unfair grant order, but
/// every queued request still drains eventually.
#[derive(Debug, Clone)]
pub struct Bus {
    queues: Vec<VecDeque<BusRequest>>,
    occupancy: u64,
    busy_until: Cycle,
    next_rr: usize,
    /// Running total of queued requests across all per-node queues.
    queued: usize,
    /// Total requests ordered over the bus's lifetime. Each ordered
    /// transaction occupies the address bus for exactly `occupancy`
    /// cycles and windows never overlap, so
    /// `ordered * occupancy / elapsed` *is* the bus utilization — the
    /// profiler's saturation metric.
    ordered: u64,
    fault: Option<BusFault>,
}

impl Bus {
    /// Creates a bus for `nodes` requesters with the given per-
    /// transaction occupancy in cycles.
    pub fn new(nodes: usize, occupancy: u64) -> Self {
        Bus {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            occupancy,
            busy_until: 0,
            next_rr: 0,
            queued: 0,
            ordered: 0,
            fault: None,
        }
    }

    /// Installs an arbitration-perturbation fault hook (chaos runs
    /// only).
    pub fn set_fault(&mut self, fault: Option<BusFault>) {
        self.fault = fault;
    }

    /// Number of arbitration rounds the fault hook has perturbed.
    pub fn fault_injections(&self) -> u64 {
        self.fault.as_ref().map_or(0, BusFault::injected)
    }

    /// Advances arbitration: if the bus is free and a request is
    /// waiting, orders it and returns it (the machine then performs
    /// the broadcast snoop). At most one request is ordered per call;
    /// arbitration is round-robin across nodes for fairness, unless a
    /// fault hook perturbs this round's scan start.
    pub fn tick(&mut self, now: Cycle) -> Option<BusRequest> {
        if now < self.busy_until {
            return None;
        }
        // The fault stream must only advance on rounds that actually
        // arbitrate, so the draw count stays a function of bus state.
        if self.pending() == 0 {
            return None;
        }
        let n = self.queues.len();
        let start = match &mut self.fault {
            Some(f) => f.pick_start(n, self.next_rr),
            None => self.next_rr,
        };
        for i in 0..n {
            let node = (start + i) % n;
            if let Some(req) = self.queues[node].pop_front() {
                self.next_rr = (node + 1) % n;
                self.busy_until = now + self.occupancy;
                self.queued -= 1;
                self.ordered += 1;
                return Some(req);
            }
        }
        None
    }

    /// Enqueues a request from `node` for arbitration.
    pub fn enqueue(&mut self, node: NodeId, req: BusRequest) {
        self.queues[node].push_back(req);
        self.queued += 1;
    }

    /// Total queued requests (all nodes). Kept as a running count —
    /// the event engine polls this every cycle it advances.
    pub fn pending(&self) -> usize {
        self.queued
    }

    /// Whether node `node` has queued requests.
    pub fn node_pending(&self, node: NodeId) -> bool {
        !self.queues[node].is_empty()
    }

    /// Total requests ordered so far (see the `ordered` field note on
    /// deriving bus utilization from this count).
    pub fn ordered_count(&self) -> u64 {
        self.ordered
    }

    /// The configured per-transaction occupancy in cycles.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// The next cycle at which [`Bus::tick`] can order a request:
    /// the occupancy window's end, clamped to the future. `None` when
    /// nothing is queued (then `tick` is a guaranteed no-op that draws
    /// no fault randomness, so skipping it is safe).
    pub fn next_order_cycle(&self, now: Cycle) -> Option<Cycle> {
        (self.pending() > 0).then(|| self.busy_until.max(now + 1))
    }
}

impl Schedulable for Bus {
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        self.next_order_cycle(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;
    use crate::msg::BusReqKind;

    fn req(node: NodeId, line: u64) -> BusRequest {
        BusRequest {
            requester: node,
            line: LineAddr(line),
            kind: BusReqKind::GetX,
            ts: None,
            karma: 0,
            wb_data: None,
            enqueued_at: 0,
        }
    }

    #[test]
    fn orders_one_request_per_occupancy_window() {
        let mut bus = Bus::new(2, 4);
        bus.enqueue(0, req(0, 1));
        bus.enqueue(0, req(0, 2));
        let first = bus.tick(0).unwrap();
        assert_eq!(first.line, LineAddr(1));
        assert!(bus.tick(1).is_none(), "bus busy");
        assert!(bus.tick(3).is_none(), "bus busy");
        let second = bus.tick(4).unwrap();
        assert_eq!(second.line, LineAddr(2));
    }

    #[test]
    fn round_robin_across_nodes() {
        let mut bus = Bus::new(3, 1);
        bus.enqueue(0, req(0, 10));
        bus.enqueue(0, req(0, 11));
        bus.enqueue(2, req(2, 20));
        let order: Vec<_> = (0..4).filter_map(|t| bus.tick(t)).map(|r| r.line.0).collect();
        // Node 0 first, then node 2 (round-robin skips empty node 1),
        // then node 0's second request.
        assert_eq!(order, vec![10, 20, 11]);
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn fault_hook_perturbs_grant_order_but_drains_everything() {
        use tlr_sim::fault::FaultConfig;
        let faulty = FaultConfig::intensity(0x5eed, 4).bus_fault();
        let mut fair = Bus::new(4, 1);
        let mut chaos = Bus::new(4, 1);
        chaos.set_fault(faulty);
        for node in 0..4 {
            for l in 0..32u64 {
                fair.enqueue(node, req(node, (node as u64) * 100 + l));
                chaos.enqueue(node, req(node, (node as u64) * 100 + l));
            }
        }
        let mut fair_order = Vec::new();
        let mut chaos_order = Vec::new();
        for t in 0..1000 {
            if let Some(r) = fair.tick(t) {
                fair_order.push(r.line.0);
            }
            if let Some(r) = chaos.tick(t) {
                chaos_order.push(r.line.0);
            }
        }
        assert_eq!(fair_order.len(), 128);
        assert_eq!(chaos_order.len(), 128, "perturbation must not lose requests");
        assert_ne!(fair_order, chaos_order, "grant order must actually change");
        assert!(chaos.fault_injections() > 0);
        assert_eq!(fair.fault_injections(), 0);
    }

    #[test]
    fn next_order_cycle_tracks_occupancy() {
        let mut bus = Bus::new(2, 4);
        assert_eq!(bus.next_order_cycle(0), None, "empty bus never wakes");
        bus.enqueue(0, req(0, 1));
        bus.enqueue(0, req(0, 2));
        assert_eq!(bus.next_order_cycle(0), Some(1), "free bus orders next cycle");
        assert!(bus.tick(1).is_some());
        // Busy until cycle 5; the queued second request waits it out.
        assert_eq!(bus.next_order_cycle(1), Some(5));
        assert_eq!(bus.next_wake(4), Some(5));
        assert!(bus.tick(5).is_some());
        assert_eq!(bus.next_order_cycle(5), None);
    }

    #[test]
    fn pending_counts() {
        let mut bus = Bus::new(2, 1);
        assert_eq!(bus.pending(), 0);
        bus.enqueue(1, req(1, 5));
        assert!(bus.node_pending(1));
        assert!(!bus.node_pending(0));
        assert_eq!(bus.pending(), 1);
    }

    #[test]
    fn ordered_count_tracks_grants() {
        let mut bus = Bus::new(2, 4);
        assert_eq!(bus.ordered_count(), 0);
        assert_eq!(bus.occupancy(), 4);
        bus.enqueue(0, req(0, 1));
        bus.enqueue(1, req(1, 2));
        assert!(bus.tick(0).is_some());
        assert_eq!(bus.ordered_count(), 1, "one grant per occupancy window");
        assert!(bus.tick(1).is_none());
        assert_eq!(bus.ordered_count(), 1, "busy rounds order nothing");
        assert!(bus.tick(4).is_some());
        assert_eq!(bus.ordered_count(), 2);
    }
}
