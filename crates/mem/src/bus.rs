//! The ordered, split-transaction broadcast address bus.
//!
//! Modeled on the Sun Gigaplane (Table 2): requests from all nodes
//! arbitrate for the address bus; the winning request is *ordered*
//! (this is the coherence order for its block) and broadcast to every
//! snooper. Data moves separately on the point-to-point data network —
//! "the response (often the data) may appear an arbitrary time later
//! and any number of other requests and responses may occur between
//! the two sub-coherence-transactions" (§3).

use std::collections::VecDeque;

use tlr_sim::{Cycle, NodeId};

use crate::msg::BusRequest;

/// The address bus: per-node request queues, round-robin arbitration,
/// fixed occupancy per ordered transaction.
#[derive(Debug, Clone)]
pub struct Bus {
    queues: Vec<VecDeque<BusRequest>>,
    occupancy: u64,
    busy_until: Cycle,
    next_rr: usize,
}

impl Bus {
    /// Creates a bus for `nodes` requesters with the given per-
    /// transaction occupancy in cycles.
    pub fn new(nodes: usize, occupancy: u64) -> Self {
        Bus {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            occupancy,
            busy_until: 0,
            next_rr: 0,
        }
    }

    /// Enqueues a request from `node` for arbitration.
    pub fn enqueue(&mut self, node: NodeId, req: BusRequest) {
        self.queues[node].push_back(req);
    }

    /// Advances arbitration: if the bus is free and a request is
    /// waiting, orders it and returns it (the machine then performs
    /// the broadcast snoop). At most one request is ordered per call;
    /// arbitration is round-robin across nodes for fairness.
    pub fn tick(&mut self, now: Cycle) -> Option<BusRequest> {
        if now < self.busy_until {
            return None;
        }
        let n = self.queues.len();
        for i in 0..n {
            let node = (self.next_rr + i) % n;
            if let Some(req) = self.queues[node].pop_front() {
                self.next_rr = (node + 1) % n;
                self.busy_until = now + self.occupancy;
                return Some(req);
            }
        }
        None
    }

    /// Total queued requests (all nodes).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether node `node` has queued requests.
    pub fn node_pending(&self, node: NodeId) -> bool {
        !self.queues[node].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;
    use crate::msg::BusReqKind;

    fn req(node: NodeId, line: u64) -> BusRequest {
        BusRequest {
            requester: node,
            line: LineAddr(line),
            kind: BusReqKind::GetX,
            ts: None,
            wb_data: None,
            enqueued_at: 0,
        }
    }

    #[test]
    fn orders_one_request_per_occupancy_window() {
        let mut bus = Bus::new(2, 4);
        bus.enqueue(0, req(0, 1));
        bus.enqueue(0, req(0, 2));
        let first = bus.tick(0).unwrap();
        assert_eq!(first.line, LineAddr(1));
        assert!(bus.tick(1).is_none(), "bus busy");
        assert!(bus.tick(3).is_none(), "bus busy");
        let second = bus.tick(4).unwrap();
        assert_eq!(second.line, LineAddr(2));
    }

    #[test]
    fn round_robin_across_nodes() {
        let mut bus = Bus::new(3, 1);
        bus.enqueue(0, req(0, 10));
        bus.enqueue(0, req(0, 11));
        bus.enqueue(2, req(2, 20));
        let order: Vec<_> = (0..4).filter_map(|t| bus.tick(t)).map(|r| r.line.0).collect();
        // Node 0 first, then node 2 (round-robin skips empty node 1),
        // then node 0's second request.
        assert_eq!(order, vec![10, 20, 11]);
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn pending_counts() {
        let mut bus = Bus::new(2, 1);
        assert_eq!(bus.pending(), 0);
        bus.enqueue(1, req(1, 5));
        assert!(bus.node_pending(1));
        assert!(!bus.node_pending(0));
        assert_eq!(bus.pending(), 1);
    }
}
