//! Memory system for the TLR reproduction.
//!
//! This crate contains the passive building blocks of the simulated
//! shared-memory multiprocessor of §5.3 / Table 2 of the paper:
//!
//! * [`addr`] — addresses and 64-byte cache-line geometry,
//! * [`line`] — MOESI states and cache lines with the per-line
//!   transactional *access bits* of Figure 5,
//! * [`cache`] — set-associative L1 with LRU replacement,
//! * [`victim`] — the small fully-associative victim cache of §3.3,
//! * [`wb`] — the speculative write buffer that holds transactional
//!   updates until commit,
//! * [`storebuf`] — the non-speculative store buffer (TSO),
//! * [`mshr`] — miss status handling registers, including the
//!   intervention chains of §3.1.1,
//! * [`msg`] — coherence requests, data responses, and the marker and
//!   probe messages of §3.1.1,
//! * [`protocol`] — the pure MOESI transition rules,
//! * [`bus`] — the ordered, split-transaction broadcast address bus,
//! * [`directory`] — the banked home-node directory, the scalable
//!   alternative ordering fabric to the bus,
//! * [`network`] — the point-to-point pipelined data network,
//! * [`memsys`] — the shared L2 and backing memory,
//! * [`timestamp`] — TLR's globally unique timestamps (§2.1.2),
//!   including fixed-width rollover comparison.
//!
//! The *active* logic — who defers whom, when transactions restart —
//! lives in `tlr-core`, which assembles these parts into a machine.
//! Everything here is individually unit-tested.

pub mod addr;
pub mod bus;
pub mod cache;
pub mod directory;
pub mod line;
pub mod memsys;
pub mod mshr;
pub mod msg;
pub mod network;
pub mod protocol;
pub mod storebuf;
pub mod timestamp;
pub mod victim;
pub mod wb;

pub use addr::{Addr, LineAddr, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use bus::Bus;
pub use cache::Cache;
pub use directory::{DirEntry, Directory, NodeSet, OrderDecision};
pub use line::{CacheLine, LineData, Moesi};
pub use memsys::MemorySystem;
pub use mshr::{Intervention, MshrEntry, MshrFile, RetryTimers};
pub use msg::{BusReqKind, BusRequest, DataGrant, NetMsg};
pub use network::Network;
pub use storebuf::StoreBuffer;
pub use timestamp::Timestamp;
pub use victim::VictimCache;
pub use wb::WriteBuffer;
