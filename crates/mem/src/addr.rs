//! Byte addresses and cache-line geometry.
//!
//! The simulated machine uses 64-byte cache lines (Table 2) and
//! 64-bit words. Memory operations are word-granularity and must be
//! word-aligned.

use std::fmt;

/// Cache line size in bytes (Table 2 of the paper).
pub const LINE_BYTES: u64 = 64;
/// Word size in bytes. All simulated memory operations move one word.
pub const WORD_BYTES: u64 = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;
const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Index of this address's word within its cache line.
    ///
    /// # Panics
    ///
    /// Panics if the address is not word-aligned: the simulated ISA
    /// only performs aligned word accesses.
    pub fn word_index(self) -> usize {
        assert!(self.0.is_multiple_of(WORD_BYTES), "unaligned access to {self}");
        ((self.0 >> 3) & (WORDS_PER_LINE as u64 - 1)) as usize
    }

    /// Returns the address offset by `bytes` (may be negative).
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first word of the line.
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Byte address of word `idx` within the line.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    pub fn word(self, idx: usize) -> Addr {
        assert!(idx < WORDS_PER_LINE, "word index {idx} out of line");
        Addr((self.0 << LINE_SHIFT) + (idx as u64 * WORD_BYTES))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(0x1000).line(), LineAddr(0x40));
    }

    #[test]
    fn word_index_within_line() {
        assert_eq!(Addr(0).word_index(), 0);
        assert_eq!(Addr(8).word_index(), 1);
        assert_eq!(Addr(56).word_index(), 7);
        assert_eq!(Addr(64).word_index(), 0);
        assert_eq!(Addr(72 + 128).word_index(), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_word_index_panics() {
        Addr(3).word_index();
    }

    #[test]
    fn line_base_and_word_roundtrip() {
        let l = LineAddr(5);
        assert_eq!(l.base(), Addr(320));
        assert_eq!(l.word(0), Addr(320));
        assert_eq!(l.word(7), Addr(376));
        for i in 0..WORDS_PER_LINE {
            assert_eq!(l.word(i).line(), l);
            assert_eq!(l.word(i).word_index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of line")]
    fn word_out_of_range_panics() {
        LineAddr(0).word(8);
    }

    #[test]
    fn offset_arithmetic() {
        assert_eq!(Addr(100).offset(28), Addr(128));
        assert_eq!(Addr(100).offset(-36), Addr(64));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(LineAddr(255).to_string(), "L0xff");
    }
}
