//! Miss Status Handling Registers.
//!
//! §3.1.1: "On a miss, a processor allocates a pending buffer, a miss
//! status handling register (MSHR) and tracks the request. If the
//! processor receives a request (an intervention) from another
//! processor for the outstanding block, an intervention buffer or the
//! MSHR tracks the incoming request. When the processor receives data
//! for the block, the processor operates upon the data and sends it to
//! the requestor based on the information stored in the local MSHR."
//!
//! The MSHR also remembers the *marker* sender — the upstream
//! neighbour in the coherence chain — so probes can be forwarded
//! toward the cache that actually holds the data.

use std::collections::VecDeque;

use tlr_sim::events::Schedulable;
use tlr_sim::{Cycle, NodeId};

use crate::addr::LineAddr;
use crate::timestamp::{Prio, Timestamp};

/// An external request ordered behind this node's outstanding miss,
/// to be serviced (or deferred) once the data arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intervention {
    /// The downstream requester.
    pub from: NodeId,
    /// Whether the downstream request is exclusive (GetX) rather than
    /// shared (GetS).
    pub exclusive: bool,
    /// The downstream request's timestamp, if transactional.
    pub ts: Option<Timestamp>,
    /// The downstream request's contention-manager credit (karma
    /// policy only; 0 otherwise).
    pub karma: u32,
}

/// One outstanding miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// The missing line.
    pub line: LineAddr,
    /// Whether we requested exclusive ownership.
    pub exclusive: bool,
    /// Our transaction timestamp at issue, if transactional.
    pub ts: Option<Timestamp>,
    /// Set once the request has been handed to bus arbitration.
    pub issued: bool,
    /// Set once the request has been *ordered* on the address bus
    /// (protocol ownership may now precede data arrival — the
    /// request-response decoupling of §3.1.1).
    pub ordered: bool,
    /// The bus cycle at which the request was ordered (valid when
    /// `ordered`); the fill inherits it as the line's coherence
    /// position.
    pub ordered_at: u64,
    /// A store arrived while a GetS was pending: after the fill,
    /// upgrade to exclusive.
    pub upgrade_after_fill: bool,
    /// External requests ordered after ours, serviced in order once
    /// data arrives.
    pub interventions: VecDeque<Intervention>,
    /// The upstream neighbour that sent us a marker for this line
    /// (it holds or precedes us in the chain), used to forward probes.
    pub marker_from: Option<NodeId>,
    /// A conflicting higher-priority request that must be propagated
    /// upstream as a probe once the upstream neighbour is known.
    pub pending_probe: Option<Prio>,
    /// How many times this request has been NACKed at the ordering
    /// point and re-issued. Feeds the conflict policy's retry pacing
    /// (the backoff policy grows its delay window with this count);
    /// the entry — and with it the count — survives transaction
    /// aborts, so repeated losers keep backing off further.
    pub retries: u32,
    /// A later exclusive request was ordered while this (shared) miss
    /// was outstanding: the fill may be consumed once and must then be
    /// invalidated immediately, keeping the cache coherent.
    pub invalidate_after_fill: bool,
}

impl MshrEntry {
    /// Creates an entry for a miss on `line`.
    pub fn new(line: LineAddr, exclusive: bool, ts: Option<Timestamp>) -> Self {
        MshrEntry {
            line,
            exclusive,
            ts,
            issued: false,
            ordered: false,
            ordered_at: 0,
            upgrade_after_fill: false,
            interventions: VecDeque::new(),
            marker_from: None,
            pending_probe: None,
            retries: 0,
            invalidate_after_fill: false,
        }
    }
}

/// The node's file of outstanding misses.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    /// High-water mark of simultaneously outstanding misses.
    peak: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        MshrFile { entries: Vec::new(), capacity, peak: 0 }
    }

    /// The entry tracking `line`, if any.
    pub fn get(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Mutable access to the entry tracking `line`.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut MshrEntry> {
        self.entries.iter_mut().find(|e| e.line == line)
    }

    /// Allocates a new entry. Returns `None` (and does nothing) if the
    /// file is full or the line is already tracked.
    pub fn alloc(&mut self, entry: MshrEntry) -> Option<&mut MshrEntry> {
        if self.entries.len() == self.capacity || self.get(entry.line).is_some() {
            return None;
        }
        self.entries.push(entry);
        self.peak = self.peak.max(self.entries.len());
        self.entries.last_mut()
    }

    /// Removes and returns the entry for `line`.
    pub fn remove(&mut self, line: LineAddr) -> Option<MshrEntry> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.remove(pos))
    }

    /// Iterates over outstanding entries.
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry> {
        self.entries.iter()
    }

    /// Iterates mutably over outstanding entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MshrEntry> {
        self.entries.iter_mut()
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no outstanding misses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file is at capacity (further misses stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// High-water mark of simultaneously outstanding misses over the
    /// file's lifetime (the profiler's MSHR-pressure gauge).
    pub fn peak_outstanding(&self) -> usize {
        self.peak
    }

    /// Whether any outstanding transactional (timestamped) miss
    /// exists — used by the §3.2 single-block relaxation: deferring
    /// out of timestamp order is only safe when the transaction has no
    /// other block in flight that could form a cyclic wait.
    pub fn has_transactional_miss(&self) -> bool {
        self.entries.iter().any(|e| e.ts.is_some())
    }
}

/// Per-node retry timers for NACKed outstanding misses (NACK
/// retention, §3): each entry is a line whose bus request was annulled
/// at the ordering point and must be re-issued once its randomized
/// backoff expires.
///
/// Due entries are released in insertion order among themselves and
/// the not-yet-due tail keeps its insertion order — the exact
/// semantics of the `Vec` partition this replaces, so the engine swap
/// moves the timer without reordering a single retry.
#[derive(Debug, Clone, Default)]
pub struct RetryTimers {
    timers: Vec<(Cycle, LineAddr)>,
}

impl RetryTimers {
    /// Creates an empty timer file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a retry of `line` at cycle `due`.
    pub fn schedule(&mut self, due: Cycle, line: LineAddr) {
        self.timers.push((due, line));
    }

    /// Releases every retry due at or before `now`, in insertion
    /// order; later timers stay queued. Allocation-free unless
    /// something is actually due (this runs on every node tick).
    pub fn take_due(&mut self, now: Cycle) -> Vec<LineAddr> {
        if !self.timers.iter().any(|&(t, _)| t <= now) {
            return Vec::new();
        }
        let mut ready = Vec::new();
        self.timers.retain(|&(t, l)| {
            if t <= now {
                ready.push(l);
                false
            } else {
                true
            }
        });
        ready
    }

    /// The earliest scheduled due cycle, unclamped (may be in the
    /// past if a retry is overdue).
    pub fn next_due(&self) -> Option<Cycle> {
        self.timers.iter().map(|&(t, _)| t).min()
    }

    /// Whether no retries are pending.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }

    /// Number of pending retries.
    pub fn len(&self) -> usize {
        self.timers.len()
    }
}

impl Schedulable for RetryTimers {
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        self.next_due().map(|t| t.max(now + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_lookup() {
        let mut f = MshrFile::new(2);
        assert!(f.alloc(MshrEntry::new(LineAddr(1), true, None)).is_some());
        assert!(f.get(LineAddr(1)).is_some());
        assert!(f.get(LineAddr(2)).is_none());
        assert_eq!(f.len(), 1);
        assert_eq!(f.peak_outstanding(), 1);
        f.remove(LineAddr(1));
        assert_eq!(f.peak_outstanding(), 1, "peak is a high-water mark");
    }

    #[test]
    fn alloc_rejects_duplicates_and_overflow() {
        let mut f = MshrFile::new(1);
        assert!(f.alloc(MshrEntry::new(LineAddr(1), false, None)).is_some());
        assert!(f.alloc(MshrEntry::new(LineAddr(1), true, None)).is_none(), "duplicate");
        assert!(f.alloc(MshrEntry::new(LineAddr(2), true, None)).is_none(), "full");
        assert!(f.is_full());
    }

    #[test]
    fn interventions_queue_in_order() {
        let mut f = MshrFile::new(2);
        let e = f.alloc(MshrEntry::new(LineAddr(1), true, None)).unwrap();
        e.interventions.push_back(Intervention { from: 2, exclusive: true, ts: None, karma: 0 });
        e.interventions.push_back(Intervention { from: 3, exclusive: false, ts: None, karma: 0 });
        let e = f.remove(LineAddr(1)).unwrap();
        let froms: Vec<_> = e.interventions.iter().map(|i| i.from).collect();
        assert_eq!(froms, vec![2, 3]);
    }

    #[test]
    fn retry_timers_release_in_insertion_order_and_report_wakes() {
        let mut t = RetryTimers::new();
        assert!(t.is_empty());
        assert_eq!(t.next_wake(0), None);
        t.schedule(10, LineAddr(1));
        t.schedule(5, LineAddr(2));
        t.schedule(10, LineAddr(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.next_wake(0), Some(5));
        assert_eq!(t.next_wake(7), Some(8), "past-due clamps to now + 1");
        assert!(t.take_due(4).is_empty());
        assert_eq!(t.take_due(10), vec![LineAddr(1), LineAddr(2), LineAddr(3)], "insertion order, not due order");
        assert!(t.is_empty());
        t.schedule(9, LineAddr(4));
        t.schedule(3, LineAddr(5));
        assert_eq!(t.take_due(3), vec![LineAddr(5)]);
        assert_eq!(t.next_wake(3), Some(9), "tail keeps its timer");
    }

    #[test]
    fn transactional_miss_detection() {
        let mut f = MshrFile::new(2);
        f.alloc(MshrEntry::new(LineAddr(1), true, None));
        assert!(!f.has_transactional_miss());
        f.alloc(MshrEntry::new(LineAddr(2), true, Some(Timestamp::new(0, 1))));
        assert!(f.has_transactional_miss());
        f.remove(LineAddr(2));
        assert!(!f.has_transactional_miss());
    }
}
