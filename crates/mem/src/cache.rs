//! Set-associative cache with LRU replacement.
//!
//! Models the 128 KB, 4-way, 64-byte-line L1 data cache of Table 2
//! (and, with different geometry, the shared L2's tag/state side).
//! Replacement prefers lines without transactional access bits so that
//! a transaction's footprint survives as long as possible before the
//! victim cache (§3.3) has to absorb it.

use crate::addr::LineAddr;
use crate::line::CacheLine;

/// A set-associative cache of [`CacheLine`]s.
///
/// Within a set, lines are kept in LRU order: index 0 is the most
/// recently used.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<CacheLine>>,
    ways: usize,
    set_mask: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either parameter is
    /// zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: sets as u64 - 1,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// Looks up a line without updating LRU order.
    pub fn peek(&self, line: LineAddr) -> Option<&CacheLine> {
        self.sets[self.set_index(line)].iter().find(|l| l.line == line)
    }

    /// Looks up a line, updating LRU order on a hit.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut CacheLine> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|l| l.line == line)?;
        let entry = self.sets[set].remove(pos);
        self.sets[set].insert(0, entry);
        Some(&mut self.sets[set][0])
    }

    /// Whether the line is present (in any valid state).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Whether the line is the most recently used entry of its set —
    /// then a repeated [`Cache::get_mut`] leaves the LRU order
    /// unchanged (the event engine's spin fast-forward relies on
    /// this to skip re-touching hits).
    pub fn is_mru(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].first().is_some_and(|l| l.line == line)
    }

    /// Inserts a line, evicting the LRU entry if the set is full.
    /// Among eviction candidates, lines *without* transactional access
    /// bits are preferred; if every way is transactional the true LRU
    /// line is evicted (the caller sends it to the victim cache or
    /// abandons the transaction, §3.3).
    ///
    /// Returns the evicted line, if any.
    pub fn insert(&mut self, entry: CacheLine) -> Option<CacheLine> {
        let set = self.set_index(entry.line);
        debug_assert!(
            !self.sets[set].iter().any(|l| l.line == entry.line),
            "inserting duplicate line {}",
            entry.line
        );
        let mut evicted = None;
        if self.sets[set].len() == self.ways {
            // Search from LRU end for a non-transactional victim.
            let victim_pos = self.sets[set]
                .iter()
                .rposition(|l| !l.spec_accessed())
                .unwrap_or(self.sets[set].len() - 1);
            evicted = Some(self.sets[set].remove(victim_pos));
        }
        self.sets[set].insert(0, entry);
        evicted
    }

    /// Removes and returns a line.
    pub fn take(&mut self, line: LineAddr) -> Option<CacheLine> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|l| l.line == line)?;
        Some(self.sets[set].remove(pos))
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flatten()
    }

    /// Iterates mutably over all resident lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> {
        self.sets.iter_mut().flatten()
    }

    /// Clears the transactional access bits on every line (the
    /// `end_defer` message of Figure 5 "may clear the access bits in
    /// the local cache hierarchy").
    pub fn clear_spec_bits(&mut self) {
        for l in self.iter_mut() {
            l.clear_spec();
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{LineData, Moesi};

    fn mk(line: u64, state: Moesi) -> CacheLine {
        CacheLine::new(LineAddr(line), state, LineData::zeroed())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = Cache::new(4, 2);
        assert!(c.is_empty());
        c.insert(mk(5, Moesi::Shared));
        assert!(c.contains(LineAddr(5)));
        assert!(!c.contains(LineAddr(9))); // same set (4 sets), absent
        assert_eq!(c.get_mut(LineAddr(5)).unwrap().state, Moesi::Shared);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = Cache::new(4, 2);
        // Lines 1, 5, 9 all map to set 1.
        assert!(c.insert(mk(1, Moesi::Shared)).is_none());
        assert!(c.insert(mk(5, Moesi::Shared)).is_none());
        // Touch 1 so that 5 becomes LRU.
        c.get_mut(LineAddr(1)).unwrap();
        let evicted = c.insert(mk(9, Moesi::Shared)).expect("must evict");
        assert_eq!(evicted.line, LineAddr(5));
        assert!(c.contains(LineAddr(1)) && c.contains(LineAddr(9)));
    }

    #[test]
    fn eviction_prefers_non_transactional_lines() {
        let mut c = Cache::new(4, 2);
        let mut spec = mk(1, Moesi::Modified);
        spec.spec_written = true;
        c.insert(spec);
        c.insert(mk(5, Moesi::Shared));
        // Line 1 (spec) is MRU? No: 5 was inserted later, so 5 is MRU
        // and 1 is LRU — but 1 is transactional, so 5 is chosen.
        // Re-order: touch 5 then insert 9. LRU is 1 (spec); eviction
        // must skip it and take 5.
        c.get_mut(LineAddr(5)).unwrap();
        let evicted = c.insert(mk(9, Moesi::Shared)).unwrap();
        assert_eq!(evicted.line, LineAddr(5));
        assert!(c.contains(LineAddr(1)));
    }

    #[test]
    fn all_transactional_set_evicts_lru() {
        let mut c = Cache::new(4, 2);
        for l in [1u64, 5] {
            let mut e = mk(l, Moesi::Modified);
            e.spec_read = true;
            c.insert(e);
        }
        let evicted = c.insert(mk(9, Moesi::Shared)).unwrap();
        assert_eq!(evicted.line, LineAddr(1), "true LRU evicted when all are transactional");
        assert!(evicted.spec_read);
    }

    #[test]
    fn take_removes() {
        let mut c = Cache::new(4, 2);
        c.insert(mk(3, Moesi::Exclusive));
        let t = c.take(LineAddr(3)).unwrap();
        assert_eq!(t.state, Moesi::Exclusive);
        assert!(!c.contains(LineAddr(3)));
        assert!(c.take(LineAddr(3)).is_none());
    }

    #[test]
    fn clear_spec_bits_clears_everything() {
        let mut c = Cache::new(4, 2);
        for l in 0..8u64 {
            let mut e = mk(l, Moesi::Shared);
            e.spec_read = l % 2 == 0;
            e.spec_written = l % 3 == 0;
            c.insert(e);
        }
        c.clear_spec_bits();
        assert!(c.iter().all(|l| !l.spec_accessed()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        Cache::new(3, 2);
    }
}
