//! Point-to-point pipelined data network (Table 2: 20-cycle latency).
//!
//! Messages are delivered exactly `latency` cycles after being sent,
//! in sending order among messages delivered on the same cycle, which
//! keeps the whole simulation deterministic. An installed
//! [`NetFault`] hook may delay individual deliveries by a bounded,
//! seed-derived amount — which reorders them relative to later sends
//! within the jitter window — while the whole run stays a pure
//! function of the configuration.

use tlr_sim::events::{EventQueue, Schedulable};
use tlr_sim::fault::NetFault;
use tlr_sim::Cycle;

/// A delayed delivery queue over the [`EventQueue`] calendar: the
/// queue's monotone tie-break id *is* the send order, so same-cycle
/// deliveries drain in sending order by construction.
#[derive(Debug, Clone)]
pub struct Network<T> {
    inflight: EventQueue<T>,
    /// Total messages ever sent (the profiler's traffic counter).
    sent: u64,
    fault: Option<NetFault>,
}

impl<T> Default for Network<T> {
    fn default() -> Self {
        Network { inflight: EventQueue::new(), sent: 0, fault: None }
    }
}

impl<T> Network<T> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a delivery-jitter fault hook (chaos runs only).
    pub fn set_fault(&mut self, fault: Option<NetFault>) {
        self.fault = fault;
    }

    /// Number of deliveries the fault hook has delayed.
    pub fn fault_injections(&self) -> u64 {
        self.fault.as_ref().map_or(0, NetFault::injected)
    }

    /// Schedules `msg` for delivery at cycle `deliver_at` (or later,
    /// when an installed fault hook delays it).
    pub fn send(&mut self, deliver_at: Cycle, msg: T) {
        let deliver_at = match &mut self.fault {
            Some(f) => f.perturb(deliver_at),
            None => deliver_at,
        };
        self.sent += 1;
        self.inflight.push(deliver_at, msg);
    }

    /// Total messages ever sent over this network's lifetime.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Removes and returns every message due at or before `now`,
    /// ordered by (delivery cycle, send order).
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut ready = Vec::new();
        while let Some(msg) = self.inflight.pop_due(now) {
            ready.push(msg);
        }
        ready
    }

    /// Removes and returns the earliest message due at or before
    /// `now`, if any — the allocation-free form of
    /// [`Network::drain_ready`] for per-cycle delivery loops.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        self.inflight.pop_due(now)
    }

    /// The delivery cycle of the earliest in-flight message, if any
    /// (the event engine's wake source for the data network).
    pub fn next_ready(&self) -> Option<Cycle> {
        self.inflight.next_cycle()
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }
}

impl<T> Schedulable for Network<T> {
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        // A message sent with zero latency during cycle `now` is
        // delivered on the next cycle's drain phase, exactly as the
        // cycle-stepped loop would deliver it: clamp to now + 1.
        self.next_ready().map(|c| c.max(now + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_at_due_cycle() {
        let mut n = Network::new();
        n.send(10, "a");
        n.send(5, "b");
        assert!(n.drain_ready(4).is_empty());
        assert_eq!(n.drain_ready(5), vec!["b"]);
        assert_eq!(n.drain_ready(100), vec!["a"]);
        assert!(n.is_empty());
    }

    #[test]
    fn same_cycle_preserves_send_order() {
        let mut n = Network::new();
        n.send(3, 1);
        n.send(3, 2);
        n.send(3, 3);
        assert_eq!(n.drain_ready(3), vec![1, 2, 3]);
    }

    #[test]
    fn next_ready_reports_the_earliest_delivery() {
        let mut n = Network::new();
        assert_eq!(n.next_ready(), None);
        assert_eq!(n.next_wake(0), None);
        n.send(10, "a");
        n.send(5, "b");
        assert_eq!(n.next_ready(), Some(5));
        assert_eq!(n.next_wake(0), Some(5));
        assert_eq!(n.next_wake(7), Some(8), "past-due clamps to now + 1");
        n.drain_ready(5);
        assert_eq!(n.next_ready(), Some(10));
    }

    #[test]
    fn len_tracks_inflight() {
        let mut n = Network::new();
        n.send(1, ());
        n.send(2, ());
        assert_eq!(n.len(), 2);
        assert_eq!(n.sent_count(), 2);
        n.drain_ready(1);
        assert_eq!(n.len(), 1);
        assert_eq!(n.sent_count(), 2, "sent_count never decreases");
    }

    #[test]
    fn fault_hook_delays_but_never_drops() {
        use tlr_sim::fault::FaultConfig;
        let mut n = Network::new();
        n.set_fault(FaultConfig::intensity(3, 4).net_fault());
        let total = 500u64;
        for i in 0..total {
            n.send(i, i);
        }
        assert_eq!(n.len(), total as usize, "jitter must not lose messages");
        assert!(n.fault_injections() > 0, "intensity 4 must delay some sends");
        let window = FaultConfig::intensity(3, 4).net_delay_max + 1;
        let mut delivered: Vec<u64> = Vec::new();
        for now in 0..total + window {
            delivered.extend(n.drain_ready(now));
        }
        assert_eq!(delivered.len(), total as usize);
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_ne!(delivered, sorted, "some deliveries must be reordered");
        // Reordering is bounded by the jitter window.
        for (pos, &msg) in delivered.iter().enumerate() {
            assert!((pos as u64).abs_diff(msg) <= window + 1);
        }
    }

    #[test]
    fn no_fault_hook_is_the_identity() {
        let mut a = Network::new();
        let mut b = Network::new();
        b.set_fault(None);
        for i in 0..100u64 {
            a.send(i, i);
            b.send(i, i);
        }
        assert_eq!(a.drain_ready(200), b.drain_ready(200));
        assert_eq!(a.fault_injections(), 0);
    }
}
