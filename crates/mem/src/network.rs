//! Point-to-point pipelined data network (Table 2: 20-cycle latency).
//!
//! Messages are delivered exactly `latency` cycles after being sent,
//! in sending order among messages delivered on the same cycle, which
//! keeps the whole simulation deterministic.

use std::collections::BTreeMap;

use tlr_sim::Cycle;

/// A delayed delivery queue.
#[derive(Debug, Clone)]
pub struct Network<T> {
    inflight: BTreeMap<(Cycle, u64), T>,
    seq: u64,
}

impl<T> Default for Network<T> {
    fn default() -> Self {
        Network { inflight: BTreeMap::new(), seq: 0 }
    }
}

impl<T> Network<T> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `msg` for delivery at cycle `deliver_at`.
    pub fn send(&mut self, deliver_at: Cycle, msg: T) {
        self.inflight.insert((deliver_at, self.seq), msg);
        self.seq += 1;
    }

    /// Removes and returns every message due at or before `now`,
    /// ordered by (delivery cycle, send order).
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut ready = Vec::new();
        while let Some((&key, _)) = self.inflight.iter().next() {
            if key.0 > now {
                break;
            }
            ready.push(self.inflight.remove(&key).unwrap());
        }
        ready
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_at_due_cycle() {
        let mut n = Network::new();
        n.send(10, "a");
        n.send(5, "b");
        assert!(n.drain_ready(4).is_empty());
        assert_eq!(n.drain_ready(5), vec!["b"]);
        assert_eq!(n.drain_ready(100), vec!["a"]);
        assert!(n.is_empty());
    }

    #[test]
    fn same_cycle_preserves_send_order() {
        let mut n = Network::new();
        n.send(3, 1);
        n.send(3, 2);
        n.send(3, 3);
        assert_eq!(n.drain_ready(3), vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks_inflight() {
        let mut n = Network::new();
        n.send(1, ());
        n.send(2, ());
        assert_eq!(n.len(), 2);
        n.drain_ready(1);
        assert_eq!(n.len(), 1);
    }
}
