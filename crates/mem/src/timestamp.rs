//! TLR timestamps (§2.1.2).
//!
//! "The timestamps we use have two components: a local logical clock
//! and processor ID. ... Such ties are broken by using the processor
//! ID. Thus the timestamp comprising of the local logical clock and
//! the processor ID are globally unique."
//!
//! Earlier timestamp ⇒ higher priority ⇒ wins conflicts. Timestamps
//! are retained across misspeculation restarts and only updated after
//! a successful execution, which yields starvation freedom.
//!
//! "Timestamp roll-over due to fixed size timestamps is easily handled
//! without loss of TLR properties" — we model fixed-width clocks with
//! serial-number (wrapping window) comparison via
//! [`Timestamp::wins_over`]: correct as long as concurrently live
//! clocks span less than half the clock space, which the loose
//! synchronization rule guarantees in practice.

use tlr_sim::NodeId;

/// A globally unique transaction timestamp: (logical clock, node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timestamp {
    /// Local logical clock, in units of successful TLR executions.
    pub clock: u64,
    /// Processor id, breaking clock ties.
    pub node: NodeId,
}

impl Timestamp {
    /// Creates a timestamp.
    pub fn new(clock: u64, node: NodeId) -> Self {
        Timestamp { clock, node }
    }

    /// Whether `self` is *earlier* than `other` (and therefore higher
    /// priority: it wins the conflict), comparing clocks in a wrapping
    /// window of `bits` bits.
    ///
    /// With `bits = 64` this is a plain lexicographic comparison.
    /// A timestamp never wins over itself (a probe can chase a cyclic
    /// coherence chain back to its own originator).
    pub fn wins_over(self, other: Timestamp, bits: u32) -> bool {
        if self.clock == other.clock && self.node == other.node {
            return false;
        }
        if self.clock == other.clock {
            return self.node < other.node;
        }
        if bits >= 64 {
            return self.clock < other.clock;
        }
        let mask = (1u64 << bits) - 1;
        let half = 1u64 << (bits - 1);
        // Serial-number arithmetic: self is earlier if the forward
        // distance from self to other is less than half the space.
        let dist = other.clock.wrapping_sub(self.clock) & mask;
        dist != 0 && dist < half
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TS({},P{})", self.clock, self.node)
    }
}

/// The full conflict-resolution priority a request carries: the
/// paper's timestamp plus a contention-manager credit.
///
/// The timestamp-ordered default policy looks only at `ts`; the
/// karma-style policy orders by `karma` first (accumulated wasted
/// footprint of aborted attempts — deliberately *constant within an
/// attempt*, so the win relation stays a consistent total order among
/// concurrently live transactions and mutual-deferral deadlocks are
/// impossible) and falls back to the timestamp as the tiebreak.
/// `karma` is 0 everywhere outside the karma policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prio {
    /// The transaction timestamp (§2.1.2).
    pub ts: Timestamp,
    /// Contention-manager credit (karma policy only; 0 otherwise).
    pub karma: u32,
}

impl Prio {
    /// Creates a priority.
    pub fn new(ts: Timestamp, karma: u32) -> Self {
        Prio { ts, karma }
    }

    /// A priority carrying only a timestamp (karma 0) — what every
    /// policy except karma puts on the wire.
    pub fn ts_only(ts: Timestamp) -> Self {
        Prio { ts, karma: 0 }
    }
}

/// A node's local logical clock (§2.1.2).
///
/// "On a successful TLR execution, the processor increments its local
/// logical clock to a value higher than the previous value (typically
/// by 1) or to a value higher than the highest of all incoming
/// conflicting requests received from other processors, whichever is
/// larger."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalClock {
    clock: u64,
    node: NodeId,
    bits: u32,
    /// Highest conflicting clock observed since the last update.
    observed_max: Option<u64>,
}

impl LogicalClock {
    /// Creates a clock for node `node` with `bits`-wide clock values.
    pub fn new(node: NodeId, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "clock width must be 1..=64 bits");
        LogicalClock { clock: 0, node, bits, observed_max: None }
    }

    /// The timestamp all requests of the current transaction carry.
    pub fn timestamp(&self) -> Timestamp {
        Timestamp::new(self.clock, self.node)
    }

    /// Records the clock of an incoming conflicting request, keeping
    /// local clocks loosely synchronized.
    pub fn observe_conflicting(&mut self, incoming: Timestamp) {
        let inc = incoming.clock;
        match self.observed_max {
            // Use the wrapping comparison so that "later" is computed
            // in the same serial-number window.
            Some(m) if Timestamp::new(inc, 0).wins_over(Timestamp::new(m, 1), self.bits) => {}
            _ => self.observed_max = Some(inc),
        }
    }

    /// Advances the clock after a successful TLR execution: to
    /// `max(clock + 1, observed_max + 1)`, wrapping at the configured
    /// width. Misspeculation restarts must *not* call this — the
    /// timestamp is retained and reused (§2.1.2).
    pub fn advance(&mut self) {
        let mask = if self.bits >= 64 { u64::MAX } else { (1u64 << self.bits) - 1 };
        let next = self.clock.wrapping_add(1) & mask;
        let candidate = match self.observed_max.take() {
            Some(m) => {
                let after_m = m.wrapping_add(1) & mask;
                // Pick whichever is later in the wrapping window.
                if after_m == next
                    || !Timestamp::new(next, 0).wins_over(Timestamp::new(after_m, 1), self.bits)
                {
                    next
                } else {
                    after_m
                }
            }
            None => next,
        };
        self.clock = candidate;
    }

    /// Current clock value (for inspection/tests).
    pub fn value(&self) -> u64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earlier_clock_wins() {
        let a = Timestamp::new(3, 1);
        let b = Timestamp::new(5, 0);
        assert!(a.wins_over(b, 64));
        assert!(!b.wins_over(a, 64));
    }

    #[test]
    fn node_id_breaks_ties() {
        let a = Timestamp::new(4, 0);
        let b = Timestamp::new(4, 7);
        assert!(a.wins_over(b, 64));
        assert!(!b.wins_over(a, 64));
    }

    #[test]
    fn comparison_is_antisymmetric_at_any_width() {
        for bits in [8u32, 16, 32, 64] {
            for (ca, cb) in [(0u64, 1), (10, 200), (5, 5), (250, 3)] {
                let a = Timestamp::new(ca, 0);
                let b = Timestamp::new(cb, 1);
                assert_ne!(a.wins_over(b, bits), b.wins_over(a, bits), "{a} vs {b} @{bits}");
            }
        }
    }

    #[test]
    fn rollover_window_orders_across_wrap() {
        // With 8-bit clocks, 250 is "earlier" than 3 (it is 9 steps
        // behind in the wrapping window).
        let old = Timestamp::new(250, 0);
        let new = Timestamp::new(3, 1);
        assert!(old.wins_over(new, 8));
        assert!(!new.wins_over(old, 8));
        // But without wrapping (64-bit), 3 < 250.
        assert!(new.wins_over(old, 64));
    }

    #[test]
    fn wrap_window_boundary_is_pinned_at_timestamp_bits() {
        // Every conflict policy now routes through the same modular
        // comparison; pin its behavior exactly at the half-window
        // boundary of the configured width.
        //
        // With `bits` bits, a.clock is earlier than b.clock iff the
        // forward distance d = (b - a) mod 2^bits satisfies
        // 0 < d < 2^(bits-1). Exactly at d = 2^(bits-1) *neither*
        // clock is earlier, and the node id does NOT break the tie
        // (ids only order equal clocks): both comparisons lose.
        for bits in [2u32, 8, 16, 32, 63] {
            let half = 1u64 << (bits - 1);
            let a = Timestamp::new(0, 0);
            // One short of the boundary: a is still earlier.
            let just_inside = Timestamp::new(half - 1, 1);
            assert!(a.wins_over(just_inside, bits), "d=half-1 @{bits}");
            assert!(!just_inside.wins_over(a, bits), "d=half-1 sym @{bits}");
            // Exactly the boundary: the window is ambiguous, nobody
            // wins, in either direction.
            let boundary = Timestamp::new(half, 1);
            assert!(!a.wins_over(boundary, bits), "d=half @{bits}");
            assert!(!boundary.wins_over(a, bits), "d=half sym @{bits}");
            // One past the boundary: the order inverts — b is now the
            // earlier clock (a is "ahead" in the wrapping window).
            let just_past = Timestamp::new(half + 1, 1);
            assert!(!a.wins_over(just_past, bits), "d=half+1 @{bits}");
            assert!(just_past.wins_over(a, bits), "d=half+1 sym @{bits}");
        }
        // At full width there is no window: plain comparison, and the
        // 2^63 distance that ties at 63 bits orders normally at 64.
        let a = Timestamp::new(0, 0);
        let far = Timestamp::new(1u64 << 63, 1);
        assert!(a.wins_over(far, 64));
        assert!(!far.wins_over(a, 64));
    }

    #[test]
    fn prio_constructors() {
        let t = Timestamp::new(9, 2);
        assert_eq!(Prio::ts_only(t), Prio::new(t, 0));
        assert_eq!(Prio::new(t, 7).karma, 7);
        assert_eq!(Prio::new(t, 7).ts, t);
    }

    #[test]
    fn timestamp_never_wins_over_itself() {
        let t = Timestamp::new(1, 1);
        assert!(!t.wins_over(t, 64));
        assert!(!t.wins_over(t, 8));
    }

    #[test]
    fn clock_advances_by_one_without_conflicts() {
        let mut c = LogicalClock::new(0, 32);
        assert_eq!(c.value(), 0);
        c.advance();
        c.advance();
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn clock_jumps_past_observed_conflicts() {
        let mut c = LogicalClock::new(0, 32);
        c.observe_conflicting(Timestamp::new(41, 3));
        c.observe_conflicting(Timestamp::new(7, 2));
        c.advance();
        assert_eq!(c.value(), 42, "advance to observed max + 1");
        // The observation is consumed.
        c.advance();
        assert_eq!(c.value(), 43);
    }

    #[test]
    fn clock_wraps_at_width() {
        let mut c = LogicalClock::new(0, 8);
        // Walk the clock near the top of the 8-bit space, staying
        // inside the half-window invariant, then wrap.
        for _ in 0..254 {
            c.advance();
        }
        assert_eq!(c.value(), 254);
        c.observe_conflicting(Timestamp::new(255, 1));
        c.advance();
        assert_eq!(c.value(), 0, "255 + 1 wraps to 0 at 8 bits");
        // A retained timestamp from before the wrap still wins.
        assert!(Timestamp::new(250, 1).wins_over(c.timestamp(), 8));
    }

    #[test]
    fn retained_timestamp_eventually_earliest() {
        // A loser that never advances while others advance ends up
        // winning every comparison: the starvation-freedom argument.
        let loser = Timestamp::new(5, 9);
        let mut winner_clock = LogicalClock::new(0, 32);
        for _ in 0..10 {
            winner_clock.advance();
        }
        assert!(loser.wins_over(winner_clock.timestamp(), 32));
    }
}
