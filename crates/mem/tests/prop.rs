//! Property-based tests of the memory-system building blocks, on the
//! in-repo `tlr-check` engine.

use tlr_check::{check, gen};
use tlr_mem::addr::{Addr, LineAddr};
use tlr_mem::line::{CacheLine, LineData, Moesi};
use tlr_mem::timestamp::Timestamp;
use tlr_mem::{Cache, Network, StoreBuffer, WriteBuffer};

/// The cache never holds two entries for one line, never exceeds its
/// capacity, and a line that was just inserted (and not since evicted)
/// is retrievable.
#[test]
fn cache_invariants() {
    check("cache_invariants", 64, |s| {
        let ops = gen::vec_of(s, 1..=199, |s| (s.u64_in(0..=63), s.bool()));
        let sets = 1usize << s.u32_in(1..=3);
        let ways = s.usize_in(1..=3);
        let mut c = Cache::new(sets, ways);
        for (line, take) in ops {
            let la = LineAddr(line);
            if take {
                c.take(la);
            } else if !c.contains(la) {
                c.insert(CacheLine::new(la, Moesi::Shared, LineData::zeroed()));
                if !c.contains(la) {
                    return Err(format!("freshly inserted line {la:?} not resident"));
                }
            }
            // No duplicates, capacity bound.
            let mut seen = std::collections::HashSet::new();
            for l in c.iter() {
                if !seen.insert(l.line) {
                    return Err(format!("duplicate line {:?}", l.line));
                }
            }
            if c.len() > sets * ways {
                return Err(format!("{} lines in a {sets}x{ways} cache", c.len()));
            }
        }
        Ok(())
    });
}

/// Write-buffer forwarding behaves like a word-indexed map over the
/// written words, as long as capacity is not exceeded.
#[test]
fn write_buffer_matches_model() {
    check("write_buffer_matches_model", 64, |s| {
        let writes = gen::vec_of(s, 1..=59, |s| {
            (s.u64_in(0..=5), s.u64_in(0..=7), s.u64_in(0..=u64::MAX - 1))
        });
        let mut wb = WriteBuffer::new(64);
        let mut model = std::collections::HashMap::new();
        for (line, word, val) in writes {
            let addr = Addr(line * 64 + word * 8);
            wb.write(addr, val).map_err(|e| format!("write refused: {e:?}"))?;
            model.insert(addr, val);
        }
        for (addr, val) in &model {
            if wb.read_word(*addr) != Some(*val) {
                return Err(format!("{addr}: {:?} != {val}", wb.read_word(*addr)));
            }
        }
        // Unwritten words read as None.
        if wb.read_word(Addr(7 * 64)).is_some() {
            return Err("unwritten word forwarded".into());
        }
        Ok(())
    });
}

/// Store-buffer forwarding returns the youngest store per address and
/// drains in FIFO order.
#[test]
fn store_buffer_matches_model() {
    check("store_buffer_matches_model", 64, |s| {
        let stores = gen::vec_of(s, 1..=49, |s| (s.u64_in(0..=7), s.u64_in(0..=u64::MAX - 1)));
        let mut sb = StoreBuffer::new(64);
        let mut youngest = std::collections::HashMap::new();
        for (slot, val) in &stores {
            let addr = Addr(slot * 8);
            sb.push(addr, *val);
            youngest.insert(addr, *val);
        }
        for (addr, val) in &youngest {
            if sb.forward(*addr) != Some(*val) {
                return Err(format!("{addr}: forwarded {:?} != {val}", sb.forward(*addr)));
            }
        }
        // FIFO drain reproduces the push order.
        let mut drained = Vec::new();
        while let Some(e) = sb.pop() {
            drained.push(e);
        }
        let expected: Vec<(Addr, u64)> = stores.iter().map(|(s, v)| (Addr(s * 8), *v)).collect();
        if drained != expected {
            return Err(format!("drain order {drained:?} != push order {expected:?}"));
        }
        Ok(())
    });
}

/// Network deliveries are exactly the sent messages, each at or after
/// its scheduled cycle, in (cycle, send-order) order.
#[test]
fn network_delivers_in_order() {
    check("network_delivers_in_order", 64, |s| {
        let msgs = gen::vec_of(s, 1..=39, |s| (s.u64_in(0..=49), s.u32_in(0..=999)));
        let mut n = Network::new();
        for (i, (at, tag)) in msgs.iter().enumerate() {
            n.send(*at, (i, *tag));
        }
        let mut delivered = Vec::new();
        for now in 0..60 {
            for (i, tag) in n.drain_ready(now) {
                if msgs[i].0 > now {
                    return Err(format!("message {i} delivered {} early", msgs[i].0 - now));
                }
                delivered.push((i, tag));
            }
        }
        if delivered.len() != msgs.len() {
            return Err(format!("{} of {} messages delivered", delivered.len(), msgs.len()));
        }
        // Stable order: sorted by (cycle, send index).
        let mut expected: Vec<usize> = (0..msgs.len()).collect();
        expected.sort_by_key(|&i| (msgs[i].0, i));
        let got: Vec<usize> = delivered.iter().map(|&(i, _)| i).collect();
        if got != expected {
            return Err(format!("delivery order {got:?} != {expected:?}"));
        }
        Ok(())
    });
}

/// Timestamp comparison is a strict total order within a half-window
/// of clock values, at every width.
#[test]
fn timestamp_total_order_within_window() {
    check("timestamp_total_order_within_window", 128, |s| {
        let base = s.u64_in(0..=u64::MAX - 1);
        let offs: Vec<u64> = (0..3).map(|_| s.u64_in(0..=99)).collect();
        let bits = s.u32_in(8..=64);
        // Clamp clocks into the bit width.
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let ts: Vec<Timestamp> =
            (0..3).map(|k| Timestamp::new(base.wrapping_add(offs[k]) & mask, k)).collect();
        // Antisymmetry.
        for a in 0..3 {
            for b in 0..3 {
                if a != b && ts[a].wins_over(ts[b], bits) == ts[b].wins_over(ts[a], bits) {
                    return Err(format!("antisymmetry: {} vs {} @{bits}", ts[a], ts[b]));
                }
            }
        }
        // Transitivity (offsets stay within a half-window of 100 < 2^7).
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    if a != b
                        && b != c
                        && a != c
                        && ts[a].wins_over(ts[b], bits)
                        && ts[b].wins_over(ts[c], bits)
                        && !ts[a].wins_over(ts[c], bits)
                    {
                        return Err(format!(
                            "transitivity: {} < {} < {} but not {} < {} @{bits}",
                            ts[a], ts[b], ts[c], ts[a], ts[c]
                        ));
                    }
                }
            }
        }
        Ok(())
    });
}
