//! Property-based tests of the memory-system building blocks.

use proptest::prelude::*;

use tlr_mem::addr::{Addr, LineAddr};
use tlr_mem::line::{CacheLine, LineData, Moesi};
use tlr_mem::timestamp::Timestamp;
use tlr_mem::{Cache, Network, StoreBuffer, WriteBuffer};

proptest! {
    /// The cache never holds two entries for one line, never exceeds
    /// its capacity, and a line that was just inserted (and not since
    /// evicted) is retrievable.
    #[test]
    fn cache_invariants(
        ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..200),
        sets_log2 in 1u32..4,
        ways in 1usize..4,
    ) {
        let sets = 1usize << sets_log2;
        let mut c = Cache::new(sets, ways);
        for (line, take) in ops {
            let la = LineAddr(line);
            if take {
                c.take(la);
            } else if !c.contains(la) {
                c.insert(CacheLine::new(la, Moesi::Shared, LineData::zeroed()));
                prop_assert!(c.contains(la), "freshly inserted line resident");
            }
            // No duplicates, capacity bound.
            let mut seen = std::collections::HashSet::new();
            for l in c.iter() {
                prop_assert!(seen.insert(l.line), "duplicate line {:?}", l.line);
            }
            prop_assert!(c.len() <= sets * ways);
        }
    }

    /// Write-buffer forwarding behaves like a word-indexed map over
    /// the written words, as long as capacity is not exceeded.
    #[test]
    fn write_buffer_matches_model(
        writes in prop::collection::vec((0u64..6, 0u64..8, prop::num::u64::ANY), 1..60),
    ) {
        let mut wb = WriteBuffer::new(64);
        let mut model = std::collections::HashMap::new();
        for (line, word, val) in writes {
            let addr = Addr(line * 64 + word * 8);
            wb.write(addr, val).unwrap();
            model.insert(addr, val);
        }
        for (addr, val) in &model {
            prop_assert_eq!(wb.read_word(*addr), Some(*val));
        }
        // Unwritten words read as None.
        prop_assert_eq!(wb.read_word(Addr(7 * 64)), None);
    }

    /// Store-buffer forwarding returns the youngest store per address
    /// and drains in FIFO order.
    #[test]
    fn store_buffer_matches_model(
        stores in prop::collection::vec((0u64..8, prop::num::u64::ANY), 1..50),
    ) {
        let mut sb = StoreBuffer::new(64);
        let mut youngest = std::collections::HashMap::new();
        for (slot, val) in &stores {
            let addr = Addr(slot * 8);
            sb.push(addr, *val);
            youngest.insert(addr, *val);
        }
        for (addr, val) in &youngest {
            prop_assert_eq!(sb.forward(*addr), Some(*val));
        }
        // FIFO drain reproduces the push order.
        let mut drained = Vec::new();
        while let Some(e) = sb.pop() {
            drained.push(e);
        }
        let expected: Vec<(Addr, u64)> =
            stores.iter().map(|(s, v)| (Addr(s * 8), *v)).collect();
        prop_assert_eq!(drained, expected);
    }

    /// Network deliveries are exactly the sent messages, each at or
    /// after its scheduled cycle, in (cycle, send-order) order.
    #[test]
    fn network_delivers_in_order(
        msgs in prop::collection::vec((0u64..50, 0u32..1000), 1..40),
    ) {
        let mut n = Network::new();
        for (i, (at, tag)) in msgs.iter().enumerate() {
            n.send(*at, (i, *tag));
        }
        let mut delivered = Vec::new();
        for now in 0..60 {
            for (i, tag) in n.drain_ready(now) {
                prop_assert!(msgs[i].0 <= now, "delivered early");
                delivered.push((i, tag));
            }
        }
        prop_assert_eq!(delivered.len(), msgs.len());
        // Stable order: sorted by (cycle, send index).
        let mut expected: Vec<usize> = (0..msgs.len()).collect();
        expected.sort_by_key(|&i| (msgs[i].0, i));
        let got: Vec<usize> = delivered.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(got, expected);
    }

    /// Timestamp comparison is a strict total order within a
    /// half-window of clock values, at every width.
    #[test]
    fn timestamp_total_order_within_window(
        base in prop::num::u64::ANY,
        offs in prop::collection::vec(0u64..100, 3),
        bits in 8u32..=64,
    ) {
        let make = |k: usize| Timestamp::new(base.wrapping_add(offs[k]) & ((1u64 << (bits - 1)) - 1).wrapping_mul(2).wrapping_add(1), k);
        // Clamp clocks into the bit width.
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let ts: Vec<Timestamp> =
            (0..3).map(|k| Timestamp::new(base.wrapping_add(offs[k]) & mask, k)).collect();
        let _ = make;
        // Antisymmetry.
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    prop_assert_ne!(
                        ts[a].wins_over(ts[b], bits),
                        ts[b].wins_over(ts[a], bits),
                        "{:?} vs {:?}", ts[a], ts[b]
                    );
                }
            }
        }
        // Transitivity (offsets stay within a half-window of 100 < 2^7).
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    if a != b && b != c && a != c
                        && ts[a].wins_over(ts[b], bits)
                        && ts[b].wins_over(ts[c], bits)
                    {
                        prop_assert!(ts[a].wins_over(ts[c], bits), "transitivity");
                    }
                }
            }
        }
    }
}
