//! Property wall for the bare home-node directory: fuzzed request
//! interleavings against a precise Rust model of the protocol spec.
//!
//! The driver plays the role of the machine's ordering loop: nodes
//! issue `GetS`/`GetX`/`WriteBack` requests at random cycles, lines
//! are silently evicted from clean holders (the imprecision a real
//! directory must tolerate), orders are randomly annulled the way
//! NACK retention annuls them, and annulled requests are re-sent the
//! way a NACKed requester's retry timer re-sends them. After every
//! ordering step the directory must agree with the model:
//!
//! * at most one owner per line, and the owner is always a sharer;
//! * the sharer vector tracks the spec transitions exactly, and is a
//!   superset of the nodes that *really* hold a copy (stale bits from
//!   silent evictions are allowed; missing holders are not);
//! * no request is ever dropped: every send is eventually ordered,
//!   exactly once, respecting the request-network latency and the
//!   per-bank occupancy spacing;
//! * an annulled (NACKed) order leaves the entry byte-identical, and
//!   its retry is ordered like any fresh request.
//!
//! Failures minimize through `tlr-check`'s shrinker; the printed
//! `TLR_CHECK_SEED` line reproduces a counterexample exactly.

use std::collections::HashMap;

use tlr_check::{prop, Source};
use tlr_mem::addr::LineAddr;
use tlr_mem::msg::{BusReqKind, BusRequest};
use tlr_mem::Directory;
use tlr_sim::NodeId;

/// The precise model: spec-level sharer vector and owner (mirroring
/// the transitions the directory must implement) plus the ground-truth
/// holder set (which silent evictions *do* shrink).
#[derive(Default)]
struct Model {
    vec: HashMap<LineAddr, Vec<NodeId>>,
    owner: HashMap<LineAddr, NodeId>,
    holders: HashMap<LineAddr, Vec<NodeId>>,
}

impl Model {
    fn commit(&mut self, req: &BusRequest) {
        let v = self.vec.entry(req.line).or_default();
        if req.kind.is_exclusive() {
            v.clear();
        }
        if !v.contains(&req.requester) {
            v.push(req.requester);
        }
        let take_ownership = req.kind == BusReqKind::GetX
            || (self.owner.get(&req.line).is_none_or(|&o| o == req.requester)
                && !v.iter().any(|&n| n != req.requester));
        if take_ownership {
            self.owner.insert(req.line, req.requester);
        }
        let h = self.holders.entry(req.line).or_default();
        if req.kind.is_exclusive() {
            h.clear();
        }
        if !h.contains(&req.requester) {
            h.push(req.requester);
        }
    }

    fn retire_writeback(&mut self, line: LineAddr, node: NodeId) {
        if self.owner.get(&line) == Some(&node) {
            self.owner.remove(&line);
        }
        if let Some(v) = self.vec.get_mut(&line) {
            v.retain(|&n| n != node);
        }
        if let Some(h) = self.holders.get_mut(&line) {
            h.retain(|&n| n != node);
        }
    }

    fn silently_evict(&mut self, line: LineAddr, node: NodeId) {
        if let Some(h) = self.holders.get_mut(&line) {
            h.retain(|&n| n != node);
        }
    }
}

/// Compares directory and model over every line the case touched.
fn check_invariants(dir: &Directory, model: &Model, lines: &[LineAddr]) -> Result<(), String> {
    for &line in lines {
        let sharers = dir.sharers(line);
        let got: Vec<NodeId> = sharers.iter().collect();
        let mut want = model.vec.get(&line).cloned().unwrap_or_default();
        want.sort_unstable();
        if got != want {
            return Err(format!(
                "line {}: directory sharers {got:?} != model sharer vector {want:?}",
                line.0
            ));
        }
        if dir.owner(line) != model.owner.get(&line).copied() {
            return Err(format!(
                "line {}: directory owner {:?} != model owner {:?}",
                line.0,
                dir.owner(line),
                model.owner.get(&line)
            ));
        }
        if let Some(o) = dir.owner(line) {
            if !sharers.contains(o) {
                return Err(format!("line {}: owner {o} is not a sharer", line.0));
            }
        }
        for &h in model.holders.get(&line).map(Vec::as_slice).unwrap_or(&[]) {
            if !sharers.contains(h) {
                return Err(format!(
                    "line {}: node {h} really holds a copy but is missing from the \
                     sharer vector (unsafe imprecision)",
                    line.0
                ));
            }
        }
    }
    Ok(())
}

fn request(requester: NodeId, line: LineAddr, kind: BusReqKind, now: u64) -> BusRequest {
    BusRequest { requester, line, kind, ts: None, karma: 0, wb_data: None, enqueued_at: now }
}

/// Advances the directory through `[now+1, until]`, applying (or
/// annulling) every ordered request and checking all invariants.
#[allow(clippy::too_many_arguments)]
fn drain(
    s: &mut Source,
    dir: &mut Directory,
    model: &mut Model,
    lines: &[LineAddr],
    now: &mut u64,
    until: u64,
    may_annul: bool,
    annulled: &mut Vec<BusRequest>,
    last_bank_order: &mut [Option<u64>],
    ordered_tally: &mut u64,
) -> Result<(), String> {
    let mut out = Vec::new();
    while *now < until {
        *now += 1;
        dir.tick_into(*now, &mut out);
        for req in out.drain(..) {
            *ordered_tally += 1;
            if *now < req.enqueued_at + dir.req_latency() {
                return Err(format!(
                    "request sent at {} ordered at {}, inside the {}-cycle request-network \
                     flight",
                    req.enqueued_at,
                    *now,
                    dir.req_latency()
                ));
            }
            let bank = req.home_bank(dir.banks());
            if let Some(last) = last_bank_order[bank] {
                if *now < last + dir.occupancy() {
                    return Err(format!(
                        "bank {bank} ordered at {} within the occupancy window of its \
                         order at {last}",
                        *now
                    ));
                }
            }
            last_bank_order[bank] = Some(*now);
            if req.kind == BusReqKind::WriteBack {
                dir.retire_writeback(req.line, req.requester);
                model.retire_writeback(req.line, req.requester);
            } else {
                let before = (dir.owner(req.line), dir.sharers(req.line));
                let decision = dir.peek_order(&req);
                if !decision.targets.contains(req.requester) {
                    return Err(format!(
                        "ordering decision for node {} does not target the requester",
                        req.requester
                    ));
                }
                if let Some(sup) = decision.supplier {
                    if !decision.targets.contains(sup) {
                        return Err(format!("supplier {sup} missing from the target set"));
                    }
                    if sup == req.requester {
                        return Err("requester designated as its own supplier".into());
                    }
                }
                if may_annul && s.below(4) == 0 {
                    // NACK annulment: the entry must be untouched, and
                    // the requester's retry timer re-sends the request
                    // (the final drain below replays it).
                    if (dir.owner(req.line), dir.sharers(req.line)) != before {
                        return Err("peeking an order mutated the entry".into());
                    }
                    annulled.push(req);
                    continue;
                }
                dir.commit_order(&req);
                model.commit(&req);
            }
            check_invariants(dir, model, lines)?;
        }
    }
    Ok(())
}

/// One fuzzed interleaving. All randomness flows through `s`, so the
/// shrinker minimizes the whole scenario.
fn directory_case(s: &mut Source) -> Result<(), String> {
    let nodes = s.usize_in(2..=8);
    let banks = s.usize_in(1..=4);
    let occupancy = s.u64_in(1..=4);
    let latency = s.u64_in(1..=24);
    let mut dir = Directory::new(nodes, banks, occupancy, latency);
    // Line addresses stride over the bank mapping.
    let lines: Vec<LineAddr> =
        (0..s.usize_in(1..=4)).map(|i| LineAddr(i as u64 * 3 + 1)).collect();
    let mut model = Model::default();
    let mut now = 0u64;
    let mut sent = 0u64;
    let mut ordered = 0u64;
    let mut annulled = Vec::new();
    let mut last_bank_order = vec![None; dir.banks()];
    let steps = s.usize_in(4..=40);
    for _ in 0..steps {
        match s.below(5) {
            0 | 1 => {
                // A node issues a miss.
                let node = s.usize_in(0..=nodes - 1);
                let line = *s.pick(&lines);
                let kind = *s.pick(&[BusReqKind::GetS, BusReqKind::GetX]);
                dir.send(now, request(node, line, kind, now));
                sent += 1;
            }
            2 => {
                // The owner evicts a dirty line: a writeback.
                let line = *s.pick(&lines);
                if let Some(o) = model.owner.get(&line).copied() {
                    dir.send(now, request(o, line, BusReqKind::WriteBack, now));
                    sent += 1;
                }
            }
            3 => {
                // A clean holder drops its copy without telling anyone.
                let line = *s.pick(&lines);
                let owner = model.owner.get(&line).copied();
                let clean: Vec<NodeId> = model
                    .holders
                    .get(&line)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .copied()
                    .filter(|&n| Some(n) != owner)
                    .collect();
                if !clean.is_empty() {
                    model.silently_evict(line, *s.pick(&clean));
                }
            }
            _ => {
                // Let time pass; the directory orders what is due.
                let until = now + s.u64_in(1..=40);
                drain(
                    s, &mut dir, &mut model, &lines, &mut now, until, true, &mut annulled,
                    &mut last_bank_order, &mut ordered,
                )?;
            }
        }
    }
    // Every NACKed requester retries: replay the annulled requests,
    // then drain to empty. Nothing may be left behind.
    let retries = annulled.len() as u64;
    for req in annulled.drain(..) {
        dir.send(now, request(req.requester, req.line, req.kind, now));
        sent += 1;
    }
    let mut none = Vec::new();
    let deadline = now + latency + (sent + 1) * (occupancy + 1) + 64;
    while !dir.is_empty() {
        if now >= deadline {
            return Err(format!(
                "directory failed to drain: {} requests still pending at cycle {now}",
                dir.pending()
            ));
        }
        let until = now + 1;
        drain(
            s, &mut dir, &mut model, &lines, &mut now, until, false, &mut none,
            &mut last_bank_order, &mut ordered,
        )?;
    }
    if dir.sent_count() != sent {
        return Err(format!("sent_count {} != sends {sent}", dir.sent_count()));
    }
    if ordered != sent {
        return Err(format!(
            "{ordered} requests ordered but {sent} were sent ({retries} retries): a \
             request was dropped or duplicated"
        ));
    }
    if dir.ordered_count() != ordered {
        return Err(format!(
            "directory counted {} ordered requests, driver saw {ordered}",
            dir.ordered_count()
        ));
    }
    check_invariants(&dir, &model, &lines)
}

#[test]
fn directory_holds_its_invariants_on_fuzzed_interleavings() {
    // 300 fuzzed interleavings by default; `TLR_CHECK_CASES` scales
    // the sweep and `TLR_CHECK_SEED` replays a failure.
    prop::check("directory_props", 300, directory_case);
}

#[test]
fn zero_stream_is_a_valid_scenario() {
    // The shrinker steers toward the all-zeros stream; it must be a
    // passing case (smallest machine, no requests) or shrinking output
    // would be misleading.
    let mut s = Source::replay(&[]);
    directory_case(&mut s).expect("zero-stream scenario");
}
