//! Deterministic pseudo-random number generation.
//!
//! Multithreaded-workload evaluation is non-deterministic on real
//! hardware; the paper (§5.3, citing Alameldeen et al. [1]) introduces
//! random latency perturbations instead of averaging over runs. We do
//! the same but keep every run exactly reproducible by deriving all
//! randomness from a seeded SplitMix64 generator.

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64's output mixing function.
fn mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (SplitMix64).
///
/// # Example
///
/// ```
/// use tlr_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed.wrapping_add(GOLDEN) }
    }

    /// Derives an independent stream for a sub-component (e.g. one
    /// per processor), so that adding a consumer does not perturb the
    /// sequences seen by others.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let mix = self.next_u64() ^ tag.wrapping_mul(0xff51_afd7_ed55_8ccd);
        SimRng::new(mix)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// The `index`-th value (0-based) of the stream `SimRng::new(seed)`
    /// produces, computed directly without advancing a cursor.
    ///
    /// SplitMix64's state is an arithmetic progression, so any position
    /// is addressable in O(1). This is what makes the seed derivation
    /// of parallel sweeps order-independent: cell `i`'s seed is a pure
    /// function of (master seed, `i`), never of which cells ran before
    /// it or on which worker.
    pub fn nth(seed: u64, index: u64) -> u64 {
        // `new` adds one GOLDEN, each `next_u64` adds another; the
        // (index+1)-th call therefore mixes seed + (index+2)*GOLDEN.
        mix(seed.wrapping_add(GOLDEN.wrapping_mul(index.wrapping_add(2))))
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift bounded generation (Lemire); bias is
            // negligible for the small bounds used here.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nth_matches_the_sequential_stream() {
        for seed in [0u64, 7, 0x5eed_cafe, u64::MAX] {
            let mut r = SimRng::new(seed);
            for i in 0..64 {
                assert_eq!(SimRng::nth(seed, i), r.next_u64(), "seed {seed:#x} index {i}");
            }
        }
    }

    #[test]
    fn forks_are_independent_of_later_use() {
        let mut root1 = SimRng::new(1);
        let fork_a1 = root1.fork(0);
        let _fork_b1 = root1.fork(1);

        let mut root2 = SimRng::new(1);
        let fork_a2 = root2.fork(0);
        assert_eq!(fork_a1, fork_a2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn range_rejects_inverted_bounds() {
        SimRng::new(0).range(5, 2);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
