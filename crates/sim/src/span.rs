//! Transaction spans: the flat [`crate::trace`] event stream folded
//! into per-transaction lifecycles.
//!
//! Every elided critical section becomes a [`TxnSpan`] running from
//! its `TxnStart` to the commit/restart/fallback that ends it.
//! Protocol-level events that occur at the owning node while the span
//! is open — deferrals absorbed, markers and probes exchanged,
//! conflicts lost, NACKs — attach to the span, so a single span
//! answers "what happened to this critical section and why". The
//! [`crate::export`] module renders spans as Chrome/Perfetto `B`/`E`
//! pairs; the serializability oracle dumps [`SpanLog::dump`] when a
//! check fails so minimized counterexamples carry their own evidence.

use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::{Cycle, NodeId};

/// How a transaction span ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Committed lock-free with the given transactional footprint.
    Committed { read_set: u32, write_set: u32, commit_wait: u64 },
    /// Restarted after a conflict on `line`.
    Restarted { line: u64 },
    /// Abandoned elision; the lock was (or will be) acquired.
    FellBack { reason: &'static str },
    /// Still running when the trace ended (machine stopped early or
    /// ring evicted the terminal event).
    Open,
}

impl SpanOutcome {
    /// Short label used by dumps and exporters.
    pub fn label(&self) -> &'static str {
        match self {
            SpanOutcome::Committed { .. } => "commit",
            SpanOutcome::Restarted { .. } => "restart",
            SpanOutcome::FellBack { .. } => "fallback",
            SpanOutcome::Open => "open",
        }
    }
}

/// One elided critical section, start to finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpan {
    /// Node that ran the transaction.
    pub node: NodeId,
    /// Address of the elided lock.
    pub lock_addr: u64,
    /// Cycle of the `TxnStart` event.
    pub start: Cycle,
    /// Cycle of the terminal event (equals `start` for open spans).
    pub end: Cycle,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// 0 for the first attempt at this lock, incremented after each
    /// restart of the immediately preceding span on the same node and
    /// lock.
    pub attempt: u32,
    /// Protocol events recorded at this node while the span was open
    /// (deferrals absorbed, markers/probes, conflicts lost, NACKs).
    pub events: Vec<TraceEvent>,
}

impl TxnSpan {
    /// Span duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// Number of incoming requests this span deferred.
    pub fn deferrals(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceKind::Defer { .. })).count()
    }

    /// Number of probe events recorded on this span.
    pub fn probes(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceKind::Probe { .. })).count()
    }

    /// Number of marker events recorded on this span.
    pub fn markers(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceKind::Marker { .. })).count()
    }
}

/// All spans reconstructed from one trace, in start order, plus the
/// events that occurred outside any transaction (actual lock
/// acquisitions, conflicts suffered while holding a real lock).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    /// Completed and open spans, ordered by start cycle.
    pub spans: Vec<TxnSpan>,
    /// Events at a node with no open span.
    pub orphans: Vec<TraceEvent>,
    /// Events evicted from the trace ring before reconstruction.
    pub dropped_events: u64,
}

impl SpanLog {
    /// Folds a trace's event stream into spans.
    pub fn build(trace: &Trace) -> SpanLog {
        let mut log = SpanLog { dropped_events: trace.dropped(), ..Default::default() };
        // Per-node index of the currently open span in `log.spans`.
        let mut open: std::collections::BTreeMap<NodeId, usize> = std::collections::BTreeMap::new();
        for ev in trace.events() {
            match &ev.kind {
                TraceKind::TxnStart { lock_addr } => {
                    // A start while a span is open means the terminal
                    // event was evicted by the ring: close as Open.
                    open.remove(&ev.node);
                    let attempt = log
                        .spans
                        .iter()
                        .rev()
                        .find(|s| s.node == ev.node && s.lock_addr == *lock_addr)
                        .map_or(0, |prev| match prev.outcome {
                            SpanOutcome::Restarted { .. } => prev.attempt + 1,
                            _ => 0,
                        });
                    log.spans.push(TxnSpan {
                        node: ev.node,
                        lock_addr: *lock_addr,
                        start: ev.cycle,
                        end: ev.cycle,
                        outcome: SpanOutcome::Open,
                        attempt,
                        events: Vec::new(),
                    });
                    open.insert(ev.node, log.spans.len() - 1);
                }
                kind if kind.ends_span() => {
                    if let Some(idx) = open.remove(&ev.node) {
                        let span = &mut log.spans[idx];
                        span.end = ev.cycle;
                        span.outcome = match kind {
                            TraceKind::TxnCommit { read_set, write_set, commit_wait } => {
                                SpanOutcome::Committed {
                                    read_set: *read_set,
                                    write_set: *write_set,
                                    commit_wait: *commit_wait,
                                }
                            }
                            TraceKind::TxnRestart { line } => SpanOutcome::Restarted { line: *line },
                            TraceKind::TxnFallback { reason } => {
                                SpanOutcome::FellBack { reason }
                            }
                            _ => unreachable!("ends_span covers exactly three variants"),
                        };
                    } else {
                        log.orphans.push(ev.clone());
                    }
                }
                _ => {
                    if let Some(&idx) = open.get(&ev.node) {
                        log.spans[idx].events.push(ev.clone());
                    } else {
                        log.orphans.push(ev.clone());
                    }
                }
            }
        }
        log
    }

    /// Spans of one node, in start order.
    pub fn spans_for(&self, node: NodeId) -> impl Iterator<Item = &TxnSpan> {
        self.spans.iter().filter(move |s| s.node == node)
    }

    /// Number of spans that committed.
    pub fn commits(&self) -> usize {
        self.spans.iter().filter(|s| matches!(s.outcome, SpanOutcome::Committed { .. })).count()
    }

    /// Number of spans that restarted.
    pub fn restarts(&self) -> usize {
        self.spans.iter().filter(|s| matches!(s.outcome, SpanOutcome::Restarted { .. })).count()
    }

    /// Human-readable dump, one line per span with its attached
    /// protocol events indented beneath — the format the oracle prints
    /// on failure.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "(ring evicted {} events before the window below)\n",
                self.dropped_events
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "[{:>8}..{:>8}] node {} lock {:#x} attempt {} -> {}",
                s.start,
                s.end,
                s.node,
                s.lock_addr,
                s.attempt,
                s.outcome.label()
            ));
            match &s.outcome {
                SpanOutcome::Committed { read_set, write_set, commit_wait } => {
                    out.push_str(&format!(
                        " (r/w {read_set}/{write_set}, commit wait {commit_wait})"
                    ));
                }
                SpanOutcome::Restarted { line } => out.push_str(&format!(" (line {line:#x})")),
                SpanOutcome::FellBack { reason } => out.push_str(&format!(" ({reason})")),
                SpanOutcome::Open => {}
            }
            out.push('\n');
            for e in &s.events {
                out.push_str(&format!("    {:>8} {}", e.cycle, e.kind.label()));
                match &e.kind {
                    TraceKind::Defer { line, from, depth } => {
                        out.push_str(&format!(" line {line:#x} from node {from} depth {depth}"));
                    }
                    TraceKind::ServiceDeferred { line, to }
                    | TraceKind::ConflictLost { line, to }
                    | TraceKind::Marker { line, to }
                    | TraceKind::Probe { line, to }
                    | TraceKind::NackSent { line, to } => {
                        out.push_str(&format!(" line {line:#x} to node {to}"));
                    }
                    _ => {}
                }
                out.push('\n');
            }
        }
        for e in &self.orphans {
            out.push_str(&format!("    {:>8} node {} {} (outside txn)\n", e.cycle, e.node, e.kind.label()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_spans_with_attached_events() {
        let mut t = Trace::enabled();
        t.record(10, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(12, 1, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(15, 0, TraceKind::Defer { line: 0x80, from: 1, depth: 1 });
        t.record(16, 1, TraceKind::Probe { line: 0x80, to: 0 });
        t.record(20, 0, TraceKind::TxnCommit { read_set: 2, write_set: 1, commit_wait: 3 });
        t.record(21, 0, TraceKind::ServiceDeferred { line: 0x80, to: 1 });
        t.record(30, 1, TraceKind::TxnCommit { read_set: 1, write_set: 1, commit_wait: 0 });
        let log = SpanLog::build(&t);
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.commits(), 2);
        let winner = &log.spans[0];
        assert_eq!(winner.node, 0);
        assert_eq!((winner.start, winner.end), (10, 20));
        assert_eq!(winner.deferrals(), 1);
        assert_eq!(
            winner.outcome,
            SpanOutcome::Committed { read_set: 2, write_set: 1, commit_wait: 3 }
        );
        let loser = &log.spans[1];
        assert_eq!(loser.probes(), 1);
        // ServiceDeferred after node 0's commit lands in orphans.
        assert_eq!(log.orphans.len(), 1);
        let dump = log.dump();
        assert!(dump.contains("node 0 lock 0x40 attempt 0 -> commit"));
        assert!(dump.contains("defer line 0x80 from node 1 depth 1"));
    }

    #[test]
    fn attempt_counts_restart_chains() {
        let mut t = Trace::enabled();
        t.record(1, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(2, 0, TraceKind::TxnRestart { line: 0x80 });
        t.record(3, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(4, 0, TraceKind::TxnRestart { line: 0x80 });
        t.record(5, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(6, 0, TraceKind::TxnCommit { read_set: 1, write_set: 1, commit_wait: 0 });
        t.record(7, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        let log = SpanLog::build(&t);
        let attempts: Vec<u32> = log.spans.iter().map(|s| s.attempt).collect();
        // Two restarts chain 0,1,2; after a commit the next start is a
        // fresh critical section, attempt 0 again.
        assert_eq!(attempts, vec![0, 1, 2, 0]);
        assert_eq!(log.restarts(), 2);
        assert_eq!(log.spans[3].outcome, SpanOutcome::Open);
    }

    #[test]
    fn start_after_evicted_terminal_leaves_open_span() {
        let mut t = Trace::enabled();
        t.record(1, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        // Terminal event "lost"; a new start arrives for the node.
        t.record(9, 0, TraceKind::TxnStart { lock_addr: 0xc0 });
        t.record(10, 0, TraceKind::TxnCommit { read_set: 0, write_set: 0, commit_wait: 0 });
        let log = SpanLog::build(&t);
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.spans[0].outcome, SpanOutcome::Open);
        assert!(matches!(log.spans[1].outcome, SpanOutcome::Committed { .. }));
    }
}
