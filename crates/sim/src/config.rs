//! Machine configuration, modeled on Table 2 of the paper.
//!
//! The paper's target system is a 16-way chip multiprocessor with
//! snooping L1 caches over a Sun Gigaplane-like MOESI split-transaction
//! broadcast protocol, a shared L2, and point-to-point data network.
//! [`MachineConfig::paper_default`] reproduces those parameters;
//! [`MachineConfig::builder`] offers a fluent surface for everything
//! else, including the [`crate::fault`] chaos knobs.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

use crate::fault::FaultConfig;
use crate::prof::ProfConfig;

/// Which main-loop implementation drives the machine.
///
/// Both engines are bit-for-bit equivalent — same statistics, same
/// trace, same serialized output — for every configuration; the
/// differential harness in `crates/check` enforces this. The
/// cycle-stepped loop is kept as the in-repo oracle and for
/// micro-debugging (one call per cycle is easier to breakpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Jump the clock straight to the next scheduled event (data
    /// delivery, bus grant, per-node timer); idle stretches are
    /// charged to the stall counters in bulk. The default.
    #[default]
    EventDriven,
    /// Advance every node, bus, and network queue one cycle at a time
    /// (the original loop; `--engine cycle` from the binaries).
    CycleStepped,
}

impl Engine {
    /// Parses a `--engine` flag value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "event" | "event-driven" => Ok(Engine::EventDriven),
            "cycle" | "cycle-stepped" => Ok(Engine::CycleStepped),
            other => Err(format!("unknown engine {other:?} (expected \"event\" or \"cycle\")")),
        }
    }

    /// Short label for logs and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Engine::EventDriven => "event",
            Engine::CycleStepped => "cycle",
        }
    }
}

/// Which coherence interconnect orders requests.
///
/// The paper's machine is a 16-way broadcast snooping bus
/// (Gigaplane-like, Table 2); the directory interconnect is the
/// NUMA-scale alternative ROADMAP item 2 calls for: per-line home
/// banks with owner + sharer-vector state, directed invalidations
/// instead of broadcast snoops, and point-to-point request delivery.
/// Both interconnects order every request at exactly one point, so
/// TLR's timestamp deferral, markers, and probes work unchanged on
/// either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interconnect {
    /// Broadcast snooping over the split-transaction address bus (the
    /// paper's machine). One global ordering point.
    #[default]
    Snooping,
    /// Home-node directory: per-bank ordering points, owner + sharer
    /// vector per line, directed request forwarding. Scales past the
    /// bus's 16-processor knee.
    Directory,
}

impl Interconnect {
    /// Parses an `--interconnect` flag value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "snoop" | "snooping" | "bus" => Ok(Interconnect::Snooping),
            "dir" | "directory" => Ok(Interconnect::Directory),
            other => Err(format!(
                "unknown interconnect {other:?} (expected \"snooping\" or \"directory\")"
            )),
        }
    }

    /// Short label for logs and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Interconnect::Snooping => "snooping",
            Interconnect::Directory => "directory",
        }
    }

    /// The largest processor count this interconnect supports: the
    /// broadcast bus is the paper's 16-way Gigaplane-class machine,
    /// the directory's sharer vectors are sized for 256-way NUMA.
    pub fn max_procs(self) -> usize {
        match self {
            Interconnect::Snooping => 16,
            Interconnect::Directory => 256,
        }
    }
}

impl std::fmt::Display for Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which contention-management policy resolves transactional
/// conflicts.
///
/// The paper fixes timestamp-order conflict resolution (§3.1.1); the
/// [`crate`]-level mechanism (deferral queues, markers, probes) is
/// policy-agnostic, and `tlr-core` resolves every conflict through a
/// `ConflictPolicy` implementation selected by this kind. See
/// `tlr_core::policy` for the decision points and per-policy livelock
/// analysis (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// The paper's policy: earlier timestamp wins, losers defer or
    /// restart, retained timestamps give starvation freedom. The
    /// default, byte-identical to the pre-policy-trait code.
    #[default]
    Timestamp,
    /// Requester always loses; NACKed requesters retry after a salted,
    /// seeded exponential backoff instead of a fixed pacing window.
    Backoff,
    /// Karma-style size priority: the transaction with the larger
    /// speculative read/write-set footprint wins, timestamp order
    /// breaks ties.
    Karma,
    /// Lazy-subscription SLE: lock-line invalidations no longer abort
    /// eagerly; the elided lock word is re-checked at commit time.
    /// Data conflicts still resolve in timestamp order.
    LazySub,
}

impl PolicyKind {
    /// Parses a `--policy` flag value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "timestamp" | "ts" => Ok(PolicyKind::Timestamp),
            "backoff" => Ok(PolicyKind::Backoff),
            "karma" => Ok(PolicyKind::Karma),
            "lazysub" | "lazy-sub" | "lazy-subscription" => Ok(PolicyKind::LazySub),
            other => Err(format!(
                "unknown policy {other:?} (expected \"timestamp\", \"backoff\", \"karma\" or \"lazysub\")"
            )),
        }
    }

    /// Short label for logs and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Timestamp => "timestamp",
            PolicyKind::Backoff => "backoff",
            PolicyKind::Karma => "karma",
            PolicyKind::LazySub => "lazysub",
        }
    }

    /// All policies, timestamp (the paper's) first.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::Timestamp, PolicyKind::Backoff, PolicyKind::Karma, PolicyKind::LazySub];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Process-wide configuration defaults, consulted when a configuration
/// is built.
///
/// One registry replaces the three copy-pasted atomics that used to
/// back `--engine`, `--interconnect` and `--profile`, and `--policy`
/// rides the same mechanism. The rules are unchanged: a binary's
/// `main` sets defaults once, before any sweep runs; library code and
/// tests must never write them (tests run concurrently in one process)
/// and instead use the [`MachineConfigBuilder`] setters.
pub struct Defaults {
    /// `0` = event-driven, `1` = cycle-stepped.
    engine: AtomicU8,
    /// `0` = snooping, `1` = directory.
    interconnect: AtomicU8,
    /// Whether new configurations profile ([`ProfConfig::on`]).
    profile: AtomicBool,
    /// Index into [`PolicyKind::ALL`].
    policy: AtomicU8,
}

/// The process-wide [`Defaults`] registry.
static DEFAULTS: Defaults = Defaults {
    engine: AtomicU8::new(0),
    interconnect: AtomicU8::new(0),
    profile: AtomicBool::new(false),
    policy: AtomicU8::new(0),
};

impl Defaults {
    /// The process-wide registry. Binaries set fields once in `main`;
    /// everything else only reads.
    pub fn get() -> &'static Defaults {
        &DEFAULTS
    }

    /// Sets the default engine.
    pub fn set_engine(&self, engine: Engine) {
        self.engine.store(engine as u8, Ordering::Relaxed);
    }

    /// The default engine new configurations start from.
    pub fn engine(&self) -> Engine {
        match self.engine.load(Ordering::Relaxed) {
            0 => Engine::EventDriven,
            _ => Engine::CycleStepped,
        }
    }

    /// Sets the default interconnect.
    pub fn set_interconnect(&self, interconnect: Interconnect) {
        self.interconnect.store(interconnect as u8, Ordering::Relaxed);
    }

    /// The default interconnect new configurations start from.
    pub fn interconnect(&self) -> Interconnect {
        match self.interconnect.load(Ordering::Relaxed) {
            0 => Interconnect::Snooping,
            _ => Interconnect::Directory,
        }
    }

    /// Sets the default profiling switch.
    pub fn set_profile(&self, on: bool) {
        self.profile.store(on, Ordering::Relaxed);
    }

    /// The default profiling knobs new configurations start from:
    /// [`ProfConfig::on`] after `set_profile(true)`, else
    /// [`ProfConfig::off`].
    pub fn profile(&self) -> ProfConfig {
        if self.profile.load(Ordering::Relaxed) {
            ProfConfig::on()
        } else {
            ProfConfig::off()
        }
    }

    /// Sets the default conflict policy.
    pub fn set_policy(&self, policy: PolicyKind) {
        self.policy.store(policy as u8, Ordering::Relaxed);
    }

    /// The default conflict policy new configurations start from.
    pub fn policy(&self) -> PolicyKind {
        match self.policy.load(Ordering::Relaxed) {
            1 => PolicyKind::Backoff,
            2 => PolicyKind::Karma,
            3 => PolicyKind::LazySub,
            _ => PolicyKind::Timestamp,
        }
    }
}

/// Sets the process-wide default engine. Call once, from a binary's
/// `main`, before building any configuration.
pub fn set_default_engine(engine: Engine) {
    Defaults::get().set_engine(engine);
}

/// The process-wide default engine new configurations start from.
pub fn default_engine() -> Engine {
    Defaults::get().engine()
}

/// Sets the process-wide default interconnect. Call once, from a
/// binary's `main`, before building any configuration.
pub fn set_default_interconnect(interconnect: Interconnect) {
    Defaults::get().set_interconnect(interconnect);
}

/// The process-wide default interconnect new configurations start
/// from.
pub fn default_interconnect() -> Interconnect {
    Defaults::get().interconnect()
}

/// Sets the process-wide default profiling switch. Call once, from a
/// binary's `main`, before building any configuration.
pub fn set_default_profile(on: bool) {
    Defaults::get().set_profile(on);
}

/// The process-wide default profiling knobs new configurations start
/// from.
pub fn default_profile() -> ProfConfig {
    Defaults::get().profile()
}

/// Sets the process-wide default conflict policy. Call once, from a
/// binary's `main`, before building any configuration.
pub fn set_default_policy(policy: PolicyKind) {
    Defaults::get().set_policy(policy);
}

/// The process-wide default conflict policy new configurations start
/// from.
pub fn default_policy() -> PolicyKind {
    Defaults::get().policy()
}

/// Which of the paper's four evaluated hardware/software configurations
/// a run uses (§5: BASE, BASE+SLE, BASE+SLE+TLR, MCS), plus the
/// `TLR-strict-ts` ablation of §3.2 / Figure 9.
///
/// `Base`, `Sle`, `Tlr` and `TlrStrictTs` all execute the *same*
/// test&test&set binary; `Mcs` executes an MCS-lock binary on `Base`
/// hardware (exactly the paper's methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Plain hardware; locks are actually acquired.
    Base,
    /// Plain hardware; the benchmark uses MCS queue locks.
    Mcs,
    /// Speculative Lock Elision only: elide locks, but any data
    /// conflict restarts the critical section and acquires the lock.
    Sle,
    /// Transactional Lock Removal (this paper): SLE plus
    /// timestamp-based conflict resolution with request deferral.
    Tlr,
    /// TLR with the single-block relaxation of §3.2 disabled:
    /// timestamp order is always enforced, even when only one block is
    /// contended. Shown in Figure 9 as `BASE+SLE+TLR-strict-ts`.
    TlrStrictTs,
}

impl Scheme {
    /// Whether the hardware attempts to elide lock acquisitions (SLE).
    pub fn elision_enabled(self) -> bool {
        matches!(self, Scheme::Sle | Scheme::Tlr | Scheme::TlrStrictTs)
    }

    /// Whether timestamp-based deferral (TLR proper) is active.
    pub fn tlr_enabled(self) -> bool {
        matches!(self, Scheme::Tlr | Scheme::TlrStrictTs)
    }

    /// Whether the §3.2 single-block timestamp relaxation is active.
    pub fn relax_single_block(self) -> bool {
        matches!(self, Scheme::Tlr)
    }

    /// Whether the benchmark program should be emitted with MCS locks
    /// instead of test&test&set locks.
    pub fn uses_mcs_locks(self) -> bool {
        matches!(self, Scheme::Mcs)
    }

    /// Short label used in benchmark output, matching the paper's
    /// figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Base => "BASE",
            Scheme::Mcs => "MCS",
            Scheme::Sle => "BASE+SLE",
            Scheme::Tlr => "BASE+SLE+TLR",
            Scheme::TlrStrictTs => "BASE+SLE+TLR-strict-ts",
        }
    }

    /// All schemes in the order the paper's figures present them.
    pub const ALL: [Scheme; 5] =
        [Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr, Scheme::TlrStrictTs];
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a conflict-winning processor retains ownership of a contested
/// block (§3): "Two policies to retain exclusive ownership of cache
/// blocks are NACK-based and deferral-based."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Buffer the incoming request and respond after commit (the
    /// paper's choice: needs no coherence-protocol support and hands
    /// the data directly to the waiter).
    #[default]
    Deferral,
    /// Refuse the request with a negative acknowledgement asserted at
    /// the bus ordering point (the transaction is annulled and the
    /// requester retries) — the coherence-protocol support the paper
    /// notes NACKs require. Requests already inside a coherence chain
    /// when the conflict arises still ride the deferral machinery.
    Nack,
}

/// How requests without timestamps (issued from outside any critical
/// section) interact with in-flight transactions (§2.2, last paragraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UntimestampedPolicy {
    /// Treat the un-timestamped request as having the latest timestamp
    /// in the system: it is deferrable and ordered after the current
    /// transaction. This is the paper's second option and our default.
    #[default]
    DeferAsLowestPriority,
    /// Trigger a misspeculation whenever an un-timestamped request
    /// conflicts; TLR is not applied in the presence of data races.
    Restart,
}

/// Memory-system latencies in cycles (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 access time on a hit.
    pub l1_hit: u64,
    /// Shared L2 access time.
    pub l2: u64,
    /// Main memory access time.
    pub memory: u64,
    /// Snoop latency on the broadcast address network.
    pub snoop: u64,
    /// Point-to-point pipelined data network latency.
    pub data_network: u64,
    /// Address-bus occupancy per transaction (arbitration + issue).
    pub bus_occupancy: u64,
    /// Pipeline redirection penalty charged on a misspeculation
    /// restart (the paper charges its 3-cycle branch-mispredict
    /// redirection penalty).
    pub restart_penalty: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 1,
            l2: 12,
            memory: 70,
            snoop: 20,
            data_network: 20,
            bus_occupancy: 4,
            restart_penalty: 3,
        }
    }
}

/// Full machine configuration (Table 2 of the paper plus the TLR
/// parameters of §3.3 and §5.3).
///
/// Construct through [`MachineConfig::builder`] (or the
/// [`MachineConfig::paper_default`] / [`MachineConfig::small`]
/// wrappers, which are equality-tested against their builder forms).
/// The struct is `#[non_exhaustive]`: literal construction outside
/// this crate does not compile, so new knobs can be added without
/// breaking downstream code. Direct field *mutation* after `build()`
/// is deprecated in favor of builder setters and will lose `pub`
/// access in a future revision.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MachineConfig {
    /// Number of processors (the paper evaluates 2..16).
    pub num_procs: usize,
    /// Which hardware scheme is active.
    pub scheme: Scheme,
    /// Log2 of the cache line size in bytes (64-byte lines).
    pub line_bytes_log2: u32,
    /// Number of L1 data-cache sets (128 KB, 4-way, 64-byte lines
    /// = 512 sets).
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Victim cache entries (fully associative; §3.3).
    pub victim_entries: usize,
    /// Speculative write-buffer capacity in unique cache lines
    /// (Table 2: 64-entry, 64 bytes wide).
    pub write_buffer_lines: usize,
    /// Non-speculative store-buffer entries (word-granularity stores).
    pub store_buffer_entries: usize,
    /// Outstanding misses per node (MSHRs).
    pub mshrs: usize,
    /// Entries in the hardware queue buffering deferred incoming
    /// requests (Figure 5).
    pub deferred_queue_entries: usize,
    /// Silent store-pair predictor entries (Table 2: 64).
    pub sle_predictor_entries: usize,
    /// Maximum simultaneously elided store pairs, i.e. lock nesting
    /// depth (Table 2: 8).
    pub max_elision_depth: usize,
    /// Entries in the PC-indexed read-modify-write predictor
    /// (Table 2: 128).
    pub rmw_predictor_entries: usize,
    /// Whether the read-modify-write predictor is enabled. The paper
    /// enables it for all experiments; `exp_rmw_predictor` turns it
    /// off to reproduce the BASE-no-opt comparison of §6.3.
    pub rmw_predictor_enabled: bool,
    /// Number of L2 sets (4 MB, 8-way, 64-byte lines = 8192 sets).
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Width in bits of the timestamp logical-clock field, for the
    /// fixed-size rollover handling discussed in §2.1.2.
    pub timestamp_bits: u32,
    /// Policy for conflicting un-timestamped requests.
    pub untimestamped_policy: UntimestampedPolicy,
    /// How conflict winners retain contested blocks (§3).
    pub retention: RetentionPolicy,
    /// Which contention-management policy resolves conflicts
    /// (`tlr_core::policy`). [`PolicyKind::Timestamp`] is the paper's
    /// and the default.
    pub policy: PolicyKind,
    /// Which coherence interconnect orders requests (snooping bus or
    /// home-node directory).
    pub interconnect: Interconnect,
    /// Directory home banks (independent ordering points). `0` means
    /// one bank per processor; ignored on the snooping bus.
    pub dir_banks: usize,
    /// Point-to-point request-network latency in cycles for directory
    /// mode: the flight time from a requester to a line's home bank.
    /// Matches the data network's 20 cycles by default; ignored on the
    /// snooping bus (whose requests arbitrate in place).
    pub req_network: u64,
    /// Memory-system latencies.
    pub latency: LatencyConfig,
    /// Maximum uniform random perturbation (cycles) added to memory
    /// latencies, per Alameldeen et al.; 0 disables perturbation.
    pub latency_jitter: u64,
    /// RNG seed for the run.
    pub seed: u64,
    /// Safety net: abort the simulation after this many cycles.
    pub max_cycles: u64,
    /// Fault-injection knobs ([`crate::fault`]). Defaults to
    /// [`FaultConfig::off`], which is bit-identical to a build without
    /// the chaos layer.
    pub faults: FaultConfig,
    /// Profiling knobs ([`crate::prof`]). Defaults to
    /// [`ProfConfig::off`], which is byte-identical to a build without
    /// the profiling layer.
    pub profile: ProfConfig,
    /// Which main loop drives the run. Both produce byte-identical
    /// results; see [`Engine`].
    pub engine: Engine,
}

impl MachineConfig {
    /// The paper's Table 2 parameter values, the base every builder
    /// starts from.
    fn table2(scheme: Scheme, num_procs: usize) -> Self {
        MachineConfig {
            num_procs,
            scheme,
            line_bytes_log2: 6,
            l1_sets: 512,
            l1_ways: 4,
            victim_entries: 16,
            write_buffer_lines: 64,
            store_buffer_entries: 64,
            mshrs: 16,
            deferred_queue_entries: 64,
            sle_predictor_entries: 64,
            max_elision_depth: 8,
            rmw_predictor_entries: 128,
            rmw_predictor_enabled: true,
            l2_sets: 8192,
            l2_ways: 8,
            timestamp_bits: 32,
            untimestamped_policy: UntimestampedPolicy::default(),
            retention: RetentionPolicy::default(),
            policy: default_policy(),
            interconnect: default_interconnect(),
            dir_banks: 0,
            req_network: 20,
            latency: LatencyConfig::default(),
            latency_jitter: 2,
            seed: 0x7a3d_5eed,
            max_cycles: 2_000_000_000,
            faults: FaultConfig::off(),
            profile: default_profile(),
            engine: default_engine(),
        }
    }

    /// A fluent builder starting from the Table 2 defaults
    /// (single-processor `Base`; set [`MachineConfigBuilder::scheme`]
    /// and [`MachineConfigBuilder::procs`] as needed).
    ///
    /// # Example
    ///
    /// ```
    /// use tlr_sim::config::{MachineConfig, Scheme};
    ///
    /// let cfg = MachineConfig::builder().scheme(Scheme::Tlr).procs(8).build();
    /// assert_eq!(cfg, MachineConfig::paper_default(Scheme::Tlr, 8));
    /// ```
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder { cfg: Self::table2(Scheme::Base, 1) }
    }

    /// The paper's Table 2 configuration for `num_procs` processors
    /// under `scheme`.
    pub fn paper_default(scheme: Scheme, num_procs: usize) -> Self {
        Self::builder().scheme(scheme).procs(num_procs).build()
    }

    /// A scaled-down configuration useful in unit tests: tiny caches
    /// so that capacity and victim-cache paths are easy to exercise.
    pub fn small(scheme: Scheme, num_procs: usize) -> Self {
        Self::builder().scheme(scheme).procs(num_procs).small_caches().build()
    }

    /// The architecturally guaranteed transaction footprint (§4): the
    /// number of distinct cache lines a critical section may *access*
    /// and still be assured a lock-free execution. "If the system has
    /// a 16 entry victim cache and a 4-way data cache, the programmer
    /// can be sure any transaction accessing 20 cache lines or less is
    /// ensured a lock-free execution." Worst case, every accessed line
    /// maps to one L1 set: its `l1_ways` ways plus the victim cache.
    pub fn guaranteed_txn_lines(&self) -> usize {
        self.l1_ways + self.victim_entries
    }

    /// The architecturally guaranteed number of distinct lines a
    /// critical section may *write*: additionally bounded by the
    /// speculative write buffer (§3.3).
    pub fn guaranteed_txn_written_lines(&self) -> usize {
        self.guaranteed_txn_lines().min(self.write_buffer_lines)
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_bytes_log2
    }

    /// Words (u64) per cache line.
    pub fn words_per_line(&self) -> usize {
        (self.line_bytes() / 8) as usize
    }
}

/// Fluent builder for [`MachineConfig`], created by
/// [`MachineConfig::builder`]. Starts from the Table 2 defaults so a
/// builder chain only states what differs from the paper's machine —
/// and fault knobs never become a fourth positional constructor
/// argument.
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the hardware scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the processor count.
    #[must_use]
    pub fn procs(mut self, num_procs: usize) -> Self {
        self.cfg.num_procs = num_procs;
        self
    }

    /// Replaces the memory-system latencies.
    #[must_use]
    pub fn latencies(mut self, latency: LatencyConfig) -> Self {
        self.cfg.latency = latency;
        self
    }

    /// Sets the conflict-winner retention policy.
    #[must_use]
    pub fn retention(mut self, retention: RetentionPolicy) -> Self {
        self.cfg.retention = retention;
        self
    }

    /// Selects the coherence interconnect (the snooping bus default or
    /// the home-node directory).
    #[must_use]
    pub fn interconnect(mut self, interconnect: Interconnect) -> Self {
        self.cfg.interconnect = interconnect;
        self
    }

    /// Sets the number of directory home banks (`0` = one per
    /// processor). Only meaningful with
    /// [`Interconnect::Directory`].
    #[must_use]
    pub fn dir_banks(mut self, banks: usize) -> Self {
        self.cfg.dir_banks = banks;
        self
    }

    /// Sets the directory request-network latency in cycles.
    #[must_use]
    pub fn req_network(mut self, latency: u64) -> Self {
        self.cfg.req_network = latency;
        self
    }

    /// Sets the policy for conflicting un-timestamped requests.
    #[must_use]
    pub fn untimestamped(mut self, policy: UntimestampedPolicy) -> Self {
        self.cfg.untimestamped_policy = policy;
        self
    }

    /// Selects the contention-management policy (the paper's
    /// [`PolicyKind::Timestamp`] default, or one of the alternatives
    /// in `tlr_core::policy`).
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Installs fault-injection knobs ([`crate::fault`]).
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Installs profiling knobs ([`crate::prof`]).
    #[must_use]
    pub fn profile(mut self, profile: ProfConfig) -> Self {
        self.cfg.profile = profile;
        self
    }

    /// Sets the machine RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the runaway-simulation safety net.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.cfg.max_cycles = max_cycles;
        self
    }

    /// Sets the timestamp logical-clock width in bits.
    #[must_use]
    pub fn timestamp_bits(mut self, bits: u32) -> Self {
        self.cfg.timestamp_bits = bits;
        self
    }

    /// Sets the maximum uniform latency perturbation in cycles.
    #[must_use]
    pub fn latency_jitter(mut self, jitter: u64) -> Self {
        self.cfg.latency_jitter = jitter;
        self
    }

    /// Selects the main-loop engine (the event-driven default or the
    /// cycle-stepped oracle).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Shrinks caches and buffers to the unit-test geometry of
    /// [`MachineConfig::small`] and disables latency jitter.
    #[must_use]
    pub fn small_caches(mut self) -> Self {
        self.cfg.l1_sets = 16;
        self.cfg.l1_ways = 2;
        self.cfg.victim_entries = 4;
        self.cfg.write_buffer_lines = 8;
        self.cfg.l2_sets = 64;
        self.cfg.l2_ways = 4;
        self.cfg.latency_jitter = 0;
        self
    }

    /// Finishes the chain.
    #[must_use]
    pub fn build(self) -> MachineConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let cfg = MachineConfig::paper_default(Scheme::Base, 16);
        assert_eq!(cfg.line_bytes(), 64);
        assert_eq!(cfg.words_per_line(), 8);
        // 128 KB 4-way with 64 B lines.
        assert_eq!(cfg.l1_sets * cfg.l1_ways * 64, 128 * 1024);
        // 4 MB 8-way with 64 B lines.
        assert_eq!(cfg.l2_sets * cfg.l2_ways * 64, 4 * 1024 * 1024);
        assert_eq!(cfg.latency.l2, 12);
        assert_eq!(cfg.latency.memory, 70);
        assert_eq!(cfg.latency.snoop, 20);
        assert_eq!(cfg.latency.data_network, 20);
        assert_eq!(cfg.sle_predictor_entries, 64);
        assert_eq!(cfg.max_elision_depth, 8);
        assert_eq!(cfg.rmw_predictor_entries, 128);
    }

    #[test]
    fn guaranteed_footprints_follow_the_paper_example() {
        let cfg = MachineConfig::paper_default(Scheme::Tlr, 16);
        // 4-way L1 + 16-entry victim cache = the paper's "20 cache
        // lines or less".
        assert_eq!(cfg.guaranteed_txn_lines(), 20);
        assert_eq!(cfg.guaranteed_txn_written_lines(), 20);
        let mut tiny = cfg.clone();
        tiny.write_buffer_lines = 8;
        assert_eq!(tiny.guaranteed_txn_written_lines(), 8);
    }

    #[test]
    fn scheme_flags() {
        assert!(!Scheme::Base.elision_enabled());
        assert!(!Scheme::Mcs.elision_enabled());
        assert!(Scheme::Sle.elision_enabled());
        assert!(!Scheme::Sle.tlr_enabled());
        assert!(Scheme::Tlr.tlr_enabled());
        assert!(Scheme::Tlr.relax_single_block());
        assert!(Scheme::TlrStrictTs.tlr_enabled());
        assert!(!Scheme::TlrStrictTs.relax_single_block());
        assert!(Scheme::Mcs.uses_mcs_locks());
    }

    #[test]
    fn scheme_labels_match_figures() {
        assert_eq!(Scheme::Tlr.to_string(), "BASE+SLE+TLR");
        assert_eq!(Scheme::TlrStrictTs.label(), "BASE+SLE+TLR-strict-ts");
    }

    #[test]
    fn builder_reproduces_the_named_constructors() {
        for scheme in Scheme::ALL {
            for procs in [1, 4, 16] {
                assert_eq!(
                    MachineConfig::builder().scheme(scheme).procs(procs).build(),
                    MachineConfig::paper_default(scheme, procs)
                );
                assert_eq!(
                    MachineConfig::builder().scheme(scheme).procs(procs).small_caches().build(),
                    MachineConfig::small(scheme, procs)
                );
            }
        }
    }

    #[test]
    fn builder_setters_land_on_the_right_fields() {
        let faults = FaultConfig::intensity(0xfa17, 2);
        let cfg = MachineConfig::builder()
            .scheme(Scheme::Tlr)
            .procs(8)
            .retention(RetentionPolicy::Nack)
            .untimestamped(UntimestampedPolicy::Restart)
            .timestamp_bits(16)
            .latency_jitter(0)
            .seed(42)
            .max_cycles(1_000)
            .faults(faults.clone())
            .build();
        assert_eq!(cfg.scheme, Scheme::Tlr);
        assert_eq!(cfg.num_procs, 8);
        assert_eq!(cfg.retention, RetentionPolicy::Nack);
        assert_eq!(cfg.untimestamped_policy, UntimestampedPolicy::Restart);
        assert_eq!(cfg.timestamp_bits, 16);
        assert_eq!(cfg.latency_jitter, 0);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.max_cycles, 1_000);
        assert_eq!(cfg.faults, faults);
    }

    #[test]
    fn engine_defaults_to_event_driven_and_builder_overrides() {
        assert_eq!(MachineConfig::paper_default(Scheme::Tlr, 4).engine, Engine::EventDriven);
        let cfg = MachineConfig::builder().engine(Engine::CycleStepped).build();
        assert_eq!(cfg.engine, Engine::CycleStepped);
        assert_eq!(Engine::parse("event"), Ok(Engine::EventDriven));
        assert_eq!(Engine::parse("cycle-stepped"), Ok(Engine::CycleStepped));
        assert!(Engine::parse("warp").is_err());
        assert_eq!(Engine::EventDriven.label(), "event");
    }

    #[test]
    fn interconnect_defaults_to_snooping_and_builder_overrides() {
        let cfg = MachineConfig::paper_default(Scheme::Tlr, 4);
        assert_eq!(cfg.interconnect, Interconnect::Snooping);
        assert_eq!(cfg.dir_banks, 0);
        assert_eq!(cfg.req_network, 20);
        let cfg = MachineConfig::builder()
            .interconnect(Interconnect::Directory)
            .dir_banks(8)
            .req_network(12)
            .build();
        assert_eq!(cfg.interconnect, Interconnect::Directory);
        assert_eq!(cfg.dir_banks, 8);
        assert_eq!(cfg.req_network, 12);
    }

    #[test]
    fn interconnect_parse_labels_and_limits() {
        assert_eq!(Interconnect::parse("snooping"), Ok(Interconnect::Snooping));
        assert_eq!(Interconnect::parse("bus"), Ok(Interconnect::Snooping));
        assert_eq!(Interconnect::parse("dir"), Ok(Interconnect::Directory));
        assert_eq!(Interconnect::parse("directory"), Ok(Interconnect::Directory));
        assert!(Interconnect::parse("mesh").is_err());
        assert_eq!(Interconnect::Snooping.label(), "snooping");
        assert_eq!(Interconnect::Directory.to_string(), "directory");
        assert_eq!(Interconnect::Snooping.max_procs(), 16);
        assert_eq!(Interconnect::Directory.max_procs(), 256);
    }

    #[test]
    fn policy_defaults_to_timestamp_and_builder_overrides() {
        let cfg = MachineConfig::paper_default(Scheme::Tlr, 4);
        assert_eq!(cfg.policy, PolicyKind::Timestamp);
        let cfg = MachineConfig::builder().policy(PolicyKind::Karma).build();
        assert_eq!(cfg.policy, PolicyKind::Karma);
    }

    #[test]
    fn policy_parse_labels_and_order() {
        assert_eq!(PolicyKind::parse("timestamp"), Ok(PolicyKind::Timestamp));
        assert_eq!(PolicyKind::parse("ts"), Ok(PolicyKind::Timestamp));
        assert_eq!(PolicyKind::parse("backoff"), Ok(PolicyKind::Backoff));
        assert_eq!(PolicyKind::parse("karma"), Ok(PolicyKind::Karma));
        assert_eq!(PolicyKind::parse("lazysub"), Ok(PolicyKind::LazySub));
        assert_eq!(PolicyKind::parse("lazy-subscription"), Ok(PolicyKind::LazySub));
        assert!(PolicyKind::parse("polite").is_err());
        for (i, p) in PolicyKind::ALL.into_iter().enumerate() {
            assert_eq!(p as u8 as usize, i, "Defaults registry relies on discriminant order");
            assert_eq!(PolicyKind::parse(p.label()), Ok(p), "labels must round-trip");
        }
        assert_eq!(PolicyKind::Timestamp.to_string(), "timestamp");
    }

    #[test]
    fn defaults_registry_reads_match_the_free_functions() {
        // Tests never *write* the registry (it is process-global), but
        // the read paths must agree with the legacy free functions.
        let d = Defaults::get();
        assert_eq!(d.engine(), default_engine());
        assert_eq!(d.interconnect(), default_interconnect());
        assert_eq!(d.profile(), default_profile());
        assert_eq!(d.policy(), default_policy());
    }

    #[test]
    fn default_faults_are_off() {
        assert_eq!(MachineConfig::paper_default(Scheme::Base, 1).faults, FaultConfig::off());
        assert_eq!(MachineConfig::small(Scheme::Tlr, 2).faults, FaultConfig::off());
    }

    #[test]
    fn default_profiling_is_off_and_builder_installs_it() {
        assert_eq!(MachineConfig::paper_default(Scheme::Base, 1).profile, ProfConfig::off());
        let cfg = MachineConfig::builder().profile(ProfConfig::on()).build();
        assert_eq!(cfg.profile, ProfConfig::on());
    }
}
