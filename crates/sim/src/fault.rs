//! Deterministic fault injection ("chaos") for the memory fabric.
//!
//! TLR's headline claims are robustness claims: serializability and
//! starvation freedom must survive arbitrary timing, conflict, and
//! resource-exhaustion patterns (§3.1, §4 of the paper). The fabric's
//! happy path — fixed latencies, FIFO bus arbitration, ample victim
//! and deferral capacity — never exercises them. This module supplies
//! seed-derived perturbations that do, while keeping every run exactly
//! reproducible:
//!
//! * **Network delivery jitter** ([`NetFault`]): point-to-point data
//!   messages are delayed by a bounded random amount at send time,
//!   which reorders delivery within the jitter window.
//! * **Bus arbitration perturbation** ([`BusFault`]): the round-robin
//!   scan occasionally starts at a random node instead of the fair
//!   successor, starving some requesters and favouring others.
//! * **Capacity squeezes** ([`FaultConfig::effective_victim_entries`]
//!   and siblings): per-node victim-cache, write-buffer, and
//!   deferral-queue capacities are reduced by a seed-derived amount,
//!   forcing the resource-fallback and NACK/restart paths.
//! * **Spurious transaction aborts** ([`FaultPlan`]): open
//!   transactions are annulled at seed-chosen cycle points, as if an
//!   adversarial conflict had hit.
//!
//! Faults may violate *timing* — extra latency, unfair arbitration,
//! wasted work — but never *safety*: every injected behaviour is one
//! the protocol must already tolerate (a slow network, a full buffer,
//! a lost conflict). The serializability oracle and the progress bound
//! therefore remain hard invariants under any fault intensity, which
//! is exactly what `check::fuzz::fault_matrix` asserts.
//!
//! All randomness derives from [`SimRng`] streams salted per injection
//! site, never from wall-clock time; the machine's own RNG fork
//! sequence is untouched, so [`FaultConfig::off`] (the default) is
//! bit-identical to a build without this module.

use crate::rng::SimRng;
use crate::Cycle;

/// Per-site stream salts: each injection point draws from its own
/// SplitMix64 stream so enabling one fault kind never perturbs the
/// sequence another sees.
const SALT_NET: u64 = 0x6e65_745f;
const SALT_BUS: u64 = 0x6275_735f;
const SALT_ABORT: u64 = 0x6162_6f72;
const SALT_VICTIM: u64 = 0x7663_5f73;
const SALT_WB: u64 = 0x7762_5f73;
const SALT_DEFER: u64 = 0x6471_5f73;

/// Denominator for the per-message / per-arbitration fault chances.
pub const CHANCE_DENOM: u64 = 1024;

/// Denominator for the per-cycle spurious-abort chance (aborts are
/// rare events; a finer grain keeps low intensities gentle).
pub const ABORT_DENOM: u64 = 1 << 20;

/// Fault-injection knobs, threaded through
/// [`crate::config::MachineConfig`]. The default ([`FaultConfig::off`])
/// disables every injection point and is guaranteed bit-identical to a
/// fault-free build: no fault RNG is ever created or advanced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Master switch. When false all other knobs are ignored.
    pub enabled: bool,
    /// Root seed for every fault stream (salted per injection site).
    pub seed: u64,
    /// Chance per network send, in units of 1/[`CHANCE_DENOM`], that
    /// the message's delivery is delayed.
    pub net_delay_chance: u32,
    /// Maximum extra delivery delay in cycles (the reorder window).
    pub net_delay_max: u64,
    /// Chance per bus arbitration, in units of 1/[`CHANCE_DENOM`],
    /// that the round-robin scan starts at a random node.
    pub bus_reorder_chance: u32,
    /// Maximum victim-cache entries withheld per node.
    pub victim_squeeze: usize,
    /// Maximum write-buffer lines withheld per node.
    pub write_buffer_squeeze: usize,
    /// Maximum deferral-queue entries withheld per node.
    pub deferral_squeeze: usize,
    /// Chance per in-transaction node-cycle, in units of
    /// 1/[`ABORT_DENOM`], that the open transaction is annulled.
    pub spurious_abort_chance: u32,
}

impl FaultConfig {
    /// The largest intensity level [`FaultConfig::intensity`] accepts.
    pub const MAX_INTENSITY: u32 = 4;

    /// No faults: the [`crate::config::MachineConfig`] default.
    /// Guaranteed bit-identical behaviour to a fault-free build.
    pub const fn off() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0,
            net_delay_chance: 0,
            net_delay_max: 0,
            bus_reorder_chance: 0,
            victim_squeeze: 0,
            write_buffer_squeeze: 0,
            deferral_squeeze: 0,
            spurious_abort_chance: 0,
        }
    }

    /// A graded preset: all five fault kinds active, scaled by
    /// `level` in `1..=MAX_INTENSITY` (level 0 returns
    /// [`FaultConfig::off`]). Levels are clamped to `MAX_INTENSITY`.
    pub fn intensity(seed: u64, level: u32) -> Self {
        if level == 0 {
            return FaultConfig::off();
        }
        let level = level.min(Self::MAX_INTENSITY);
        let l64 = u64::from(level);
        FaultConfig {
            enabled: true,
            seed,
            net_delay_chance: 64 * level,
            net_delay_max: 4 * l64,
            bus_reorder_chance: 128 * level,
            victim_squeeze: 3 * level as usize,
            write_buffer_squeeze: 12 * level as usize,
            deferral_squeeze: 12 * level as usize,
            spurious_abort_chance: 16 * level,
        }
    }

    /// Builds the machine-held spurious-abort plan, or `None` when the
    /// config is off (so the off path never constructs an RNG).
    pub fn plan(&self) -> Option<FaultPlan> {
        if !self.enabled {
            return None;
        }
        Some(FaultPlan {
            rng: SimRng::new(self.seed ^ SALT_ABORT),
            chance: u64::from(self.spurious_abort_chance),
        })
    }

    /// Builds the network-jitter hook, or `None` when off or inert.
    pub fn net_fault(&self) -> Option<NetFault> {
        if !self.enabled || self.net_delay_chance == 0 || self.net_delay_max == 0 {
            return None;
        }
        Some(NetFault {
            rng: SimRng::new(self.seed ^ SALT_NET),
            chance: u64::from(self.net_delay_chance),
            max_extra: self.net_delay_max,
            injected: 0,
        })
    }

    /// Builds the bus-arbitration hook, or `None` when off or inert.
    pub fn bus_fault(&self) -> Option<BusFault> {
        if !self.enabled || self.bus_reorder_chance == 0 {
            return None;
        }
        Some(BusFault {
            rng: SimRng::new(self.seed ^ SALT_BUS),
            chance: u64::from(self.bus_reorder_chance),
            injected: 0,
        })
    }

    /// Victim-cache capacity for `node` after the squeeze. A pure
    /// function of (fault seed, node), floored at one entry; identity
    /// when the config is off or the squeeze is zero.
    pub fn effective_victim_entries(&self, node: usize, base: usize) -> usize {
        self.squeeze(SALT_VICTIM, node, base, self.victim_squeeze)
    }

    /// Write-buffer capacity for `node` after the squeeze.
    pub fn effective_write_buffer_lines(&self, node: usize, base: usize) -> usize {
        self.squeeze(SALT_WB, node, base, self.write_buffer_squeeze)
    }

    /// Deferral-queue capacity for `node` after the squeeze.
    pub fn effective_deferred_queue_entries(&self, node: usize, base: usize) -> usize {
        self.squeeze(SALT_DEFER, node, base, self.deferral_squeeze)
    }

    fn squeeze(&self, salt: u64, node: usize, base: usize, max_withheld: usize) -> usize {
        if !self.enabled || max_withheld == 0 {
            return base;
        }
        let withheld = (SimRng::nth(self.seed ^ salt, node as u64) % (max_withheld as u64 + 1)) as usize;
        base.saturating_sub(withheld).max(1)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

/// The machine-held spurious-abort stream. One draw per in-transaction
/// node-cycle; since transaction state is itself deterministic, the
/// draw sequence — and therefore every injected abort — is a pure
/// function of (config, fault seed).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SimRng,
    chance: u64,
}

impl FaultPlan {
    /// Whether the fault stream annuls the open transaction at this
    /// node-cycle. Advances the stream by exactly one draw.
    pub fn spurious_abort_fires(&mut self) -> bool {
        self.chance > 0 && self.rng.below(ABORT_DENOM) < self.chance
    }
}

/// Network delivery-jitter hook, installed into `Network` when faults
/// are on. Delaying a message at send time reorders it relative to
/// messages sent up to `max_extra` cycles later — bounded reordering
/// with no protocol-visible loss.
#[derive(Debug, Clone)]
pub struct NetFault {
    rng: SimRng,
    chance: u64,
    max_extra: u64,
    injected: u64,
}

impl NetFault {
    /// Possibly delays a delivery cycle. Advances the stream by one
    /// draw per send (plus one more when the fault fires).
    pub fn perturb(&mut self, deliver_at: Cycle) -> Cycle {
        if self.rng.below(CHANCE_DENOM) < self.chance {
            self.injected += 1;
            deliver_at + 1 + self.rng.below(self.max_extra)
        } else {
            deliver_at
        }
    }

    /// Number of deliveries delayed so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

/// Bus arbitration-order hook, installed into `Bus` when faults are
/// on. Occasionally starts the grant scan at a random node instead of
/// the round-robin successor — unfair, but every request still drains,
/// so liveness stays with the protocol where it belongs.
#[derive(Debug, Clone)]
pub struct BusFault {
    rng: SimRng,
    chance: u64,
    injected: u64,
}

impl BusFault {
    /// Picks the scan start for an arbitration round over `nodes`
    /// queues. Advances the stream by one draw per round (plus one
    /// more when the fault fires).
    pub fn pick_start(&mut self, nodes: usize, default: usize) -> usize {
        if nodes > 0 && self.rng.below(CHANCE_DENOM) < self.chance {
            self.injected += 1;
            self.rng.below(nodes as u64) as usize
        } else {
            default
        }
    }

    /// Number of perturbed arbitration rounds so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert() {
        let f = FaultConfig::off();
        assert!(!f.enabled);
        assert!(f.plan().is_none());
        assert!(f.net_fault().is_none());
        assert!(f.bus_fault().is_none());
        assert_eq!(f.effective_victim_entries(3, 16), 16);
        assert_eq!(f.effective_write_buffer_lines(3, 64), 64);
        assert_eq!(f.effective_deferred_queue_entries(3, 64), 64);
        assert_eq!(FaultConfig::default(), FaultConfig::off());
    }

    #[test]
    fn intensity_zero_is_off_and_levels_scale() {
        assert_eq!(FaultConfig::intensity(9, 0), FaultConfig::off());
        let low = FaultConfig::intensity(9, 1);
        let high = FaultConfig::intensity(9, FaultConfig::MAX_INTENSITY);
        assert!(low.enabled && high.enabled);
        assert!(low.net_delay_chance < high.net_delay_chance);
        assert!(low.victim_squeeze < high.victim_squeeze);
        assert!(low.spurious_abort_chance < high.spurious_abort_chance);
        // Clamped above the maximum.
        assert_eq!(FaultConfig::intensity(9, 99), high);
    }

    #[test]
    fn squeezes_are_deterministic_bounded_and_floored() {
        let f = FaultConfig::intensity(0x5eed, 4);
        for node in 0..16 {
            let v = f.effective_victim_entries(node, 16);
            assert_eq!(v, f.effective_victim_entries(node, 16));
            assert!(v >= 16 - f.victim_squeeze && v <= 16);
            // A tiny base never squeezes to zero.
            assert!(f.effective_write_buffer_lines(node, 1) >= 1);
        }
        // Different sites use different streams: the withheld pattern
        // across nodes should not be identical for victim vs wb.
        let vic: Vec<usize> = (0..16).map(|n| 16 - f.effective_victim_entries(n, 16)).collect();
        let wb: Vec<usize> = (0..16).map(|n| 64 - f.effective_write_buffer_lines(n, 64)).collect();
        assert_ne!(vic, wb);
    }

    #[test]
    fn net_fault_delays_within_window_deterministically() {
        let f = FaultConfig::intensity(7, 4);
        let mut a = f.net_fault().unwrap();
        let mut b = f.net_fault().unwrap();
        let mut fired = false;
        for i in 0..2000u64 {
            let da = a.perturb(i);
            assert_eq!(da, b.perturb(i), "same seed, same stream");
            assert!(da >= i && da <= i + 1 + f.net_delay_max);
            fired |= da != i;
        }
        assert!(fired, "intensity 4 must actually delay some messages");
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn bus_fault_picks_valid_starts() {
        let f = FaultConfig::intensity(7, 4);
        let mut bf = f.bus_fault().unwrap();
        let mut perturbed = false;
        for i in 0..2000usize {
            let start = bf.pick_start(8, i % 8);
            assert!(start < 8);
            perturbed |= start != i % 8;
        }
        assert!(bf.injected() > 0);
        assert!(perturbed);
    }

    #[test]
    fn abort_plan_fires_rarely_and_reproducibly() {
        let f = FaultConfig::intensity(11, 4);
        let mut a = f.plan().unwrap();
        let mut b = f.plan().unwrap();
        let mut fires = 0u32;
        for _ in 0..200_000 {
            let fa = a.spurious_abort_fires();
            assert_eq!(fa, b.spurious_abort_fires());
            fires += u32::from(fa);
        }
        // chance = 64/2^20 => ~12 expected in 200k draws.
        assert!(fires > 0, "abort stream must fire at max intensity");
        assert!(fires < 1000, "abort stream must stay rare (got {fires})");
    }
}
