//! Export backends for the observability layer.
//!
//! Two formats, both built with the zero-dependency [`crate::json`]
//! writer:
//!
//! * [`chrome_trace_json`] — the Chrome/Perfetto trace-event format
//!   (`chrome://tracing`, <https://ui.perfetto.dev>). Transaction
//!   spans become `ph:"B"`/`ph:"E"` duration events on one track per
//!   node; attached protocol events and orphans become `ph:"i"`
//!   instants. Simulation cycles are written directly as the `ts`
//!   microsecond field: 1 µs of viewer time per cycle.
//! * [`metrics_json`] — a flat metrics document: run configuration,
//!   whole-machine totals, log2 histograms (critical-section length,
//!   commit latency, deferral depth, restarts per transaction), the
//!   top-N contended-line table, and per-node counters.
//! * [`profile_json`] — the flat profiling document behind
//!   `tlr-profile`: the epoch-sampled utilization timeline, the
//!   event-engine wake-source histogram, and the saturation verdict.
//!
//! [`chrome_trace_with_profile`] extends the Chrome trace with
//! Perfetto `ph:"C"` counter tracks (bus utilization %, queue depths,
//! scheduling mix) when a [`Profiler`] is supplied;
//! [`chrome_trace_json`] is the `None` case of the same writer, so an
//! unprofiled trace is byte-identical to what it always was.

use crate::json::JsonBuf;
use crate::prof::Profiler;
use crate::span::{SpanLog, SpanOutcome, TxnSpan};
use crate::stats::{Hist, MachineStats};
use crate::trace::TraceKind;
use crate::NodeId;

fn instant(j: &mut JsonBuf, ts: u64, tid: NodeId, name: &str, line: u64, peer: NodeId) {
    j.obj()
        .str_field("ph", "i")
        .str_field("s", "t")
        .u64_field("pid", 0)
        .u64_field("tid", tid as u64)
        .u64_field("ts", ts)
        .str_field("name", name)
        .obj_key("args")
        .str_field("line", &format!("{line:#x}"))
        .u64_field("peer", peer as u64)
        .end_obj()
        .end_obj();
}

fn span_events(j: &mut JsonBuf, s: &TxnSpan) {
    let name = format!("txn {:#x}", s.lock_addr);
    j.obj()
        .str_field("ph", "B")
        .u64_field("pid", 0)
        .u64_field("tid", s.node as u64)
        .u64_field("ts", s.start)
        .str_field("name", &name)
        .str_field("cat", s.outcome.label())
        .obj_key("args")
        .str_field("lock", &format!("{:#x}", s.lock_addr))
        .u64_field("attempt", s.attempt as u64)
        .str_field("outcome", s.outcome.label())
        .u64_field("deferrals", s.deferrals() as u64)
        .u64_field("markers", s.markers() as u64)
        .u64_field("probes", s.probes() as u64);
    match &s.outcome {
        SpanOutcome::Committed { read_set, write_set, commit_wait } => {
            j.u64_field("read_set", *read_set as u64)
                .u64_field("write_set", *write_set as u64)
                .u64_field("commit_wait", *commit_wait);
        }
        SpanOutcome::Restarted { line } => {
            j.str_field("conflict_line", &format!("{line:#x}"));
        }
        SpanOutcome::FellBack { reason } => {
            j.str_field("reason", reason);
        }
        SpanOutcome::Open => {}
    }
    j.end_obj().end_obj();
    for e in &s.events {
        let (name, line, peer): (&str, u64, NodeId) = match &e.kind {
            TraceKind::Defer { line, from, .. } => ("Defer", *line, *from),
            TraceKind::ServiceDeferred { line, to } => ("ServiceDeferred", *line, *to),
            TraceKind::ConflictLost { line, to } => ("ConflictLost", *line, *to),
            TraceKind::Marker { line, to } => ("Marker", *line, *to),
            TraceKind::Probe { line, to } => ("Probe", *line, *to),
            TraceKind::NackSent { line, to } => ("Nack", *line, *to),
            TraceKind::LockAcquired { lock_addr } => ("LockAcquired", *lock_addr, e.node),
            TraceKind::LockReleased { lock_addr } => ("LockReleased", *lock_addr, e.node),
            _ => continue,
        };
        instant(j, e.cycle, e.node, name, line, peer);
    }
    // A span's end must not precede its instants in viewer z-order;
    // emit E last (ts ties are resolved by event order).
    j.obj()
        .str_field("ph", "E")
        .u64_field("pid", 0)
        .u64_field("tid", s.node as u64)
        .u64_field("ts", s.end.max(s.start + 1))
        .str_field("name", &name)
        .end_obj();
}

fn counter(j: &mut JsonBuf, ts: u64, name: &str, value: f64) {
    j.obj()
        .str_field("ph", "C")
        .u64_field("pid", 0)
        .u64_field("ts", ts)
        .str_field("name", name)
        .obj_key("args")
        .f64_field("value", value)
        .end_obj()
        .end_obj();
}

/// Appends one Perfetto counter track per profiled gauge: a `ph:"C"`
/// event at each sample's start cycle, plus a closing event at the end
/// of the timeline so the last epoch renders with its full width.
fn counter_tracks(j: &mut JsonBuf, p: &Profiler, bus_occupancy: u64) {
    let samples = p.samples();
    let series: [(&str, &dyn Fn(&crate::prof::Sample) -> f64); 8] = [
        ("bus utilization %", &|s| s.bus_utilization(bus_occupancy) * 100.0),
        ("net queue depth", &|s| s.net_depth as f64),
        ("snoop queue depth", &|s| s.snoop_depth as f64),
        ("outstanding MSHRs", &|s| s.mshrs as f64),
        ("deferred depth", &|s| s.deferred as f64),
        ("active nodes", &|s| s.active_nodes as f64),
        ("idle nodes", &|s| s.idle_nodes as f64),
        ("spin nodes", &|s| s.spin_nodes as f64),
    ];
    for (name, value) in series {
        for s in samples {
            counter(j, s.start, name, value(s));
        }
        if let Some(last) = samples.last() {
            counter(j, last.start + last.cycles, name, value(last));
        }
    }
}

/// Renders a span log as a Chrome/Perfetto `trace.json` document.
/// Identical to [`chrome_trace_with_profile`] with no profiler.
pub fn chrome_trace_json(log: &SpanLog, num_nodes: usize) -> String {
    chrome_trace_with_profile(log, num_nodes, None, 0)
}

/// Renders a span log as a Chrome/Perfetto `trace.json` document,
/// appending counter tracks from `profile` when one is supplied
/// (`bus_occupancy` converts ordered-transaction counts to busy-cycle
/// percentages). With `profile: None` the output is byte-for-byte
/// [`chrome_trace_json`].
pub fn chrome_trace_with_profile(
    log: &SpanLog,
    num_nodes: usize,
    profile: Option<&Profiler>,
    bus_occupancy: u64,
) -> String {
    let mut j = JsonBuf::new();
    j.obj().str_field("displayTimeUnit", "ms").arr_key("traceEvents");
    for node in 0..num_nodes {
        j.obj()
            .str_field("ph", "M")
            .str_field("name", "thread_name")
            .u64_field("pid", 0)
            .u64_field("tid", node as u64)
            .obj_key("args")
            .str_field("name", &format!("node {node}"))
            .end_obj()
            .end_obj();
    }
    for s in &log.spans {
        span_events(&mut j, s);
    }
    for e in &log.orphans {
        let (name, line, peer): (&str, u64, NodeId) = match &e.kind {
            TraceKind::Defer { line, from, .. } => ("Defer", *line, *from),
            TraceKind::ServiceDeferred { line, to } => ("ServiceDeferred", *line, *to),
            TraceKind::ConflictLost { line, to } => ("ConflictLost", *line, *to),
            TraceKind::Marker { line, to } => ("Marker", *line, *to),
            TraceKind::Probe { line, to } => ("Probe", *line, *to),
            TraceKind::NackSent { line, to } => ("Nack", *line, *to),
            TraceKind::LockAcquired { lock_addr } => ("LockAcquired", *lock_addr, e.node),
            TraceKind::LockReleased { lock_addr } => ("LockReleased", *lock_addr, e.node),
            _ => continue,
        };
        instant(&mut j, e.cycle, e.node, name, line, peer);
    }
    if let Some(p) = profile {
        counter_tracks(&mut j, p, bus_occupancy);
    }
    j.end_arr();
    j.obj_key("otherData")
        .u64_field("dropped_events", log.dropped_events)
        .u64_field("spans", log.spans.len() as u64)
        .end_obj();
    j.end_obj();
    j.finish()
}

/// Writes one histogram as `{count,sum,min,max,mean,buckets:[...]}`.
pub fn hist_fields(j: &mut JsonBuf, key: &str, h: &Hist) {
    j.obj_key(key)
        .u64_field("count", h.count())
        .u64_field("sum", h.sum())
        .u64_field("min", h.min())
        .u64_field("max", h.max())
        .f64_field("mean", h.mean())
        .arr_key("buckets");
    for (lo, count) in h.nonzero_buckets() {
        j.obj().u64_field("ge", lo).u64_field("count", count).end_obj();
    }
    j.end_arr().end_obj();
}

/// Renders a run's aggregate metrics as a flat JSON document.
pub fn metrics_json(
    workload: &str,
    scheme: &str,
    procs: usize,
    stats: &MachineStats,
    top_n: usize,
) -> String {
    let mut j = JsonBuf::new();
    j.obj()
        .str_field("workload", workload)
        .str_field("scheme", scheme)
        .u64_field("procs", procs as u64)
        .u64_field("parallel_cycles", stats.parallel_cycles);
    j.obj_key("totals")
        .u64_field("elisions_started", stats.sum(|n| n.elisions_started))
        .u64_field("commits", stats.total_commits())
        .u64_field("restarts", stats.total_restarts())
        .u64_field("fallbacks", stats.total_fallbacks())
        .u64_field("aborts_descheduled", stats.sum(|n| n.aborts_descheduled))
        .u64_field("wasted_cycles", stats.total_wasted_cycles())
        .u64_field("lock_cycles", stats.total_lock_cycles())
        .u64_field("requests_deferred", stats.sum(|n| n.requests_deferred))
        .u64_field("conflicts_lost", stats.sum(|n| n.conflicts_lost))
        .u64_field("markers_sent", stats.sum(|n| n.markers_sent))
        .u64_field("probes_sent", stats.sum(|n| n.probes_sent))
        .u64_field("nacks_sent", stats.sum(|n| n.nacks_sent))
        .u64_field("single_block_relaxations", stats.sum(|n| n.single_block_relaxations))
        .end_obj();
    j.obj_key("bus")
        .u64_field("get_s", stats.bus.get_s)
        .u64_field("get_x", stats.bus.get_x)
        .u64_field("upgrades", stats.bus.upgrades)
        .u64_field("writebacks", stats.bus.writebacks)
        .u64_field("arbitration_wait_cycles", stats.bus.arbitration_wait_cycles)
        .u64_field("cache_to_cache_transfers", stats.cache_to_cache_transfers)
        .u64_field("l2_supplies", stats.l2_supplies)
        .u64_field("memory_supplies", stats.memory_supplies)
        .end_obj();
    j.obj_key("histograms");
    hist_fields(&mut j, "cs_length_cycles", &stats.obs.cs_length);
    hist_fields(&mut j, "commit_latency_cycles", &stats.obs.commit_latency);
    hist_fields(&mut j, "deferral_queue_depth", &stats.obs.deferral_depth);
    hist_fields(&mut j, "restarts_per_txn", &stats.obs.restarts_per_txn);
    j.end_obj();
    j.arr_key("contended_lines");
    for (line, conflicts) in stats.obs.conflicts.top_n(top_n) {
        j.obj()
            .str_field("line", &format!("{line:#x}"))
            .u64_field("conflicts", conflicts)
            .end_obj();
    }
    j.end_arr();
    j.arr_key("nodes");
    for (id, n) in stats.nodes.iter().enumerate() {
        j.obj()
            .u64_field("node", id as u64)
            .u64_field("instructions", n.instructions)
            .u64_field("elisions_started", n.elisions_started)
            .u64_field("commits", n.commits)
            .u64_field("restarts", n.restarts())
            .u64_field("fallbacks", n.fallbacks())
            .u64_field("wasted_cycles", n.wasted_cycles)
            .u64_field("requests_deferred", n.requests_deferred)
            .u64_field("conflicts_lost", n.conflicts_lost)
            .u64_field("busy_cycles", n.busy_cycles)
            .u64_field("lock_stall_cycles", n.lock_stall_cycles)
            .u64_field("data_stall_cycles", n.data_stall_cycles)
            .u64_field("commit_wait_cycles", n.commit_wait_cycles)
            .end_obj();
    }
    j.end_arr().end_obj();
    j.finish()
}

/// Renders a run profile as a flat JSON document: identification,
/// whole-run utilization and verdict, engine self-profiling counters
/// with the wake-source histogram, and the sampled timeline.
pub fn profile_json(
    workload: &str,
    scheme: &str,
    procs: usize,
    p: &Profiler,
    bus_occupancy: u64,
) -> String {
    let mut j = JsonBuf::new();
    j.obj()
        .str_field("workload", workload)
        .str_field("scheme", scheme)
        .u64_field("procs", procs as u64)
        .u64_field("epoch_cycles", p.epoch())
        .f64_field("bus_utilization", p.bus_utilization(bus_occupancy))
        .str_field("verdict", &p.saturation_verdict(bus_occupancy, procs));
    let e = &p.engine;
    j.obj_key("engine")
        .u64_field("steps", e.steps)
        .u64_field("live_ticks", e.live_ticks)
        .u64_field("skipped_cycles", e.skipped_cycles)
        .u64_field("burst_entries", e.burst_entries)
        .u64_field("burst_cycles", e.burst_cycles)
        .u64_field("burst_ticks", e.burst_ticks)
        .u64_field("spin_settles", e.spin_settles)
        .u64_field("spin_settle_cycles", e.spin_settle_cycles)
        .u64_field("idle_settles", e.idle_settles)
        .u64_field("idle_settle_cycles", e.idle_settle_cycles)
        .arr_key("wake_sources");
    for (label, count) in e.wake_breakdown() {
        j.obj().str_field("source", label).u64_field("steps", count).end_obj();
    }
    j.end_arr().end_obj();
    j.arr_key("samples");
    for s in p.samples() {
        j.obj()
            .u64_field("start", s.start)
            .u64_field("cycles", s.cycles)
            .u64_field("bus_ordered", s.bus_ordered)
            .u64_field("net_sent", s.net_sent)
            .u64_field("net_depth", s.net_depth as u64)
            .u64_field("snoop_depth", s.snoop_depth as u64)
            .u64_field("mshrs", s.mshrs as u64)
            .u64_field("deferred", s.deferred as u64)
            .u64_field("active_nodes", s.active_nodes as u64)
            .u64_field("idle_nodes", s.idle_nodes as u64)
            .u64_field("spin_nodes", s.spin_nodes as u64)
            .end_obj();
    }
    j.end_arr().end_obj();
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::span::SpanLog;
    use crate::trace::{Trace, TraceKind};

    fn sample_log() -> SpanLog {
        let mut t = Trace::enabled();
        t.record(10, 0, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(12, 1, TraceKind::TxnStart { lock_addr: 0x40 });
        t.record(15, 0, TraceKind::Defer { line: 0x80, from: 1, depth: 1 });
        t.record(16, 1, TraceKind::Probe { line: 0x80, to: 0 });
        t.record(18, 1, TraceKind::TxnRestart { line: 0x80 });
        t.record(20, 0, TraceKind::TxnCommit { read_set: 2, write_set: 1, commit_wait: 3 });
        t.record(21, 0, TraceKind::LockReleased { lock_addr: 0x40 });
        SpanLog::build(&t)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_pairs() {
        let s = chrome_trace_json(&sample_log(), 2);
        validate(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert_eq!(s.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(s.matches("\"ph\":\"E\"").count(), 2);
        assert!(s.contains("\"name\":\"Defer\""));
        assert!(s.contains("\"name\":\"Probe\""));
        assert!(s.contains("\"name\":\"node 1\""));
        assert!(s.contains("\"conflict_line\":\"0x80\""));
    }

    #[test]
    fn metrics_json_is_valid_and_carries_histograms() {
        let mut stats = MachineStats::new(2);
        stats.parallel_cycles = 1234;
        stats.node_mut(0).commits = 3;
        stats.obs.cs_length.record(100);
        stats.obs.commit_latency.record(5);
        stats.obs.deferral_depth.record(1);
        stats.obs.restarts_per_txn.record(0);
        stats.obs.conflicts.record(0x80);
        stats.obs.conflicts.record(0x80);
        stats.obs.conflicts.record(0xc0);
        let s = metrics_json("single_counter", "TLR", 2, &stats, 8);
        validate(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert!(s.contains("\"cs_length_cycles\""));
        assert!(s.contains("\"commit_latency_cycles\""));
        assert!(s.contains("\"deferral_queue_depth\""));
        assert!(s.contains("\"restarts_per_txn\""));
        // 0x80 (2 conflicts) must rank before 0xc0 (1).
        let a = s.find("\"0x80\"").unwrap();
        let b = s.find("\"0xc0\"").unwrap();
        assert!(a < b);
    }

    fn sample_profiler() -> Profiler {
        use crate::prof::{Gauges, ProfConfig, WakeSource};
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.sample(16, Gauges { bus_ordered: 2, spin_nodes: 1, ..Default::default() });
        p.sample(32, Gauges { bus_ordered: 5, mshrs: 3, ..Default::default() });
        p.engine.record_wake(WakeSource::Bus);
        p.engine.steps = 10;
        p
    }

    #[test]
    fn unprofiled_trace_is_byte_identical_to_the_plain_writer() {
        let log = sample_log();
        assert_eq!(chrome_trace_json(&log, 2), chrome_trace_with_profile(&log, 2, None, 4));
    }

    #[test]
    fn profiled_trace_adds_counter_tracks() {
        let log = sample_log();
        let p = sample_profiler();
        let s = chrome_trace_with_profile(&log, 2, Some(&p), 4);
        validate(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        // Two samples + one closing event per series.
        assert_eq!(s.matches("\"ph\":\"C\"").count(), 8 * 3);
        assert!(s.contains("\"name\":\"bus utilization %\""));
        assert!(s.contains("\"name\":\"spin nodes\""));
        // 2 ordered x occupancy 4 over 16 cycles = 50%.
        assert!(s.contains("\"value\":50"));
    }

    #[test]
    fn profile_json_is_valid_and_carries_the_timeline() {
        let p = sample_profiler();
        let s = profile_json("single_counter", "TLR", 2, &p, 4);
        validate(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert!(s.contains("\"verdict\""));
        assert!(s.contains("\"wake_sources\""));
        assert!(s.contains("\"source\":\"bus grant\""));
        assert!(s.contains("\"epoch_cycles\":16"));
        // Second sample's delta: 5 - 2 = 3 ordered.
        assert!(s.contains("\"bus_ordered\":3"));
    }
}
