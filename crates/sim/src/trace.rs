//! Optional event tracing.
//!
//! A [`Trace`] records interesting machine events (transaction starts,
//! conflicts, deferrals, probes, commits) with their cycle numbers.
//! Tracing is used by the integration tests that replay the paper's
//! worked examples (Figures 2, 4 and 6) and by the
//! `conflict_walkthrough` example; it is disabled (zero-cost beyond a
//! branch) during benchmark runs.

use crate::{Cycle, NodeId};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: Cycle,
    /// Node the event occurred at.
    pub node: NodeId,
    /// Event kind.
    pub kind: TraceKind,
}

/// The kinds of events the machine can record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A lock elision began a speculative transaction; the payload is
    /// the lock address.
    TxnStart { lock_addr: u64 },
    /// A transaction committed lock-free.
    TxnCommit,
    /// A transaction restarted; the payload is the line that
    /// conflicted.
    TxnRestart { line: u64 },
    /// Elision abandoned; the lock will be acquired.
    TxnFallback { reason: &'static str },
    /// An incoming request was deferred (conflict won); `from` is the
    /// requesting node.
    Defer { line: u64, from: NodeId },
    /// A deferred request was finally serviced.
    ServiceDeferred { line: u64, to: NodeId },
    /// A conflict was lost to an earlier timestamp.
    ConflictLost { line: u64, to: NodeId },
    /// A marker message was sent (§3.1.1).
    Marker { line: u64, to: NodeId },
    /// A probe propagated a conflicting timestamp upstream (§3.1.1).
    Probe { line: u64, to: NodeId },
    /// A lock was actually acquired (BASE behaviour or fallback).
    LockAcquired { lock_addr: u64 },
    /// A lock was released by an actual store.
    LockReleased { lock_addr: u64 },
}

/// An event log. When disabled, [`Trace::record`] is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a disabled trace (the default for benchmark runs).
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace { enabled: true, events: Vec::new() }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if tracing is enabled.
    pub fn record(&mut self, cycle: Cycle, node: NodeId, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { cycle, node, kind });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one node, in order.
    pub fn events_for(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// Counts events matching a predicate.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, f: F) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(1, 0, TraceKind::TxnCommit);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(1, 0, TraceKind::TxnStart { lock_addr: 64 });
        t.record(5, 1, TraceKind::TxnCommit);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].cycle, 1);
        assert_eq!(t.events_for(1).count(), 1);
        assert_eq!(t.count(|e| matches!(e.kind, TraceKind::TxnCommit)), 1);
    }
}
