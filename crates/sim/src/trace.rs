//! Transaction-lifecycle event tracing.
//!
//! A [`Trace`] records machine events (transaction starts, conflicts,
//! deferrals, probes, commits) with their cycle numbers into a
//! *bounded ring buffer*: long fuzz runs no longer accumulate
//! unbounded memory, and the newest events — the ones that explain a
//! failure — are always retained. The [`crate::span`] module folds the
//! flat event stream into per-transaction spans, and
//! [`crate::export`] renders both as Chrome/Perfetto `trace.json`.
//!
//! Tracing is used by the integration tests that replay the paper's
//! worked examples (Figures 2, 4 and 6), by the serializability
//! oracle, and by the `tlr-trace` binary; it is disabled (zero-cost
//! beyond a branch) during benchmark runs.

use crate::{Cycle, NodeId};

/// Default ring capacity for [`Trace::enabled`]: generous enough that
/// every worked-example test and oracle run sees its full history,
/// small enough that a multi-hour fuzz session stays bounded.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: Cycle,
    /// Node the event occurred at.
    pub node: NodeId,
    /// Event kind.
    pub kind: TraceKind,
}

/// The kinds of events the machine can record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A lock elision began a speculative transaction; the payload is
    /// the lock address.
    TxnStart { lock_addr: u64 },
    /// A transaction committed lock-free. `read_set`/`write_set` are
    /// the transactional line footprints at commit; `commit_wait` is
    /// the number of cycles spent in the commit phase waiting for
    /// write-buffer lines to become writable.
    TxnCommit { read_set: u32, write_set: u32, commit_wait: u64 },
    /// A transaction restarted; the payload is the line that
    /// conflicted (0 when unattributed).
    TxnRestart { line: u64 },
    /// Elision abandoned; the lock will be acquired.
    TxnFallback { reason: &'static str },
    /// An incoming request was deferred (conflict won); `from` is the
    /// requesting node, `depth` the deferral-queue depth including
    /// this entry.
    Defer { line: u64, from: NodeId, depth: u32 },
    /// A deferred request was finally serviced.
    ServiceDeferred { line: u64, to: NodeId },
    /// A conflict was lost to an earlier timestamp.
    ConflictLost { line: u64, to: NodeId },
    /// A marker message was sent (§3.1.1).
    Marker { line: u64, to: NodeId },
    /// A probe propagated a conflicting timestamp upstream (§3.1.1).
    Probe { line: u64, to: NodeId },
    /// A request was refused at the bus ordering point (NACK
    /// retention, §3).
    NackSent { line: u64, to: NodeId },
    /// A lock was actually acquired (BASE behaviour or fallback).
    LockAcquired { lock_addr: u64 },
    /// A lock was released by an actual store.
    LockReleased { lock_addr: u64 },
    /// The chaos layer injected a fault ([`crate::fault`]). `kind` is
    /// the injection-site label (`"spurious_abort"`, `"net_delay"`,
    /// `"bus_arbitration"`); `payload` is site-specific (the injection
    /// count for fabric sites, 0 for aborts).
    FaultInjected { kind: &'static str, payload: u64 },
}

impl TraceKind {
    /// Short lowercase label used by the exporters and span dumps.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::TxnStart { .. } => "txn_start",
            TraceKind::TxnCommit { .. } => "txn_commit",
            TraceKind::TxnRestart { .. } => "txn_restart",
            TraceKind::TxnFallback { .. } => "txn_fallback",
            TraceKind::Defer { .. } => "defer",
            TraceKind::ServiceDeferred { .. } => "service_deferred",
            TraceKind::ConflictLost { .. } => "conflict_lost",
            TraceKind::Marker { .. } => "marker",
            TraceKind::Probe { .. } => "probe",
            TraceKind::NackSent { .. } => "nack",
            TraceKind::LockAcquired { .. } => "lock_acquired",
            TraceKind::LockReleased { .. } => "lock_released",
            TraceKind::FaultInjected { .. } => "fault_injected",
        }
    }

    /// Whether this event ends a transaction span.
    pub fn ends_span(&self) -> bool {
        matches!(
            self,
            TraceKind::TxnCommit { .. } | TraceKind::TxnRestart { .. } | TraceKind::TxnFallback { .. }
        )
    }
}

/// A bounded event log. When disabled, [`Trace::record`] is a no-op;
/// when the ring fills, the oldest events are overwritten and
/// [`Trace::dropped`] counts the loss.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    /// Ring storage; once `events.len() == capacity`, `start` marks
    /// the oldest element and new events overwrite in place.
    events: Vec<TraceEvent>,
    start: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace (the default for benchmark runs).
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace with the default ring capacity.
    pub fn enabled() -> Self {
        Trace::enabled_with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an enabled trace retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be at least 1");
        Trace { enabled: true, capacity, events: Vec::new(), start: 0, dropped: 0 }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records an event if tracing is enabled.
    pub fn record(&mut self, cycle: Cycle, node: NodeId, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent { cycle, node, kind };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.events.split_at(self.start.min(self.events.len()));
        head.iter().chain(tail.iter())
    }

    /// Events of one node, oldest first.
    pub fn events_for(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events().filter(move |e| e.node == node)
    }

    /// Counts retained events matching a predicate.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, f: F) -> usize {
        self.events().filter(|e| f(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit() -> TraceKind {
        TraceKind::TxnCommit { read_set: 0, write_set: 0, commit_wait: 0 }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(1, 0, commit());
        assert_eq!(t.events().count(), 0);
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(1, 0, TraceKind::TxnStart { lock_addr: 64 });
        t.record(5, 1, commit());
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.events().next().unwrap().cycle, 1);
        assert_eq!(t.events_for(1).count(), 1);
        assert_eq!(t.count(|e| matches!(e.kind, TraceKind::TxnCommit { .. })), 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = Trace::enabled_with_capacity(4);
        for i in 0..10u64 {
            t.record(i, 0, TraceKind::TxnRestart { line: i });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest evicted, order preserved");
    }

    #[test]
    fn ring_exact_capacity_drops_nothing() {
        let mut t = Trace::enabled_with_capacity(3);
        for i in 0..3u64 {
            t.record(i, 0, TraceKind::TxnRestart { line: 0 });
        }
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events().count(), 3);
    }

    #[test]
    fn labels_and_span_ends() {
        assert_eq!(commit().label(), "txn_commit");
        assert!(commit().ends_span());
        assert!(TraceKind::TxnFallback { reason: "io" }.ends_span());
        assert!(!TraceKind::Marker { line: 1, to: 0 }.ends_span());
        let fault = TraceKind::FaultInjected { kind: "spurious_abort", payload: 0 };
        assert_eq!(fault.label(), "fault_injected");
        assert!(!fault.ends_span(), "an injected fault attaches to the open span");
    }
}
