//! Run statistics.
//!
//! The paper reports wall-clock parallel execution cycles and, for
//! Figure 11, a breakdown into cycles attributable to lock-variable
//! accesses versus everything else (accounted at instruction commit:
//! the instruction that stalls commit is charged the stall). These
//! structures collect exactly those quantities plus the event counts
//! needed by the ablation experiments.

use crate::NodeId;

/// Per-processor statistics. All fields are plain counters; the struct
/// is a passive data structure with public fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Dynamic instructions executed (including re-executions after a
    /// misspeculation restart).
    pub instructions: u64,
    /// Committed loads (architectural, excludes squashed work).
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Load-linked operations.
    pub ll_ops: u64,
    /// Successful store-conditionals (actually performed, not elided).
    pub sc_success: u64,
    /// Failed store-conditionals.
    pub sc_fail: u64,
    /// Store-conditionals elided by SLE (treated as transaction start).
    pub sc_elided: u64,

    /// L1 hits (including speculative-write-buffer forwarding).
    pub l1_hits: u64,
    /// L1 misses that allocated an MSHR.
    pub l1_misses: u64,
    /// Misses satisfied by the victim cache.
    pub victim_hits: u64,
    /// Loads upgraded to exclusive fetches by the read-modify-write
    /// predictor (§3.1.2).
    pub rmw_upgraded_loads: u64,

    /// Cycles the core retired work (ALU ops, delays, cache-hit
    /// accesses).
    pub busy_cycles: u64,
    /// Cycles stalled on a memory access to a lock variable. Together
    /// with `lock_busy_cycles` this is Figure 11's "lock contribution".
    pub lock_stall_cycles: u64,
    /// Busy cycles spent executing accesses to lock variables (spin
    /// reads that hit, lock writes).
    pub lock_busy_cycles: u64,
    /// Cycles stalled on any other memory access.
    pub data_stall_cycles: u64,
    /// Cycles stalled because the store buffer was full.
    pub store_buffer_full_cycles: u64,
    /// Cycles waiting at commit for outstanding exclusive requests.
    pub commit_wait_cycles: u64,
    /// Cycles after this thread finished while others still ran.
    pub done_cycles: u64,
    /// Cycles the thread was descheduled by an external driver (§4):
    /// the core did not tick at all.
    pub paused_cycles: u64,
    /// Cycles spent on one-off transitions none of the categories
    /// above claim: the tick that records the thread's finish time,
    /// the tick a commit completes on, the tick an injected abort
    /// annuls a transaction, and the I/O dispatch tick. Kept separate
    /// so the eight categories above keep their historical meanings
    /// while the per-node attribution still sums exactly to the run's
    /// elapsed cycles (the [`NodeStats::check_cycle_accounting`]
    /// identity).
    pub other_cycles: u64,

    /// Transactions started (lock elisions).
    pub elisions_started: u64,
    /// Transactions committed lock-free.
    pub commits: u64,
    /// Restarts caused by losing a timestamp conflict or by a data
    /// conflict (SLE).
    pub restarts_conflict: u64,
    /// Restarts caused by invalidation of a shared-state block that
    /// could not be deferred (§3.1.2 upgrade-induced violations).
    pub restarts_sharer_invalidation: u64,
    /// Restarts caused by a write to the elided lock variable itself.
    pub restarts_lock_write: u64,
    /// Elision abandoned: speculative buffering resources exhausted
    /// (write buffer / cache + victim cache), §3.3.
    pub fallbacks_resource: u64,
    /// Elision abandoned: operation that cannot be undone (I/O).
    pub fallbacks_io: u64,
    /// Elision abandoned: nesting depth exceeded.
    pub fallbacks_nesting: u64,
    /// Elision abandoned after repeated conflicts (SLE gives up and
    /// acquires the lock).
    pub fallbacks_conflict: u64,

    /// Incoming requests this node deferred (winner side of a
    /// conflict).
    pub requests_deferred: u64,
    /// Conflicts this node lost (serviced an earlier-timestamp request
    /// and restarted or gave up ownership).
    pub conflicts_lost: u64,
    /// Marker messages sent (§3.1.1).
    pub markers_sent: u64,
    /// Probe messages sent upstream (§3.1.1).
    pub probes_sent: u64,
    /// Probe messages received.
    pub probes_received: u64,
    /// Deferrals that used the §3.2 single-block relaxation to avoid a
    /// timestamp-induced restart.
    pub single_block_relaxations: u64,
    /// Negative acknowledgements sent (NACK retention policy).
    pub nacks_sent: u64,
    /// Negative acknowledgements received (requests that must retry).
    pub nacks_received: u64,

    /// Speculative episodes discarded because the workload descheduled
    /// the thread mid-elision (neither a restart nor a fallback — the
    /// critical section is re-run from scratch later).
    pub aborts_descheduled: u64,
    /// Transactions annulled by the fault-injection layer
    /// ([`crate::fault`]): spurious aborts that take the plain restart
    /// path, never the fallback path.
    pub aborts_injected: u64,
    /// Cycles of speculative work thrown away by restarts and
    /// conflict fallbacks: for each discarded episode, the cycles
    /// between transaction start and abort.
    pub wasted_cycles: u64,
}

impl NodeStats {
    /// Total cycles attributed to lock-variable accesses (Figure 11's
    /// lock contribution).
    pub fn lock_cycles(&self) -> u64 {
        self.lock_stall_cycles + self.lock_busy_cycles
    }

    /// Sum of every per-cycle attribution category. At the end of a
    /// run this equals the machine's elapsed cycle count for every
    /// node — each node-cycle is charged to exactly one category.
    pub fn attributed_cycles(&self) -> u64 {
        self.busy_cycles
            + self.lock_busy_cycles
            + self.data_stall_cycles
            + self.lock_stall_cycles
            + self.store_buffer_full_cycles
            + self.commit_wait_cycles
            + self.done_cycles
            + self.paused_cycles
            + self.other_cycles
    }

    /// The categories of [`NodeStats::attributed_cycles`] as
    /// `(label, value)` pairs, in report order.
    pub fn cycle_categories(&self) -> [(&'static str, u64); 9] {
        [
            ("busy", self.busy_cycles),
            ("lock busy", self.lock_busy_cycles),
            ("data stall", self.data_stall_cycles),
            ("lock stall", self.lock_stall_cycles),
            ("store-buffer full", self.store_buffer_full_cycles),
            ("commit wait", self.commit_wait_cycles),
            ("done (barrier)", self.done_cycles),
            ("paused", self.paused_cycles),
            ("other (transitions)", self.other_cycles),
        ]
    }

    /// Checks the machine-level cycle-accounting identity for this
    /// node: every elapsed cycle must be charged to exactly one
    /// category, so the categories sum to `elapsed`.
    ///
    /// # Errors
    ///
    /// Returns a description of the drift.
    pub fn check_cycle_accounting(&self, node: NodeId, elapsed: u64) -> Result<(), String> {
        let attributed = self.attributed_cycles();
        if attributed == elapsed {
            Ok(())
        } else {
            Err(format!(
                "node {node}: cycle accounting drift: attributed {attributed} != elapsed \
                 {elapsed} (busy {} + lock_busy {} + data_stall {} + lock_stall {} + sb_full {} \
                 + commit_wait {} + done {} + paused {} + other {})",
                self.busy_cycles,
                self.lock_busy_cycles,
                self.data_stall_cycles,
                self.lock_stall_cycles,
                self.store_buffer_full_cycles,
                self.commit_wait_cycles,
                self.done_cycles,
                self.paused_cycles,
                self.other_cycles,
            ))
        }
    }

    /// Total elision abandonments (lock actually acquired).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks_resource
            + self.fallbacks_io
            + self.fallbacks_nesting
            + self.fallbacks_conflict
    }

    /// Total misspeculation restarts.
    pub fn restarts(&self) -> u64 {
        self.restarts_conflict + self.restarts_sharer_invalidation + self.restarts_lock_write
    }

    /// Checks the transaction-lifecycle accounting identity: at
    /// quiescence every started elision must have ended exactly one
    /// way — commit, restart, fallback, or descheduling abort.
    ///
    /// `fallbacks_conflict` is deliberately excluded: the SLE
    /// conflict-fallback path counts the same abort as both a
    /// `restarts_conflict` (the speculation was discarded) and a
    /// `fallbacks_conflict` (the retry acquires the lock), so adding
    /// it would double-count.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance.
    pub fn check_txn_accounting(&self, node: NodeId) -> Result<(), String> {
        let ended = self.commits
            + self.restarts()
            + self.fallbacks_resource
            + self.fallbacks_io
            + self.fallbacks_nesting
            + self.aborts_descheduled
            + self.aborts_injected;
        if self.elisions_started == ended {
            Ok(())
        } else {
            Err(format!(
                "node {node}: txn accounting drift: started {} != ended {} \
                 (commits {} + restarts {} + fallbacks[res {} io {} nest {}] + desched {} \
                 + injected {})",
                self.elisions_started,
                ended,
                self.commits,
                self.restarts(),
                self.fallbacks_resource,
                self.fallbacks_io,
                self.fallbacks_nesting,
                self.aborts_descheduled,
                self.aborts_injected,
            ))
        }
    }
}

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket 0 counts the value 0; bucket `k` (k ≥ 1) counts values in
/// `[2^(k-1), 2^k)`. 65 buckets cover the full `u64` range, so
/// recording never saturates or reallocates — the structure is a flat
/// array suitable for the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound of a bucket (inclusive).
    pub fn bucket_lo(k: usize) -> u64 {
        if k <= 1 {
            k as u64
        } else {
            1u64 << (k - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`) estimated from the log2
    /// buckets, or `None` when the histogram is empty.
    ///
    /// The true sample values inside a bucket are unknown, so the
    /// estimate uses the bucket-midpoint convention: walking buckets
    /// in ascending order, the first bucket whose cumulative count
    /// reaches `ceil(p/100 x count)` (at least one sample, so p=0
    /// yields the minimum bucket) answers with its midpoint —
    /// `(lo + hi) / 2` for bucket `k` covering `[2^(k-1), 2^k)`,
    /// exact for the single-valued buckets 0 and 1. The error is
    /// bounded by half the bucket width, which is the resolution the
    /// log2 layout buys.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // ceil(p/100 * count), floored at 1 sample.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_lo(k);
                let hi = if k <= 1 { lo } else { (1u64 << k) - 1 };
                return Some(lo + (hi - lo) / 2);
            }
        }
        unreachable!("rank <= count implies a bucket reaches it")
    }

    /// Non-empty buckets as `(bucket_lo, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (Self::bucket_lo(k), c))
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-cache-line conflict counts: the contention heatmap.
///
/// Every conflict resolution (defer, lose, NACK, sharer invalidation)
/// charges the line it happened on; [`ConflictMap::top_n`] yields the
/// hottest lines for the export and the `--json` summaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictMap {
    lines: std::collections::BTreeMap<u64, u64>,
}

impl ConflictMap {
    /// An empty map.
    pub fn new() -> Self {
        ConflictMap::default()
    }

    /// Charges one conflict to `line`.
    pub fn record(&mut self, line: u64) {
        *self.lines.entry(line).or_insert(0) += 1;
    }

    /// Number of distinct lines that saw a conflict.
    pub fn distinct_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total conflicts across all lines.
    pub fn total(&self) -> u64 {
        self.lines.values().sum()
    }

    /// The `n` most contended lines as `(line_addr, conflicts)`,
    /// hottest first (ties broken by address for determinism).
    pub fn top_n(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.lines.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Aggregated observability metrics for one run: the histogram and
/// heatmap layer the ISSUE 2 tentpole adds on top of the flat
/// counters. All recording happens on transaction-boundary or
/// conflict paths, never per cycle, so the cost is negligible even
/// with tracing disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsStats {
    /// Critical-section length in cycles (start → commit/acquire
    /// release), committed episodes only.
    pub cs_length: Hist,
    /// Cycles spent inside the commit phase (waiting for write-buffer
    /// lines to drain/become writable).
    pub commit_latency: Hist,
    /// Deferral-queue depth observed at each new deferral.
    pub deferral_depth: Hist,
    /// Restarts absorbed before each critical section finally
    /// completed (committed or fell back).
    pub restarts_per_txn: Hist,
    /// Per-line conflict heatmap.
    pub conflicts: ConflictMap,
}

/// Counts of injected faults ([`crate::fault`]), one counter per
/// injection site. All zero when [`crate::fault::FaultConfig::off`]
/// is in effect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Network deliveries delayed (and thereby possibly reordered).
    pub net_delays: u64,
    /// Bus arbitration rounds whose scan start was perturbed.
    pub bus_reorders: u64,
    /// Transactions annulled by the spurious-abort stream (equals the
    /// sum of per-node `aborts_injected`).
    pub spurious_aborts: u64,
    /// Victim-cache entries withheld, summed over nodes.
    pub victim_entries_withheld: u64,
    /// Write-buffer lines withheld, summed over nodes.
    pub write_buffer_lines_withheld: u64,
    /// Deferral-queue entries withheld, summed over nodes.
    pub deferral_entries_withheld: u64,
}

impl FaultStats {
    /// Total dynamic fault injections (capacity squeezes are static
    /// configuration, not dynamic events, and are excluded).
    pub fn total_injected(&self) -> u64 {
        self.net_delays + self.bus_reorders + self.spurious_aborts
    }
}

/// Counts of bus transactions by kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read-shared requests.
    pub get_s: u64,
    /// Read-exclusive requests (`rd_X` in the paper's figures).
    pub get_x: u64,
    /// Upgrade requests (S -> M without data transfer).
    pub upgrades: u64,
    /// Writebacks of dirty lines.
    pub writebacks: u64,
    /// Cycles a request waited for bus arbitration.
    pub arbitration_wait_cycles: u64,
}

impl BusStats {
    /// Total address-bus transactions.
    pub fn total(&self) -> u64 {
        self.get_s + self.get_x + self.upgrades + self.writebacks
    }
}

/// Home-directory activity (all zero on snooping machines).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Requests ordered across all home banks. Each occupies its bank
    /// for the configured occupancy window, so
    /// `requests_ordered * occupancy / (banks * elapsed)` is the mean
    /// per-bank occupancy — the directory's saturation metric.
    pub requests_ordered: u64,
    /// Request flights sent toward the home banks.
    pub requests_sent: u64,
    /// Number of home banks the machine was built with.
    pub banks: u64,
}

/// Whole-machine statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Per-node counters.
    pub nodes: Vec<NodeStats>,
    /// Address-bus activity.
    pub bus: BusStats,
    /// Home-directory activity (directory interconnect only).
    pub dir: DirStats,
    /// Data responses supplied cache-to-cache.
    pub cache_to_cache_transfers: u64,
    /// Data responses supplied by the shared L2.
    pub l2_supplies: u64,
    /// Data responses supplied by memory.
    pub memory_supplies: u64,
    /// Wall-clock cycle at which the last thread finished: the paper's
    /// "parallel execution cycle count".
    pub parallel_cycles: u64,
    /// Total cycles the machine ran, including the post-barrier drain
    /// window (writebacks retiring after the last thread finished).
    /// Every node ticks once per elapsed cycle, so this is the
    /// right-hand side of the cycle-accounting identity. Zero until
    /// the run finalizes.
    pub elapsed_cycles: u64,
    /// Histogram/heatmap aggregates (ISSUE 2 observability layer).
    pub obs: ObsStats,
    /// Fault-injection counters (all zero when faults are off).
    pub faults: FaultStats,
}

impl MachineStats {
    /// Creates statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        MachineStats { nodes: vec![NodeStats::default(); n], ..Default::default() }
    }

    /// Mutable access to one node's counters.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeStats {
        &mut self.nodes[id]
    }

    /// Sum of a per-node counter over all nodes.
    pub fn sum<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Aggregate lock-attributed cycles across nodes (Figure 11).
    pub fn total_lock_cycles(&self) -> u64 {
        self.sum(NodeStats::lock_cycles)
    }

    /// Aggregate restarts across nodes.
    pub fn total_restarts(&self) -> u64 {
        self.sum(NodeStats::restarts)
    }

    /// Aggregate commits across nodes.
    pub fn total_commits(&self) -> u64 {
        self.sum(|n| n.commits)
    }

    /// Aggregate fallbacks (lock acquisitions after abandoning
    /// elision) across nodes.
    pub fn total_fallbacks(&self) -> u64 {
        self.sum(NodeStats::fallbacks)
    }

    /// Aggregate wasted speculative cycles across nodes.
    pub fn total_wasted_cycles(&self) -> u64 {
        self.sum(|n| n.wasted_cycles)
    }

    /// Runs [`NodeStats::check_txn_accounting`] for every node.
    ///
    /// # Errors
    ///
    /// Returns the first node's imbalance description.
    pub fn check_txn_accounting(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            n.check_txn_accounting(id)?;
        }
        Ok(())
    }

    /// Runs [`NodeStats::check_cycle_accounting`] for every node
    /// against the finalized [`MachineStats::elapsed_cycles`]: the
    /// "where did every cycle go" identity — each category sums to
    /// exactly `elapsed_cycles x procs` machine-wide.
    ///
    /// # Errors
    ///
    /// Returns the first node's drift description.
    pub fn check_cycle_accounting(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            n.check_cycle_accounting(id, self.elapsed_cycles)?;
        }
        Ok(())
    }

    /// Aggregate attributed cycles across nodes (equals
    /// `elapsed_cycles x nodes.len()` once the identity holds).
    pub fn total_attributed_cycles(&self) -> u64 {
        self.sum(NodeStats::attributed_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_nodes() {
        let mut s = MachineStats::new(3);
        s.node_mut(0).commits = 2;
        s.node_mut(2).commits = 5;
        s.node_mut(1).restarts_conflict = 1;
        s.node_mut(1).restarts_lock_write = 4;
        assert_eq!(s.total_commits(), 7);
        assert_eq!(s.total_restarts(), 5);
    }

    #[test]
    fn lock_cycles_combines_stall_and_busy() {
        let n = NodeStats { lock_stall_cycles: 10, lock_busy_cycles: 3, ..Default::default() };
        assert_eq!(n.lock_cycles(), 13);
    }

    #[test]
    fn bus_total() {
        let b = BusStats { get_s: 1, get_x: 2, upgrades: 3, writebacks: 4, ..Default::default() };
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn hist_buckets_are_log2() {
        let mut h = Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4,7 -> 3;
        // 8 -> 4; 1024 -> 11; u64::MAX -> 64.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1 << 10, 1), (1 << 63, 1)]
        );
    }

    #[test]
    fn hist_merge_and_mean() {
        let mut a = Hist::new();
        a.record(2);
        a.record(4);
        let mut b = Hist::new();
        b.record(6);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12);
        assert!((a.mean() - 4.0).abs() < 1e-9);
        assert_eq!(Hist::new().mean(), 0.0);
        assert_eq!(Hist::new().min(), 0);
    }

    #[test]
    fn hist_percentile_uses_bucket_midpoints() {
        assert_eq!(Hist::new().percentile(50.0), None);

        let mut h = Hist::new();
        h.record(0);
        assert_eq!(h.percentile(50.0), Some(0), "bucket 0 is exact");
        assert_eq!(h.percentile(99.0), Some(0));

        let mut h = Hist::new();
        h.record(1);
        assert_eq!(h.percentile(0.0), Some(1), "p0 is the minimum bucket");
        assert_eq!(h.percentile(100.0), Some(1), "bucket 1 is exact");

        // 10 samples in bucket 3 ([4,8), midpoint 5) and one in
        // bucket 11 ([1024,2048), midpoint 1535).
        let mut h = Hist::new();
        for _ in 0..10 {
            h.record(6);
        }
        h.record(1024);
        assert_eq!(h.percentile(50.0), Some(5));
        assert_eq!(h.percentile(90.0), Some(5), "rank 10 of 11 still bucket 3");
        assert_eq!(h.percentile(95.0), Some(1535));
        assert_eq!(h.percentile(99.0), Some(1535));

        // Percentiles survive a merge.
        let mut a = Hist::new();
        a.record(2);
        let mut b = Hist::new();
        for _ in 0..9 {
            b.record(100);
        }
        a.merge(&b);
        assert_eq!(a.percentile(10.0), Some(2));
        // Bucket 7 covers [64,128), midpoint 95.
        assert_eq!(a.percentile(50.0), Some(95));
    }

    #[test]
    fn cycle_accounting_balances() {
        let mut n = NodeStats {
            busy_cycles: 40,
            lock_busy_cycles: 5,
            data_stall_cycles: 20,
            lock_stall_cycles: 10,
            store_buffer_full_cycles: 3,
            commit_wait_cycles: 2,
            done_cycles: 12,
            paused_cycles: 6,
            other_cycles: 2,
            ..Default::default()
        };
        assert_eq!(n.attributed_cycles(), 100);
        n.check_cycle_accounting(0, 100).unwrap();
        let err = n.check_cycle_accounting(3, 101).unwrap_err();
        assert!(err.contains("node 3"), "{err}");
        assert!(err.contains("attributed 100"), "{err}");
        n.busy_cycles += 1;
        n.check_cycle_accounting(3, 101).unwrap();

        let labels: Vec<_> = n.cycle_categories().iter().map(|&(l, _)| l).collect();
        assert_eq!(labels.len(), 9);
        let total: u64 = n.cycle_categories().iter().map(|&(_, v)| v).sum();
        assert_eq!(total, n.attributed_cycles(), "categories cover the identity");
    }

    #[test]
    fn machine_cycle_accounting_names_the_offender() {
        let mut m = MachineStats::new(2);
        m.elapsed_cycles = 50;
        m.node_mut(0).busy_cycles = 50;
        m.node_mut(1).busy_cycles = 30;
        m.node_mut(1).done_cycles = 19;
        let err = m.check_cycle_accounting().unwrap_err();
        assert!(err.contains("node 1"), "{err}");
        m.node_mut(1).other_cycles = 1;
        m.check_cycle_accounting().unwrap();
        assert_eq!(m.total_attributed_cycles(), 100);
    }

    #[test]
    fn conflict_map_top_n_is_deterministic() {
        let mut m = ConflictMap::new();
        for _ in 0..3 {
            m.record(0x1000);
        }
        m.record(0x2000);
        m.record(0x3000);
        assert_eq!(m.distinct_lines(), 3);
        assert_eq!(m.total(), 5);
        // Tie between 0x2000 and 0x3000 breaks by address.
        assert_eq!(m.top_n(2), vec![(0x1000, 3), (0x2000, 1)]);
        assert_eq!(m.top_n(10).len(), 3);
    }

    #[test]
    fn txn_accounting_balances() {
        let mut n = NodeStats {
            elisions_started: 10,
            commits: 5,
            restarts_conflict: 2,
            fallbacks_resource: 1,
            fallbacks_io: 1,
            aborts_descheduled: 1,
            ..Default::default()
        };
        n.check_txn_accounting(0).unwrap();
        // The SLE conflict fallback double-counts restarts_conflict +
        // fallbacks_conflict for one abort; the check must tolerate it.
        n.restarts_conflict += 1;
        n.fallbacks_conflict += 1;
        n.elisions_started += 1;
        n.check_txn_accounting(0).unwrap();
        n.commits += 1;
        assert!(n.check_txn_accounting(0).is_err());

        let mut m = MachineStats::new(2);
        m.node_mut(1).elisions_started = 1;
        assert!(m.check_txn_accounting().unwrap_err().contains("node 1"));
        m.node_mut(1).commits = 1;
        m.check_txn_accounting().unwrap();
    }

    #[test]
    fn fallback_and_restart_rollups() {
        let n = NodeStats {
            fallbacks_resource: 1,
            fallbacks_io: 2,
            fallbacks_nesting: 3,
            fallbacks_conflict: 4,
            restarts_conflict: 5,
            restarts_sharer_invalidation: 6,
            restarts_lock_write: 7,
            ..Default::default()
        };
        assert_eq!(n.fallbacks(), 10);
        assert_eq!(n.restarts(), 18);
    }

    #[test]
    fn injected_aborts_balance_the_accounting() {
        let n = NodeStats {
            elisions_started: 4,
            commits: 2,
            restarts_conflict: 1,
            aborts_injected: 1,
            ..Default::default()
        };
        n.check_txn_accounting(0).unwrap();
    }

    #[test]
    fn fault_stats_total_counts_dynamic_sites_only() {
        let f = FaultStats {
            net_delays: 3,
            bus_reorders: 2,
            spurious_aborts: 1,
            victim_entries_withheld: 9,
            write_buffer_lines_withheld: 9,
            deferral_entries_withheld: 9,
        };
        assert_eq!(f.total_injected(), 6);
        assert_eq!(FaultStats::default().total_injected(), 0);
    }
}
