//! Run statistics.
//!
//! The paper reports wall-clock parallel execution cycles and, for
//! Figure 11, a breakdown into cycles attributable to lock-variable
//! accesses versus everything else (accounted at instruction commit:
//! the instruction that stalls commit is charged the stall). These
//! structures collect exactly those quantities plus the event counts
//! needed by the ablation experiments.

use crate::NodeId;

/// Per-processor statistics. All fields are plain counters; the struct
/// is a passive data structure with public fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Dynamic instructions executed (including re-executions after a
    /// misspeculation restart).
    pub instructions: u64,
    /// Committed loads (architectural, excludes squashed work).
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Load-linked operations.
    pub ll_ops: u64,
    /// Successful store-conditionals (actually performed, not elided).
    pub sc_success: u64,
    /// Failed store-conditionals.
    pub sc_fail: u64,
    /// Store-conditionals elided by SLE (treated as transaction start).
    pub sc_elided: u64,

    /// L1 hits (including speculative-write-buffer forwarding).
    pub l1_hits: u64,
    /// L1 misses that allocated an MSHR.
    pub l1_misses: u64,
    /// Misses satisfied by the victim cache.
    pub victim_hits: u64,
    /// Loads upgraded to exclusive fetches by the read-modify-write
    /// predictor (§3.1.2).
    pub rmw_upgraded_loads: u64,

    /// Cycles the core retired work (ALU ops, delays, cache-hit
    /// accesses).
    pub busy_cycles: u64,
    /// Cycles stalled on a memory access to a lock variable. Together
    /// with `lock_busy_cycles` this is Figure 11's "lock contribution".
    pub lock_stall_cycles: u64,
    /// Busy cycles spent executing accesses to lock variables (spin
    /// reads that hit, lock writes).
    pub lock_busy_cycles: u64,
    /// Cycles stalled on any other memory access.
    pub data_stall_cycles: u64,
    /// Cycles stalled because the store buffer was full.
    pub store_buffer_full_cycles: u64,
    /// Cycles waiting at commit for outstanding exclusive requests.
    pub commit_wait_cycles: u64,
    /// Cycles after this thread finished while others still ran.
    pub done_cycles: u64,

    /// Transactions started (lock elisions).
    pub elisions_started: u64,
    /// Transactions committed lock-free.
    pub commits: u64,
    /// Restarts caused by losing a timestamp conflict or by a data
    /// conflict (SLE).
    pub restarts_conflict: u64,
    /// Restarts caused by invalidation of a shared-state block that
    /// could not be deferred (§3.1.2 upgrade-induced violations).
    pub restarts_sharer_invalidation: u64,
    /// Restarts caused by a write to the elided lock variable itself.
    pub restarts_lock_write: u64,
    /// Elision abandoned: speculative buffering resources exhausted
    /// (write buffer / cache + victim cache), §3.3.
    pub fallbacks_resource: u64,
    /// Elision abandoned: operation that cannot be undone (I/O).
    pub fallbacks_io: u64,
    /// Elision abandoned: nesting depth exceeded.
    pub fallbacks_nesting: u64,
    /// Elision abandoned after repeated conflicts (SLE gives up and
    /// acquires the lock).
    pub fallbacks_conflict: u64,

    /// Incoming requests this node deferred (winner side of a
    /// conflict).
    pub requests_deferred: u64,
    /// Conflicts this node lost (serviced an earlier-timestamp request
    /// and restarted or gave up ownership).
    pub conflicts_lost: u64,
    /// Marker messages sent (§3.1.1).
    pub markers_sent: u64,
    /// Probe messages sent upstream (§3.1.1).
    pub probes_sent: u64,
    /// Probe messages received.
    pub probes_received: u64,
    /// Deferrals that used the §3.2 single-block relaxation to avoid a
    /// timestamp-induced restart.
    pub single_block_relaxations: u64,
    /// Negative acknowledgements sent (NACK retention policy).
    pub nacks_sent: u64,
    /// Negative acknowledgements received (requests that must retry).
    pub nacks_received: u64,
}

impl NodeStats {
    /// Total cycles attributed to lock-variable accesses (Figure 11's
    /// lock contribution).
    pub fn lock_cycles(&self) -> u64 {
        self.lock_stall_cycles + self.lock_busy_cycles
    }

    /// Total elision abandonments (lock actually acquired).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks_resource
            + self.fallbacks_io
            + self.fallbacks_nesting
            + self.fallbacks_conflict
    }

    /// Total misspeculation restarts.
    pub fn restarts(&self) -> u64 {
        self.restarts_conflict + self.restarts_sharer_invalidation + self.restarts_lock_write
    }
}

/// Counts of bus transactions by kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read-shared requests.
    pub get_s: u64,
    /// Read-exclusive requests (`rd_X` in the paper's figures).
    pub get_x: u64,
    /// Upgrade requests (S -> M without data transfer).
    pub upgrades: u64,
    /// Writebacks of dirty lines.
    pub writebacks: u64,
    /// Cycles a request waited for bus arbitration.
    pub arbitration_wait_cycles: u64,
}

impl BusStats {
    /// Total address-bus transactions.
    pub fn total(&self) -> u64 {
        self.get_s + self.get_x + self.upgrades + self.writebacks
    }
}

/// Whole-machine statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Per-node counters.
    pub nodes: Vec<NodeStats>,
    /// Address-bus activity.
    pub bus: BusStats,
    /// Data responses supplied cache-to-cache.
    pub cache_to_cache_transfers: u64,
    /// Data responses supplied by the shared L2.
    pub l2_supplies: u64,
    /// Data responses supplied by memory.
    pub memory_supplies: u64,
    /// Wall-clock cycle at which the last thread finished: the paper's
    /// "parallel execution cycle count".
    pub parallel_cycles: u64,
}

impl MachineStats {
    /// Creates statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        MachineStats { nodes: vec![NodeStats::default(); n], ..Default::default() }
    }

    /// Mutable access to one node's counters.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeStats {
        &mut self.nodes[id]
    }

    /// Sum of a per-node counter over all nodes.
    pub fn sum<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Aggregate lock-attributed cycles across nodes (Figure 11).
    pub fn total_lock_cycles(&self) -> u64 {
        self.sum(NodeStats::lock_cycles)
    }

    /// Aggregate restarts across nodes.
    pub fn total_restarts(&self) -> u64 {
        self.sum(NodeStats::restarts)
    }

    /// Aggregate commits across nodes.
    pub fn total_commits(&self) -> u64 {
        self.sum(|n| n.commits)
    }

    /// Aggregate fallbacks (lock acquisitions after abandoning
    /// elision) across nodes.
    pub fn total_fallbacks(&self) -> u64 {
        self.sum(NodeStats::fallbacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_nodes() {
        let mut s = MachineStats::new(3);
        s.node_mut(0).commits = 2;
        s.node_mut(2).commits = 5;
        s.node_mut(1).restarts_conflict = 1;
        s.node_mut(1).restarts_lock_write = 4;
        assert_eq!(s.total_commits(), 7);
        assert_eq!(s.total_restarts(), 5);
    }

    #[test]
    fn lock_cycles_combines_stall_and_busy() {
        let n = NodeStats { lock_stall_cycles: 10, lock_busy_cycles: 3, ..Default::default() };
        assert_eq!(n.lock_cycles(), 13);
    }

    #[test]
    fn bus_total() {
        let b = BusStats { get_s: 1, get_x: 2, upgrades: 3, writebacks: 4, ..Default::default() };
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn fallback_and_restart_rollups() {
        let n = NodeStats {
            fallbacks_resource: 1,
            fallbacks_io: 2,
            fallbacks_nesting: 3,
            fallbacks_conflict: 4,
            restarts_conflict: 5,
            restarts_sharer_invalidation: 6,
            restarts_lock_write: 7,
            ..Default::default()
        };
        assert_eq!(n.fallbacks(), 10);
        assert_eq!(n.restarts(), 18);
    }
}
