//! Simulation kernel for the TLR reproduction.
//!
//! This crate holds the pieces shared by every other crate in the
//! workspace: the machine configuration ([`config::MachineConfig`],
//! modeled on Table 2 of the paper), a deterministic random number
//! generator ([`rng::SimRng`]), cycle statistics and histogram
//! aggregates ([`stats`]), a bounded event trace ([`trace`]), the
//! span layer that folds it into transaction lifecycles ([`span`]),
//! zero-dependency JSON export backends ([`export`], [`json`]), the
//! deterministic parallel execution engine that fans independent
//! simulation cells out to worker threads with submission-order
//! result merging ([`pool`]), and the seed-derived fault-injection
//! layer that perturbs the memory fabric off its happy path
//! ([`fault`]).
//!
//! The simulator is deterministic by construction: every source of
//! "randomness" (fairness delays after lock releases, latency
//! perturbation per Alameldeen et al. [1]) is driven by [`rng::SimRng`]
//! seeded from the run configuration.
//!
//! # Example
//!
//! ```
//! use tlr_sim::config::{MachineConfig, Scheme};
//!
//! let cfg = MachineConfig::paper_default(Scheme::Tlr, 16);
//! assert_eq!(cfg.num_procs, 16);
//! assert!(cfg.scheme.elision_enabled());
//! ```

pub mod config;
pub mod events;
pub mod export;
pub mod fault;
pub mod json;
pub mod pool;
pub mod prof;
pub mod rng;
pub mod span;
pub mod stats;
pub mod trace;

pub use config::{
    Engine, LatencyConfig, MachineConfig, MachineConfigBuilder, Scheme, UntimestampedPolicy,
};
pub use events::{EventQueue, Schedulable};
pub use fault::{BusFault, FaultConfig, FaultPlan, NetFault};
pub use pool::{CancelToken, CellCoords, CellError, CellResult, Job, Pool};
pub use prof::{ProfConfig, Profiler, WakeSource};
pub use rng::SimRng;
pub use span::{SpanLog, SpanOutcome, TxnSpan};
pub use stats::{FaultStats, MachineStats, NodeStats};

/// A simulation cycle number. The whole machine advances in lockstep,
/// one [`Cycle`] at a time.
pub type Cycle = u64;

/// Identifies a processor node (core + L1 + coherence controller).
pub type NodeId = usize;
