//! Bottleneck-attribution profiling.
//!
//! Three observation layers over one run, all deterministic and all
//! zero-overhead when disabled (the machine holds an
//! `Option<Box<Profiler>>` that is `None` unless [`ProfConfig`]
//! enables it — the same pattern as [`crate::fault::FaultConfig`],
//! and like it the off path is byte-identical to a build without this
//! module):
//!
//! 1. **Cycle accounting** lives in [`crate::stats`]: every node-cycle
//!    is charged to exactly one category and
//!    `MachineStats::check_cycle_accounting` audits the identity.
//! 2. **Utilization timelines** live here: fixed-epoch samples of bus
//!    occupancy, queue depths, MSHR pressure, and the scheduling mix,
//!    held in a downsampling ring so memory stays bounded no matter
//!    how long the run is.
//! 3. **Engine self-profiling** lives here too: which wake source
//!    fired each event-engine step, how many node ticks the engine
//!    skipped, and how much work the closed-form settle paths
//!    absorbed — the per-cell answer to "why does the event engine
//!    only skip 14% of steps on the paper sweep".

use crate::Cycle;

/// Profiling knobs. [`ProfConfig::off`] (the default) builds no
/// profiler at all; the machine's per-step cost is then a single
/// `Option` test on a field that is always `None`, and every output
/// byte matches a build that predates the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Master switch.
    pub enabled: bool,
    /// Log2 of the initial sampling epoch in cycles. Epochs double
    /// whenever the ring fills, so this only sets the finest
    /// resolution (default 2^12 = 4096 cycles).
    pub epoch_log2: u32,
    /// Ring capacity: the timeline never holds more samples than
    /// this. On overflow adjacent samples merge pairwise and the
    /// epoch doubles.
    pub max_samples: usize,
}

impl ProfConfig {
    /// Profiling disabled — the byte-identical-to-HEAD configuration.
    pub const fn off() -> Self {
        ProfConfig { enabled: false, epoch_log2: 12, max_samples: 512 }
    }

    /// Profiling enabled with the default epoch and ring size.
    pub const fn on() -> Self {
        ProfConfig { enabled: true, epoch_log2: 12, max_samples: 512 }
    }

    /// Builds the profiler, or `None` when disabled (then nothing is
    /// allocated and the machine's hot path never branches on epoch
    /// boundaries).
    pub fn profiler(&self) -> Option<Box<Profiler>> {
        self.enabled.then(|| Box::new(Profiler::new(*self)))
    }
}

impl Default for ProfConfig {
    fn default() -> Self {
        ProfConfig::off()
    }
}

/// Which [`crate::events::Schedulable`] (or engine rule) determined
/// the cycle an event-engine step jumped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSource {
    /// A node was Active, pinning the wake floor to the next cycle.
    ActiveFloor,
    /// The address bus could order a queued request.
    Bus,
    /// A data-network delivery came due.
    Network,
    /// The global snoop queue's front entry came due.
    SnoopFront,
    /// A node's idle timer (fill arrival, backoff expiry) fired.
    IdleTimer,
    /// A NACK retry timer fired.
    RetryTimer,
    /// A directory request flight arrived or a home bank's occupancy
    /// window expired with queued work.
    Directory,
    /// Nothing was scheduled: the step ran to the caller's bound.
    Bound,
}

impl WakeSource {
    /// Number of variants (the histogram's array size).
    pub const COUNT: usize = 8;

    /// Every variant, in display order.
    pub const ALL: [WakeSource; WakeSource::COUNT] = [
        WakeSource::ActiveFloor,
        WakeSource::Bus,
        WakeSource::Network,
        WakeSource::SnoopFront,
        WakeSource::IdleTimer,
        WakeSource::RetryTimer,
        WakeSource::Directory,
        WakeSource::Bound,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            WakeSource::ActiveFloor => "active floor",
            WakeSource::Bus => "bus grant",
            WakeSource::Network => "network delivery",
            WakeSource::SnoopFront => "snoop front",
            WakeSource::IdleTimer => "idle timer",
            WakeSource::RetryTimer => "retry timer",
            WakeSource::Directory => "directory order",
            WakeSource::Bound => "bound (nothing scheduled)",
        }
    }
}

/// An instantaneous reading of the machine's shared structures, taken
/// by the machine at an epoch boundary. Counter fields
/// (`bus_ordered`, `net_sent`) are cumulative; the profiler
/// differences them against the previous boundary itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Cumulative bus transactions ordered (`Bus::ordered_count`).
    pub bus_ordered: u64,
    /// Cumulative data-network messages sent (`Network::sent_count`).
    pub net_sent: u64,
    /// Cumulative directory requests ordered
    /// (`Directory::ordered_count`; zero on snooping machines).
    pub dir_ordered: u64,
    /// Directory requests in flight or queued at a home bank.
    pub dir_depth: usize,
    /// Data-network messages currently in flight.
    pub net_depth: usize,
    /// Global snoop queue depth.
    pub snoop_depth: usize,
    /// Outstanding MSHR entries, summed over nodes.
    pub mshrs: usize,
    /// Deferred-queue entries, summed over nodes.
    pub deferred: usize,
    /// Nodes the engine classifies as Active.
    pub active_nodes: usize,
    /// Nodes idle (blocked on a miss, backoff, or finished).
    pub idle_nodes: usize,
    /// Nodes in a recognized spin loop.
    pub spin_nodes: usize,
}

/// One timeline sample: the deltas and high-water gauges for one
/// epoch. Epochs are contiguous and non-overlapping; the last sample
/// of a run may be shorter than the nominal epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// First cycle the sample covers.
    pub start: Cycle,
    /// Cycles covered.
    pub cycles: u64,
    /// Bus transactions ordered within the epoch (delta). Multiplied
    /// by the configured occupancy this is the exact count of busy
    /// address-bus cycles — occupancy windows never overlap.
    pub bus_ordered: u64,
    /// Data-network messages sent within the epoch (delta).
    pub net_sent: u64,
    /// Directory requests ordered within the epoch (delta).
    pub dir_ordered: u64,
    /// High-water directory pending depth observed at a boundary.
    pub dir_depth: usize,
    /// High-water data-network depth observed at a boundary.
    pub net_depth: usize,
    /// High-water global snoop queue depth.
    pub snoop_depth: usize,
    /// High-water outstanding MSHRs (all nodes).
    pub mshrs: usize,
    /// High-water deferred-queue depth (all nodes).
    pub deferred: usize,
    /// High-water Active node count.
    pub active_nodes: usize,
    /// High-water Idle node count.
    pub idle_nodes: usize,
    /// High-water Spin node count.
    pub spin_nodes: usize,
}

impl Sample {
    /// Bus utilization within this sample, given the per-transaction
    /// occupancy.
    pub fn bus_utilization(&self, occupancy: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.bus_ordered * occupancy) as f64 / self.cycles as f64
        }
    }

    /// Merges the immediately following sample into this one: deltas
    /// add, gauges keep the high-water mark.
    fn absorb(&mut self, next: &Sample) {
        self.cycles += next.cycles;
        self.bus_ordered += next.bus_ordered;
        self.net_sent += next.net_sent;
        self.dir_ordered += next.dir_ordered;
        self.dir_depth = self.dir_depth.max(next.dir_depth);
        self.net_depth = self.net_depth.max(next.net_depth);
        self.snoop_depth = self.snoop_depth.max(next.snoop_depth);
        self.mshrs = self.mshrs.max(next.mshrs);
        self.deferred = self.deferred.max(next.deferred);
        self.active_nodes = self.active_nodes.max(next.active_nodes);
        self.idle_nodes = self.idle_nodes.max(next.idle_nodes);
        self.spin_nodes = self.spin_nodes.max(next.spin_nodes);
    }
}

/// Engine self-profiling counters. The cycle engine leaves most of
/// these zero (it has no steps to skip); the event engine fills them
/// in and they explain, per cell, how much the engine actually
/// short-circuits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineProf {
    /// Event-engine steps taken (calls that advanced the clock).
    pub steps: u64,
    /// Node ticks actually executed.
    pub live_ticks: u64,
    /// Cycles the clock jumped over without stepping (the engine's
    /// savings; `elapsed - steps` on a pure event run).
    pub skipped_cycles: u64,
    /// Wake-source histogram, indexed by [`WakeSource`] position in
    /// [`WakeSource::ALL`]: which schedulable pinned each step's
    /// target cycle.
    pub wake: [u64; WakeSource::COUNT],
    /// Burst-mode entries (quiet windows handed to the dense loop).
    pub burst_entries: u64,
    /// Cycles executed inside burst mode.
    pub burst_cycles: u64,
    /// Node ticks executed inside burst mode.
    pub burst_ticks: u64,
    /// Spin fast-forwards: closed-form settles of a recognized spin
    /// loop (loads and branches replayed arithmetically).
    pub spin_settles: u64,
    /// Cycles absorbed by spin fast-forwards.
    pub spin_settle_cycles: u64,
    /// Idle-charge settles (a blocked stretch charged in bulk).
    pub idle_settles: u64,
    /// Cycles absorbed by idle-charge settles.
    pub idle_settle_cycles: u64,
}

impl EngineProf {
    /// Records a step woken by `source`.
    pub fn record_wake(&mut self, source: WakeSource) {
        let idx = WakeSource::ALL.iter().position(|&s| s == source).unwrap();
        self.wake[idx] += 1;
    }

    /// Total steps recorded in the wake histogram.
    pub fn total_wakes(&self) -> u64 {
        self.wake.iter().sum()
    }

    /// Wake counts as `(label, count)` pairs in display order.
    pub fn wake_breakdown(&self) -> [(&'static str, u64); WakeSource::COUNT] {
        let mut out = [("", 0u64); WakeSource::COUNT];
        for (slot, (&s, &c)) in out.iter_mut().zip(WakeSource::ALL.iter().zip(self.wake.iter())) {
            *slot = (s.label(), c);
        }
        out
    }
}

/// The run profiler: owns the timeline ring and the engine counters.
/// Lives behind `Option<Box<_>>` on the machine so the disabled path
/// costs one pointer test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profiler {
    /// The configuration that built this profiler.
    pub config: ProfConfig,
    /// Current epoch length in cycles (doubles on ring overflow).
    epoch: u64,
    /// First cycle of the epoch currently being accumulated.
    epoch_start: Cycle,
    /// Next boundary at or past which the machine must call
    /// [`Profiler::sample`].
    next_boundary: Cycle,
    /// Closed samples, oldest first.
    samples: Vec<Sample>,
    /// Cumulative-counter snapshots at the last closed boundary.
    last_bus_ordered: u64,
    last_net_sent: u64,
    last_dir_ordered: u64,
    /// Per-transaction address-bus occupancy in cycles, filled in by
    /// the machine from its latency configuration so downstream
    /// reports can convert ordered-transaction counts to busy cycles
    /// without re-threading the config.
    pub bus_occupancy: u64,
    /// Home-bank count of the directory, when one is installed (zero
    /// on snooping machines). Divides into per-bank occupancy:
    /// `dir_ordered * bus_occupancy / (dir_banks * cycles)`.
    pub dir_banks: usize,
    /// Engine self-profiling counters.
    pub engine: EngineProf,
}

impl Profiler {
    /// Creates a profiler at cycle 0.
    pub fn new(config: ProfConfig) -> Self {
        let epoch = 1u64 << config.epoch_log2;
        Profiler {
            config,
            epoch,
            epoch_start: 0,
            next_boundary: epoch,
            samples: Vec::new(),
            last_bus_ordered: 0,
            last_net_sent: 0,
            last_dir_ordered: 0,
            bus_occupancy: 0,
            dir_banks: 0,
            engine: EngineProf::default(),
        }
    }

    /// The cycle at or past which the machine should take the next
    /// sample — the hot path's only check.
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Closes the epoch(s) ending at `now` with the given gauges. The
    /// machine calls this whenever its clock reaches
    /// [`Profiler::next_boundary`]; an event-engine jump over several
    /// boundaries produces one (longer) sample, which loses nothing —
    /// the skipped window's state was constant or the engine would
    /// have woken inside it.
    pub fn sample(&mut self, now: Cycle, g: Gauges) {
        if now <= self.epoch_start {
            return;
        }
        let s = Sample {
            start: self.epoch_start,
            cycles: now - self.epoch_start,
            bus_ordered: g.bus_ordered - self.last_bus_ordered,
            net_sent: g.net_sent - self.last_net_sent,
            dir_ordered: g.dir_ordered - self.last_dir_ordered,
            dir_depth: g.dir_depth,
            net_depth: g.net_depth,
            snoop_depth: g.snoop_depth,
            mshrs: g.mshrs,
            deferred: g.deferred,
            active_nodes: g.active_nodes,
            idle_nodes: g.idle_nodes,
            spin_nodes: g.spin_nodes,
        };
        self.samples.push(s);
        self.last_bus_ordered = g.bus_ordered;
        self.last_net_sent = g.net_sent;
        self.last_dir_ordered = g.dir_ordered;
        self.epoch_start = now;
        // Next boundary: the next multiple of `epoch` past `now`.
        self.next_boundary = (now / self.epoch + 1) * self.epoch;
        if self.samples.len() >= self.config.max_samples {
            self.downsample();
        }
    }

    /// Closes the final partial epoch at end of run.
    pub fn finish(&mut self, now: Cycle, g: Gauges) {
        self.sample(now, g);
    }

    /// Halves the ring by merging adjacent samples and doubles the
    /// epoch, keeping memory bounded by `max_samples`.
    fn downsample(&mut self) {
        let mut merged = Vec::with_capacity(self.samples.len() / 2 + 1);
        let mut it = self.samples.chunks_exact(2);
        for pair in &mut it {
            let mut a = pair[0];
            a.absorb(&pair[1]);
            merged.push(a);
        }
        if let [odd] = it.remainder() {
            merged.push(*odd);
        }
        self.samples = merged;
        self.epoch *= 2;
        self.next_boundary = (self.epoch_start / self.epoch + 1) * self.epoch;
    }

    /// Closed samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Current epoch length in cycles (after any doublings).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whole-run bus utilization in `0.0 ..= 1.0`, given the
    /// per-transaction occupancy: exact, because occupancy windows
    /// never overlap.
    pub fn bus_utilization(&self, occupancy: u64) -> f64 {
        let cycles: u64 = self.samples.iter().map(|s| s.cycles).sum();
        let ordered: u64 = self.samples.iter().map(|s| s.bus_ordered).sum();
        if cycles == 0 {
            0.0
        } else {
            (ordered * occupancy) as f64 / cycles as f64
        }
    }

    /// High-water mark of a gauge across the whole timeline.
    pub fn peak<F: Fn(&Sample) -> usize>(&self, f: F) -> usize {
        self.samples.iter().map(f).max().unwrap_or(0)
    }

    /// [`Profiler::bus_utilization`] with the machine-installed
    /// occupancy ([`Profiler::bus_occupancy`]).
    pub fn utilization(&self) -> f64 {
        self.bus_utilization(self.bus_occupancy)
    }

    /// Whole-run mean per-bank directory occupancy in `0.0 ..= 1.0`,
    /// or 0 on snooping machines: each ordered request holds its home
    /// bank for the occupancy window, and banks order independently,
    /// so busy bank-cycles divide by `banks * elapsed`.
    pub fn dir_utilization(&self) -> f64 {
        if self.dir_banks == 0 {
            return 0.0;
        }
        let cycles: u64 = self.samples.iter().map(|s| s.cycles).sum();
        let ordered: u64 = self.samples.iter().map(|s| s.dir_ordered).sum();
        if cycles == 0 {
            0.0
        } else {
            (ordered * self.bus_occupancy) as f64 / (cycles * self.dir_banks as u64) as f64
        }
    }

    /// [`Profiler::saturation_verdict`] with the machine-installed
    /// occupancy.
    pub fn verdict(&self, procs: usize) -> String {
        self.saturation_verdict(self.bus_occupancy, procs)
    }

    /// A one-line saturation verdict for the report: names the
    /// resource that bounds the run.
    ///
    /// The thresholds are heuristic but deliberately simple: a bus
    /// past 80% utilization is the classic knee of a split-transaction
    /// bus; failing that, a majority-spin scheduling mix means the
    /// machine mostly waits on lock hand-offs; otherwise the cell is
    /// compute-bound.
    pub fn saturation_verdict(&self, occupancy: u64, procs: usize) -> String {
        // Directory machines have no bus; the saturating resource is
        // the mean home-bank occupancy instead.
        if self.dir_banks > 0 {
            let dir = self.dir_utilization();
            if dir >= 0.80 {
                return format!(
                    "directory-bound: {:.0}% mean bank occupancy ({} banks)",
                    dir * 100.0,
                    self.dir_banks
                );
            }
            let peak_spin = self.peak(|s| s.spin_nodes);
            if procs > 0 && peak_spin * 2 >= procs {
                return format!(
                    "contention-bound: up to {peak_spin}/{procs} nodes spinning, dir {:.0}%",
                    dir * 100.0
                );
            }
            return format!("compute-bound: dir {:.0}% mean bank occupancy", dir * 100.0);
        }
        let bus = self.bus_utilization(occupancy);
        if bus >= 0.80 {
            return format!("bus-bound: {:.0}% occupancy", bus * 100.0);
        }
        let peak_spin = self.peak(|s| s.spin_nodes);
        if procs > 0 && peak_spin * 2 >= procs {
            return format!(
                "contention-bound: up to {peak_spin}/{procs} nodes spinning, bus {:.0}%",
                bus * 100.0
            );
        }
        format!("compute-bound: bus {:.0}% occupancy", bus * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(bus_ordered: u64, active: usize) -> Gauges {
        Gauges { bus_ordered, active_nodes: active, ..Default::default() }
    }

    #[test]
    fn off_builds_no_profiler() {
        assert!(ProfConfig::off().profiler().is_none());
        assert_eq!(ProfConfig::default(), ProfConfig::off());
        assert!(ProfConfig::on().profiler().is_some());
    }

    #[test]
    fn samples_are_contiguous_and_delta_based() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        assert_eq!(p.next_boundary(), 16);
        p.sample(16, g(3, 2));
        p.sample(32, g(10, 1));
        let s = p.samples();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].start, s[0].cycles, s[0].bus_ordered), (0, 16, 3));
        assert_eq!((s[1].start, s[1].cycles, s[1].bus_ordered), (16, 16, 7), "deltas, not totals");
        assert_eq!(p.next_boundary(), 48);
    }

    #[test]
    fn jumping_over_boundaries_produces_one_long_sample() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        // The event engine slept from 0 to 100: one sample, aligned
        // boundary afterwards.
        p.sample(100, g(5, 0));
        assert_eq!(p.samples().len(), 1);
        assert_eq!(p.samples()[0].cycles, 100);
        assert_eq!(p.next_boundary(), 112);
        // Duplicate calls at the same cycle are no-ops.
        p.sample(100, g(5, 0));
        assert_eq!(p.samples().len(), 1);
    }

    #[test]
    fn ring_overflow_doubles_the_epoch() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 2, max_samples: 4 });
        for i in 1..=4u64 {
            p.sample(i * 4, g(i, (i % 2) as usize));
        }
        // Fourth push hit max_samples: merged down to 2, epoch 4 -> 8.
        assert_eq!(p.samples().len(), 2);
        assert_eq!(p.epoch(), 8);
        let s = p.samples();
        assert_eq!((s[0].start, s[0].cycles), (0, 8));
        assert_eq!(s[0].bus_ordered, 2, "deltas add on merge");
        assert_eq!(s[0].active_nodes, 1, "gauges keep the high-water mark");
        assert_eq!(p.next_boundary(), 24);
        // Total coverage and totals survive any number of merges.
        let covered: u64 = s.iter().map(|x| x.cycles).sum();
        assert_eq!(covered, 16);
        let ordered: u64 = s.iter().map(|x| x.bus_ordered).sum();
        assert_eq!(ordered, 4);
    }

    #[test]
    fn bus_utilization_is_exact_from_deltas() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        // 16 cycles, 2 transactions at occupancy 4 = 8 busy cycles.
        p.sample(16, g(2, 0));
        assert!((p.samples()[0].bus_utilization(4) - 0.5).abs() < 1e-12);
        p.sample(32, g(2, 0));
        assert!((p.bus_utilization(4) - 0.25).abs() < 1e-12);
        assert_eq!(Sample::default().bus_utilization(4), 0.0);
    }

    #[test]
    fn wake_histogram_and_breakdown() {
        let mut e = EngineProf::default();
        e.record_wake(WakeSource::Bus);
        e.record_wake(WakeSource::Bus);
        e.record_wake(WakeSource::IdleTimer);
        assert_eq!(e.total_wakes(), 3);
        let b = e.wake_breakdown();
        assert_eq!(b[1], ("bus grant", 2));
        assert_eq!(b[4], ("idle timer", 1));
        assert_eq!(WakeSource::ALL.len(), WakeSource::COUNT);
    }

    #[test]
    fn saturation_verdicts() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        // 16 cycles, 4 transactions x occupancy 4 = 100% busy.
        p.sample(16, g(4, 0));
        assert!(p.saturation_verdict(4, 16).starts_with("bus-bound"));

        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.sample(16, Gauges { spin_nodes: 12, ..Default::default() });
        assert!(p.saturation_verdict(4, 16).starts_with("contention-bound"));

        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.sample(16, g(0, 1));
        assert!(p.saturation_verdict(4, 16).starts_with("compute-bound"));
    }

    #[test]
    fn directory_utilization_and_verdict() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.bus_occupancy = 4;
        assert_eq!(p.dir_utilization(), 0.0, "snooping machines report zero");
        p.dir_banks = 2;
        // 16 cycles, 8 orders x occupancy 4 over 2 banks = 100% busy.
        p.sample(16, Gauges { dir_ordered: 8, ..Default::default() });
        assert!((p.dir_utilization() - 1.0).abs() < 1e-12);
        assert!(p.verdict(16).starts_with("directory-bound"), "{}", p.verdict(16));

        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.bus_occupancy = 4;
        p.dir_banks = 8;
        p.sample(16, Gauges { dir_ordered: 1, spin_nodes: 12, ..Default::default() });
        assert!(p.verdict(16).starts_with("contention-bound"));

        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.bus_occupancy = 4;
        p.dir_banks = 8;
        p.sample(16, Gauges { dir_ordered: 1, ..Default::default() });
        assert!(p.verdict(16).starts_with("compute-bound"));
    }

    #[test]
    fn dir_samples_are_delta_based_and_merge() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 2, max_samples: 4 });
        for i in 1..=4u64 {
            p.sample(i * 4, Gauges { dir_ordered: i * 3, dir_depth: i as usize, ..Default::default() });
        }
        // Overflow merged 4 samples to 2: deltas add, depth high-waters.
        let s = p.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].dir_ordered, 6);
        assert_eq!(s[0].dir_depth, 2);
        let total: u64 = s.iter().map(|x| x.dir_ordered).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn peak_gauges() {
        let mut p = Profiler::new(ProfConfig { enabled: true, epoch_log2: 4, max_samples: 512 });
        p.sample(16, Gauges { mshrs: 3, ..Default::default() });
        p.sample(32, Gauges { mshrs: 9, ..Default::default() });
        p.sample(48, Gauges { mshrs: 1, ..Default::default() });
        assert_eq!(p.peak(|s| s.mshrs), 9);
        assert_eq!(p.peak(|s| s.net_depth), 0);
    }
}
