//! A minimal, zero-dependency JSON writer and syntax validator.
//!
//! The observability exports ([`crate::export`]) and the benchmark
//! binaries emit machine-readable files; this module gives them a
//! shared, allocation-light way to build *valid* JSON (escaping,
//! nesting bookkeeping) and a strict recursive-descent checker the
//! `tlr-trace` binary and the tests use to prove the emitted bytes
//! actually parse. No serde — the workspace is dependency-free by
//! construction.

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An incremental JSON builder. Call the `obj`/`arr` open/close pairs
/// and the typed field writers; commas are inserted automatically.
///
/// The builder does not prevent *structural* misuse (closing an array
/// as an object); the validator exists precisely so tests catch that.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    need_comma: bool,
}

impl JsonBuf {
    /// An empty builder.
    pub fn new() -> Self {
        JsonBuf::default()
    }

    fn pre(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.need_comma = false;
    }

    fn key_inner(&mut self, key: &str) {
        self.pre();
        self.out.push('"');
        self.out.push_str(&escape(key));
        self.out.push_str("\":");
    }

    /// Opens an anonymous object (array element or document root).
    pub fn obj(&mut self) -> &mut Self {
        self.pre();
        self.out.push('{');
        self
    }

    /// Opens an object-valued field.
    pub fn obj_key(&mut self, key: &str) -> &mut Self {
        self.key_inner(key);
        self.out.push('{');
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.out.push('}');
        self.need_comma = true;
        self
    }

    /// Opens an anonymous array.
    pub fn arr(&mut self) -> &mut Self {
        self.pre();
        self.out.push('[');
        self
    }

    /// Opens an array-valued field.
    pub fn arr_key(&mut self, key: &str) -> &mut Self {
        self.key_inner(key);
        self.out.push('[');
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.out.push(']');
        self.need_comma = true;
        self
    }

    /// Writes a string field.
    pub fn str_field(&mut self, key: &str, val: &str) -> &mut Self {
        self.key_inner(key);
        self.str_raw(val);
        self
    }

    /// Writes an unsigned-integer field.
    pub fn u64_field(&mut self, key: &str, val: u64) -> &mut Self {
        self.key_inner(key);
        self.out.push_str(&val.to_string());
        self.need_comma = true;
        self
    }

    /// Writes a float field (non-finite values become `null`).
    pub fn f64_field(&mut self, key: &str, val: f64) -> &mut Self {
        self.key_inner(key);
        if val.is_finite() {
            self.out.push_str(&format!("{val:.3}"));
        } else {
            self.out.push_str("null");
        }
        self.need_comma = true;
        self
    }

    /// Writes a boolean field.
    pub fn bool_field(&mut self, key: &str, val: bool) -> &mut Self {
        self.key_inner(key);
        self.out.push_str(if val { "true" } else { "false" });
        self.need_comma = true;
        self
    }

    /// Writes a bare string array element.
    pub fn str_elem(&mut self, val: &str) -> &mut Self {
        self.pre();
        self.str_raw(val);
        self
    }

    /// Writes a bare unsigned-integer array element.
    pub fn u64_elem(&mut self, val: u64) -> &mut Self {
        self.pre();
        self.out.push_str(&val.to_string());
        self.need_comma = true;
        self
    }

    fn str_raw(&mut self, val: &str) {
        self.out.push('"');
        self.out.push_str(&escape(val));
        self.out.push('"');
        self.need_comma = true;
    }

    /// The accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validates that `s` is a single well-formed JSON value.
///
/// # Errors
///
/// Returns the byte offset and a short description of the first
/// syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {}", *c as char, pos)),
        None => Err(format!("unexpected end of input at offset {pos}")),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                match b.get(*pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_json() {
        let mut j = JsonBuf::new();
        j.obj()
            .str_field("name", "a \"quoted\"\nthing")
            .u64_field("n", 42)
            .f64_field("x", 1.5)
            .bool_field("ok", true)
            .arr_key("items");
        for i in 0..3 {
            j.obj().u64_field("i", i).end_obj();
        }
        j.end_arr().obj_key("nested").str_field("k", "v").end_obj().end_obj();
        let s = j.finish();
        validate(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert!(s.contains("\\\"quoted\\\""));
    }

    #[test]
    fn validator_accepts_canonical_forms() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "[1, 2, {\"a\": [true, false, null]}]",
            "\"\\u00e9\\n\"",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_forms() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{'a':1}", "tru", "1.2.3", "\"\x01\"", "{}{}"] {
            assert!(validate(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let s = format!("\"{}\"", escape("tab\t ctrl\x02 nl\n q\" bs\\"));
        validate(&s).unwrap();
    }
}
