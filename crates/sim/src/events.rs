//! The discrete-event calendar: a binary-heap queue keyed by
//! `(wake_cycle, stable tie-break id)`.
//!
//! The event-driven engine (ROADMAP item 1) replaces tick-the-world
//! with clock jumps to the next scheduled event. Everything that can
//! wake the machine — data-network deliveries, bus arbitration,
//! per-node timers — either lives in an [`EventQueue`] or reports its
//! next wake cycle through [`Schedulable`]. Determinism requires a
//! *total* order on events: two events scheduled for the same cycle
//! pop in the order they were pushed, because each push is assigned a
//! monotonically increasing tie-break id. This reproduces exactly the
//! iteration order of the `BTreeMap<(Cycle, u64), T>` the data network
//! used when the machine was cycle-stepped, so swapping the container
//! changes no delivery order anywhere.
//!
//! The queue deliberately has no `remove` or `reschedule`: stale
//! entries are the classic source of calendar-queue nondeterminism,
//! so consumers that need revocable wakes (the machine's per-node
//! scheduler) keep authoritative state outside the queue and treat a
//! pop as a hint, never as a command.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A component that can tell the event-driven engine when it next
/// needs to run.
///
/// `next_wake` must be *conservative*: returning an earlier cycle than
/// strictly necessary only costs a no-op visit, while returning a
/// later one (or `None` while work is pending) would let the engine
/// jump past a state change and diverge from the cycle-stepped
/// reference. Purely reactive components (the shared L2/memory, which
/// answers synchronously at the bus ordering point) return `None`.
pub trait Schedulable {
    /// The earliest future cycle (strictly after `now`) at which this
    /// component may do work on its own, or `None` if it is idle until
    /// externally stimulated.
    fn next_wake(&self, now: Cycle) -> Option<Cycle>;
}

/// One scheduled entry: the key is `(cycle, id)` and the ordering is
/// on the key alone, so `T` needs no `Ord`.
#[derive(Debug, Clone)]
struct Entry<T> {
    cycle: Cycle,
    id: u64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && self.id == other.id
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (cycle, id) on top.
        (other.cycle, other.id).cmp(&(self.cycle, self.id))
    }
}

/// A deterministic future-event queue ordered by
/// `(wake_cycle, push order)`.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_id: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_id: 0 }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `value` for cycle `cycle` and returns its tie-break
    /// id. Ids increase monotonically across the queue's lifetime, so
    /// same-cycle entries pop in push order even across interleaved
    /// pushes and pops.
    pub fn push(&mut self, cycle: Cycle, value: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Entry { cycle, id, value });
        id
    }

    /// The cycle of the earliest scheduled event, if any.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.cycle)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.cycle <= now) {
            Some(self.heap.pop().expect("peeked entry").value)
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally, with its key.
    pub fn pop(&mut self) -> Option<(Cycle, u64, T)> {
        self.heap.pop().map(|e| (e.cycle, e.id, e.value))
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled — the queue-level analogue of a
    /// machine's `is_quiesced`: an empty calendar means nothing will
    /// ever happen again without external stimulus.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Schedulable for EventQueue<T> {
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        // Entries already due still need a visit: clamp to now + 1
        // rather than reporting the past.
        self.next_cycle().map(|c| c.max(now + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn pops_in_cycle_then_id_order() {
        let mut q = EventQueue::new();
        q.push(30, "c30-first");
        q.push(10, "c10");
        q.push(30, "c30-second");
        q.push(20, "c20");
        let mut out = Vec::new();
        while let Some((cy, _, v)) = q.pop() {
            out.push((cy, v));
        }
        assert_eq!(
            out,
            vec![(10, "c10"), (20, "c20"), (30, "c30-first"), (30, "c30-second")]
        );
    }

    #[test]
    fn same_cycle_ties_resolve_by_push_order() {
        let mut q = EventQueue::new();
        let ids: Vec<u64> = (0..100).map(|i| q.push(7, i)).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "ids are monotone");
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop_due(7)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_never_reorders_equal_keys() {
        // Property: under any interleaving of pushes (at random cycles)
        // and drains, events with equal cycles always pop in push
        // order, and the full pop sequence matches a stable sort by
        // (cycle, push index).
        let mut rng = SimRng::new(0xca1e_da12);
        for round in 0..50 {
            let mut q = EventQueue::new();
            let mut pushed: Vec<(Cycle, u64)> = Vec::new(); // (cycle, push index)
            let mut popped: Vec<(Cycle, u64)> = Vec::new();
            let mut idx = 0u64;
            for _ in 0..200 {
                if rng.below(3) < 2 {
                    let cycle = rng.below(16);
                    q.push(cycle, idx);
                    pushed.push((cycle, idx));
                    idx += 1;
                } else if let Some((cy, _, v)) = q.pop() {
                    popped.push((cy, v));
                }
            }
            while let Some((cy, _, v)) = q.pop() {
                popped.push((cy, v));
            }
            // Every push is popped exactly once.
            let mut seen = popped.clone();
            seen.sort_unstable_by_key(|&(_, i)| i);
            let mut expect = pushed.clone();
            expect.sort_unstable_by_key(|&(_, i)| i);
            assert_eq!(seen, expect, "round {round}: drained set matches pushed set");
            // Equal cycles pop in push order within any drain run. A
            // pop can interleave with later pushes, so the global
            // sequence is only piecewise sorted — but for a fixed
            // cycle, indices must ascend.
            for c in 0..16 {
                let at_c: Vec<u64> =
                    popped.iter().filter(|&&(cy, _)| cy == c).map(|&(_, i)| i).collect();
                let mut sorted = at_c.clone();
                sorted.sort_unstable();
                assert_eq!(at_c, sorted, "round {round}: cycle {c} ties kept push order");
            }
        }
    }

    #[test]
    fn pop_due_respects_the_clock() {
        let mut q = EventQueue::new();
        q.push(5, 'a');
        q.push(9, 'b');
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some('a'));
        assert_eq!(q.pop_due(5), None);
        assert_eq!(q.pop_due(100), Some('b'));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn empty_queue_quiesce_matches_is_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_wake(0), None, "empty calendar never wakes");
        q.push(3, 1);
        assert!(!q.is_empty());
        assert_eq!(q.next_wake(0), Some(3));
        assert_eq!(q.next_wake(7), Some(8), "due events clamp to now + 1");
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.next_wake(9), None);
        assert_eq!(q.len(), 0);
    }
}
