//! Deterministic parallel execution engine.
//!
//! Every simulation cell in this reproduction — one (workload, scheme,
//! processor-count, seed) point of a sweep, a fuzz case, an oracle
//! check — is an independent, pure function of its inputs. This module
//! fans such cells out to a [`std::thread`] worker pool while keeping
//! the *observable output bit-identical to serial execution*:
//!
//! * [`Pool::scatter_indexed`] returns results **in submission order**
//!   regardless of completion order, so merged CSV/JSON documents do
//!   not depend on scheduling;
//! * a panicking cell is captured and converted into a [`CellError`]
//!   carrying the cell's [`CellCoords`] (workload, scheme, procs,
//!   seed), never a torn process;
//! * a [`CancelToken`] lets one failed cell stop the sweep early:
//!   cells not yet claimed by a worker are skipped and reported as
//!   cancelled. Workers claim cells in submission order, so the
//!   lowest-indexed failure is always executed and observed — early
//!   exit can not mask it;
//! * a pool of one job degenerates to in-line execution on the calling
//!   thread (no threads are spawned), which is the reference the
//!   determinism tests compare against.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and is overridable with `TLR_JOBS` or the benchmark binaries'
//! `--jobs N` flag (see [`resolve_jobs`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Coordinates identifying one simulation cell inside a sweep. Carried
/// by every [`Job`] so a failure names the exact cell that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCoords {
    /// Workload name (or the fuzz property's name).
    pub workload: String,
    /// Scheme label (or a batch-kind tag for non-sweep work).
    pub scheme: String,
    /// Simulated processor count; 0 when not applicable.
    pub procs: usize,
    /// The cell's base RNG seed.
    pub seed: u64,
}

impl std::fmt::Display for CellCoords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} x{} seed {:#x}]",
            self.workload, self.scheme, self.procs, self.seed
        )
    }
}

/// A failed (or cancelled) cell: the coordinates plus the captured
/// panic message.
#[derive(Debug, Clone)]
pub struct CellError {
    /// Which cell failed.
    pub coords: CellCoords,
    /// The captured panic payload, or a cancellation note.
    pub message: String,
    /// True when the cell never ran because an earlier cell failed.
    pub cancelled: bool,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            write!(f, "cell {} cancelled: {}", self.coords, self.message)
        } else {
            write!(f, "cell {} failed: {}", self.coords, self.message)
        }
    }
}

/// Per-cell outcome of a scatter.
pub type CellResult<T> = Result<T, CellError>;

/// Cooperative cancellation shared by every cell of one scatter: set
/// once, checked by workers before claiming the next cell. Cells that
/// already started are left to finish (their results still land in
/// submission order); cells not yet claimed return a cancelled
/// [`CellError`] without running.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of all not-yet-started cells.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One unit of work: coordinates plus the closure computing the cell.
/// The closure receives the scatter's [`CancelToken`] so a cell that
/// detects a failure itself (e.g. a `--check` verdict) can stop the
/// rest of the sweep.
pub struct Job<'a, T> {
    /// The cell's coordinates, echoed in any [`CellError`].
    pub coords: CellCoords,
    run: Box<dyn FnOnce(&CancelToken) -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// A job from coordinates and a closure.
    pub fn new(coords: CellCoords, run: impl FnOnce(&CancelToken) -> T + Send + 'a) -> Self {
        Job { coords, run: Box::new(run) }
    }
}

/// The worker pool. Holds no threads between scatters — each
/// [`Pool::scatter_indexed`] call spawns scoped workers sized to
/// `min(jobs, cells)` and joins them before returning, so borrowed
/// (non-`'static`) jobs are allowed.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running at most `jobs` cells concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is 0.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs >= 1, "a pool needs at least one job");
        Pool { jobs }
    }

    /// A serial pool (`jobs = 1`): cells run in-line on the calling
    /// thread, in submission order, with the same error conversion.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized by `TLR_JOBS` or the host's available parallelism
    /// (see [`resolve_jobs`]).
    pub fn from_env() -> Self {
        Pool::new(resolve_jobs(None))
    }

    /// The concurrency bound.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Fans `jobs` out to the workers and returns one result per job
    /// **in submission order**, regardless of completion order. A
    /// panicking job becomes an `Err` carrying its coordinates and
    /// cancels the cells not yet started.
    pub fn scatter_indexed<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<CellResult<T>> {
        self.scatter_with_token(jobs, &CancelToken::new())
    }

    /// As [`Pool::scatter_indexed`], but sharing an external
    /// [`CancelToken`] (e.g. to chain several scatters under one
    /// early-exit domain).
    pub fn scatter_with_token<'a, T: Send>(
        &self,
        jobs: Vec<Job<'a, T>>,
        token: &CancelToken,
    ) -> Vec<CellResult<T>> {
        let n = jobs.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            // Serial degenerate case: no threads, same semantics.
            return jobs.into_iter().map(|job| run_one(job, token)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Job<'a, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<CellResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // Cells are claimed in submission order, so when a
                    // failure at index i cancels the scatter, every
                    // index below i has already been claimed and will
                    // complete — min-index failures are deterministic.
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("slot lock never poisoned (panics are caught per cell)")
                        .take()
                        .expect("each slot is claimed exactly once");
                    let r = run_one(job, token);
                    *results[i].lock().expect("result lock never poisoned") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result lock never poisoned")
                    .expect("every claimed slot stores a result")
            })
            .collect()
    }
}

/// Runs one job with cancellation check and panic capture.
fn run_one<'a, T>(job: Job<'a, T>, token: &CancelToken) -> CellResult<T> {
    let coords = job.coords;
    if token.is_cancelled() {
        return Err(CellError {
            coords,
            message: "skipped: an earlier cell failed".to_string(),
            cancelled: true,
        });
    }
    let run = job.run;
    match catch_unwind(AssertUnwindSafe(|| run(token))) {
        Ok(v) => Ok(v),
        Err(payload) => {
            token.cancel();
            Err(CellError { coords, message: panic_message(payload), cancelled: false })
        }
    }
}

/// Renders a caught panic payload as a string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic".to_string())
}

/// Resolves the worker count: an explicit request (a `--jobs N` flag)
/// wins, then the `TLR_JOBS` environment variable, then the host's
/// [`std::thread::available_parallelism`]. Zero or unparsable values
/// are ignored at each step.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n >= 1 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("TLR_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(i: usize) -> CellCoords {
        CellCoords { workload: format!("w{i}"), scheme: "test".to_string(), procs: i, seed: i as u64 }
    }

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = Pool::new(3);
        let jobs: Vec<Job<usize>> =
            (0..16).map(|i| Job::new(coords(i), move |_| i * 10)).collect();
        let out = pool.scatter_indexed(jobs);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("ok"), i * 10);
        }
    }

    #[test]
    fn empty_scatter_is_empty() {
        assert!(Pool::new(4).scatter_indexed(Vec::<Job<()>>::new()).is_empty());
    }

    #[test]
    fn resolve_jobs_prefers_explicit() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_is_rejected() {
        Pool::new(0);
    }

    #[test]
    fn display_formats_carry_coordinates() {
        let e = CellError { coords: coords(2), message: "boom".to_string(), cancelled: false };
        let s = e.to_string();
        assert!(s.contains("w2") && s.contains("x2") && s.contains("boom"), "{s}");
    }
}
