//! Unit tests for the deterministic parallel execution engine:
//! submission-order delivery under adversarial job durations,
//! panic-to-error conversion with correct cell coordinates, `jobs=1`
//! degenerating to in-line serial execution, and cancellation stopping
//! pending jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use tlr_sim::pool::{CancelToken, CellCoords, Job, Pool};

fn coords(workload: &str, procs: usize, seed: u64) -> CellCoords {
    CellCoords {
        workload: workload.to_string(),
        scheme: "BASE+SLE+TLR".to_string(),
        procs,
        seed,
    }
}

#[test]
fn results_arrive_in_submission_order_under_adversarial_durations() {
    // Early jobs sleep longest, so completion order is roughly the
    // reverse of submission order — the merge must undo that.
    let pool = Pool::new(4);
    let n = 12usize;
    let jobs: Vec<Job<usize>> = (0..n)
        .map(|i| {
            Job::new(coords("adversarial", i, i as u64), move |_| {
                std::thread::sleep(Duration::from_millis(((n - i) * 3) as u64));
                i
            })
        })
        .collect();
    let out = pool.scatter_indexed(jobs);
    let values: Vec<usize> = out.into_iter().map(|r| r.expect("all jobs succeed")).collect();
    assert_eq!(values, (0..n).collect::<Vec<_>>());
}

#[test]
fn panic_becomes_error_with_cell_coordinates() {
    let pool = Pool::new(2);
    let jobs: Vec<Job<u64>> = vec![
        Job::new(coords("healthy", 2, 7), |_| 42),
        Job::new(coords("doomed", 8, 0xdead), |_| panic!("simulated livelock")),
    ];
    let out = pool.scatter_indexed(jobs);
    assert_eq!(*out[0].as_ref().expect("first cell fine"), 42);
    let err = out[1].as_ref().expect_err("second cell panicked");
    assert_eq!(err.coords.workload, "doomed");
    assert_eq!(err.coords.procs, 8);
    assert_eq!(err.coords.seed, 0xdead);
    assert!(!err.cancelled);
    assert!(err.message.contains("simulated livelock"), "{}", err.message);
    let display = err.to_string();
    assert!(display.contains("doomed") && display.contains("x8"), "{display}");
}

#[test]
fn single_job_pool_runs_inline_on_the_calling_thread() {
    let caller = std::thread::current().id();
    let pool = Pool::serial();
    let jobs: Vec<Job<std::thread::ThreadId>> = (0..5)
        .map(|i| Job::new(coords("inline", i, 0), |_| std::thread::current().id()))
        .collect();
    for r in pool.scatter_indexed(jobs) {
        assert_eq!(r.expect("inline jobs succeed"), caller, "jobs=1 must not spawn threads");
    }
}

#[test]
fn serial_cancellation_skips_every_later_job() {
    // With jobs=1 the semantics are exact: the cell that cancels
    // finishes, everything after it is skipped.
    let pool = Pool::serial();
    let ran = AtomicUsize::new(0);
    let jobs: Vec<Job<usize>> = (0..8)
        .map(|i| {
            let ran = &ran;
            Job::new(coords("early-exit", i, 0), move |token: &CancelToken| {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 2 {
                    token.cancel();
                }
                i
            })
        })
        .collect();
    let out = pool.scatter_indexed(jobs);
    assert_eq!(ran.load(Ordering::SeqCst), 3, "jobs 0..=2 run, the rest are skipped");
    for (i, r) in out.iter().enumerate() {
        if i <= 2 {
            assert_eq!(*r.as_ref().expect("ran"), i);
        } else {
            let e = r.as_ref().expect_err("skipped");
            assert!(e.cancelled, "cell {i} must be reported as cancelled");
            assert_eq!(e.coords.procs, i);
        }
    }
}

#[test]
fn parallel_panic_cancels_pending_jobs() {
    // Job 0 panics immediately; jobs 2.. each take long enough that by
    // the time any worker claims them the cancel flag is set. Claimed
    // jobs (index 1 may already be running on the second worker) are
    // allowed to finish.
    let pool = Pool::new(2);
    let n = 10usize;
    let jobs: Vec<Job<usize>> = (0..n)
        .map(|i| {
            Job::new(coords("cascade", i, 0), move |_| {
                if i == 0 {
                    panic!("first cell fails");
                }
                std::thread::sleep(Duration::from_millis(20));
                i
            })
        })
        .collect();
    let out = pool.scatter_indexed(jobs);
    let e0 = out[0].as_ref().expect_err("cell 0 panicked");
    assert!(!e0.cancelled);
    assert!(e0.message.contains("first cell fails"));
    // Every cell from index 2 on was claimed after the cancel landed.
    for (i, r) in out.iter().enumerate().skip(2) {
        let e = r.as_ref().expect_err("pending cell skipped");
        assert!(e.cancelled, "cell {i} must be cancelled, got {e}");
    }
}

#[test]
fn external_token_chains_across_scatters() {
    let pool = Pool::new(2);
    let token = CancelToken::new();
    token.cancel();
    let jobs: Vec<Job<u32>> = (0..4).map(|i| Job::new(coords("chained", i, 0), |_| 1)).collect();
    for r in pool.scatter_with_token(jobs, &token) {
        assert!(r.expect_err("all skipped").cancelled);
    }
}

#[test]
fn more_workers_than_jobs_is_fine() {
    let pool = Pool::new(64);
    let jobs: Vec<Job<u32>> = (0..3).map(|i| Job::new(coords("tiny", i, 0), move |_| i as u32)).collect();
    let out: Vec<u32> = pool.scatter_indexed(jobs).into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(out, vec![0, 1, 2]);
}
