//! MCS queue locks (Mellor-Crummey & Scott [26]) over LL/SC.
//!
//! Each thread owns a queue node per lock; the lock variable is a
//! tail pointer. Acquisition swaps the tail to self and, if there was
//! a predecessor, links behind it and spins on a *local* flag;
//! release hands the lock to the successor (or CASes the tail back to
//! null). Threads thus form an orderly software queue instead of
//! racing for the lock word — scalable under contention but with a
//! fixed software overhead per acquisition, which is exactly the
//! trade-off the paper's Figures 8-11 explore.
//!
//! `null` is represented by 0, so queue nodes must live at non-zero
//! addresses.

use tlr_cpu::asm::Asm;
use tlr_cpu::isa::Reg;

/// Byte offset of a queue node's `locked` spin flag.
pub const LOCKED_OFF: i64 = 0;
/// Byte offset of a queue node's `next` pointer. Kept on a separate
/// cache line from `locked` so a predecessor's link-in does not
/// invalidate the owner's spin line.
pub const NEXT_OFF: i64 = 64;
/// Bytes occupied by one queue node (two padded cache lines).
pub const QNODE_SIZE: u64 = 128;

/// Scratch registers for the MCS code. `zero` must hold 0 and `one`
/// must hold 1 (see [`init_regs`]).
#[derive(Debug, Clone, Copy)]
pub struct McsRegs {
    /// Holds constant 0.
    pub zero: Reg,
    /// Holds constant 1.
    pub one: Reg,
    /// Scratch (predecessor / successor pointer).
    pub t1: Reg,
    /// Scratch (LL value).
    pub t2: Reg,
    /// Scratch (SC flag).
    pub t3: Reg,
}

impl McsRegs {
    /// Allocates the five registers from the assembler.
    pub fn alloc(a: &mut Asm) -> Self {
        McsRegs { zero: a.reg(), one: a.reg(), t1: a.reg(), t2: a.reg(), t3: a.reg() }
    }
}

/// Loads the constants the lock code relies on. Call once before the
/// first [`acquire`].
pub fn init_regs(a: &mut Asm, r: &McsRegs) {
    a.li(r.zero, 0);
    a.li(r.one, 1);
}

/// Emits an MCS acquisition. `tail` holds the address of the lock's
/// tail pointer; `qnode` holds the address of this thread's queue
/// node for this lock.
pub fn acquire(a: &mut Asm, tail: Reg, qnode: Reg, r: &McsRegs) {
    // qnode.next = null; qnode.locked = 1 (before linking in).
    a.store(r.zero, qnode, NEXT_OFF);
    a.store(r.one, qnode, LOCKED_OFF);
    // pred = SWAP(tail, qnode)
    let swap = a.here();
    a.ll(r.t1, tail, 0);
    a.sc(r.t3, qnode, tail, 0);
    a.beq(r.t3, r.zero, swap);
    // If there was a predecessor, link behind it and spin locally.
    let acquired = a.label();
    a.beq(r.t1, r.zero, acquired);
    a.store(qnode, r.t1, NEXT_OFF); // pred.next = qnode
    let spin = a.here();
    a.load(r.t2, qnode, LOCKED_OFF);
    a.bne(r.t2, r.zero, spin);
    a.bind(acquired);
}

/// Emits an MCS release.
pub fn release(a: &mut Asm, tail: Reg, qnode: Reg, r: &McsRegs) {
    let done = a.label();
    let hand_over = a.label();
    // successor = qnode.next
    a.load(r.t1, qnode, NEXT_OFF);
    a.bne(r.t1, r.zero, hand_over);
    // No known successor: try CAS(tail, qnode, null).
    let cas = a.here();
    a.ll(r.t2, tail, 0);
    let wait_link = a.label();
    a.bne(r.t2, qnode, wait_link); // someone is mid-enqueue
    a.sc(r.t3, r.zero, tail, 0);
    a.beq(r.t3, r.zero, cas);
    a.jmp(done);
    // Wait for the enqueuer to link in, then hand over.
    a.bind(wait_link);
    let spin = a.here();
    a.load(r.t1, qnode, NEXT_OFF);
    a.beq(r.t1, r.zero, spin);
    a.bind(hand_over);
    a.store(r.zero, r.t1, LOCKED_OFF); // successor.locked = 0
    a.bind(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use tlr_core::Machine;
    use tlr_mem::Addr;
    use tlr_sim::config::{MachineConfig, Scheme};

    const TAIL: u64 = 0x100;
    const COUNTER: u64 = 0x200;
    const QNODES: u64 = 0x1000;

    fn counter_program(me: usize, iters: u64) -> Arc<tlr_cpu::Program> {
        let mut a = Asm::new(format!("mcs-counter-{me}"));
        let tail = a.reg();
        let qnode = a.reg();
        let counter = a.reg();
        let n = a.reg();
        let v = a.reg();
        let r = McsRegs::alloc(&mut a);
        init_regs(&mut a, &r);
        a.li(tail, TAIL);
        a.li(qnode, QNODES + me as u64 * QNODE_SIZE);
        a.li(counter, COUNTER);
        a.li(n, iters);
        let top = a.here();
        acquire(&mut a, tail, qnode, &r);
        a.load(v, counter, 0);
        a.addi(v, v, 1);
        a.store(v, counter, 0);
        release(&mut a, tail, qnode, &r);
        a.rand_delay(1, 8);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }

    fn run(procs: usize, iters: u64) -> Machine {
        let mut cfg = MachineConfig::small(Scheme::Mcs, procs);
        cfg.max_cycles = 100_000_000;
        let programs = (0..procs).map(|i| counter_program(i, iters)).collect();
        let mut m = Machine::new(cfg, programs, HashSet::from([Addr(TAIL)]));
        m.run().expect("quiesce");
        m
    }

    #[test]
    fn mutual_exclusion() {
        for procs in [1, 2, 4] {
            let m = run(procs, 25);
            assert_eq!(m.final_word(Addr(COUNTER)), 25 * procs as u64, "{procs} procs");
            assert_eq!(m.final_word(Addr(TAIL)), 0, "queue empty at end");
        }
    }

    #[test]
    fn asymmetric_iteration_counts_stay_correct() {
        // Different per-thread work exercises handoffs where the queue
        // drains and refills repeatedly.
        let procs = 3;
        let mut cfg = MachineConfig::small(Scheme::Mcs, procs);
        cfg.max_cycles = 100_000_000;
        let programs = (0..procs).map(|i| counter_program(i, 5 + 10 * i as u64)).collect();
        let mut m = Machine::new(cfg, programs, HashSet::from([Addr(TAIL)]));
        m.run().expect("quiesce");
        assert_eq!(m.final_word(Addr(COUNTER)), 5 + 15 + 25);
        assert_eq!(m.final_word(Addr(TAIL)), 0, "queue empty at end");
    }

    #[test]
    fn heavier_contention_still_correct() {
        let m = run(8, 15);
        assert_eq!(m.final_word(Addr(COUNTER)), 120);
    }
}
