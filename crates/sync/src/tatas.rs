//! Test&test&set lock over LL/SC.
//!
//! The lock word holds 0 when free and 1 when held. Acquire spins on
//! an ordinary load (the "test" that stays in the local cache), then
//! attempts the atomic acquisition with load-linked /
//! store-conditional. Release is a single ordinary store of 0 — which
//! together with the acquiring store forms exactly the *silent
//! store-pair* SLE elides (§2.2).

use tlr_cpu::asm::Asm;
use tlr_cpu::isa::Reg;

/// Scratch registers used by the lock code. `zero` and `one` must
/// hold the constants 0 and 1 (see [`init_regs`]).
#[derive(Debug, Clone, Copy)]
pub struct TatasRegs {
    /// Holds constant 0.
    pub zero: Reg,
    /// Holds constant 1.
    pub one: Reg,
    /// Scratch.
    pub t1: Reg,
    /// Scratch.
    pub t2: Reg,
}

impl TatasRegs {
    /// Allocates the four registers from the assembler.
    pub fn alloc(a: &mut Asm) -> Self {
        TatasRegs { zero: a.reg(), one: a.reg(), t1: a.reg(), t2: a.reg() }
    }
}

/// Loads the constants the lock code relies on. Call once before the
/// first [`acquire`].
pub fn init_regs(a: &mut Asm, r: &TatasRegs) {
    a.li(r.zero, 0);
    a.li(r.one, 1);
}

/// Emits a test&test&set acquisition of the lock at address
/// `lock_base + off`. Spins until acquired.
pub fn acquire_off(a: &mut Asm, lock_base: Reg, off: i64, r: &TatasRegs) {
    let spin = a.here();
    // Test: spin locally while held.
    a.load(r.t1, lock_base, off);
    a.bne(r.t1, r.zero, spin);
    // Test&set: LL/SC attempt.
    a.ll(r.t1, lock_base, off);
    a.bne(r.t1, r.zero, spin);
    a.sc(r.t2, r.one, lock_base, off);
    a.beq(r.t2, r.zero, spin);
}

/// Emits an acquisition of the lock at `lock_base + 0`.
pub fn acquire(a: &mut Asm, lock_base: Reg, r: &TatasRegs) {
    acquire_off(a, lock_base, 0, r);
}

/// Emits a release of the lock at `lock_base + off`: a single store
/// of 0 (the second, silent store of the elidable pair).
pub fn release_off(a: &mut Asm, lock_base: Reg, off: i64, r: &TatasRegs) {
    a.store(r.zero, lock_base, off);
}

/// Emits a release of the lock at `lock_base + 0`.
pub fn release(a: &mut Asm, lock_base: Reg, r: &TatasRegs) {
    release_off(a, lock_base, 0, r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use tlr_core::Machine;
    use tlr_mem::Addr;
    use tlr_sim::config::{MachineConfig, Scheme};

    const LOCK: u64 = 0x100;
    const COUNTER: u64 = 0x200;

    /// A program that increments a shared counter `iters` times inside
    /// the lock, using non-atomic load/add/store — mutual exclusion is
    /// entirely the lock's job.
    fn counter_program(iters: u64) -> Arc<tlr_cpu::Program> {
        let mut a = Asm::new("tatas-counter");
        let lock = a.reg();
        let counter = a.reg();
        let n = a.reg();
        let v = a.reg();
        let r = TatasRegs::alloc(&mut a);
        init_regs(&mut a, &r);
        a.li(lock, LOCK);
        a.li(counter, COUNTER);
        a.li(n, iters);
        let top = a.here();
        acquire(&mut a, lock, &r);
        a.load(v, counter, 0);
        a.addi(v, v, 1);
        a.store(v, counter, 0);
        release(&mut a, lock, &r);
        a.rand_delay(1, 8);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }

    fn run(scheme: Scheme, procs: usize, iters: u64) -> Machine {
        let mut cfg = MachineConfig::small(scheme, procs);
        cfg.max_cycles = 50_000_000;
        let programs = (0..procs).map(|_| counter_program(iters)).collect();
        let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
        m.run().expect("quiesce");
        m
    }

    #[test]
    fn mutual_exclusion_on_base_hardware() {
        for procs in [1, 2, 4] {
            let m = run(Scheme::Base, procs, 30);
            assert_eq!(m.final_word(Addr(COUNTER)), 30 * procs as u64, "{procs} procs");
            assert_eq!(m.final_word(Addr(LOCK)), 0, "lock left free");
        }
    }

    #[test]
    fn serializable_under_sle() {
        let m = run(Scheme::Sle, 4, 30);
        assert_eq!(m.final_word(Addr(COUNTER)), 120);
        assert_eq!(m.final_word(Addr(LOCK)), 0);
    }

    #[test]
    fn serializable_under_tlr() {
        let m = run(Scheme::Tlr, 4, 30);
        assert_eq!(m.final_word(Addr(COUNTER)), 120);
        assert_eq!(m.final_word(Addr(LOCK)), 0);
        // TLR must actually elide: after the one training acquisition
        // per processor, critical sections commit lock-free.
        assert!(m.stats().total_commits() > 0, "no lock-free commits under TLR");
    }

    #[test]
    fn tlr_strict_ts_also_serializable() {
        let m = run(Scheme::TlrStrictTs, 4, 20);
        assert_eq!(m.final_word(Addr(COUNTER)), 80);
    }

    #[test]
    fn single_thread_uncontended() {
        let m = run(Scheme::Tlr, 1, 10);
        assert_eq!(m.final_word(Addr(COUNTER)), 10);
    }
}
