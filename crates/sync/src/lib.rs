//! Lock algorithms for the simulated machine, emitted as IR.
//!
//! The paper's BASE/SLE/TLR configurations all execute the same
//! binary built on a **test&test&set** lock over load-linked /
//! store-conditional ([`tatas`]); the MCS configuration runs a binary
//! using **MCS queue locks** ([`mcs`]), the scalable software queue
//! lock of Mellor-Crummey & Scott that the paper compares against
//! (§5: "MCS locks are scalable software-queue locks that perform
//! well under contention").
//!
//! # Example
//!
//! ```
//! use tlr_cpu::Asm;
//! use tlr_sync::tatas;
//!
//! let mut a = Asm::new("cs");
//! let lock = a.reg();
//! let regs = tatas::TatasRegs::alloc(&mut a);
//! a.li(lock, 0x100);
//! tatas::init_regs(&mut a, &regs);
//! tatas::acquire(&mut a, lock, &regs);
//! // ... critical section ...
//! tatas::release(&mut a, lock, &regs);
//! a.done();
//! let program = a.finish();
//! assert!(program.len() > 5);
//! ```

pub mod mcs;
pub mod tatas;
