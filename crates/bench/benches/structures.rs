//! Microbenchmarks of the simulator's core data structures: the
//! structures on the critical path of every simulated cycle (cache
//! lookups, write-buffer forwarding, timestamp comparison, predictors,
//! bus arbitration, network delivery).
//!
//! Runs on the in-repo `tlr_check::timing` harness (`--json` for
//! machine-readable output, `--quick` for a fast pass).

use tlr_check::timing::{black_box, Suite, TimingOpts};
use tlr_core::{RmwPredictor, StorePairPredictor};
use tlr_mem::addr::{Addr, LineAddr};
use tlr_mem::line::{CacheLine, LineData, Moesi};
use tlr_mem::msg::{BusReqKind, BusRequest};
use tlr_mem::timestamp::Timestamp;
use tlr_mem::{Bus, Cache, Network, WriteBuffer};

fn main() {
    let mut suite = Suite::new("structures", TimingOpts::from_args());

    let mut cache = Cache::new(512, 4);
    for i in 0..1024u64 {
        cache.insert(CacheLine::new(LineAddr(i), Moesi::Shared, LineData::zeroed()));
    }
    let mut i = 0u64;
    suite.bench("cache_hit_lookup", || {
        i = (i + 7) % 1024;
        black_box(cache.get_mut(LineAddr(i)).is_some());
    });

    let mut small = Cache::new(16, 2);
    let mut j = 0u64;
    suite.bench("cache_insert_evict", || {
        j += 1;
        black_box(small.insert(CacheLine::new(LineAddr(j), Moesi::Shared, LineData::zeroed())));
    });

    let mut wb = WriteBuffer::new(64);
    suite.bench("write_buffer_merge_and_forward", || {
        wb.write(Addr(64), 1).unwrap();
        wb.write(Addr(72), 2).unwrap();
        let v = wb.read_word(Addr(72));
        wb.clear();
        black_box(v);
    });

    let a = Timestamp::new(12345, 3);
    let t = Timestamp::new(12346, 9);
    suite.bench("timestamp_wins_over", || {
        black_box(a.wins_over(t, 32));
    });

    let mut rmw = RmwPredictor::new(128, true);
    suite.bench("rmw_predictor_train_predict", || {
        rmw.record_load(42, LineAddr(7));
        rmw.record_store(LineAddr(7));
        black_box(rmw.predicts_store(42));
    });

    let mut sle = StorePairPredictor::new(64, true);
    suite.bench("sle_predictor_train_predict", || {
        sle.observe_atomic_store(10, Addr(64), 0, 1);
        sle.observe_store(Addr(64), 0);
        black_box(sle.should_elide(10));
    });

    let mut bus = Bus::new(16, 4);
    let mut now = 0;
    suite.bench("bus_enqueue_order", || {
        bus.enqueue(
            3,
            BusRequest {
                requester: 3,
                line: LineAddr(9),
                kind: BusReqKind::GetX,
                ts: None,
                karma: 0,
                wb_data: None,
                enqueued_at: now,
            },
        );
        now += 4;
        black_box(bus.tick(now));
    });

    let mut net: Network<u64> = Network::new();
    let mut t2 = 0;
    suite.bench("network_send_drain", || {
        net.send(t2 + 20, 1);
        net.send(t2 + 20, 2);
        t2 += 20;
        black_box(net.drain_ready(t2).len());
    });

    suite.finish();
}
