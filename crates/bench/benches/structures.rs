//! Criterion microbenchmarks of the simulator's core data
//! structures: the structures on the critical path of every simulated
//! cycle (cache lookups, write-buffer forwarding, timestamp
//! comparison, predictors, bus arbitration, network delivery).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tlr_core::{RmwPredictor, StorePairPredictor};
use tlr_mem::addr::{Addr, LineAddr};
use tlr_mem::line::{CacheLine, LineData, Moesi};
use tlr_mem::msg::{BusReqKind, BusRequest};
use tlr_mem::timestamp::Timestamp;
use tlr_mem::{Bus, Cache, Network, WriteBuffer};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_hit_lookup", |b| {
        let mut cache = Cache::new(512, 4);
        for i in 0..1024u64 {
            cache.insert(CacheLine::new(LineAddr(i), Moesi::Shared, LineData::zeroed()));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            black_box(cache.get_mut(LineAddr(i)).is_some())
        })
    });
    c.bench_function("cache_insert_evict", |b| {
        let mut cache = Cache::new(16, 2);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.insert(CacheLine::new(LineAddr(i), Moesi::Shared, LineData::zeroed())))
        })
    });
}

fn bench_write_buffer(c: &mut Criterion) {
    c.bench_function("write_buffer_merge_and_forward", |b| {
        let mut wb = WriteBuffer::new(64);
        b.iter(|| {
            wb.write(Addr(64), 1).unwrap();
            wb.write(Addr(72), 2).unwrap();
            let v = wb.read_word(Addr(72));
            wb.clear();
            black_box(v)
        })
    });
}

fn bench_timestamp(c: &mut Criterion) {
    c.bench_function("timestamp_wins_over", |b| {
        let a = Timestamp::new(12345, 3);
        let t = Timestamp::new(12346, 9);
        b.iter(|| black_box(a.wins_over(t, 32)))
    });
}

fn bench_predictors(c: &mut Criterion) {
    c.bench_function("rmw_predictor_train_predict", |b| {
        let mut p = RmwPredictor::new(128, true);
        b.iter(|| {
            p.record_load(42, LineAddr(7));
            p.record_store(LineAddr(7));
            black_box(p.predicts_store(42))
        })
    });
    c.bench_function("sle_predictor_train_predict", |b| {
        let mut p = StorePairPredictor::new(64, true);
        b.iter(|| {
            p.observe_atomic_store(10, Addr(64), 0, 1);
            p.observe_store(Addr(64), 0);
            black_box(p.should_elide(10))
        })
    });
}

fn bench_interconnect(c: &mut Criterion) {
    c.bench_function("bus_enqueue_order", |b| {
        let mut bus = Bus::new(16, 4);
        let mut now = 0;
        b.iter(|| {
            bus.enqueue(
                3,
                BusRequest {
                    requester: 3,
                    line: LineAddr(9),
                    kind: BusReqKind::GetX,
                    ts: None,
                    wb_data: None,
                    enqueued_at: now,
                },
            );
            now += 4;
            black_box(bus.tick(now))
        })
    });
    c.bench_function("network_send_drain", |b| {
        let mut net: Network<u64> = Network::new();
        let mut now = 0;
        b.iter(|| {
            net.send(now + 20, 1);
            net.send(now + 20, 2);
            now += 20;
            black_box(net.drain_ready(now).len())
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_write_buffer,
    bench_timestamp,
    bench_predictors,
    bench_interconnect
);
criterion_main!(benches);
