//! Golden-shape tests: run the same invariants the figure/table
//! binaries assert under `--check`, so `cargo test` and the binaries'
//! check mode can never drift apart.
//!
//! Each check replays its experiment at small scale and asserts the
//! paper's result *directions* (TLR ≥ SLE ≥ BASE orderings, coarse
//! locks hurting BASE but not TLR, ...) and output schemas without
//! pinning absolute cycle counts.
//!
//! The checks run through the same worker pool the binaries use
//! (`TLR_JOBS` or host parallelism), so `cargo test` also exercises
//! the parallel fan-out path.

use tlr_bench::checks;
use tlr_sim::pool::Pool;

fn pool() -> Pool {
    Pool::from_env()
}

#[test]
fn fig08_shape_holds() {
    checks::fig08(&pool()).unwrap();
}

#[test]
fn fig09_shape_holds() {
    checks::fig09(&pool()).unwrap();
}

#[test]
fn fig10_shape_holds() {
    checks::fig10(&pool()).unwrap();
}

#[test]
fn fig11_shape_holds() {
    checks::fig11(&pool()).unwrap();
}

#[test]
fn table1_schema_holds() {
    checks::table1(&pool()).unwrap();
}

#[test]
fn table2_schema_holds() {
    checks::table2(&pool()).unwrap();
}

#[test]
fn exp_coarse_fine_shape_holds() {
    checks::exp_coarse_fine(&pool()).unwrap();
}

#[test]
fn exp_rmw_predictor_shape_holds() {
    checks::exp_rmw_predictor(&pool()).unwrap();
}

#[test]
fn exp_ablations_never_break_correctness() {
    checks::exp_ablations(&pool()).unwrap();
}

#[test]
fn exp_robustness_chaos_never_breaks_correctness() {
    checks::exp_robustness(&pool()).unwrap();
}

#[test]
fn exp_scalability_shape_holds() {
    checks::exp_scalability(&pool()).unwrap();
}

#[test]
fn profile_smoke_holds() {
    checks::profile(&pool()).unwrap();
}

#[test]
fn exp_policies_shape_holds() {
    checks::exp_policies(&pool()).unwrap();
}
