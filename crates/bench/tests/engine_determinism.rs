//! The determinism wall, extended to the event-driven engine.
//!
//! `parallel_determinism.rs` proves every sweep renders byte-identical
//! JSON at `jobs=1` and `jobs=4` under the process default engine;
//! this file pins down the engine-specific half of that guarantee:
//! the event engine *is* the process default, it stays deterministic
//! across worker counts and across repeated runs with a fixed fault
//! seed, and at the machine level it reproduces the cycle-stepped
//! oracle byte for byte even under chaos.

use tlr_bench::{sweeps, BenchOpts};
use tlr_core::run::run_workload;
use tlr_sim::config::{default_engine, Engine, MachineConfig, Scheme};
use tlr_sim::fault::FaultConfig;
use tlr_sim::pool::Pool;
use tlr_workloads::micro::single_counter;

#[test]
fn event_is_the_default_engine() {
    // The tentpole contract: every binary (and every test in this
    // process) runs the discrete-event engine unless `--engine cycle`
    // asks for the oracle.
    assert_eq!(default_engine(), Engine::EventDriven);
}

#[test]
fn fig11_event_engine_jobs1_matches_jobs4() {
    assert_eq!(default_engine(), Engine::EventDriven);
    let opts = BenchOpts { procs: vec![2, 4], quick: true, seeds: 2, ..Default::default() };
    let serial = sweeps::fig11(&opts, &Pool::new(1)).json();
    let parallel = sweeps::fig11(&opts, &Pool::new(4)).json();
    assert_eq!(serial, parallel, "event engine: jobs=4 must be byte-identical to jobs=1");
    tlr_sim::json::validate(&serial).expect("valid JSON");
}

#[test]
fn chaos_event_engine_is_a_pure_function_of_the_fault_seed() {
    assert_eq!(default_engine(), Engine::EventDriven);
    let o = BenchOpts { quick: true, faults: 2, fault_seed: 0xeeee_feed, ..Default::default() };
    let serial = sweeps::robustness(&o, &Pool::new(1)).json();
    let parallel = sweeps::robustness(&o, &Pool::new(4)).json();
    assert_eq!(serial, parallel, "event engine chaos: jobs=4 must match jobs=1");
    let again = sweeps::robustness(&o, &Pool::new(4)).json();
    assert_eq!(parallel, again, "event engine chaos must reproduce run-to-run");
}

#[test]
fn event_and_cycle_chaos_runs_are_identical_at_machine_level() {
    // Machine-level engine equivalence under injected faults, driven
    // through the builder (never the process-wide default, which
    // concurrent tests share). The full fuzzed sweep lives in
    // crates/check; this is the bench wall's smoke-sized pin.
    for (i, scheme) in [Scheme::Base, Scheme::Sle, Scheme::Tlr].into_iter().enumerate() {
        let fault_seed = 0xbead_cafe_u64 + i as u64;
        let w = single_counter(4, 96);
        let run = |engine: Engine| {
            let cfg = MachineConfig::builder()
                .scheme(scheme)
                .procs(4)
                .faults(FaultConfig::intensity(fault_seed, 3))
                .engine(engine)
                .build();
            run_workload(&cfg, &w)
        };
        let event = run(Engine::EventDriven);
        let cycle = run(Engine::CycleStepped);
        assert_eq!(
            format!("{:?}", event.stats),
            format!("{:?}", cycle.stats),
            "[{scheme}] event engine must reproduce the oracle under chaos"
        );
    }
}
