//! The reproducibility wall: every figure/table/exp entry point must
//! produce **byte-identical** JSON at `jobs=1` and `jobs=4`, and a
//! fuzz batch must digest identically at both worker counts.
//!
//! This is the load-bearing guarantee of the parallel execution
//! engine — parallelism may only change wall-clock time, never a
//! single output byte. The tests run at `--quick` scale with two
//! perturbation seeds so the seeded-averaging path is exercised too.

use tlr_bench::{sweeps, BenchOpts};
use tlr_sim::pool::Pool;

fn opts(procs: Vec<usize>) -> BenchOpts {
    BenchOpts { procs, quick: true, seeds: 2, ..Default::default() }
}

/// Renders one entry point's JSON under a serial and a 4-worker pool
/// and demands byte equality.
fn assert_identical(name: &str, render: impl Fn(&Pool) -> String) {
    let serial = render(&Pool::new(1));
    let parallel = render(&Pool::new(4));
    assert_eq!(
        serial, parallel,
        "{name}: jobs=4 output must be byte-identical to jobs=1"
    );
    tlr_sim::json::validate(&serial).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
}

#[test]
fn fig08_is_parallel_deterministic() {
    assert_identical("fig08", |pool| sweeps::fig08(&opts(vec![1, 2]), pool).json());
}

#[test]
fn fig09_is_parallel_deterministic() {
    assert_identical("fig09", |pool| sweeps::fig09(&opts(vec![1, 2]), pool).json());
}

#[test]
fn fig10_is_parallel_deterministic() {
    assert_identical("fig10", |pool| sweeps::fig10(&opts(vec![1, 2]), pool).json());
}

#[test]
fn fig11_is_parallel_deterministic() {
    assert_identical("fig11", |pool| sweeps::fig11(&opts(vec![2]), pool).json());
}

#[test]
fn table1_is_parallel_deterministic() {
    // Static data — the entry point must not depend on any pool state.
    assert_identical("table1", |_pool| sweeps::table1_json());
}

#[test]
fn table2_is_parallel_deterministic() {
    assert_identical("table2", |_pool| sweeps::table2_json());
}

#[test]
fn exp_coarse_fine_is_parallel_deterministic() {
    assert_identical("exp_coarse_fine", |pool| sweeps::coarse_fine(&opts(vec![2]), pool).json());
}

#[test]
fn exp_rmw_predictor_is_parallel_deterministic() {
    assert_identical("exp_rmw_predictor", |pool| {
        sweeps::rmw_predictor(&opts(vec![2]), pool).json()
    });
}

#[test]
fn exp_ablations_is_parallel_deterministic() {
    assert_identical("exp_ablations", |pool| sweeps::ablations(&opts(vec![2]), pool).json());
}

#[test]
fn exp_robustness_is_parallel_deterministic() {
    let o = BenchOpts { quick: true, faults: 2, ..Default::default() };
    assert_identical("exp_robustness", |pool| sweeps::robustness(&o, pool).json());
}

#[test]
fn exp_scalability_is_parallel_deterministic() {
    // Past-the-bus-limit cells through the directory's banked ordering
    // points: bank scheduling must not leak worker-count dependence.
    let o = BenchOpts {
        interconnect: tlr_sim::config::Interconnect::Directory,
        ..opts(vec![8, 32])
    };
    assert_identical("exp_scalability", |pool| sweeps::scalability(&o, pool).json());
}

#[test]
fn exp_policies_is_parallel_deterministic() {
    assert_identical("exp_policies", |pool| sweeps::policies(&opts(vec![2]), pool).json());
}

#[test]
fn chaos_cells_reproduce_for_a_fixed_fault_seed() {
    // Same (config, fault seed) must yield byte-identical results
    // run-to-run, not just across worker counts.
    let o = BenchOpts { quick: true, faults: 1, fault_seed: 0xfeed_f00d, ..Default::default() };
    let pool = Pool::new(4);
    let a = sweeps::robustness(&o, &pool).json();
    let b = sweeps::robustness(&o, &pool).json();
    assert_eq!(a, b, "chaos must be a pure function of the fault seed");
}

#[test]
fn faults_off_leaves_the_machine_untouched() {
    // An explicit FaultConfig::off() must be indistinguishable from a
    // config that never mentions faults: no hook is installed, so the
    // full statistics block — not just the cycle count — is identical.
    use tlr_core::run::run_workload;
    use tlr_sim::config::{MachineConfig, Scheme};
    use tlr_sim::fault::FaultConfig;
    use tlr_workloads::micro::single_counter;

    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        let w = single_counter(2, 128);
        let default_cfg = MachineConfig::paper_default(scheme, 2);
        let mut off_cfg = default_cfg.clone();
        off_cfg.faults = FaultConfig::off();
        let a = run_workload(&default_cfg, &w);
        let b = run_workload(&off_cfg, &w);
        assert_eq!(
            format!("{:?}", a.stats),
            format!("{:?}", b.stats),
            "[{scheme}] FaultConfig::off() must be the identity"
        );
    }
}

#[test]
fn fuzz_batch_digest_parallel_matches_serial() {
    let serial = tlr_check::fuzz::batch_digest(0xd1ce, 64, &Pool::new(1));
    let parallel = tlr_check::fuzz::batch_digest(0xd1ce, 64, &Pool::new(4));
    assert_eq!(serial, parallel, "64-case fuzz batch must digest identically at any worker count");
    assert_eq!(serial.len(), 16, "FNV-1a 64 digest renders as 16 hex digits: {serial}");
}
