//! `--check` mode: golden-shape assertions for every figure/table
//! binary.
//!
//! Each function replays its binary's experiment at a small, fixed
//! scale and asserts the *direction* of the paper's results (TLR beats
//! BASE under contention, the §3.2 relaxation beats strict timestamp
//! order, coarse locks hurt BASE but not TLR, ...) plus the output
//! schema (row counts, app names, configuration fields). No absolute
//! cycle counts are pinned — a margin-preserving simulator change must
//! keep passing, a direction-reversing one must fail.
//!
//! The functions are shared between the binaries (`--check` flag) and
//! the `check_mode` integration test, so `cargo test` exercises the
//! same invariants CI asserts via the binaries.
//!
//! Every check takes the shared worker [`Pool`] and fans its cells out
//! through it; a cell that fails (panic or serializability violation)
//! cancels the rest of that check's scatter and surfaces as the
//! check's error, with the cell's (workload, scheme, procs, seed)
//! coordinates in the message.

use tlr_core::run::{run_workload, RunReport, WorkloadSpec};
use tlr_sim::config::{Interconnect, MachineConfig, PolicyKind, RetentionPolicy, Scheme};
use tlr_sim::pool::{Job, Pool};
use tlr_workloads::apps::{figure11_apps, mp3d, mp3d_coarse};
use tlr_workloads::micro::{doubly_linked_list, multiple_counter, single_counter};

use crate::{cell_coords, run_cell, speedup};

/// Runs one named check through `pool`, printing a `CHECK
/// PASS`/`CHECK FAIL` line and exiting non-zero on failure (the
/// binaries' `--check` entry point). With `--json`, the verdict is
/// also written as `{"check": name, "pass": bool, "error"?: string}`.
pub fn run(name: &str, f: fn(&Pool) -> Result<(), String>, pool: &Pool, json: Option<&std::path::Path>) {
    let outcome = f(pool);
    if let Some(path) = json {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("check", name);
        j.bool_field("pass", outcome.is_ok());
        if let Err(e) = &outcome {
            j.str_field("error", e);
        }
        j.end_obj();
        crate::write_json_file(path, &j.finish());
    }
    match outcome {
        Ok(()) => println!("CHECK PASS: {name}"),
        Err(e) => {
            eprintln!("CHECK FAIL: {name}: {e}");
            std::process::exit(1);
        }
    }
}

/// Scatters `jobs` and collects the results, turning the first failed
/// cell (a panic inside the cell, coordinates attached by the pool)
/// into the check's error. Workers claim cells in submission order, so
/// the first error seen here is a genuine failure, never a
/// cancellation echo.
fn pooled<T: Send>(pool: &Pool, jobs: Vec<Job<'_, T>>) -> Result<Vec<T>, String> {
    pool.scatter_indexed(jobs).into_iter().map(|r| r.map_err(|e| e.to_string())).collect()
}

/// Runs `w` under each scheme concurrently, returning the parallel
/// cycle counts in scheme order.
fn scheme_cycles(
    pool: &Pool,
    procs: usize,
    schemes: &[Scheme],
    w: &dyn WorkloadSpec,
) -> Result<Vec<u64>, String> {
    let jobs = schemes
        .iter()
        .map(|&s| {
            Job::new(cell_coords(w.name(), s, procs), move |_| {
                run_cell(s, procs, w).stats.parallel_cycles
            })
        })
        .collect();
    pooled(pool, jobs)
}

fn ensure(cond: bool, msg: String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg)
    }
}

/// Figure 8 (multiple counters, no data conflicts): SLE and TLR are
/// near-identical and both decisively beat BASE at high processor
/// counts.
pub fn fig08(pool: &Pool) -> Result<(), String> {
    let procs = 8;
    let w = multiple_counter(procs, 1024);
    let c = scheme_cycles(pool, procs, &[Scheme::Base, Scheme::Sle, Scheme::Tlr], &w)?;
    let (base, sle, tlr) = (c[0], c[1], c[2]);
    ensure(
        (sle as f64 - tlr as f64).abs() / tlr as f64 <= 0.25,
        format!("SLE ({sle}) and TLR ({tlr}) must be near-identical without conflicts"),
    )?;
    ensure(tlr * 2 < base, format!("TLR must beat BASE decisively: {tlr} vs {base}"))
}

/// Figure 9 (one contended counter): TLR < strict-ts < BASE, TLR <
/// SLE, TLR < MCS — the paper's scheme ordering under high conflict.
pub fn fig09(pool: &Pool) -> Result<(), String> {
    let procs = 8;
    let w = single_counter(procs, 1024);
    let c = scheme_cycles(
        pool,
        procs,
        &[Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::TlrStrictTs, Scheme::Tlr],
        &w,
    )?;
    let (base, mcs, sle, strict, tlr) = (c[0], c[1], c[2], c[3], c[4]);
    ensure(tlr < strict, format!("§3.2 relaxation must help: TLR {tlr} vs strict {strict}"))?;
    ensure(strict < base, format!("even strict TLR beats BASE: {strict} vs {base}"))?;
    ensure(tlr < sle, format!("TLR beats SLE under conflicts: {tlr} vs {sle}"))?;
    ensure(sle < base, format!("SLE lands between BASE and TLR: {sle} vs {base}"))?;
    ensure(tlr < mcs, format!("TLR avoids MCS software overhead: {tlr} vs {mcs}"))
}

/// Figure 10 (doubly-linked list): TLR extracts the head/tail
/// concurrency the single lock hides.
pub fn fig10(pool: &Pool) -> Result<(), String> {
    let procs = 8;
    let w = doubly_linked_list(procs, 256);
    let c = scheme_cycles(pool, procs, &[Scheme::Base, Scheme::Tlr], &w)?;
    let (base, tlr) = (c[0], c[1]);
    ensure(tlr < base, format!("TLR must beat BASE on the deque: {tlr} vs {base}"))
}

/// Figure 11 (application kernels): exactly seven uniquely named
/// apps; across the suite TLR is no slower than BASE and removes most
/// of the cycles attributed to lock variables.
pub fn fig11(pool: &Pool) -> Result<(), String> {
    let procs = 4;
    let apps = figure11_apps(procs, 64);
    ensure(apps.len() == 7, format!("figure 11 needs 7 apps, found {}", apps.len()))?;
    let names: std::collections::HashSet<&str> = apps.iter().map(|w| w.name()).collect();
    ensure(names.len() == 7, format!("app names must be unique: {names:?}"))?;
    let mut jobs = Vec::with_capacity(apps.len() * 2);
    for w in &apps {
        for scheme in [Scheme::Base, Scheme::Tlr] {
            let w = w.as_ref();
            jobs.push(Job::new(cell_coords(w.name(), scheme, procs), move |_| {
                run_cell(scheme, procs, w)
            }));
        }
    }
    let reports = pooled(pool, jobs)?;
    let mut base_total = 0u64;
    let mut tlr_total = 0u64;
    let mut base_lock = 0u64;
    let mut tlr_lock = 0u64;
    for pair in reports.chunks(2) {
        let (base, tlr) = (&pair[0], &pair[1]);
        base_total += base.stats.parallel_cycles;
        tlr_total += tlr.stats.parallel_cycles;
        base_lock += base.stats.total_lock_cycles();
        tlr_lock += tlr.stats.total_lock_cycles();
    }
    ensure(
        tlr_total <= base_total,
        format!("TLR must not lose to BASE across the suite: {tlr_total} vs {base_total}"),
    )?;
    ensure(
        tlr_lock * 2 < base_lock,
        format!("TLR must elide most lock-variable cycles: {tlr_lock} vs {base_lock}"),
    )
}

/// Table 1 schema: the inventory covers exactly the applications the
/// Figure 11 suite actually runs. (Schema-only — no cells to fan out.)
pub fn table1(_pool: &Pool) -> Result<(), String> {
    let table = ["barnes", "cholesky", "mp3d", "radiosity", "water-nsq", "ocean-cont", "raytrace"];
    let mut have: Vec<String> =
        figure11_apps(2, 16).iter().map(|w| w.name().to_string()).collect();
    have.sort();
    let mut want: Vec<String> = table.iter().map(|s| s.to_string()).collect();
    want.sort();
    ensure(have == want, format!("table rows {want:?} != figure 11 apps {have:?}"))
}

/// Table 2 schema: the default machine configuration carries the
/// paper's parameters (Table 2) in every field the dump prints.
/// (Schema-only — no cells to fan out.)
pub fn table2(_pool: &Pool) -> Result<(), String> {
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 16);
    ensure(cfg.num_procs == 16, format!("16 processors, got {}", cfg.num_procs))?;
    ensure(cfg.line_bytes() == 64, format!("64 B lines, got {}", cfg.line_bytes()))?;
    let l1_kb = cfg.l1_sets * cfg.l1_ways * 64 / 1024;
    ensure(l1_kb == 128, format!("128 KB L1, got {l1_kb} KB"))?;
    let l2_mb = cfg.l2_sets * cfg.l2_ways * 64 / (1024 * 1024);
    ensure(l2_mb == 4, format!("4 MB L2, got {l2_mb} MB"))?;
    ensure(
        cfg.latency.l1_hit < cfg.latency.l2 && cfg.latency.l2 < cfg.latency.memory,
        format!(
            "latencies must rank L1 < L2 < memory: {} / {} / {}",
            cfg.latency.l1_hit, cfg.latency.l2, cfg.latency.memory
        ),
    )?;
    ensure(cfg.mshrs > 0, "MSHRs must be present".into())?;
    ensure(cfg.write_buffer_lines > 0, "speculative write buffer must be present".into())?;
    ensure(cfg.victim_entries > 0, "victim cache must be present".into())?;
    ensure(cfg.sle_predictor_entries > 0, "SLE predictor must be present".into())?;
    ensure(
        cfg.rmw_predictor_enabled && cfg.rmw_predictor_entries > 0,
        "RMW predictor must default on (all paper experiments)".into(),
    )?;
    ensure(cfg.timestamp_bits > 0, "timestamps must be present".into())
}

/// Scalability experiment: the home-node directory carries the paper's
/// schemes past the snooping bus's 16-processor ceiling. At 32
/// processors — double what the bus can order — every cell completes
/// and validates, the directory (not the bus) does the ordering with
/// conservation of requests, and the paper's no-conflict shape
/// survives the fabric change: SLE and TLR stay near-identical and
/// both decisively beat BASE.
pub fn exp_scalability(pool: &Pool) -> Result<(), String> {
    let total = 2048u64;
    let schemes = crate::sweeps::SCALABILITY_SCHEMES;
    let procs_list = [8usize, 32];
    let mut jobs = Vec::with_capacity(procs_list.len() * schemes.len());
    for &procs in &procs_list {
        for &scheme in &schemes {
            jobs.push(Job::new(cell_coords("multiple_counter", scheme, procs), move |_| {
                let mut cfg = MachineConfig::paper_default(scheme, procs);
                cfg.interconnect = Interconnect::Directory;
                cfg.max_cycles = 60_000_000_000;
                let r = run_workload(&cfg, &multiple_counter(procs, total));
                r.assert_valid();
                r
            }));
        }
    }
    let reports = pooled(pool, jobs)?;
    for r in &reports {
        ensure(
            r.stats.dir.requests_ordered > 0,
            format!("[{} x{}] the directory must have ordered requests", r.scheme, r.procs),
        )?;
        ensure(
            r.stats.dir.requests_sent == r.stats.dir.requests_ordered,
            format!(
                "[{} x{}] request conservation: {} sent vs {} ordered",
                r.scheme, r.procs, r.stats.dir.requests_sent, r.stats.dir.requests_ordered
            ),
        )?;
        ensure(
            r.stats.dir.banks == r.procs as u64,
            format!(
                "[{} x{}] default banking is one home bank per processor, got {}",
                r.scheme, r.procs, r.stats.dir.banks
            ),
        )?;
    }
    let row32 = &reports[schemes.len()..];
    let (base, sle, tlr) = (
        row32[0].stats.parallel_cycles,
        row32[1].stats.parallel_cycles,
        row32[2].stats.parallel_cycles,
    );
    ensure(
        (sle as f64 - tlr as f64).abs() / tlr as f64 <= 0.25,
        format!("SLE ({sle}) and TLR ({tlr}) must stay near-identical without conflicts at 32 procs"),
    )?;
    ensure(
        tlr * 2 < base,
        format!("TLR must beat BASE decisively at 32 procs on the directory: {tlr} vs {base}"),
    )
}

/// Chaos degradation experiment: injected faults may cost cycles but
/// never correctness. Every cell validates, the fault bookkeeping is
/// self-consistent, level 0 is indistinguishable from a machine that
/// never heard of the fault layer, and the max-intensity cells
/// actually inject faults.
pub fn exp_robustness(pool: &Pool) -> Result<(), String> {
    use tlr_sim::fault::FaultConfig;
    let procs = 4;
    let total = 256u64;
    let seed = crate::cli::DEFAULT_FAULT_SEED;
    let schemes = crate::sweeps::ROBUSTNESS_SCHEMES;
    let mut jobs = Vec::with_capacity(schemes.len() * 3);
    for level in [0, FaultConfig::MAX_INTENSITY] {
        for scheme in schemes {
            jobs.push(Job::new(cell_coords("single_counter", scheme, procs), move |_| {
                let cfg = MachineConfig::builder()
                    .scheme(scheme)
                    .procs(procs)
                    .max_cycles(60_000_000_000)
                    .faults(FaultConfig::intensity(seed, level))
                    .build();
                run_workload(&cfg, &single_counter(procs, total))
            }));
        }
    }
    // Reference cells: the pre-chaos configuration path.
    for scheme in schemes {
        jobs.push(Job::new(cell_coords("single_counter", scheme, procs), move |_| {
            run_cell(scheme, procs, &single_counter(procs, total))
        }));
    }
    let reports = pooled(pool, jobs)?;
    for r in &reports {
        r.validation
            .clone()
            .map_err(|e| format!("[{} x{}] chaos broke serializability: {e}", r.scheme, r.procs))?;
        ensure(
            r.stats.faults.spurious_aborts == r.stats.sum(|n| n.aborts_injected),
            format!(
                "[{}] spurious-abort bookkeeping must agree: machine {} vs nodes {}",
                r.scheme,
                r.stats.faults.spurious_aborts,
                r.stats.sum(|n| n.aborts_injected)
            ),
        )?;
    }
    let (calm, rest) = reports.split_at(schemes.len());
    let (wild, refs) = rest.split_at(schemes.len());
    for (a, b) in calm.iter().zip(refs) {
        ensure(
            a.stats.faults.total_injected() == 0,
            format!("[{}] level 0 must inject nothing", a.scheme),
        )?;
        ensure(
            a.stats.parallel_cycles == b.stats.parallel_cycles
                && a.stats.total_commits() == b.stats.total_commits()
                && a.stats.total_restarts() == b.stats.total_restarts(),
            format!(
                "[{}] faults-off cell must match the fault-free build: {} vs {} cycles",
                a.scheme, a.stats.parallel_cycles, b.stats.parallel_cycles
            ),
        )?;
    }
    ensure(
        wild.iter().any(|r| r.stats.faults.total_injected() > 0),
        "max-intensity cells must actually inject faults".into(),
    )
}

/// Conflict-policy experiment: every policy is a correct contention
/// manager — all cells validate and commit the full workload within
/// the cycle budget (a livelocking policy would hit `max_cycles` and
/// fail validation) — and the timestamp policy is bit-identical to
/// the pre-policy-trait configuration path, on both a contended and
/// an uncontended regime.
pub fn exp_policies(pool: &Pool) -> Result<(), String> {
    let procs = 4;
    let contended = single_counter(procs, 256);
    let parallel = multiple_counter(procs, 512);
    let regimes: [&dyn WorkloadSpec; 2] = [&contended, &parallel];
    let mut jobs = Vec::with_capacity(regimes.len() * (PolicyKind::ALL.len() + 1));
    for &w in &regimes {
        for kind in PolicyKind::ALL {
            jobs.push(Job::new(cell_coords(w.name(), Scheme::Tlr, procs), move |_| {
                let cfg = MachineConfig::builder()
                    .scheme(Scheme::Tlr)
                    .procs(procs)
                    .policy(kind)
                    // Reachable in wall clock (unlike the 60G sweep
                    // convention), so a livelocking policy fails the
                    // budget assertion below instead of hanging CI.
                    .max_cycles(200_000_000)
                    .build();
                run_workload(&cfg, w)
            }));
        }
        // Reference cell: the pre-policy configuration path.
        jobs.push(Job::new(cell_coords(w.name(), Scheme::Tlr, procs), move |_| {
            run_cell(Scheme::Tlr, procs, w)
        }));
    }
    let reports = pooled(pool, jobs)?;
    for per_regime in reports.chunks(PolicyKind::ALL.len() + 1) {
        let reference = per_regime.last().expect("reference cell");
        for (kind, r) in PolicyKind::ALL.iter().zip(per_regime) {
            r.validation
                .clone()
                .map_err(|e| format!("[{kind} x{procs}] policy broke serializability: {e}"))?;
            ensure(
                r.stats.total_commits() > 0,
                format!("[{kind}] no transaction ever committed"),
            )?;
            ensure(
                r.stats.parallel_cycles < 200_000_000,
                format!("[{kind}] ran into the cycle budget: livelock"),
            )?;
        }
        let ts = &per_regime[0];
        ensure(
            ts.stats == reference.stats,
            format!(
                "timestamp policy must be bit-identical to the pre-policy path: \
                 {} vs {} cycles",
                ts.stats.parallel_cycles, reference.stats.parallel_cycles
            ),
        )?;
    }
    Ok(())
}

/// Profiling smoke (`tlr-profile --check`): a profiled cell must
/// carry a timeline that tiles the run exactly, satisfy the
/// cycle-accounting identity, and leave the simulated run itself
/// untouched — its statistics equal the unprofiled cell's bit for
/// bit. Runs on whichever engine the process selected (`--engine`),
/// so CI exercises both.
pub fn profile(pool: &Pool) -> Result<(), String> {
    use tlr_sim::prof::ProfConfig;
    let procs = 4;
    let w = single_counter(procs, 256);
    let jobs = [true, false]
        .iter()
        .map(|&on| {
            let w = &w;
            Job::new(cell_coords(w.name(), Scheme::Tlr, procs), move |_| {
                let mut cfg = MachineConfig::paper_default(Scheme::Tlr, procs);
                cfg.max_cycles = 60_000_000_000;
                cfg.profile = if on { ProfConfig::on() } else { ProfConfig::off() };
                let r = run_workload(&cfg, w);
                r.assert_valid();
                r
            })
        })
        .collect();
    let reports = pooled(pool, jobs)?;
    let (on, off) = (&reports[0], &reports[1]);
    ensure(off.profile.is_none(), "unprofiled cell must carry no profile".into())?;
    let p = on.profile.as_deref().ok_or("profiled cell must carry a profile")?;
    ensure(
        on.stats == off.stats,
        format!(
            "profiling must not change the run: {} vs {} cycles",
            on.stats.parallel_cycles, off.stats.parallel_cycles
        ),
    )?;
    on.stats.check_cycle_accounting()?;
    let covered: u64 = p.samples().iter().map(|s| s.cycles).sum();
    ensure(
        covered == on.stats.elapsed_cycles,
        format!("timeline must tile the run: {covered} vs {} cycles", on.stats.elapsed_cycles),
    )?;
    let util = p.utilization();
    ensure((0.0..=1.0).contains(&util), format!("bus utilization out of range: {util}"))?;
    let e = &p.engine;
    ensure(
        e.steps + e.skipped_cycles == on.stats.elapsed_cycles,
        format!(
            "steps ({}) + skipped ({}) must tile the {} elapsed cycles",
            e.steps,
            e.skipped_cycles,
            on.stats.elapsed_cycles
        ),
    )?;
    // The wake histogram counts event-engine scheduling decisions
    // (one per outer advance; burst-mode continuations are accounted
    // separately), so it is bounded by the step count and must be
    // populated whenever the engine actually skipped cycles. The
    // cycle engine records no wakes.
    ensure(
        e.total_wakes() <= e.steps,
        format!("wake decisions ({}) cannot exceed steps ({})", e.total_wakes(), e.steps),
    )?;
    ensure(
        e.skipped_cycles == 0 || e.total_wakes() > 0,
        format!("an engine that skipped {} cycles must record wake sources", e.skipped_cycles),
    )
}

/// §6.3 granularity experiment: the coarse lock cripples BASE but TLR
/// still extracts the cell-level parallelism it hides.
pub fn exp_coarse_fine(pool: &Pool) -> Result<(), String> {
    let procs = 4;
    let (iters, cells) = (96, 512);
    let fine = mp3d(procs, iters, cells);
    let coarse = mp3d_coarse(procs, iters, cells);
    let plan: [(Scheme, &dyn WorkloadSpec); 3] =
        [(Scheme::Base, &fine), (Scheme::Base, &coarse), (Scheme::Tlr, &coarse)];
    let jobs = plan
        .iter()
        .map(|&(s, w)| Job::new(cell_coords(w.name(), s, procs), move |_| run_cell(s, procs, w)))
        .collect();
    let r = pooled(pool, jobs)?;
    let (base_fine, base_coarse, tlr_coarse) = (&r[0], &r[1], &r[2]);
    ensure(
        speedup(tlr_coarse, base_coarse) > 1.0,
        format!(
            "TLR must recover the parallelism the coarse lock hides: {} vs {}",
            tlr_coarse.stats.parallel_cycles, base_coarse.stats.parallel_cycles
        ),
    )?;
    ensure(
        base_coarse.stats.parallel_cycles > base_fine.stats.parallel_cycles,
        format!(
            "one lock for all cells must hurt BASE: coarse {} vs fine {}",
            base_coarse.stats.parallel_cycles, base_fine.stats.parallel_cycles
        ),
    )
}

/// §6.3 RMW-predictor experiment: enabling the predictor never slows
/// BASE down materially, and helps somewhere in the suite.
pub fn exp_rmw_predictor(pool: &Pool) -> Result<(), String> {
    let procs = 4;
    let apps = figure11_apps(procs, 48);
    let mut jobs = Vec::with_capacity(apps.len() * 2);
    for w in &apps {
        for enabled in [false, true] {
            let w = w.as_ref();
            jobs.push(Job::new(cell_coords(w.name(), Scheme::Base, procs), move |_| {
                let mut cfg = MachineConfig::paper_default(Scheme::Base, procs);
                cfg.rmw_predictor_enabled = enabled;
                cfg.max_cycles = 60_000_000_000;
                let r = run_workload(&cfg, w);
                r.assert_valid();
                r.stats.parallel_cycles
            }));
        }
    }
    let cycles = pooled(pool, jobs)?;
    let without: u64 = cycles.iter().step_by(2).sum();
    let with: u64 = cycles.iter().skip(1).step_by(2).sum();
    ensure(
        with as f64 <= without as f64 * 1.02,
        format!("the predictor must not slow BASE down: {with} vs {without}"),
    )?;
    ensure(with < without, format!("the predictor must help somewhere: {with} vs {without}"))
}

/// §3.3 resource ablations: starving every TLR resource shapes
/// performance but never correctness — all configurations validate.
pub fn exp_ablations(pool: &Pool) -> Result<(), String> {
    let procs = 4;
    let base = |f: fn(&mut MachineConfig)| {
        let mut c = MachineConfig::paper_default(Scheme::Tlr, procs);
        c.max_cycles = 60_000_000_000;
        f(&mut c);
        c
    };
    let counter = single_counter(procs, 128);
    let deque = doubly_linked_list(procs, 64);
    let plan: [(MachineConfig, &dyn WorkloadSpec, &'static str); 5] = [
        (base(|c| c.deferred_queue_entries = 1), &counter, "deferred queue of 1"),
        (base(|c| c.victim_entries = 1), &deque, "victim cache of 1"),
        (base(|c| c.write_buffer_lines = 2), &deque, "write buffer of 2"),
        (base(|c| c.timestamp_bits = 6), &counter, "6-bit timestamps"),
        (base(|c| c.retention = RetentionPolicy::Nack), &counter, "NACK retention"),
    ];
    let jobs = plan
        .iter()
        .map(|(cfg, w, what)| {
            Job::new(cell_coords(w.name(), cfg.scheme, procs), move |_| {
                let r: RunReport = run_workload(cfg, *w);
                r.validation.clone().map_err(|e| format!("{what}: {e}"))
            })
        })
        .collect();
    for validation in pooled(pool, jobs)? {
        validation?;
    }
    Ok(())
}
