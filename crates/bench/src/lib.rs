//! Benchmark harness for regenerating every table and figure of the
//! paper's evaluation (§5, §6).
//!
//! Each figure/table has its own binary (see `src/bin/`); this
//! library holds the shared sweep and reporting machinery. All
//! binaries share the flag surface parsed by [`cli::Args`]:
//!
//! * `--quick` — smaller work totals (CI-sized, ~seconds per series);
//! * `--procs 1,2,4,8,16` — override the processor counts;
//! * `--check` — skip the sweep and instead assert the binary's
//!   output schema and paper-direction invariants at small scale
//!   (see [`checks`]), exiting non-zero on violation;
//! * `--json <path>` — also write the results as machine-readable
//!   JSON (with `--check`, the check verdict instead). The committed
//!   examples live under `bench_results/`;
//! * `--jobs N` — fan the sweep's independent cells out to N worker
//!   threads (default: `TLR_JOBS` or the host parallelism). Results
//!   are merged in submission order, so every output is byte-identical
//!   to `--jobs 1` (enforced by `tests/parallel_determinism.rs`);
//! * `--interconnect snooping|directory` — which coherence fabric
//!   orders requests; the bus tops out at 16 processors, the
//!   home-node directory at 256 (`exp_scalability` defaults to the
//!   directory via [`cli::Args::parse_with_defaults`]);
//! * `exp_robustness` additionally takes `--faults N` (maximum chaos
//!   intensity level) and `--fault-seed S` (root seed for the fault
//!   streams) via [`cli::Args::parse_chaos`].
//!
//! Run lengths are scaled down from the paper (2^24/2^16 iterations)
//! as documented in `DESIGN.md`; shapes, not absolute cycle counts,
//! are the reproduction target.

use tlr_core::run::{run_workload, RunReport, WorkloadSpec};
use tlr_sim::config::{default_interconnect, Interconnect, MachineConfig, Scheme};
use tlr_sim::pool::{CellCoords, CellResult, Job, Pool};

pub mod checks;
pub mod cli;
pub mod sweeps;

pub use cli::Args as BenchOpts;

/// Coordinates for one sweep cell (used in pool-error messages).
pub fn cell_coords(workload: &str, scheme: Scheme, procs: usize) -> CellCoords {
    CellCoords {
        workload: workload.to_string(),
        scheme: scheme.label().to_string(),
        procs,
        seed: MachineConfig::paper_default(scheme, procs).seed,
    }
}

/// Unwraps pooled cell results, panicking with the failing cell's
/// (workload, scheme, procs, seed) coordinates — sweep binaries
/// surface failures immediately, exactly as the serial loops did.
///
/// # Panics
///
/// Panics with the first failed cell's coordinates and message.
pub fn unwrap_cells<T>(results: Vec<CellResult<T>>) -> Vec<T> {
    // Workers claim cells in submission order and cancellation only
    // skips cells *after* a failure, so the first error found here is
    // always a genuinely failed cell, never a cancelled one.
    results.into_iter().map(|r| r.unwrap_or_else(|e| panic!("{e}"))).collect()
}

/// Fans one series sweep (`procs_list` × `schemes` cells) out to
/// `pool` and merges the per-cell reports in submission order, so the
/// returned rows — and everything serialized from them — are
/// byte-identical to a serial sweep regardless of the worker count.
pub fn sweep_series<W, F>(
    pool: &Pool,
    workload_name: &str,
    schemes: &[Scheme],
    procs_list: &[usize],
    seeds: u64,
    make_workload: F,
) -> Vec<(usize, Vec<RunReport>)>
where
    W: WorkloadSpec,
    F: Fn(usize) -> W + Sync,
{
    sweep_series_on(pool, workload_name, default_interconnect(), schemes, procs_list, seeds, make_workload)
}

/// [`sweep_series`] over an explicit coherence interconnect — the
/// scalability sweep runs on the home-node directory regardless of the
/// process-wide default, and tests pick fabrics without touching
/// process globals.
pub fn sweep_series_on<W, F>(
    pool: &Pool,
    workload_name: &str,
    interconnect: Interconnect,
    schemes: &[Scheme],
    procs_list: &[usize],
    seeds: u64,
    make_workload: F,
) -> Vec<(usize, Vec<RunReport>)>
where
    W: WorkloadSpec,
    F: Fn(usize) -> W + Sync,
{
    let make_workload = &make_workload;
    let mut jobs = Vec::with_capacity(procs_list.len() * schemes.len());
    for &procs in procs_list {
        for &scheme in schemes {
            jobs.push(Job::new(cell_coords(workload_name, scheme, procs), move |_| {
                run_cell_seeded_on(interconnect, scheme, procs, &make_workload(procs), seeds)
            }));
        }
    }
    let mut cells = unwrap_cells(pool.scatter_indexed(jobs)).into_iter();
    procs_list
        .iter()
        .map(|&procs| {
            (procs, (0..schemes.len()).map(|_| cells.next().expect("one cell per scheme")).collect())
        })
        .collect()
}

/// Runs one (scheme, procs) cell of a sweep.
pub fn run_cell(scheme: Scheme, procs: usize, workload: &dyn WorkloadSpec) -> RunReport {
    let mut cfg = MachineConfig::paper_default(scheme, procs);
    cfg.max_cycles = 60_000_000_000;
    let report = run_workload(&cfg, workload);
    report.assert_valid();
    report
}

/// Runs one cell averaged over `seeds` perturbed runs; the returned
/// report carries the mean parallel cycle count (other counters come
/// from the first seed).
pub fn run_cell_seeded(
    scheme: Scheme,
    procs: usize,
    workload: &dyn WorkloadSpec,
    seeds: u64,
) -> RunReport {
    run_cell_seeded_on(default_interconnect(), scheme, procs, workload, seeds)
}

/// [`run_cell_seeded`] over an explicit coherence interconnect.
pub fn run_cell_seeded_on(
    interconnect: Interconnect,
    scheme: Scheme,
    procs: usize,
    workload: &dyn WorkloadSpec,
    seeds: u64,
) -> RunReport {
    let mut first: Option<RunReport> = None;
    let mut total_cycles = 0u64;
    for s in 0..seeds {
        let mut cfg = MachineConfig::paper_default(scheme, procs);
        cfg.interconnect = interconnect;
        cfg.max_cycles = 60_000_000_000;
        cfg.seed = cfg.seed.wrapping_add(s.wrapping_mul(0x9e37_79b9));
        let report = run_workload(&cfg, workload);
        report.assert_valid();
        total_cycles += report.stats.parallel_cycles;
        if first.is_none() {
            first = Some(report);
        }
    }
    let mut report = first.expect("at least one seed");
    report.stats.parallel_cycles = total_cycles / seeds;
    report
}

/// Prints a figure-style series table: one row per processor count,
/// one column per scheme, cells in execution cycles.
pub fn print_series(title: &str, schemes: &[Scheme], rows: &[(usize, Vec<RunReport>)]) {
    println!("\n== {title} ==");
    print!("{:>6}", "procs");
    for s in schemes {
        print!("{:>28}", s.label());
    }
    println!();
    for (procs, reports) in rows {
        print!("{procs:>6}");
        for r in reports {
            print!("{:>28}", r.stats.parallel_cycles);
        }
        println!();
    }
}

/// Prints per-scheme event diagnostics for one row (restarts,
/// commits, fallbacks, deferrals) — the quantities §6 discusses.
pub fn print_events(schemes: &[Scheme], reports: &[RunReport]) {
    print!("{:>6}", "");
    for (s, r) in schemes.iter().zip(reports) {
        print!(
            "{:>28}",
            format!(
                "c{} r{} f{} d{}",
                r.stats.total_commits(),
                r.stats.total_restarts(),
                r.stats.total_fallbacks(),
                r.stats.sum(|n| n.requests_deferred),
            )
        );
        let _ = s;
    }
    println!("   (c=commits r=restarts f=fallbacks d=deferrals)");
}

/// Writes a sweep as CSV: header `procs,<scheme>,...`, one row per
/// processor count, cells in parallel execution cycles.
///
/// # Panics
///
/// Panics if the file cannot be written (benchmark binaries surface
/// I/O problems immediately).
pub fn write_series_csv(
    path: &std::path::Path,
    schemes: &[Scheme],
    rows: &[(usize, Vec<RunReport>)],
) {
    use std::io::Write;
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    let header: Vec<String> =
        std::iter::once("procs".to_string()).chain(schemes.iter().map(|s| s.label().to_string())).collect();
    writeln!(f, "{}", header.join(",")).expect("csv write");
    for (procs, reports) in rows {
        let cells: Vec<String> = std::iter::once(procs.to_string())
            .chain(reports.iter().map(|r| r.stats.parallel_cycles.to_string()))
            .collect();
        writeln!(f, "{}", cells.join(",")).expect("csv write");
    }
    println!("(csv written to {})", path.display());
}

/// Writes the per-scheme fields of one report cell into an open JSON
/// object (shared by the series/app writers and the exp binaries).
/// Profiled cells (`--profile`) grow saturation columns; unprofiled
/// documents are byte-identical to pre-profiler output.
pub fn report_fields(j: &mut tlr_sim::json::JsonBuf, r: &RunReport) {
    j.str_field("scheme", r.scheme.label());
    j.u64_field("parallel_cycles", r.stats.parallel_cycles);
    j.u64_field("commits", r.stats.total_commits());
    j.u64_field("restarts", r.stats.total_restarts());
    j.u64_field("fallbacks", r.stats.total_fallbacks());
    j.u64_field("deferrals", r.stats.sum(|n| n.requests_deferred));
    j.u64_field("lock_cycles", r.stats.total_lock_cycles());
    j.u64_field("wasted_cycles", r.stats.total_wasted_cycles());
    if let Some(p) = &r.profile {
        j.f64_field("bus_utilization", p.utilization());
        j.u64_field("peak_spin_nodes", p.peak(|s| s.spin_nodes) as u64);
        j.str_field("saturation", &p.verdict(r.procs));
    }
}

/// Prints per-cell saturation verdicts for profiled sweep rows (one
/// line per processor count). Callers gate on profile presence, so
/// unprofiled runs print exactly what they always did.
pub fn print_saturation(rows: &[(usize, Vec<RunReport>)]) {
    println!("   saturation (--profile):");
    for (procs, reports) in rows {
        let cells: Vec<String> = reports
            .iter()
            .map(|r| match &r.profile {
                Some(p) => format!("{} {}", r.scheme.label(), p.verdict(r.procs)),
                None => format!("{} (unprofiled)", r.scheme.label()),
            })
            .collect();
        println!("{procs:>6}  {}", cells.join(" | "));
    }
}

/// Serializes a sweep (the same rows [`print_series`] prints) as a
/// JSON string. A pure function of the rows: parallel and serial
/// sweeps that merged identical reports serialize byte-identically.
pub fn series_json(title: &str, schemes: &[Scheme], rows: &[(usize, Vec<RunReport>)]) -> String {
    let mut j = tlr_sim::json::JsonBuf::new();
    j.obj();
    j.str_field("title", title);
    j.arr_key("schemes");
    for s in schemes {
        j.str_elem(s.label());
    }
    j.end_arr();
    j.arr_key("rows");
    for (procs, reports) in rows {
        j.obj();
        j.u64_field("procs", *procs as u64);
        j.arr_key("cells");
        for r in reports {
            j.obj();
            report_fields(&mut j, r);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

/// Serializes a sweep as JSON (see [`series_json`]), validates the
/// result, and writes it to `path`.
///
/// # Panics
///
/// Panics if the file cannot be written or (a bug) the generated JSON
/// does not parse.
pub fn write_series_json(
    path: &std::path::Path,
    title: &str,
    schemes: &[Scheme],
    rows: &[(usize, Vec<RunReport>)],
) {
    write_json_file(path, &series_json(title, schemes, rows));
}

/// Like [`series_json`] but for per-application rows (Figure 11):
/// rows are keyed by app name instead of processor count.
pub fn apps_json(title: &str, procs: usize, rows: &[(String, Vec<RunReport>)]) -> String {
    let mut j = tlr_sim::json::JsonBuf::new();
    j.obj();
    j.str_field("title", title);
    j.u64_field("procs", procs as u64);
    j.arr_key("apps");
    for (name, reports) in rows {
        j.obj();
        j.str_field("app", name);
        j.arr_key("cells");
        for r in reports {
            j.obj();
            report_fields(&mut j, r);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

/// Writes [`apps_json`] to `path` with validation.
///
/// # Panics
///
/// Panics if the file cannot be written or the generated JSON does
/// not parse.
pub fn write_apps_json(
    path: &std::path::Path,
    title: &str,
    procs: usize,
    rows: &[(String, Vec<RunReport>)],
) {
    write_json_file(path, &apps_json(title, procs, rows));
}

/// Validates `json` with the in-repo parser and writes it to `path`
/// (every `--json` output self-checks before it lands on disk).
///
/// # Panics
///
/// Panics if the JSON is malformed (a serializer bug) or the file
/// cannot be written.
pub fn write_json_file(path: &std::path::Path, json: &str) {
    tlr_sim::json::validate(json)
        .unwrap_or_else(|e| panic!("generated JSON for {} is malformed: {e}", path.display()));
    std::fs::write(path, json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("(json written to {})", path.display());
}

/// Speedup of `a` over `b` as the paper defines it: cycles(b) /
/// cycles(a); > 1 means `a` is faster.
pub fn speedup(a: &RunReport, b: &RunReport) -> f64 {
    b.stats.parallel_cycles as f64 / a.stats.parallel_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_workloads::micro::single_counter;

    #[test]
    fn run_cell_produces_valid_report() {
        let w = single_counter(2, 64);
        let r = run_cell(Scheme::Tlr, 2, &w);
        assert!(r.stats.parallel_cycles > 0);
        assert_eq!(r.procs, 2);
    }

    #[test]
    fn speedup_orientation() {
        let w = single_counter(2, 64);
        let a = run_cell(Scheme::Tlr, 2, &w);
        let mut b = a.clone();
        b.stats.parallel_cycles = a.stats.parallel_cycles * 2;
        assert!((speedup(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_json_is_valid_and_carries_cells() {
        let w = single_counter(2, 64);
        let rows = vec![(2usize, vec![run_cell(Scheme::Tlr, 2, &w)])];
        let path = std::env::temp_dir().join("tlr_bench_series_test.json");
        write_series_json(&path, "test series", &[Scheme::Tlr], &rows);
        let s = std::fs::read_to_string(&path).expect("written");
        tlr_sim::json::validate(&s).expect("valid JSON");
        assert!(s.contains("\"parallel_cycles\""));
        assert!(s.contains("BASE+SLE+TLR"), "{s}");
        std::fs::remove_file(&path).ok();
    }
}
