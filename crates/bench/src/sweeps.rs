//! Library entry points for the figure/table/exp binaries.
//!
//! Each function runs its binary's full sweep through the
//! deterministic parallel execution engine ([`tlr_sim::pool`]) and
//! returns the collected rows plus a `json()` serializer. The binaries
//! in `src/bin/` are thin wrappers (argument parsing + printing)
//! around these entry points, and `tests/parallel_determinism.rs`
//! calls them directly to assert that `jobs=1` and `jobs=4` produce
//! byte-identical JSON documents.
//!
//! Determinism argument: every cell is a pure function of (workload
//! parameters, scheme, procs, seed) — the machine's RNG is seeded from
//! the config, never from the host — and cells share no state. The
//! pool merges results in submission order, so the row vectors built
//! here are independent of scheduling, and the serializers are pure
//! functions of the rows.

use tlr_core::run::{run_workload, RunReport, WorkloadSpec};
use tlr_sim::config::{MachineConfig, PolicyKind, RetentionPolicy, Scheme};
use tlr_sim::pool::{Job, Pool};
use tlr_workloads::apps::{figure11_apps, mp3d, mp3d_coarse};
use tlr_workloads::micro::{doubly_linked_list, multiple_counter, single_counter};

use crate::{
    apps_json, cell_coords, print_events, print_series, run_cell, series_json, speedup,
    unwrap_cells, BenchOpts,
};

/// A processor-count sweep (Figures 8-10): one row per processor
/// count, one report per scheme.
pub struct SeriesSweep {
    /// Title used when printing the text table.
    pub display_title: String,
    /// Title embedded in the JSON document.
    pub json_title: String,
    /// Schemes, in column order.
    pub schemes: Vec<Scheme>,
    /// Rows in `opts.procs` order.
    pub rows: Vec<(usize, Vec<RunReport>)>,
}

impl SeriesSweep {
    /// The sweep as a JSON document.
    pub fn json(&self) -> String {
        series_json(&self.json_title, &self.schemes, &self.rows)
    }

    /// Prints the figure-style table plus the last row's event
    /// diagnostics, and — on profiled sweeps — per-cell saturation
    /// verdicts.
    pub fn print(&self) {
        print_series(&self.display_title, &self.schemes, &self.rows);
        if let Some((_, last)) = self.rows.last() {
            print_events(&self.schemes, last);
        }
        if self.rows.iter().any(|(_, rs)| rs.iter().any(|r| r.profile.is_some())) {
            crate::print_saturation(&self.rows);
        }
    }
}

/// Figure 8: multiple-counter microbenchmark (coarse-grain locking,
/// no data conflicts).
pub fn fig08(opts: &BenchOpts, pool: &Pool) -> SeriesSweep {
    let total = opts.scale(1 << 14);
    let schemes = vec![Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr];
    let rows = crate::sweep_series(pool, "multiple_counter", &schemes, &opts.procs, opts.seeds, |procs| {
        multiple_counter(procs, total)
    });
    SeriesSweep {
        display_title: format!(
            "Figure 8: multiple-counter, {total} total increments (cycles, lower is better)"
        ),
        json_title: "Figure 8: multiple-counter microbenchmark".to_string(),
        schemes,
        rows,
    }
}

/// Figure 9: single-counter microbenchmark (fine-grain locking, high
/// conflict).
pub fn fig09(opts: &BenchOpts, pool: &Pool) -> SeriesSweep {
    let total = opts.scale(1 << 12);
    let schemes = vec![Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::TlrStrictTs, Scheme::Tlr];
    let rows = crate::sweep_series(pool, "single_counter", &schemes, &opts.procs, opts.seeds, |procs| {
        single_counter(procs, total)
    });
    SeriesSweep {
        display_title: format!(
            "Figure 9: single-counter, {total} total increments (cycles, lower is better)"
        ),
        json_title: "Figure 9: single-counter microbenchmark".to_string(),
        schemes,
        rows,
    }
}

/// Figure 10: doubly-linked-list microbenchmark (fine-grain locking,
/// dynamic conflicts).
pub fn fig10(opts: &BenchOpts, pool: &Pool) -> SeriesSweep {
    let total_pairs = opts.scale(1 << 11);
    let schemes = vec![Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr];
    let rows = crate::sweep_series(pool, "linked_list", &schemes, &opts.procs, opts.seeds, |procs| {
        doubly_linked_list(procs, total_pairs)
    });
    SeriesSweep {
        display_title: format!(
            "Figure 10: doubly-linked list, {total_pairs} dequeue+enqueue pairs (cycles, lower is better)"
        ),
        json_title: "Figure 10: doubly-linked-list microbenchmark".to_string(),
        schemes,
        rows,
    }
}

/// A per-application sweep (Figure 11): one row per app, reports in
/// BASE / SLE / TLR / MCS order.
pub struct AppsSweep {
    /// Title embedded in the JSON document.
    pub json_title: String,
    /// Processor count all apps ran at.
    pub procs: usize,
    /// Work scale the apps ran at.
    pub scale: u64,
    /// One row per application.
    pub rows: Vec<(String, Vec<RunReport>)>,
}

impl AppsSweep {
    /// The sweep as a JSON document.
    pub fn json(&self) -> String {
        apps_json(&self.json_title, self.procs, &self.rows)
    }
}

/// Figure 11: application kernels at one processor count, under
/// BASE / SLE / TLR / MCS.
pub fn fig11(opts: &BenchOpts, pool: &Pool) -> AppsSweep {
    let procs = *opts.procs.last().unwrap_or(&16);
    let scale = opts.scale(512);
    let apps = figure11_apps(procs, scale);
    let schemes = [Scheme::Base, Scheme::Sle, Scheme::Tlr, Scheme::Mcs];
    let mut jobs = Vec::with_capacity(apps.len() * schemes.len());
    for w in &apps {
        for &scheme in &schemes {
            let w = w.as_ref();
            jobs.push(Job::new(cell_coords(w.name(), scheme, procs), move |_| {
                run_cell(scheme, procs, w)
            }));
        }
    }
    let mut cells = unwrap_cells(pool.scatter_indexed(jobs)).into_iter();
    let rows = apps
        .iter()
        .map(|w| {
            (
                w.name().to_string(),
                (0..schemes.len()).map(|_| cells.next().expect("cell per scheme")).collect(),
            )
        })
        .collect();
    AppsSweep {
        json_title: "Figure 11: application performance".to_string(),
        procs,
        scale,
        rows,
    }
}

/// Table 1 rows: (application, simulation type, critical-section
/// structure, kernel substitution).
pub fn table1_rows() -> [(&'static str, &'static str, &'static str, &'static str); 7] {
    [
        ("Barnes", "N-Body", "tree node locks",
         "4-ary tree insert, per-node lock+counter"),
        ("Cholesky", "Matrix factoring", "task queue & col. locks",
         "task pop + column writes; 1/32 tasks exceed the write buffer"),
        ("Mp3D", "Rarefied field flow", "cell locks",
         "4096 packed cell locks (footprint > L1), random cell updates"),
        ("Radiosity", "3-D rendering", "task queue & buffer locks",
         "one contended central queue + 4 buffer locks"),
        ("Water-nsq", "Water molecules", "global structure locks",
         "8 round-robin global accumulators, compute between"),
        ("Ocean-cont", "Hydrodynamics", "counter locks",
         "private grid sweeps + 2 convergence counter locks"),
        ("Raytrace", "Image rendering", "work list & counter locks",
         "work-list pop + ray tally under two locks"),
    ]
}

/// Table 1 as a JSON document.
pub fn table1_json() -> String {
    let mut j = tlr_sim::json::JsonBuf::new();
    j.obj();
    j.str_field("title", "Table 1: Benchmarks");
    j.arr_key("rows");
    for (app, sim, cs, kernel) in table1_rows() {
        j.obj();
        j.str_field("application", app);
        j.str_field("simulation", sim);
        j.str_field("critical_sections", cs);
        j.str_field("kernel", kernel);
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

/// Table 2 rows: (parameter, this reproduction's value, paper value).
pub fn table2_rows() -> Vec<(&'static str, String, &'static str)> {
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 16);
    vec![
        ("processors", cfg.num_procs.to_string(), "16 (CMP, snooping L1s)"),
        ("core model", "in-order, 1 op/cycle, 64-entry store buffer".into(),
         "8-wide OoO, 128-entry ROB (see DESIGN.md substitution)"),
        ("L1 data cache", format!("{} KB, {}-way, {} B lines",
            cfg.l1_sets * cfg.l1_ways * 64 / 1024, cfg.l1_ways, cfg.line_bytes()),
         "128 KB, 4-way, 64 B lines, 1-cycle"),
        ("L1 hit latency", format!("{} cycle", cfg.latency.l1_hit), "1 cycle"),
        ("write buffer", format!("{} lines (speculative)", cfg.write_buffer_lines),
         "64 entries, 64 B wide"),
        ("victim cache", format!("{} entries", cfg.victim_entries), "16 (stability discussion)"),
        ("MSHRs", format!("{}", cfg.mshrs), "16 pending misses"),
        ("SLE predictor", format!("{} entries", cfg.sle_predictor_entries),
         "64-entry silent store-pair predictor"),
        ("elision depth", format!("{}", cfg.max_elision_depth), "8 store-pair elisions"),
        ("RMW predictor", format!("{} entries, enabled={}", cfg.rmw_predictor_entries,
            cfg.rmw_predictor_enabled),
         "128-entry PC-indexed, all experiments"),
        ("coherence", "MOESI broadcast snooping, split transaction".into(),
         "Sun Gigaplane-type MOESI"),
        ("snoop latency", format!("{} cycles", cfg.latency.snoop), "20 cycles"),
        ("data network", format!("{} cycles, point-to-point", cfg.latency.data_network),
         "20 cycles, pipelined"),
        ("L2 cache", format!("{} MB, {}-way, {}-cycle",
            cfg.l2_sets * cfg.l2_ways * 64 / (1024 * 1024), cfg.l2_ways, cfg.latency.l2),
         "4 MB, 12-cycle"),
        ("memory", format!("{} cycles", cfg.latency.memory), "70 cycles"),
        ("synchronization", "load-linked/store-conditional".into(), "LL/SC"),
        ("memory model", "TSO (store buffer + fences)".into(), "TSO, aggressive"),
        ("timestamps", format!("{}-bit wrapping logical clock + node id", cfg.timestamp_bits),
         "logical clock + processor id (§2.1.2)"),
    ]
}

/// Table 2 as a JSON document.
pub fn table2_json() -> String {
    let mut j = tlr_sim::json::JsonBuf::new();
    j.obj();
    j.str_field("title", "Table 2: simulated machine parameters");
    j.arr_key("rows");
    for (k, v, p) in &table2_rows() {
        j.obj();
        j.str_field("parameter", k);
        j.str_field("reproduction", v);
        j.str_field("paper", p);
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    j.finish()
}

/// §6.3 coarse-vs-fine granularity experiment results. `configs`
/// holds, in order: BASE/MCS/TLR over fine-grain locks, then
/// BASE/MCS/TLR over the one coarse lock.
pub struct CoarseFine {
    /// Processor count.
    pub procs: usize,
    /// Moves per processor.
    pub iters: u64,
    /// Cell count of the mp3d kernel.
    pub cells: u64,
    /// Labeled reports in fixed configuration order.
    pub configs: Vec<(&'static str, RunReport)>,
}

impl CoarseFine {
    fn report(&self, i: usize) -> &RunReport {
        &self.configs[i].1
    }

    /// TLR+coarse over BASE+fine (paper: 2.40).
    pub fn tlr_coarse_over_base_fine(&self) -> f64 {
        speedup(self.report(5), self.report(0))
    }

    /// TLR+coarse over TLR+fine (paper: 1.70).
    pub fn tlr_coarse_over_tlr_fine(&self) -> f64 {
        speedup(self.report(5), self.report(2))
    }

    /// BASE+coarse over BASE+fine (< 1: the coarse lock hurts BASE).
    pub fn base_coarse_over_base_fine(&self) -> f64 {
        speedup(self.report(3), self.report(0))
    }

    /// The experiment as a JSON document.
    pub fn json(&self) -> String {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "Coarse vs fine grain (mp3d kernel)");
        j.u64_field("procs", self.procs as u64);
        j.arr_key("configurations");
        for (name, r) in &self.configs {
            j.obj();
            j.str_field("configuration", name);
            crate::report_fields(&mut j, r);
            j.end_obj();
        }
        j.end_arr();
        j.obj_key("speedups");
        j.f64_field("tlr_coarse_over_base_fine", self.tlr_coarse_over_base_fine());
        j.f64_field("tlr_coarse_over_tlr_fine", self.tlr_coarse_over_tlr_fine());
        j.f64_field("base_coarse_over_base_fine", self.base_coarse_over_base_fine());
        j.end_obj();
        j.end_obj();
        j.finish()
    }
}

/// §6.3 coarse-grain vs fine-grain experiment (mp3d kernel).
pub fn coarse_fine(opts: &BenchOpts, pool: &Pool) -> CoarseFine {
    let procs = *opts.procs.last().unwrap_or(&16);
    let iters = opts.scale(1024);
    let cells = 4096;
    let fine = mp3d(procs, iters, cells);
    let coarse = mp3d_coarse(procs, iters, cells);
    let plan: [(&'static str, Scheme, &dyn WorkloadSpec); 6] = [
        ("BASE  + fine-grain locks", Scheme::Base, &fine),
        ("MCS   + fine-grain locks", Scheme::Mcs, &fine),
        ("TLR   + fine-grain locks", Scheme::Tlr, &fine),
        ("BASE  + one coarse lock", Scheme::Base, &coarse),
        ("MCS   + one coarse lock", Scheme::Mcs, &coarse),
        ("TLR   + one coarse lock", Scheme::Tlr, &coarse),
    ];
    let jobs = plan
        .iter()
        .map(|&(_, scheme, w)| {
            Job::new(cell_coords(w.name(), scheme, procs), move |_| run_cell(scheme, procs, w))
        })
        .collect();
    let reports = unwrap_cells(pool.scatter_indexed(jobs));
    let configs = plan.iter().zip(reports).map(|(&(name, _, _), r)| (name, r)).collect();
    CoarseFine { procs, iters, cells, configs }
}

/// One application row of the RMW-predictor experiment.
pub struct RmwRow {
    /// Application name.
    pub app: String,
    /// BASE cycles with the predictor disabled.
    pub base_no_opt_cycles: u64,
    /// BASE cycles with the predictor enabled.
    pub base_cycles: u64,
    /// The paper's reported speedup for this app.
    pub paper_speedup: f64,
}

/// §6.3 read-modify-write predictor experiment results.
pub struct RmwPredictor {
    /// Processor count.
    pub procs: usize,
    /// Work scale.
    pub scale: u64,
    /// One row per Figure 11 application, in suite order.
    pub rows: Vec<RmwRow>,
}

impl RmwPredictor {
    /// The experiment as a JSON document.
    pub fn json(&self) -> String {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "RMW predictor effect on BASE");
        j.u64_field("procs", self.procs as u64);
        j.arr_key("apps");
        for row in &self.rows {
            j.obj();
            j.str_field("app", &row.app);
            j.u64_field("base_no_opt_cycles", row.base_no_opt_cycles);
            j.u64_field("base_cycles", row.base_cycles);
            j.f64_field("speedup", row.base_no_opt_cycles as f64 / row.base_cycles as f64);
            j.f64_field("paper_speedup", row.paper_speedup);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }
}

/// The paper's §6.3 RMW-predictor speedups, in Figure 11 suite order.
pub const RMW_PAPER_SPEEDUPS: [f64; 7] = [1.00, 1.04, 1.28, 1.05, 1.04, 1.33, 1.13];

/// §6.3 read-modify-write prediction experiment: BASE with and
/// without the predictor, across the Figure 11 suite.
pub fn rmw_predictor(opts: &BenchOpts, pool: &Pool) -> RmwPredictor {
    let procs = *opts.procs.last().unwrap_or(&16);
    let scale = opts.scale(512);
    let apps = figure11_apps(procs, scale);
    let mut jobs = Vec::with_capacity(apps.len() * 2);
    for w in &apps {
        for enabled in [false, true] {
            let w = w.as_ref();
            jobs.push(Job::new(cell_coords(w.name(), Scheme::Base, procs), move |_| {
                let mut cfg = MachineConfig::paper_default(Scheme::Base, procs);
                cfg.rmw_predictor_enabled = enabled;
                cfg.max_cycles = 60_000_000_000;
                let r = run_workload(&cfg, w);
                r.assert_valid();
                r
            }));
        }
    }
    let mut cells = unwrap_cells(pool.scatter_indexed(jobs)).into_iter();
    let rows = apps
        .iter()
        .zip(RMW_PAPER_SPEEDUPS)
        .map(|(w, paper_speedup)| {
            let no_opt = cells.next().expect("predictor-off cell");
            let with = cells.next().expect("predictor-on cell");
            RmwRow {
                app: w.name().to_string(),
                base_no_opt_cycles: no_opt.stats.parallel_cycles,
                base_cycles: with.stats.parallel_cycles,
                paper_speedup,
            }
        })
        .collect();
    RmwPredictor { procs, scale, rows }
}

/// §3.3 design-parameter ablation results: one sweep per knob, rows
/// in knob-setting order.
pub struct Ablations {
    /// Processor count.
    pub procs: usize,
    /// Increment total for the counter workloads.
    pub total: u64,
    /// Pair total for the linked-list workloads.
    pub pairs: u64,
    /// (entries, cycles, restarts, deferrals) per deferred-queue size.
    pub deferred_queue: Vec<(u64, u64, u64, u64)>,
    /// (entries, cycles, restarts, fallbacks) per victim-cache size.
    pub victim_cache: Vec<(u64, u64, u64, u64)>,
    /// (lines, cycles, restarts, fallbacks) per write-buffer size.
    pub write_buffer: Vec<(u64, u64, u64, u64)>,
    /// (bits, cycles, restarts) per timestamp width.
    pub timestamp_bits: Vec<(u64, u64, u64)>,
    /// (policy, cycles, deferrals, nacks, bus txns) per retention policy.
    pub retention: Vec<(&'static str, u64, u64, u64, u64)>,
}

impl Ablations {
    /// The experiment as a JSON document.
    pub fn json(&self) -> String {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "TLR design-parameter ablations");
        j.u64_field("procs", self.procs as u64);
        let sweep =
            |j: &mut tlr_sim::json::JsonBuf, key: &str, knob: &str, rows: &[(u64, u64, u64, u64)], third: &str| {
                j.arr_key(key);
                for (v, cycles, restarts, extra) in rows {
                    j.obj();
                    j.u64_field(knob, *v);
                    j.u64_field("cycles", *cycles);
                    j.u64_field("restarts", *restarts);
                    j.u64_field(third, *extra);
                    j.end_obj();
                }
                j.end_arr();
            };
        sweep(&mut j, "deferred_queue", "entries", &self.deferred_queue, "deferrals");
        sweep(&mut j, "victim_cache", "entries", &self.victim_cache, "fallbacks");
        sweep(&mut j, "write_buffer", "lines", &self.write_buffer, "fallbacks");
        j.arr_key("timestamp_bits");
        for (bits, cycles, restarts) in &self.timestamp_bits {
            j.obj();
            j.u64_field("bits", *bits);
            j.u64_field("cycles", *cycles);
            j.u64_field("restarts", *restarts);
            j.end_obj();
        }
        j.end_arr();
        j.arr_key("retention_policy");
        for (name, cycles, deferrals, nacks, bus) in &self.retention {
            j.obj();
            j.str_field("policy", name);
            j.u64_field("cycles", *cycles);
            j.u64_field("deferrals", *deferrals);
            j.u64_field("nacks", *nacks);
            j.u64_field("bus_transactions", *bus);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }
}

/// Knob settings the ablation experiment sweeps.
pub const ABLATION_DQ_ENTRIES: [usize; 5] = [1, 2, 4, 16, 64];
/// Victim-cache sizes swept.
pub const ABLATION_VC_ENTRIES: [usize; 4] = [1, 4, 16, 64];
/// Write-buffer sizes swept.
pub const ABLATION_WB_LINES: [usize; 4] = [2, 4, 16, 64];
/// Timestamp widths swept.
pub const ABLATION_TS_BITS: [u32; 4] = [6, 8, 16, 32];

/// §3.3 design-parameter ablations: all 19 cells fanned out in one
/// scatter, decomposed into per-knob rows in submission order.
pub fn ablations(opts: &BenchOpts, pool: &Pool) -> Ablations {
    let procs = *opts.procs.last().unwrap_or(&8);
    let total = opts.scale(2048);
    let pairs = opts.scale(1024);
    let base_cfg = move || {
        let mut c = MachineConfig::paper_default(Scheme::Tlr, procs);
        c.max_cycles = 60_000_000_000;
        c
    };

    enum Knob {
        Dq(usize),
        Vc(usize),
        Wb(usize),
        Ts(u32),
        Ret(RetentionPolicy),
    }
    let mut plan: Vec<Knob> = Vec::new();
    plan.extend(ABLATION_DQ_ENTRIES.iter().map(|&e| Knob::Dq(e)));
    plan.extend(ABLATION_VC_ENTRIES.iter().map(|&e| Knob::Vc(e)));
    plan.extend(ABLATION_WB_LINES.iter().map(|&l| Knob::Wb(l)));
    plan.extend(ABLATION_TS_BITS.iter().map(|&b| Knob::Ts(b)));
    plan.push(Knob::Ret(RetentionPolicy::Deferral));
    plan.push(Knob::Ret(RetentionPolicy::Nack));

    let jobs = plan
        .iter()
        .map(|knob| {
            let (workload_name, job): (&str, Box<dyn FnOnce() -> RunReport + Send>) = match *knob {
                Knob::Dq(entries) => ("single_counter", Box::new(move || {
                    let mut cfg = base_cfg();
                    cfg.deferred_queue_entries = entries;
                    run_workload(&cfg, &single_counter(procs, total))
                })),
                Knob::Vc(entries) => ("linked_list", Box::new(move || {
                    let mut cfg = base_cfg();
                    cfg.victim_entries = entries;
                    run_workload(&cfg, &doubly_linked_list(procs, pairs))
                })),
                Knob::Wb(lines) => ("linked_list", Box::new(move || {
                    let mut cfg = base_cfg();
                    cfg.write_buffer_lines = lines;
                    run_workload(&cfg, &doubly_linked_list(procs, pairs))
                })),
                Knob::Ts(bits) => ("single_counter", Box::new(move || {
                    let mut cfg = base_cfg();
                    cfg.timestamp_bits = bits;
                    run_workload(&cfg, &single_counter(procs, total))
                })),
                Knob::Ret(policy) => ("single_counter", Box::new(move || {
                    let mut cfg = base_cfg();
                    cfg.retention = policy;
                    run_workload(&cfg, &single_counter(procs, total))
                })),
            };
            Job::new(cell_coords(workload_name, Scheme::Tlr, procs), move |_| {
                let r = job();
                r.assert_valid();
                r
            })
        })
        .collect();
    let mut cells = unwrap_cells(pool.scatter_indexed(jobs)).into_iter();
    let mut next = || cells.next().expect("one report per planned cell");

    let deferred_queue = ABLATION_DQ_ENTRIES
        .iter()
        .map(|&e| {
            let r = next();
            (e as u64, r.stats.parallel_cycles, r.stats.total_restarts(),
             r.stats.sum(|n| n.requests_deferred))
        })
        .collect();
    let victim_cache = ABLATION_VC_ENTRIES
        .iter()
        .map(|&e| {
            let r = next();
            (e as u64, r.stats.parallel_cycles, r.stats.total_restarts(), r.stats.total_fallbacks())
        })
        .collect();
    let write_buffer = ABLATION_WB_LINES
        .iter()
        .map(|&l| {
            let r = next();
            (l as u64, r.stats.parallel_cycles, r.stats.total_restarts(), r.stats.total_fallbacks())
        })
        .collect();
    let timestamp_bits = ABLATION_TS_BITS
        .iter()
        .map(|&b| {
            let r = next();
            (b as u64, r.stats.parallel_cycles, r.stats.total_restarts())
        })
        .collect();
    let retention = ["deferral", "nack"]
        .iter()
        .map(|&name| {
            let r = next();
            (name, r.stats.parallel_cycles, r.stats.sum(|n| n.requests_deferred),
             r.stats.sum(|n| n.nacks_sent), r.stats.bus.total())
        })
        .collect();

    Ablations { procs, total, pairs, deferred_queue, victim_cache, write_buffer, timestamp_bits, retention }
}

/// Schemes the scalability experiment sweeps (the three main designs;
/// MCS and strict-TS are variants, not part of the NUMA-scale story).
pub const SCALABILITY_SCHEMES: [Scheme; 3] = [Scheme::Base, Scheme::Sle, Scheme::Tlr];

/// `exp_scalability`: the multiple-counter microbenchmark at
/// NUMA-scale processor counts on the home-node directory (the
/// snooping bus stops at 16 processors; the directory's sharer
/// vectors carry 256). One row per processor count, BASE/SLE/TLR
/// columns, same shape as the Figure 8-10 sweeps so all the series
/// tooling (CSV, JSON, `--profile` saturation columns) applies.
pub fn scalability(opts: &BenchOpts, pool: &Pool) -> SeriesSweep {
    let total = opts.scale(1 << 14);
    let schemes = SCALABILITY_SCHEMES.to_vec();
    let rows = crate::sweep_series_on(
        pool,
        "multiple_counter",
        opts.interconnect,
        &schemes,
        &opts.procs,
        opts.seeds,
        |procs| multiple_counter(procs, total),
    );
    SeriesSweep {
        display_title: format!(
            "Scalability: multiple-counter on the {} interconnect, {total} total increments \
             (cycles, lower is better)",
            opts.interconnect
        ),
        json_title: format!(
            "Scalability: multiple-counter on the {} interconnect",
            opts.interconnect
        ),
        schemes,
        rows,
    }
}

/// Schemes the robustness experiment compares (MCS and strict-TS are
/// variants; the degradation story is about the three main designs).
pub const ROBUSTNESS_SCHEMES: [Scheme; 3] = [Scheme::Base, Scheme::Sle, Scheme::Tlr];

/// Chaos degradation results: one row per fault-intensity level, one
/// report per scheme, every cell validated by the workload's
/// serializability check (faults may cost cycles, never correctness).
pub struct Robustness {
    /// Processor count.
    pub procs: usize,
    /// Increment total for the counter workload.
    pub total: u64,
    /// Root seed the per-level fault configurations derive from.
    pub fault_seed: u64,
    /// Rows in intensity order: (level, one report per
    /// [`ROBUSTNESS_SCHEMES`] entry).
    pub rows: Vec<(u32, Vec<RunReport>)>,
}

impl Robustness {
    /// The experiment as a JSON document.
    pub fn json(&self) -> String {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "Degradation under injected faults");
        j.u64_field("procs", self.procs as u64);
        j.u64_field("total", self.total);
        j.u64_field("fault_seed", self.fault_seed);
        j.arr_key("schemes");
        for s in ROBUSTNESS_SCHEMES {
            j.str_elem(s.label());
        }
        j.end_arr();
        j.arr_key("levels");
        for (level, reports) in &self.rows {
            j.obj();
            j.u64_field("intensity", u64::from(*level));
            j.arr_key("cells");
            for r in reports {
                j.obj();
                crate::report_fields(&mut j, r);
                j.u64_field("net_delays", r.stats.faults.net_delays);
                j.u64_field("bus_reorders", r.stats.faults.bus_reorders);
                j.u64_field("spurious_aborts", r.stats.faults.spurious_aborts);
                j.u64_field("injected_aborts", r.stats.sum(|n| n.aborts_injected));
                j.u64_field("faults_injected", r.stats.faults.total_injected());
                // Profiled runs also report the shape of the
                // critical-section-length distribution, not just its
                // mean — fault injection moves the tail first.
                if r.profile.is_some() {
                    let h = &r.stats.obs.cs_length;
                    for (key, p) in
                        [("cs_length_p50", 50.0), ("cs_length_p95", 95.0), ("cs_length_p99", 99.0)]
                    {
                        if let Some(v) = h.percentile(p) {
                            j.u64_field(key, v);
                        }
                    }
                }
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Prints the degradation table: cycles per (level, scheme) plus
    /// the injected-fault counts driving each row.
    pub fn print(&self) {
        println!("\n== Degradation under injected faults (single_counter x{}, total {}, fault seed {:#x}) ==",
                 self.procs, self.total, self.fault_seed);
        print!("{:>9}", "intensity");
        for s in ROBUSTNESS_SCHEMES {
            print!("{:>24}", s.label());
        }
        println!("{:>30}", "injected (net/bus/abort)");
        for (level, reports) in &self.rows {
            print!("{level:>9}");
            for r in reports {
                print!("{:>24}", r.stats.parallel_cycles);
            }
            let f = &reports.last().expect("one cell per scheme").stats.faults;
            println!("{:>30}", format!("{}/{}/{}", f.net_delays, f.bus_reorders, f.spurious_aborts));
        }
        print!("{:>9}", "");
        if let Some((_, last)) = self.rows.last() {
            print_events(&ROBUSTNESS_SCHEMES, last);
            if last.iter().any(|r| r.profile.is_some()) {
                println!("   critical-section length percentiles (--profile, cycles, last row):");
                for (s, r) in ROBUSTNESS_SCHEMES.iter().zip(last) {
                    let h = &r.stats.obs.cs_length;
                    let fmt = |p: f64| {
                        h.percentile(p).map_or_else(|| "-".to_string(), |v| v.to_string())
                    };
                    println!(
                        "{:>9}  p50 {} / p95 {} / p99 {}",
                        s.label(),
                        fmt(50.0),
                        fmt(95.0),
                        fmt(99.0)
                    );
                }
            }
        }
    }
}

/// `exp_robustness`: the counter workload under increasing fault
/// intensity (level 0 = faults off, the baseline the degradation
/// curves are read against), all (level, scheme) cells in one scatter.
pub fn robustness(opts: &BenchOpts, pool: &Pool) -> Robustness {
    let procs = if opts.quick { 4 } else { 8 };
    let total = opts.scale(1 << 12);
    let levels: Vec<u32> = (0..=opts.faults.min(tlr_sim::fault::FaultConfig::MAX_INTENSITY)).collect();

    let mut jobs = Vec::with_capacity(levels.len() * ROBUSTNESS_SCHEMES.len());
    for &level in &levels {
        for scheme in ROBUSTNESS_SCHEMES {
            let faults = opts.fault_config(level);
            jobs.push(Job::new(cell_coords("single_counter", scheme, procs), move |_| {
                let cfg = MachineConfig::builder()
                    .scheme(scheme)
                    .procs(procs)
                    .max_cycles(60_000_000_000)
                    .faults(faults)
                    .build();
                let r = run_workload(&cfg, &single_counter(procs, total));
                // The chaos layer's contract: faults perturb timing
                // only, so even the max-intensity cell must validate.
                r.assert_valid();
                r
            }));
        }
    }
    let mut cells = unwrap_cells(pool.scatter_indexed(jobs)).into_iter();
    let rows = levels
        .iter()
        .map(|&level| {
            (level,
             (0..ROBUSTNESS_SCHEMES.len()).map(|_| cells.next().expect("one cell per scheme")).collect())
        })
        .collect();
    Robustness { procs, total, fault_seed: opts.fault_seed, rows }
}

/// Contention-management comparison results: one row per contention
/// regime (workload), one TLR report per conflict policy.
pub struct Policies {
    /// Processor count every cell ran at.
    pub procs: usize,
    /// Policies, in column order ([`PolicyKind::ALL`]).
    pub policies: Vec<PolicyKind>,
    /// Rows in regime order: (regime name, one report per policy).
    pub rows: Vec<(&'static str, Vec<RunReport>)>,
}

impl Policies {
    /// The policy with the fewest parallel cycles in row `i`.
    pub fn winner(&self, i: usize) -> PolicyKind {
        let (_, reports) = &self.rows[i];
        let best = reports
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.stats.parallel_cycles)
            .expect("at least one policy column");
        self.policies[best.0]
    }

    /// The experiment as a JSON document.
    pub fn json(&self) -> String {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "Conflict-policy comparison (TLR contention management)");
        j.u64_field("procs", self.procs as u64);
        j.arr_key("policies");
        for p in &self.policies {
            j.str_elem(p.label());
        }
        j.end_arr();
        j.arr_key("regimes");
        for (i, (name, reports)) in self.rows.iter().enumerate() {
            j.obj();
            j.str_field("regime", name);
            j.str_field("winner", self.winner(i).label());
            j.arr_key("cells");
            for (p, r) in self.policies.iter().zip(reports) {
                j.obj();
                j.str_field("policy", p.label());
                j.u64_field("parallel_cycles", r.stats.parallel_cycles);
                j.u64_field("commits", r.stats.total_commits());
                j.u64_field("restarts", r.stats.total_restarts());
                j.u64_field("fallbacks", r.stats.total_fallbacks());
                j.u64_field("deferrals", r.stats.sum(|n| n.requests_deferred));
                j.u64_field("nacks", r.stats.sum(|n| n.nacks_sent));
                j.u64_field("wasted_cycles", r.stats.total_wasted_cycles());
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Prints the comparison table: cycles per (regime, policy) and
    /// the per-regime winner.
    pub fn print(&self) {
        println!("\n== Conflict-policy comparison, TLR x{} (cycles, lower is better) ==", self.procs);
        print!("{:>18}", "regime");
        for p in &self.policies {
            print!("{:>16}", p.label());
        }
        println!("{:>12}", "winner");
        for (i, (name, reports)) in self.rows.iter().enumerate() {
            print!("{name:>18}");
            for r in reports {
                print!("{:>16}", r.stats.parallel_cycles);
            }
            println!("{:>12}", self.winner(i).label());
        }
        print!("{:>18}", "");
        if let Some((_, last)) = self.rows.last() {
            for r in last {
                print!(
                    "{:>16}",
                    format!(
                        "c{} r{} f{}",
                        r.stats.total_commits(),
                        r.stats.total_restarts(),
                        r.stats.total_fallbacks()
                    )
                );
            }
            println!("   (last row: c=commits r=restarts f=fallbacks)");
        }
    }
}

/// The contention regimes `exp_policies` sweeps: name and a workload
/// factory at (procs, work scale).
fn policy_regimes(
    procs: usize,
    total: u64,
    pairs: u64,
) -> Vec<(&'static str, Box<dyn WorkloadSpec>)> {
    vec![
        ("multiple_counter", Box::new(multiple_counter(procs, total))),
        ("single_counter", Box::new(single_counter(procs, total.max(256) / 2))),
        ("linked_list", Box::new(doubly_linked_list(procs, pairs))),
        ("mp3d", Box::new(mp3d(procs, (total / 16).max(64), 512))),
    ]
}

/// `exp_policies`: every conflict policy over the contention-regime
/// spectrum, all cells fanned out in one scatter. TLR scheme
/// throughout — the policies differ only in how conflicts are
/// adjudicated, so scheme variation would blur the comparison.
pub fn policies(opts: &BenchOpts, pool: &Pool) -> Policies {
    let procs = *opts.procs.last().unwrap_or(&8);
    let total = opts.scale(1 << 12);
    let pairs = opts.scale(512);
    let regimes = policy_regimes(procs, total, pairs);
    let kinds = PolicyKind::ALL.to_vec();
    let mut jobs = Vec::with_capacity(regimes.len() * kinds.len());
    for (_, w) in &regimes {
        for &kind in &kinds {
            let w = w.as_ref();
            let interconnect = opts.interconnect;
            jobs.push(Job::new(cell_coords(w.name(), Scheme::Tlr, procs), move |_| {
                let cfg = MachineConfig::builder()
                    .scheme(Scheme::Tlr)
                    .procs(procs)
                    .interconnect(interconnect)
                    .policy(kind)
                    // Tighter than the sweep-wide 60G convention: a
                    // livelocking policy keeps the machine busy every
                    // cycle, so the budget must be reachable in wall
                    // clock for the cell to fail instead of hanging.
                    // Legitimate cells finish thousands of times
                    // below this.
                    .max_cycles(200_000_000)
                    .build();
                let r = run_workload(&cfg, w);
                // Every policy must stay correct; only performance may
                // differ.
                r.assert_valid();
                r
            }));
        }
    }
    let mut cells = unwrap_cells(pool.scatter_indexed(jobs)).into_iter();
    let rows = regimes
        .iter()
        .map(|(name, _)| {
            (*name, (0..kinds.len()).map(|_| cells.next().expect("one cell per policy")).collect())
        })
        .collect();
    Policies { procs, policies: kinds, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> BenchOpts {
        BenchOpts { procs: vec![1, 2], quick: true, ..Default::default() }
    }

    #[test]
    fn fig08_rows_follow_opts() {
        let s = fig08(&tiny_opts(), &Pool::serial());
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].0, 1);
        assert_eq!(s.rows[0].1.len(), s.schemes.len());
        tlr_sim::json::validate(&s.json()).expect("valid JSON");
    }

    #[test]
    fn robustness_levels_start_fault_free_and_serialize() {
        let o = BenchOpts { quick: true, faults: 1, ..Default::default() };
        let r = robustness(&o, &Pool::serial());
        assert_eq!(r.rows.len(), 2, "levels 0..=1");
        assert_eq!(r.rows[0].0, 0);
        for cell in &r.rows[0].1 {
            assert_eq!(cell.stats.faults.total_injected(), 0, "level 0 is the calm baseline");
        }
        tlr_sim::json::validate(&r.json()).expect("valid JSON");
    }

    #[test]
    fn table_documents_are_valid_json() {
        tlr_sim::json::validate(&table1_json()).expect("table1");
        tlr_sim::json::validate(&table2_json()).expect("table2");
        assert_eq!(table1_rows().len(), 7);
    }

    #[test]
    fn scalability_runs_on_the_directory_past_the_bus_limit() {
        let o = BenchOpts {
            procs: vec![4, 32],
            interconnect: tlr_sim::config::Interconnect::Directory,
            quick: true,
            ..Default::default()
        };
        let s = scalability(&o, &Pool::serial());
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[1].0, 32, "the 32-proc row is past the snooping limit");
        assert_eq!(s.rows[1].1.len(), SCALABILITY_SCHEMES.len());
        for r in &s.rows[1].1 {
            assert!(
                r.stats.dir.requests_ordered > 0,
                "[{}] the directory, not the bus, must have ordered this cell",
                r.scheme
            );
        }
        tlr_sim::json::validate(&s.json()).expect("valid JSON");
    }
}
