//! Table 2: simulated machine parameters.
//!
//! Dumps the configuration the other benchmarks run under, next to
//! the paper's values, so deviations are visible at a glance.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin table2_machine
//! ```

use tlr_sim::config::{MachineConfig, Scheme};

fn main() {
    let opts = tlr_bench::BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("table2_machine", tlr_bench::checks::table2, opts.json.as_deref());
        return;
    }
    let cfg = MachineConfig::paper_default(Scheme::Tlr, 16);
    println!("Table 2: simulated machine parameters (this reproduction)");
    let rows: Vec<(&str, String, &str)> = vec![
        ("processors", cfg.num_procs.to_string(), "16 (CMP, snooping L1s)"),
        ("core model", "in-order, 1 op/cycle, 64-entry store buffer".into(),
         "8-wide OoO, 128-entry ROB (see DESIGN.md substitution)"),
        ("L1 data cache", format!("{} KB, {}-way, {} B lines",
            cfg.l1_sets * cfg.l1_ways * 64 / 1024, cfg.l1_ways, cfg.line_bytes()),
         "128 KB, 4-way, 64 B lines, 1-cycle"),
        ("L1 hit latency", format!("{} cycle", cfg.latency.l1_hit), "1 cycle"),
        ("write buffer", format!("{} lines (speculative)", cfg.write_buffer_lines),
         "64 entries, 64 B wide"),
        ("victim cache", format!("{} entries", cfg.victim_entries), "16 (stability discussion)"),
        ("MSHRs", format!("{}", cfg.mshrs), "16 pending misses"),
        ("SLE predictor", format!("{} entries", cfg.sle_predictor_entries),
         "64-entry silent store-pair predictor"),
        ("elision depth", format!("{}", cfg.max_elision_depth), "8 store-pair elisions"),
        ("RMW predictor", format!("{} entries, enabled={}", cfg.rmw_predictor_entries,
            cfg.rmw_predictor_enabled),
         "128-entry PC-indexed, all experiments"),
        ("coherence", "MOESI broadcast snooping, split transaction".into(),
         "Sun Gigaplane-type MOESI"),
        ("snoop latency", format!("{} cycles", cfg.latency.snoop), "20 cycles"),
        ("data network", format!("{} cycles, point-to-point", cfg.latency.data_network),
         "20 cycles, pipelined"),
        ("L2 cache", format!("{} MB, {}-way, {}-cycle",
            cfg.l2_sets * cfg.l2_ways * 64 / (1024 * 1024), cfg.l2_ways, cfg.latency.l2),
         "4 MB, 12-cycle"),
        ("memory", format!("{} cycles", cfg.latency.memory), "70 cycles"),
        ("synchronization", "load-linked/store-conditional".into(), "LL/SC"),
        ("memory model", "TSO (store buffer + fences)".into(), "TSO, aggressive"),
        ("timestamps", format!("{}-bit wrapping logical clock + node id", cfg.timestamp_bits),
         "logical clock + processor id (§2.1.2)"),
    ];
    let (h1, h2, h3) = ("parameter", "this reproduction", "paper");
    println!("{h1:<18} {h2:<48} {h3}");
    for (k, v, p) in &rows {
        println!("{k:<18} {v:<48} {p}");
    }
    if let Some(path) = &opts.json {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "Table 2: simulated machine parameters");
        j.arr_key("rows");
        for (k, v, p) in &rows {
            j.obj();
            j.str_field("parameter", k);
            j.str_field("reproduction", v);
            j.str_field("paper", p);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        tlr_bench::write_json_file(path, &j.finish());
    }
}
