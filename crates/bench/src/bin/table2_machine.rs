//! Table 2: simulated machine parameters.
//!
//! Dumps the configuration the other benchmarks run under, next to
//! the paper's values, so deviations are visible at a glance.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin table2_machine
//! ```

fn main() {
    let opts = tlr_bench::BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run("table2_machine", tlr_bench::checks::table2, &pool, opts.json.as_deref());
        return;
    }
    println!("Table 2: simulated machine parameters (this reproduction)");
    let (h1, h2, h3) = ("parameter", "this reproduction", "paper");
    println!("{h1:<18} {h2:<48} {h3}");
    for (k, v, p) in &tlr_bench::sweeps::table2_rows() {
        println!("{k:<18} {v:<48} {p}");
    }
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &tlr_bench::sweeps::table2_json());
    }
}
