//! Figure 10: the doubly-linked-list microbenchmark
//! (fine-grain locking / dynamic conflicts).
//!
//! Paper shape: BASE degrades with contention; SLE performs like BASE
//! (deciding when to speculate is hard under dynamic concurrency);
//! MCS is flat plus overhead; TLR exploits the enqueue/dequeue
//! concurrency a lock cannot and wins.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig10_linked_list [--quick] [--procs 1,2,4]
//! ```

use tlr_bench::{print_events, print_series, run_cell_seeded, write_series_csv, write_series_json, BenchOpts};
use tlr_sim::config::Scheme;
use tlr_workloads::micro::doubly_linked_list;

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("fig10_linked_list", tlr_bench::checks::fig10, opts.json.as_deref());
        return;
    }
    // Paper: 2^16 enqueue/dequeue operations; scaled down (DESIGN.md).
    let total_pairs = opts.scale(1 << 11);
    let schemes = [Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr];
    let mut rows = Vec::new();
    for &procs in &opts.procs {
        let w = doubly_linked_list(procs, total_pairs);
        let reports: Vec<_> = schemes.iter().map(|&s| run_cell_seeded(s, procs, &w, opts.seeds)).collect();
        print!(".");
        use std::io::Write;
        std::io::stdout().flush().ok();
        rows.push((procs, reports));
    }
    println!();
    print_series(
        &format!(
            "Figure 10: doubly-linked list, {total_pairs} dequeue+enqueue pairs (cycles, lower is better)"
        ),
        &schemes,
        &rows,
    );
    if let Some((_, last)) = rows.last() {
        print_events(&schemes, last);
    }
    if let Some(path) = &opts.csv {
        write_series_csv(path, &schemes, &rows);
    }
    if let Some(path) = &opts.json {
        write_series_json(path, "Figure 10: doubly-linked-list microbenchmark", &schemes, &rows);
    }
}
