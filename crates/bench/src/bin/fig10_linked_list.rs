//! Figure 10: the doubly-linked-list microbenchmark
//! (fine-grain locking / dynamic conflicts).
//!
//! Paper shape: BASE degrades with contention; SLE performs like BASE
//! (deciding when to speculate is hard under dynamic concurrency);
//! MCS is flat plus overhead; TLR exploits the enqueue/dequeue
//! concurrency a lock cannot and wins.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig10_linked_list [--quick] [--procs 1,2,4] [--jobs 4]
//! ```

use tlr_bench::{write_series_csv, BenchOpts};

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "fig10_linked_list",
            tlr_bench::checks::fig10,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::fig10(&opts, &pool);
    sweep.print();
    if let Some(path) = &opts.csv {
        write_series_csv(path, &sweep.schemes, &sweep.rows);
    }
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
