//! Ablations of TLR's design parameters (the design choices DESIGN.md
//! calls out): deferred-queue capacity, victim-cache size, speculative
//! write-buffer size, and timestamp width.
//!
//! These are not in the paper's evaluation; they probe the §3.3
//! resource-constraint discussion ("TLR like SLE can guarantee
//! correctness under all circumstances and in the presence of
//! unexpected conditions can always acquire the lock") by measuring
//! how performance degrades — never correctness — as each resource
//! shrinks.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_ablations [--quick] [--procs 8]
//! ```

use tlr_bench::BenchOpts;
use tlr_core::run::run_workload;
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_workloads::micro::{doubly_linked_list, single_counter};

fn base_cfg(procs: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(Scheme::Tlr, procs);
    c.max_cycles = 60_000_000_000;
    c
}

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("exp_ablations", tlr_bench::checks::exp_ablations);
        return;
    }
    let procs = *opts.procs.last().unwrap_or(&8);
    let total = opts.scale(2048);

    println!("TLR design-parameter ablations, {procs} processors\n");

    println!("deferred-queue capacity (single-counter, {total} increments):");
    println!("{:>10} {:>12} {:>10} {:>10}", "entries", "cycles", "restarts", "deferrals");
    for entries in [1usize, 2, 4, 16, 64] {
        let mut cfg = base_cfg(procs);
        cfg.deferred_queue_entries = entries;
        let w = single_counter(procs, total);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10}",
            entries,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.sum(|n| n.requests_deferred)
        );
    }

    let pairs = opts.scale(1024);
    println!("\nvictim-cache entries (doubly-linked list, {pairs} pairs):");
    println!("{:>10} {:>12} {:>10} {:>10}", "entries", "cycles", "restarts", "fallbacks");
    for entries in [1usize, 4, 16, 64] {
        let mut cfg = base_cfg(procs);
        cfg.victim_entries = entries;
        let w = doubly_linked_list(procs, pairs);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10}",
            entries,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.total_fallbacks()
        );
    }

    println!("\nwrite-buffer lines (doubly-linked list, {pairs} pairs):");
    println!("{:>10} {:>12} {:>10} {:>10}", "lines", "cycles", "restarts", "fallbacks");
    for lines in [2usize, 4, 16, 64] {
        let mut cfg = base_cfg(procs);
        cfg.write_buffer_lines = lines;
        let w = doubly_linked_list(procs, pairs);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10}",
            lines,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.total_fallbacks()
        );
    }

    println!("\ntimestamp width in bits (single-counter, {total} increments; §2.1.2 rollover):");
    println!("{:>10} {:>12} {:>10}", "bits", "cycles", "restarts");
    for bits in [6u32, 8, 16, 32] {
        let mut cfg = base_cfg(procs);
        cfg.timestamp_bits = bits;
        let w = single_counter(procs, total);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!("{:>10} {:>12} {:>10}", bits, r.stats.parallel_cycles, r.stats.total_restarts());
    }

    println!("\nretention policy (single-counter, {total} increments; §3 deferral vs NACK):");
    println!("{:>10} {:>12} {:>10} {:>10} {:>10}", "policy", "cycles", "deferrals", "nacks", "bus txns");
    for (name, policy) in [
        ("deferral", tlr_sim::config::RetentionPolicy::Deferral),
        ("nack", tlr_sim::config::RetentionPolicy::Nack),
    ] {
        let mut cfg = base_cfg(procs);
        cfg.retention = policy;
        let w = single_counter(procs, total);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10} {:>10}",
            name,
            r.stats.parallel_cycles,
            r.stats.sum(|n| n.requests_deferred),
            r.stats.sum(|n| n.nacks_sent),
            r.stats.bus.total(),
        );
    }

    println!("\nEvery configuration validated: resources shape performance, never correctness.");
}
