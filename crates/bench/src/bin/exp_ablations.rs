//! Ablations of TLR's design parameters (the design choices DESIGN.md
//! calls out): deferred-queue capacity, victim-cache size, speculative
//! write-buffer size, and timestamp width.
//!
//! These are not in the paper's evaluation; they probe the §3.3
//! resource-constraint discussion ("TLR like SLE can guarantee
//! correctness under all circumstances and in the presence of
//! unexpected conditions can always acquire the lock") by measuring
//! how performance degrades — never correctness — as each resource
//! shrinks.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_ablations [--quick] [--procs 8] [--jobs 4]
//! ```

use tlr_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "exp_ablations",
            tlr_bench::checks::exp_ablations,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let exp = tlr_bench::sweeps::ablations(&opts, &pool);
    println!("TLR design-parameter ablations, {} processors\n", exp.procs);

    println!("deferred-queue capacity (single-counter, {} increments):", exp.total);
    println!("{:>10} {:>12} {:>10} {:>10}", "entries", "cycles", "restarts", "deferrals");
    for (entries, cycles, restarts, deferrals) in &exp.deferred_queue {
        println!("{entries:>10} {cycles:>12} {restarts:>10} {deferrals:>10}");
    }

    println!("\nvictim-cache entries (doubly-linked list, {} pairs):", exp.pairs);
    println!("{:>10} {:>12} {:>10} {:>10}", "entries", "cycles", "restarts", "fallbacks");
    for (entries, cycles, restarts, fallbacks) in &exp.victim_cache {
        println!("{entries:>10} {cycles:>12} {restarts:>10} {fallbacks:>10}");
    }

    println!("\nwrite-buffer lines (doubly-linked list, {} pairs):", exp.pairs);
    println!("{:>10} {:>12} {:>10} {:>10}", "lines", "cycles", "restarts", "fallbacks");
    for (lines, cycles, restarts, fallbacks) in &exp.write_buffer {
        println!("{lines:>10} {cycles:>12} {restarts:>10} {fallbacks:>10}");
    }

    println!(
        "\ntimestamp width in bits (single-counter, {} increments; §2.1.2 rollover):",
        exp.total
    );
    println!("{:>10} {:>12} {:>10}", "bits", "cycles", "restarts");
    for (bits, cycles, restarts) in &exp.timestamp_bits {
        println!("{bits:>10} {cycles:>12} {restarts:>10}");
    }

    println!(
        "\nretention policy (single-counter, {} increments; §3 deferral vs NACK):",
        exp.total
    );
    println!("{:>10} {:>12} {:>10} {:>10} {:>10}", "policy", "cycles", "deferrals", "nacks", "bus txns");
    for (name, cycles, deferrals, nacks, bus) in &exp.retention {
        println!("{name:>10} {cycles:>12} {deferrals:>10} {nacks:>10} {bus:>10}");
    }

    println!("\nEvery configuration validated: resources shape performance, never correctness.");

    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &exp.json());
    }
}
