//! Ablations of TLR's design parameters (the design choices DESIGN.md
//! calls out): deferred-queue capacity, victim-cache size, speculative
//! write-buffer size, and timestamp width.
//!
//! These are not in the paper's evaluation; they probe the §3.3
//! resource-constraint discussion ("TLR like SLE can guarantee
//! correctness under all circumstances and in the presence of
//! unexpected conditions can always acquire the lock") by measuring
//! how performance degrades — never correctness — as each resource
//! shrinks.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_ablations [--quick] [--procs 8]
//! ```

use tlr_bench::BenchOpts;
use tlr_core::run::run_workload;
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_workloads::micro::{doubly_linked_list, single_counter};

fn base_cfg(procs: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(Scheme::Tlr, procs);
    c.max_cycles = 60_000_000_000;
    c
}

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("exp_ablations", tlr_bench::checks::exp_ablations, opts.json.as_deref());
        return;
    }
    let procs = *opts.procs.last().unwrap_or(&8);
    let total = opts.scale(2048);

    println!("TLR design-parameter ablations, {procs} processors\n");

    println!("deferred-queue capacity (single-counter, {total} increments):");
    println!("{:>10} {:>12} {:>10} {:>10}", "entries", "cycles", "restarts", "deferrals");
    let mut dq_rows: Vec<(u64, u64, u64, u64)> = Vec::new();
    for entries in [1usize, 2, 4, 16, 64] {
        let mut cfg = base_cfg(procs);
        cfg.deferred_queue_entries = entries;
        let w = single_counter(procs, total);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10}",
            entries,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.sum(|n| n.requests_deferred)
        );
        dq_rows.push((
            entries as u64,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.sum(|n| n.requests_deferred),
        ));
    }

    let pairs = opts.scale(1024);
    println!("\nvictim-cache entries (doubly-linked list, {pairs} pairs):");
    println!("{:>10} {:>12} {:>10} {:>10}", "entries", "cycles", "restarts", "fallbacks");
    let mut vc_rows: Vec<(u64, u64, u64, u64)> = Vec::new();
    for entries in [1usize, 4, 16, 64] {
        let mut cfg = base_cfg(procs);
        cfg.victim_entries = entries;
        let w = doubly_linked_list(procs, pairs);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10}",
            entries,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.total_fallbacks()
        );
        vc_rows.push((
            entries as u64,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.total_fallbacks(),
        ));
    }

    println!("\nwrite-buffer lines (doubly-linked list, {pairs} pairs):");
    println!("{:>10} {:>12} {:>10} {:>10}", "lines", "cycles", "restarts", "fallbacks");
    let mut wb_rows: Vec<(u64, u64, u64, u64)> = Vec::new();
    for lines in [2usize, 4, 16, 64] {
        let mut cfg = base_cfg(procs);
        cfg.write_buffer_lines = lines;
        let w = doubly_linked_list(procs, pairs);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10}",
            lines,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.total_fallbacks()
        );
        wb_rows.push((
            lines as u64,
            r.stats.parallel_cycles,
            r.stats.total_restarts(),
            r.stats.total_fallbacks(),
        ));
    }

    println!("\ntimestamp width in bits (single-counter, {total} increments; §2.1.2 rollover):");
    println!("{:>10} {:>12} {:>10}", "bits", "cycles", "restarts");
    let mut ts_rows: Vec<(u64, u64, u64)> = Vec::new();
    for bits in [6u32, 8, 16, 32] {
        let mut cfg = base_cfg(procs);
        cfg.timestamp_bits = bits;
        let w = single_counter(procs, total);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!("{:>10} {:>12} {:>10}", bits, r.stats.parallel_cycles, r.stats.total_restarts());
        ts_rows.push((bits as u64, r.stats.parallel_cycles, r.stats.total_restarts()));
    }

    println!("\nretention policy (single-counter, {total} increments; §3 deferral vs NACK):");
    println!("{:>10} {:>12} {:>10} {:>10} {:>10}", "policy", "cycles", "deferrals", "nacks", "bus txns");
    let mut ret_rows: Vec<(&str, u64, u64, u64, u64)> = Vec::new();
    for (name, policy) in [
        ("deferral", tlr_sim::config::RetentionPolicy::Deferral),
        ("nack", tlr_sim::config::RetentionPolicy::Nack),
    ] {
        let mut cfg = base_cfg(procs);
        cfg.retention = policy;
        let w = single_counter(procs, total);
        let r = run_workload(&cfg, &w);
        r.assert_valid();
        println!(
            "{:>10} {:>12} {:>10} {:>10} {:>10}",
            name,
            r.stats.parallel_cycles,
            r.stats.sum(|n| n.requests_deferred),
            r.stats.sum(|n| n.nacks_sent),
            r.stats.bus.total(),
        );
        ret_rows.push((
            name,
            r.stats.parallel_cycles,
            r.stats.sum(|n| n.requests_deferred),
            r.stats.sum(|n| n.nacks_sent),
            r.stats.bus.total(),
        ));
    }

    println!("\nEvery configuration validated: resources shape performance, never correctness.");

    if let Some(path) = &opts.json {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "TLR design-parameter ablations");
        j.u64_field("procs", procs as u64);
        let sweep =
            |j: &mut tlr_sim::json::JsonBuf, key: &str, knob: &str, rows: &[(u64, u64, u64, u64)], third: &str| {
                j.arr_key(key);
                for (v, cycles, restarts, extra) in rows {
                    j.obj();
                    j.u64_field(knob, *v);
                    j.u64_field("cycles", *cycles);
                    j.u64_field("restarts", *restarts);
                    j.u64_field(third, *extra);
                    j.end_obj();
                }
                j.end_arr();
            };
        sweep(&mut j, "deferred_queue", "entries", &dq_rows, "deferrals");
        sweep(&mut j, "victim_cache", "entries", &vc_rows, "fallbacks");
        sweep(&mut j, "write_buffer", "lines", &wb_rows, "fallbacks");
        j.arr_key("timestamp_bits");
        for (bits, cycles, restarts) in &ts_rows {
            j.obj();
            j.u64_field("bits", *bits);
            j.u64_field("cycles", *cycles);
            j.u64_field("restarts", *restarts);
            j.end_obj();
        }
        j.end_arr();
        j.arr_key("retention_policy");
        for (name, cycles, deferrals, nacks, bus) in &ret_rows {
            j.obj();
            j.str_field("policy", name);
            j.u64_field("cycles", *cycles);
            j.u64_field("deferrals", *deferrals);
            j.u64_field("nacks", *nacks);
            j.u64_field("bus_transactions", *bus);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        tlr_bench::write_json_file(path, &j.finish());
    }
}
