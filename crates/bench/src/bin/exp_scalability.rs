//! `exp_scalability`: the 32–256-processor scalability lab on the
//! home-node directory interconnect.
//!
//! Sweeps the multiple-counter microbenchmark (coarse-grain locking,
//! no data conflicts — the workload whose parallelism the fabric must
//! not squander) for BASE, SLE, and TLR at processor counts the
//! snooping bus cannot reach. Defaults to `--interconnect directory`
//! and `--procs 32,64,128,256`; the bus can be forced back on for
//! ≤16-processor comparison rows.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_scalability -- \
//!     --seeds 3 --profile --json scalability.json
//! ```
//!
//! Shares the core flag surface (`--quick`, `--check`, `--csv`,
//! `--json`, `--jobs`, `--engine`, `--profile`, ...) with the other
//! binaries.

use tlr_bench::BenchOpts;
use tlr_sim::config::Interconnect;

fn main() {
    let defaults = BenchOpts {
        procs: vec![32, 64, 128, 256],
        interconnect: Interconnect::Directory,
        ..Default::default()
    };
    let opts = BenchOpts::parse_with_defaults(defaults, |_, _| false);
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "exp_scalability",
            tlr_bench::checks::exp_scalability,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::scalability(&opts, &pool);
    sweep.print();
    if let Some(path) = &opts.csv {
        tlr_bench::write_series_csv(path, &sweep.schemes, &sweep.rows);
    }
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
