//! Figure 9: the single-counter microbenchmark
//! (fine-grain locking / high conflict).
//!
//! Paper shape: BASE degrades badly; SLE behaves like BASE (frequent
//! conflicts turn speculation off); MCS is flat plus software
//! overhead; TLR achieves ideal queued behaviour — no restarts, each
//! transaction completing with a single cache miss. TLR-strict-ts
//! (the §3.2 relaxation disabled) sits between TLR and MCS because
//! protocol-order/timestamp-order mismatches cause restarts.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig09_single_counter [--quick] [--procs 1,2,4]
//! ```

use tlr_bench::{print_events, print_series, run_cell_seeded, write_series_csv, write_series_json, BenchOpts};
use tlr_sim::config::Scheme;
use tlr_workloads::micro::single_counter;

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("fig09_single_counter", tlr_bench::checks::fig09, opts.json.as_deref());
        return;
    }
    // Paper: 2^16 total increments; scaled down (DESIGN.md).
    let total = opts.scale(1 << 12);
    let schemes =
        [Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::TlrStrictTs, Scheme::Tlr];
    let mut rows = Vec::new();
    for &procs in &opts.procs {
        let w = single_counter(procs, total);
        let reports: Vec<_> = schemes.iter().map(|&s| run_cell_seeded(s, procs, &w, opts.seeds)).collect();
        print!(".");
        use std::io::Write;
        std::io::stdout().flush().ok();
        rows.push((procs, reports));
    }
    println!();
    print_series(
        &format!("Figure 9: single-counter, {total} total increments (cycles, lower is better)"),
        &schemes,
        &rows,
    );
    if let Some((_, last)) = rows.last() {
        print_events(&schemes, last);
    }
    if let Some(path) = &opts.csv {
        write_series_csv(path, &schemes, &rows);
    }
    if let Some(path) = &opts.json {
        write_series_json(path, "Figure 9: single-counter microbenchmark", &schemes, &rows);
    }
}
