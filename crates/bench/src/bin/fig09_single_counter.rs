//! Figure 9: the single-counter microbenchmark
//! (fine-grain locking / high conflict).
//!
//! Paper shape: BASE degrades badly; SLE behaves like BASE (frequent
//! conflicts turn speculation off); MCS is flat plus software
//! overhead; TLR achieves ideal queued behaviour — no restarts, each
//! transaction completing with a single cache miss. TLR-strict-ts
//! (the §3.2 relaxation disabled) sits between TLR and MCS because
//! protocol-order/timestamp-order mismatches cause restarts.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig09_single_counter [--quick] [--procs 1,2,4] [--jobs 4]
//! ```

use tlr_bench::{write_series_csv, BenchOpts};

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "fig09_single_counter",
            tlr_bench::checks::fig09,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::fig09(&opts, &pool);
    sweep.print();
    if let Some(path) = &opts.csv {
        write_series_csv(path, &sweep.schemes, &sweep.rows);
    }
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
