//! `exp_policies`: the pluggable contention-management comparison.
//!
//! Runs every conflict policy (`timestamp` — the paper's ordering —
//! plus `backoff`, `karma` and `lazysub`, see `tlr_core::policy`)
//! over a spectrum of contention regimes: independent counters (no
//! conflicts), one contended counter (maximum conflict), the
//! doubly-linked list (dynamic conflicts) and the mp3d cell-lock
//! kernel (app-like mixed footprints). All cells run the TLR scheme;
//! only the contention manager varies. Every cell is validated for
//! serializability — policies may trade cycles, never correctness.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_policies -- \
//!     --procs 16 --json policies.json
//! ```
//!
//! Shares the core flag surface (`--quick`, `--check`, `--json`,
//! `--jobs`, `--engine`, `--interconnect`, ...) with the other
//! binaries. `--policy` is ignored here: this binary sweeps all
//! policies by construction.

use tlr_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "exp_policies",
            tlr_bench::checks::exp_policies,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::policies(&opts, &pool);
    sweep.print();
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
