//! §6.3 coarse-grain vs fine-grain experiment.
//!
//! "We replaced the individual cell locks in mp3d with a single lock.
//! This is bad for BASE (and MCS) because now the benchmark has
//! severe contention. As expected, TLR with one lock for all cells in
//! mp3d outperforms BASE with fine-grain per-cell locks by 58%
//! (speedup 2.40) and outperforms TLR with fine-grain per-cell locks
//! by 41% (speedup 1.70)."
//!
//! The fine-grain variant's locking overhead (a packed lock array
//! larger than the L1) disappears under the coarse lock, and TLR
//! extracts the cell-level parallelism the coarse lock hides.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_coarse_fine [--quick] [--procs 16] [--jobs 4]
//! ```

use tlr_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "exp_coarse_fine",
            tlr_bench::checks::exp_coarse_fine,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let exp = tlr_bench::sweeps::coarse_fine(&opts, &pool);
    println!(
        "Coarse vs fine grain (mp3d kernel), {} processors, {} moves/proc, {} cells",
        exp.procs, exp.iters, exp.cells
    );
    println!("{:<28} {:>14}", "configuration", "cycles");
    for (name, r) in &exp.configs {
        println!("{:<28} {:>14}", name, r.stats.parallel_cycles);
    }
    println!();
    println!(
        "speedup TLR+coarse over BASE+fine: {:.2}   (paper: 2.40)",
        exp.tlr_coarse_over_base_fine()
    );
    println!(
        "speedup TLR+coarse over TLR+fine:  {:.2}   (paper: 1.70)",
        exp.tlr_coarse_over_tlr_fine()
    );
    println!(
        "coarse lock under BASE degrades:   {:.2}x slower than BASE+fine",
        1.0 / exp.base_coarse_over_base_fine()
    );
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &exp.json());
    }
}
