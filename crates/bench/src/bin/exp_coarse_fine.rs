//! §6.3 coarse-grain vs fine-grain experiment.
//!
//! "We replaced the individual cell locks in mp3d with a single lock.
//! This is bad for BASE (and MCS) because now the benchmark has
//! severe contention. As expected, TLR with one lock for all cells in
//! mp3d outperforms BASE with fine-grain per-cell locks by 58%
//! (speedup 2.40) and outperforms TLR with fine-grain per-cell locks
//! by 41% (speedup 1.70)."
//!
//! The fine-grain variant's locking overhead (a packed lock array
//! larger than the L1) disappears under the coarse lock, and TLR
//! extracts the cell-level parallelism the coarse lock hides.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_coarse_fine [--quick] [--procs 16]
//! ```

use tlr_bench::{run_cell, speedup, BenchOpts};
use tlr_sim::config::Scheme;
use tlr_workloads::apps::{mp3d, mp3d_coarse};

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("exp_coarse_fine", tlr_bench::checks::exp_coarse_fine, opts.json.as_deref());
        return;
    }
    let procs = *opts.procs.last().unwrap_or(&16);
    let iters = opts.scale(1024);
    let cells = 4096;
    println!("Coarse vs fine grain (mp3d kernel), {procs} processors, {iters} moves/proc, {cells} cells");
    let fine = mp3d(procs, iters, cells);
    let coarse = mp3d_coarse(procs, iters, cells);

    let base_fine = run_cell(Scheme::Base, procs, &fine);
    let mcs_fine = run_cell(Scheme::Mcs, procs, &fine);
    let tlr_fine = run_cell(Scheme::Tlr, procs, &fine);
    let base_coarse = run_cell(Scheme::Base, procs, &coarse);
    let mcs_coarse = run_cell(Scheme::Mcs, procs, &coarse);
    let tlr_coarse = run_cell(Scheme::Tlr, procs, &coarse);

    let configs = [
        ("BASE  + fine-grain locks", &base_fine),
        ("MCS   + fine-grain locks", &mcs_fine),
        ("TLR   + fine-grain locks", &tlr_fine),
        ("BASE  + one coarse lock", &base_coarse),
        ("MCS   + one coarse lock", &mcs_coarse),
        ("TLR   + one coarse lock", &tlr_coarse),
    ];
    println!("{:<28} {:>14}", "configuration", "cycles");
    for (name, r) in configs {
        println!("{:<28} {:>14}", name, r.stats.parallel_cycles);
    }
    println!();
    println!(
        "speedup TLR+coarse over BASE+fine: {:.2}   (paper: 2.40)",
        speedup(&tlr_coarse, &base_fine)
    );
    println!(
        "speedup TLR+coarse over TLR+fine:  {:.2}   (paper: 1.70)",
        speedup(&tlr_coarse, &tlr_fine)
    );
    println!(
        "coarse lock under BASE degrades:   {:.2}x slower than BASE+fine",
        1.0 / speedup(&base_coarse, &base_fine)
    );
    if let Some(path) = &opts.json {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "Coarse vs fine grain (mp3d kernel)");
        j.u64_field("procs", procs as u64);
        j.arr_key("configurations");
        for (name, r) in configs {
            j.obj();
            j.str_field("configuration", name);
            tlr_bench::report_fields(&mut j, r);
            j.end_obj();
        }
        j.end_arr();
        j.obj_key("speedups");
        j.f64_field("tlr_coarse_over_base_fine", speedup(&tlr_coarse, &base_fine));
        j.f64_field("tlr_coarse_over_tlr_fine", speedup(&tlr_coarse, &tlr_fine));
        j.f64_field("base_coarse_over_base_fine", speedup(&base_coarse, &base_fine));
        j.end_obj();
        j.end_obj();
        tlr_bench::write_json_file(path, &j.finish());
    }
}
