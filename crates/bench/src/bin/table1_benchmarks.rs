//! Table 1: the benchmark inventory — each application, the type of
//! computation it stands for, and its critical-section structure,
//! alongside the synthetic kernel parameters this reproduction uses.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin table1_benchmarks
//! ```

fn main() {
    let opts = tlr_bench::BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("table1_benchmarks", tlr_bench::checks::table1, opts.json.as_deref());
        return;
    }
    println!("Table 1: Benchmarks (paper column -> this reproduction's kernel)");
    println!(
        "{:<12} {:<22} {:<34} {:<40}",
        "Application", "Type of simulation", "Type of critical sections", "Kernel substitution"
    );
    let rows = [
        ("Barnes", "N-Body", "tree node locks",
         "4-ary tree insert, per-node lock+counter"),
        ("Cholesky", "Matrix factoring", "task queue & col. locks",
         "task pop + column writes; 1/32 tasks exceed the write buffer"),
        ("Mp3D", "Rarefied field flow", "cell locks",
         "4096 packed cell locks (footprint > L1), random cell updates"),
        ("Radiosity", "3-D rendering", "task queue & buffer locks",
         "one contended central queue + 4 buffer locks"),
        ("Water-nsq", "Water molecules", "global structure locks",
         "8 round-robin global accumulators, compute between"),
        ("Ocean-cont", "Hydrodynamics", "counter locks",
         "private grid sweeps + 2 convergence counter locks"),
        ("Raytrace", "Image rendering", "work list & counter locks",
         "work-list pop + ray tally under two locks"),
    ];
    for (app, sim, cs, kernel) in rows {
        println!("{app:<12} {sim:<22} {cs:<34} {kernel:<40}");
    }
    println!();
    println!("All kernels run the same binary under BASE/SLE/TLR (test&test&set locks)");
    println!("and an MCS-lock binary under the MCS configuration, as in §5.");
    if let Some(path) = &opts.json {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "Table 1: Benchmarks");
        j.arr_key("rows");
        for (app, sim, cs, kernel) in rows {
            j.obj();
            j.str_field("application", app);
            j.str_field("simulation", sim);
            j.str_field("critical_sections", cs);
            j.str_field("kernel", kernel);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        tlr_bench::write_json_file(path, &j.finish());
    }
}
