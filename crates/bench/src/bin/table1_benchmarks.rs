//! Table 1: the benchmark inventory — each application, the type of
//! computation it stands for, and its critical-section structure,
//! alongside the synthetic kernel parameters this reproduction uses.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin table1_benchmarks
//! ```

fn main() {
    let opts = tlr_bench::BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run("table1_benchmarks", tlr_bench::checks::table1, &pool, opts.json.as_deref());
        return;
    }
    println!("Table 1: Benchmarks (paper column -> this reproduction's kernel)");
    println!(
        "{:<12} {:<22} {:<34} {:<40}",
        "Application", "Type of simulation", "Type of critical sections", "Kernel substitution"
    );
    for (app, sim, cs, kernel) in tlr_bench::sweeps::table1_rows() {
        println!("{app:<12} {sim:<22} {cs:<34} {kernel:<40}");
    }
    println!();
    println!("All kernels run the same binary under BASE/SLE/TLR (test&test&set locks)");
    println!("and an MCS-lock binary under the MCS configuration, as in §5.");
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &tlr_bench::sweeps::table1_json());
    }
}
