//! §6.3 read-modify-write prediction effects.
//!
//! "We give speedups of BASE with the predictor ... with respect to
//! BASE without the predictor (BASE-no-opt: a more conventional base
//! case). The speedups are — ocean-cont: 1.00, water-nsq: 1.04,
//! raytrace: 1.28, radiosity: 1.05, barnes: 1.04, cholesky: 1.33, and
//! mp3d: 1.13."
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_rmw_predictor [--quick] [--procs 16]
//! ```

use tlr_core::run::run_workload;
use tlr_bench::BenchOpts;
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_workloads::apps::figure11_apps;

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("exp_rmw_predictor", tlr_bench::checks::exp_rmw_predictor, opts.json.as_deref());
        return;
    }
    let procs = *opts.procs.last().unwrap_or(&16);
    let scale = opts.scale(512);
    println!("Read-modify-write predictor effect on BASE, {procs} processors, scale {scale}");
    println!("{:<12} {:>16} {:>16} {:>10} {:>8}", "app", "BASE-no-opt", "BASE", "speedup", "paper");
    let paper = [1.00, 1.04, 1.28, 1.05, 1.04, 1.33, 1.13];
    let mut rows: Vec<(String, u64, u64, f64)> = Vec::new();
    for (w, paper_speedup) in figure11_apps(procs, scale).into_iter().zip(paper) {
        let mut no_opt = MachineConfig::paper_default(Scheme::Base, procs);
        no_opt.rmw_predictor_enabled = false;
        no_opt.max_cycles = 60_000_000_000;
        let mut with = no_opt.clone();
        with.rmw_predictor_enabled = true;
        let r_no = run_workload(&no_opt, w.as_ref());
        r_no.assert_valid();
        let r_with = run_workload(&with, w.as_ref());
        r_with.assert_valid();
        println!(
            "{:<12} {:>16} {:>16} {:>10.2} {:>8.2}",
            w.name(),
            r_no.stats.parallel_cycles,
            r_with.stats.parallel_cycles,
            r_no.stats.parallel_cycles as f64 / r_with.stats.parallel_cycles as f64,
            paper_speedup,
        );
        rows.push((
            w.name().to_string(),
            r_no.stats.parallel_cycles,
            r_with.stats.parallel_cycles,
            paper_speedup,
        ));
    }
    if let Some(path) = &opts.json {
        let mut j = tlr_sim::json::JsonBuf::new();
        j.obj();
        j.str_field("title", "RMW predictor effect on BASE");
        j.u64_field("procs", procs as u64);
        j.arr_key("apps");
        for (name, no_opt, with, paper_speedup) in &rows {
            j.obj();
            j.str_field("app", name);
            j.u64_field("base_no_opt_cycles", *no_opt);
            j.u64_field("base_cycles", *with);
            j.f64_field("speedup", *no_opt as f64 / *with as f64);
            j.f64_field("paper_speedup", *paper_speedup);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        tlr_bench::write_json_file(path, &j.finish());
    }
}
