//! §6.3 read-modify-write prediction effects.
//!
//! "We give speedups of BASE with the predictor ... with respect to
//! BASE without the predictor (BASE-no-opt: a more conventional base
//! case). The speedups are — ocean-cont: 1.00, water-nsq: 1.04,
//! raytrace: 1.28, radiosity: 1.05, barnes: 1.04, cholesky: 1.33, and
//! mp3d: 1.13."
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_rmw_predictor [--quick] [--procs 16] [--jobs 4]
//! ```

use tlr_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "exp_rmw_predictor",
            tlr_bench::checks::exp_rmw_predictor,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let exp = tlr_bench::sweeps::rmw_predictor(&opts, &pool);
    println!(
        "Read-modify-write predictor effect on BASE, {} processors, scale {}",
        exp.procs, exp.scale
    );
    println!("{:<12} {:>16} {:>16} {:>10} {:>8}", "app", "BASE-no-opt", "BASE", "speedup", "paper");
    for row in &exp.rows {
        println!(
            "{:<12} {:>16} {:>16} {:>10.2} {:>8.2}",
            row.app,
            row.base_no_opt_cycles,
            row.base_cycles,
            row.base_no_opt_cycles as f64 / row.base_cycles as f64,
            row.paper_speedup,
        );
    }
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &exp.json());
    }
}
