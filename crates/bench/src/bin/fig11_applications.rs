//! Figure 11: application performance at 16 processors.
//!
//! For each application kernel, prints BASE / BASE+SLE / BASE+SLE+TLR
//! execution time normalized to BASE, split into lock-variable and
//! non-lock contributions (the two-part bars of Figure 11), plus the
//! §6.3 TLR-vs-BASE and MCS-vs-BASE speedups.
//!
//! Paper shape: TLR ≥ BASE everywhere; radiosity ≈ 1.47×, mp3d ≈
//! 1.40×, raytrace ≈ 1.17×, barnes ≈ 1.16× (with MCS slightly ahead
//! of TLR there), cholesky ≈ 1.05×, ocean-cont / water-nsq ≈ 1.0×.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig11_applications [--quick] [--procs 16] [--jobs 4]
//! ```

use tlr_bench::{speedup, BenchOpts};

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "fig11_applications",
            tlr_bench::checks::fig11,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::fig11(&opts, &pool);
    println!(
        "Figure 11: application performance, {} processors, scale {}",
        sweep.procs, sweep.scale
    );
    println!(
        "{:<12} {:>9} {:>22} {:>22} {:>22} {:>9} {:>9}",
        "app", "BASE(cyc)", "BASE lock/other", "SLE lock/other", "TLR lock/other", "TLR/BASE", "MCS/BASE"
    );
    for (name, reports) in &sweep.rows {
        let (base, sle, tlr, mcs) = (&reports[0], &reports[1], &reports[2], &reports[3]);
        let part = |r: &tlr_core::run::RunReport| {
            let total = (r.stats.parallel_cycles * sweep.procs as u64).max(1) as f64;
            let lock = r.stats.total_lock_cycles() as f64 / total;
            let norm = r.stats.parallel_cycles as f64 / base.stats.parallel_cycles as f64;
            format!("{:>6.3} ({:>4.1}%/{:>4.1}%)", norm, lock * 100.0, (1.0 - lock) * 100.0)
        };
        println!(
            "{:<12} {:>9} {:>22} {:>22} {:>22} {:>9.2} {:>9.2}",
            name,
            base.stats.parallel_cycles,
            part(base),
            part(sle),
            part(tlr),
            speedup(tlr, base),
            speedup(mcs, base),
        );
    }
    println!("\n(normalized execution time; lock% = cycles attributed to lock variables)");
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
