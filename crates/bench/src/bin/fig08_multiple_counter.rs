//! Figure 8: the multiple-counter microbenchmark
//! (coarse-grain locking / no data conflicts).
//!
//! Paper shape: BASE degrades sharply with processor count (lock
//! contention), MCS is flat with a fixed software overhead, SLE and
//! TLR behave identically (no conflicts) and scale perfectly, beating
//! both.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig08_multiple_counter [--quick] [--procs 1,2,4] [--jobs 4]
//! ```

use tlr_bench::{write_series_csv, BenchOpts};

fn main() {
    let opts = BenchOpts::parse();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "fig08_multiple_counter",
            tlr_bench::checks::fig08,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::fig08(&opts, &pool);
    sweep.print();
    if let Some(path) = &opts.csv {
        write_series_csv(path, &sweep.schemes, &sweep.rows);
    }
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
