//! Figure 8: the multiple-counter microbenchmark
//! (coarse-grain locking / no data conflicts).
//!
//! Paper shape: BASE degrades sharply with processor count (lock
//! contention), MCS is flat with a fixed software overhead, SLE and
//! TLR behave identically (no conflicts) and scale perfectly, beating
//! both.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin fig08_multiple_counter [--quick] [--procs 1,2,4]
//! ```

use tlr_bench::{print_events, print_series, run_cell_seeded, write_series_csv, write_series_json, BenchOpts};
use tlr_sim::config::Scheme;
use tlr_workloads::micro::multiple_counter;

fn main() {
    let opts = BenchOpts::from_args();
    if opts.check {
        tlr_bench::checks::run("fig08_multiple_counter", tlr_bench::checks::fig08, opts.json.as_deref());
        return;
    }
    // Paper: 2^24 total increments; scaled down (DESIGN.md).
    let total = opts.scale(1 << 14);
    let schemes = [Scheme::Base, Scheme::Mcs, Scheme::Sle, Scheme::Tlr];
    let mut rows = Vec::new();
    for &procs in &opts.procs {
        let w = multiple_counter(procs, total);
        let reports: Vec<_> = schemes.iter().map(|&s| run_cell_seeded(s, procs, &w, opts.seeds)).collect();
        print!(".");
        use std::io::Write;
        std::io::stdout().flush().ok();
        rows.push((procs, reports));
    }
    println!();
    print_series(
        &format!("Figure 8: multiple-counter, {total} total increments (cycles, lower is better)"),
        &schemes,
        &rows,
    );
    if let Some((_, last)) = rows.last() {
        print_events(&schemes, last);
    }
    if let Some(path) = &opts.csv {
        write_series_csv(path, &schemes, &rows);
    }
    if let Some(path) = &opts.json {
        write_series_json(path, "Figure 8: multiple-counter microbenchmark", &schemes, &rows);
    }
}
