//! `tlr-profile`: run one workload cell with the profiling layer on
//! and print a human-readable bottleneck report: the machine-level
//! cycle-attribution table (audited against the accounting identity),
//! the utilization summary from the epoch-sampled timeline, the
//! event-engine wake-source breakdown and self-profile, latency
//! percentiles, the top contended lines, and a one-line saturation
//! verdict naming the resource that bounds the cell.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin tlr-profile -- \
//!     --workload single_counter --procs 16 --total 4096 \
//!     --json profile.json --out trace.json
//! ```
//!
//! `--json` writes the flat profile document
//! ([`tlr_sim::export::profile_json`]); `--out` additionally enables
//! transaction tracing and writes a Chrome/Perfetto trace with the
//! profiler's counter tracks attached
//! ([`tlr_sim::export::chrome_trace_with_profile`]). `--check` runs
//! the profiling smoke check (identity, timeline tiling, and
//! profiled-vs-unprofiled equality) on the selected engine.

use tlr_bench::cli::Args;
use tlr_core::run::{build_machine, WorkloadSpec};
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_sim::prof::ProfConfig;
use tlr_sim::stats::Hist;
use tlr_sim::{export, json};
use tlr_workloads::apps::{mp3d, mp3d_coarse};
use tlr_workloads::micro::{doubly_linked_list, multiple_counter, single_counter};

struct ProfOpts {
    workload: String,
    scheme: Scheme,
    procs: usize,
    total: u64,
    cells: u64,
    top_n: usize,
}

fn parse_args() -> (ProfOpts, Args) {
    let mut o = ProfOpts {
        workload: "single_counter".to_string(),
        scheme: Scheme::Tlr,
        procs: 16,
        total: 4096,
        cells: 4096,
        top_n: 8,
    };
    // The hook claims `--procs` because a profile follows ONE machine
    // (a single count, not the sweep's comma list).
    let shared = Args::parse_with(|_, mut flag| {
        match flag.name {
            "--help" | "-h" => {
                println!(
                    "tlr-profile: run one workload cell with profiling on and print a\n\
                     bottleneck-attribution report (cycle accounting, utilization timeline,\n\
                     wake sources, latency percentiles, saturation verdict)\n\
                     \n\
                     profile flags:\n\
                     \x20 --workload W    single_counter|multiple_counter|linked_list|mp3d|mp3d_coarse\n\
                     \x20 --scheme S      base|mcs|sle|tlr|tlr_strict_ts\n\
                     \x20 --procs N       processor count (single value: one machine)\n\
                     \x20 --total N       total work items\n\
                     \x20 --cells N       mp3d cell count (power of two; fig11 uses 8192)\n\
                     \x20 --top-n N       contended-line table size\n\
                     \x20 --json PATH     write the flat profile document\n\
                     \x20 --out PATH      write a Perfetto trace with counter tracks\n\
                     \x20 --check         run the profiling smoke check instead\n\
                     \n{}",
                    tlr_bench::cli::CORE_USAGE
                );
                std::process::exit(0);
            }
            "--workload" => o.workload = flag.value(),
            "--scheme" => {
                o.scheme = match flag.value().as_str() {
                    "base" => Scheme::Base,
                    "mcs" => Scheme::Mcs,
                    "sle" => Scheme::Sle,
                    "tlr" => Scheme::Tlr,
                    "tlr_strict_ts" => Scheme::TlrStrictTs,
                    other => panic!("unknown scheme {other:?} (base|mcs|sle|tlr|tlr_strict_ts)"),
                }
            }
            "--procs" => o.procs = flag.value().parse().expect("bad --procs"),
            "--total" => o.total = flag.value().parse().expect("bad --total"),
            "--cells" => o.cells = flag.value().parse().expect("bad --cells"),
            "--top-n" => o.top_n = flag.value().parse().expect("bad --top-n"),
            _ => return false,
        }
        true
    });
    (o, shared)
}

fn workload(name: &str, procs: usize, total: u64, cells: u64) -> Box<dyn WorkloadSpec> {
    match name {
        "single_counter" => Box::new(single_counter(procs, total)),
        "multiple_counter" => Box::new(multiple_counter(procs, total)),
        "linked_list" => Box::new(doubly_linked_list(procs, total)),
        "mp3d" => Box::new(mp3d(procs, total, cells)),
        "mp3d_coarse" => Box::new(mp3d_coarse(procs, total, cells)),
        other => panic!(
            "unknown workload {other:?} \
             (single_counter|multiple_counter|linked_list|mp3d|mp3d_coarse)"
        ),
    }
}

fn percentile_line(label: &str, h: &Hist) -> String {
    let p = |q: f64| h.percentile(q).map_or_else(|| "-".to_string(), |v| v.to_string());
    format!("  {label:<18} p50 {:>8}  p95 {:>8}  p99 {:>8}", p(50.0), p(95.0), p(99.0))
}

fn write_validated(path: &std::path::Path, contents: &str, what: &str) {
    json::validate(contents).unwrap_or_else(|e| panic!("generated {what} JSON is malformed: {e}"));
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("({what} written to {})", path.display());
}

fn main() {
    let (o, shared) = parse_args();
    let pool = shared.pool();
    if shared.check {
        tlr_bench::checks::run("profile", tlr_bench::checks::profile, &pool, shared.json.as_deref());
        return;
    }

    let w = workload(&o.workload, o.procs, o.total, o.cells);
    let mut cfg = MachineConfig::paper_default(o.scheme, o.procs);
    cfg.max_cycles = 60_000_000_000;
    cfg.profile = ProfConfig::on();
    let mut m = build_machine(&cfg, w.as_ref());
    if shared.out.is_some() {
        m.enable_trace();
    }
    m.run().unwrap_or_else(|e| panic!("{} [{} x{}]: {e}", w.name(), o.scheme, o.procs));
    w.validate(&m).unwrap_or_else(|e| panic!("serializability violation: {e}"));
    let p = m.take_profile().expect("profiling was enabled");
    let stats = m.stats().clone();
    let elapsed = stats.elapsed_cycles;
    let engine = cfg.engine.label();

    println!("== tlr-profile: {} [{} x{}] ==", w.name(), o.scheme, o.procs);
    println!(
        "{} parallel cycles, {elapsed} elapsed (incl. drain), {engine} engine",
        stats.parallel_cycles
    );

    // Cycle attribution: every node-cycle charged to exactly one
    // category; the identity is re-audited here, not assumed.
    let verdict = match stats.check_cycle_accounting() {
        Ok(()) => "holds".to_string(),
        Err(e) => format!("VIOLATED: {e}"),
    };
    println!("\ncycle attribution (identity attributed == elapsed x procs: {verdict})");
    let mut totals = [("", 0u64); 9];
    for n in &stats.nodes {
        for (slot, (label, v)) in totals.iter_mut().zip(n.cycle_categories()) {
            *slot = (label, slot.1 + v);
        }
    }
    let grand: u64 = totals.iter().map(|(_, v)| v).sum();
    for (label, v) in totals {
        println!("  {label:<20} {v:>14}  {:>5.1}%", v as f64 * 100.0 / grand.max(1) as f64);
    }
    println!("  {:<20} {grand:>14}  100.0%", "total");

    println!("\nutilization (epoch {} cycles, {} samples)", p.epoch(), p.samples().len());
    let peak_util = p
        .samples()
        .iter()
        .map(|s| s.bus_utilization(p.bus_occupancy))
        .fold(0.0f64, f64::max);
    println!(
        "  address bus        {:>5.1}% occupancy (peak epoch {:>5.1}%)",
        p.utilization() * 100.0,
        peak_util * 100.0
    );
    println!("  net queue          peak {}", p.peak(|s| s.net_depth));
    println!("  snoop queue        peak {}", p.peak(|s| s.snoop_depth));
    println!("  outstanding MSHRs  peak {}", p.peak(|s| s.mshrs));
    println!("  deferred queue     peak {}", p.peak(|s| s.deferred));
    println!("  spinning nodes     peak {}", p.peak(|s| s.spin_nodes));

    let e = &p.engine;
    println!("\nengine self-profile ({engine} engine)");
    let pct = |num: u64, den: u64| num as f64 * 100.0 / den.max(1) as f64;
    println!(
        "  steps taken        {:>14}  (skipped {:>5.1}% of {elapsed} cycles)",
        e.steps,
        pct(e.skipped_cycles, elapsed)
    );
    println!(
        "  live node ticks    {:>14}  ({:>5.1}% of node-cycles)",
        e.live_ticks,
        pct(e.live_ticks, elapsed * o.procs as u64)
    );
    println!(
        "  burst mode         {} entries, {} cycles, {} ticks",
        e.burst_entries, e.burst_cycles, e.burst_ticks
    );
    println!("  spin fast-forward  {} settles, {} cycles absorbed", e.spin_settles, e.spin_settle_cycles);
    println!("  idle settles       {} settles, {} cycles absorbed", e.idle_settles, e.idle_settle_cycles);
    if e.total_wakes() > 0 {
        println!("  wake sources:");
        for (label, count) in e.wake_breakdown() {
            if count > 0 {
                println!("    {label:<26} {count:>12}  {:>5.1}%", pct(count, e.total_wakes()));
            }
        }
    }

    println!("\nlatency percentiles (cycles, log2-bucket midpoints)");
    println!("{}", percentile_line("critical section", &stats.obs.cs_length));
    println!("{}", percentile_line("commit latency", &stats.obs.commit_latency));

    let contended = stats.obs.conflicts.top_n(o.top_n);
    if !contended.is_empty() {
        println!("\ntop contended lines");
        for (line, conflicts) in contended {
            println!("  {line:#x}  {conflicts} conflicts");
        }
    }

    println!("\nverdict: {}", p.verdict(o.procs));

    if let Some(path) = &shared.json {
        let doc = export::profile_json(w.name(), o.scheme.label(), o.procs, &p, p.bus_occupancy);
        write_validated(path, &doc, "profile");
    }
    if let Some(path) = &shared.out {
        let log = m.span_log();
        let doc = export::chrome_trace_with_profile(&log, o.procs, Some(&p), p.bus_occupancy);
        write_validated(path, &doc, "trace");
    }
}
