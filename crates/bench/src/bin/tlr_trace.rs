//! `tlr-trace`: run one workload with transaction-lifecycle tracing
//! enabled and export the span log as a Chrome/Perfetto `trace.json`
//! plus an aggregate-metrics JSON document.
//!
//! Load the trace in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): each processor is a track, each elided
//! critical section a span (begin → commit/restart/fallback), with
//! protocol events (deferrals, markers, probes, NACKs) as instants on
//! the owning span.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin tlr-trace -- \
//!     --workload single_counter --procs 4 --total 256 \
//!     --out trace.json --metrics metrics.json
//! ```
//!
//! Flags: `--workload single_counter|multiple_counter|linked_list|`
//! `mp3d|mp3d_coarse`, `--scheme base|mcs|sle|tlr|tlr_strict_ts`,
//! `--procs N`, `--total N`, `--capacity N` (trace ring-buffer
//! capacity), `--top-n N` (contended-line table size), `--out PATH`,
//! `--metrics PATH`, `--dump-spans` (print the span log),
//! `--expect-defer` (exit non-zero unless the trace holds at least
//! one deferral — CI uses this to pin the protocol path down), and
//! `--jobs N` (accepted for sweep-script uniformity; a trace runs one
//! machine, so anything above 1 warns on stderr and runs serially
//! anyway — `--help` documents the restriction).

use tlr_bench::cli::Args;
use tlr_core::run::{build_machine, WorkloadSpec};
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_sim::trace::TraceKind;
use tlr_sim::{export, json};
use tlr_workloads::apps::{mp3d, mp3d_coarse};
use tlr_workloads::micro::{doubly_linked_list, multiple_counter, single_counter};

struct TraceOpts {
    workload: String,
    scheme: Scheme,
    procs: usize,
    total: u64,
    capacity: usize,
    top_n: usize,
    out: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    dump_spans: bool,
    expect_defer: bool,
    jobs: usize,
}

fn parse_args() -> TraceOpts {
    let mut o = TraceOpts {
        workload: "single_counter".to_string(),
        scheme: Scheme::Tlr,
        procs: 4,
        total: 256,
        capacity: tlr_sim::trace::DEFAULT_CAPACITY,
        top_n: 16,
        out: None,
        metrics: None,
        dump_spans: false,
        expect_defer: false,
        jobs: 1,
    };
    // Trace-specific flags layer on the shared core surface; the hook
    // claims `--procs` too, because a trace follows ONE machine (a
    // single count, not the sweep's comma list), and `--help` so the
    // trace-specific surface (and the --jobs restriction) is shown
    // ahead of the shared flags.
    let shared = Args::parse_with(|_, mut flag| {
        match flag.name {
            "--help" | "-h" => {
                println!(
                    "tlr-trace: run one workload with transaction tracing and export\n\
                     a Chrome/Perfetto trace.json plus aggregate metrics\n\
                     \n\
                     trace flags:\n\
                     \x20 --workload W    single_counter|multiple_counter|linked_list|mp3d|mp3d_coarse\n\
                     \x20 --scheme S      base|mcs|sle|tlr|tlr_strict_ts\n\
                     \x20 --procs N       processor count (single value: a trace follows ONE machine)\n\
                     \x20 --total N       total work items\n\
                     \x20 --capacity N    trace ring-buffer capacity\n\
                     \x20 --top-n N       contended-line table size\n\
                     \x20 --metrics PATH  write aggregate metrics JSON\n\
                     \x20 --dump-spans    print the span log\n\
                     \x20 --expect-defer  exit non-zero unless the trace holds a deferral\n\
                     \n\
                     note: --jobs is accepted for sweep-script uniformity only; a trace\n\
                     runs one machine, so --jobs above 1 warns on stderr and runs serially.\n\
                     \n{}",
                    tlr_bench::cli::CORE_USAGE
                );
                std::process::exit(0);
            }
            "--workload" => o.workload = flag.value(),
            "--scheme" => {
                o.scheme = match flag.value().as_str() {
                    "base" => Scheme::Base,
                    "mcs" => Scheme::Mcs,
                    "sle" => Scheme::Sle,
                    "tlr" => Scheme::Tlr,
                    "tlr_strict_ts" => Scheme::TlrStrictTs,
                    other => panic!("unknown scheme {other:?} (base|mcs|sle|tlr|tlr_strict_ts)"),
                }
            }
            "--procs" => o.procs = flag.value().parse().expect("bad --procs"),
            "--total" => o.total = flag.value().parse().expect("bad --total"),
            "--capacity" => o.capacity = flag.value().parse().expect("bad --capacity"),
            "--top-n" => o.top_n = flag.value().parse().expect("bad --top-n"),
            "--metrics" => o.metrics = Some(std::path::PathBuf::from(flag.value())),
            "--dump-spans" => o.dump_spans = true,
            "--expect-defer" => o.expect_defer = true,
            _ => return false,
        }
        true
    });
    o.out = shared.out;
    o.jobs = shared.jobs.unwrap_or(1);
    o
}

fn workload(name: &str, procs: usize, total: u64) -> Box<dyn WorkloadSpec> {
    match name {
        "single_counter" => Box::new(single_counter(procs, total)),
        "multiple_counter" => Box::new(multiple_counter(procs, total)),
        "linked_list" => Box::new(doubly_linked_list(procs, total)),
        "mp3d" => Box::new(mp3d(procs, total, 4096)),
        "mp3d_coarse" => Box::new(mp3d_coarse(procs, total, 4096)),
        other => panic!(
            "unknown workload {other:?} \
             (single_counter|multiple_counter|linked_list|mp3d|mp3d_coarse)"
        ),
    }
}

fn write_validated(path: &std::path::Path, contents: &str, what: &str) {
    json::validate(contents)
        .unwrap_or_else(|e| panic!("generated {what} JSON is malformed: {e}"));
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("({what} written to {})", path.display());
}

fn main() {
    let o = parse_args();
    if o.jobs > 1 {
        eprintln!("warning: a trace follows one machine; --jobs {} runs it serially", o.jobs);
    }
    let w = workload(&o.workload, o.procs, o.total);
    let mut cfg = MachineConfig::paper_default(o.scheme, o.procs);
    cfg.max_cycles = 60_000_000_000;
    let mut m = build_machine(&cfg, w.as_ref());
    m.enable_trace_with_capacity(o.capacity);
    m.run().unwrap_or_else(|e| panic!("{} [{} x{}]: {e}", w.name(), o.scheme, o.procs));
    w.validate(&m).unwrap_or_else(|e| panic!("serializability violation: {e}"));

    let log = m.span_log();
    let stats = m.stats();
    let defers = m.trace().count(|e| matches!(e.kind, TraceKind::Defer { .. }));
    println!(
        "{} [{} x{}]: {} cycles, {} events ({} dropped), {} spans \
         ({} commits, {} restarts), {} deferrals",
        w.name(),
        o.scheme,
        o.procs,
        stats.parallel_cycles,
        m.trace().len(),
        m.trace().dropped(),
        log.spans.len(),
        log.commits(),
        log.restarts(),
        defers,
    );

    if o.dump_spans {
        println!("{}", log.dump());
    }
    if let Some(path) = &o.out {
        write_validated(path, &export::chrome_trace_json(&log, o.procs), "trace");
    }
    if let Some(path) = &o.metrics {
        let doc = export::metrics_json(w.name(), o.scheme.label(), o.procs, stats, o.top_n);
        write_validated(path, &doc, "metrics");
    }
    if o.expect_defer && defers == 0 {
        eprintln!("EXPECT FAIL: no Defer event in the trace (wanted at least one)");
        std::process::exit(1);
    }
    if o.expect_defer {
        println!("EXPECT PASS: trace holds {defers} deferral(s)");
    }
}
