//! `exp_robustness`: degradation curves under the deterministic
//! fault-injection ("chaos") layer.
//!
//! Sweeps fault intensity 0 (calm baseline) through `--faults N`
//! (default: the maximum level) for BASE, SLE, and TLR on the
//! contended-counter workload, reporting cycles, restarts, fallbacks,
//! and the injected-fault counts per cell. The chaos layer's contract
//! — faults perturb timing, never correctness — is asserted on every
//! cell, so a serializability violation under chaos fails the run.
//!
//! ```text
//! cargo run --release -p tlr-bench --bin exp_robustness -- \
//!     --faults 4 --fault-seed 0xc4a05eed --json robustness.json
//! ```
//!
//! Shares the core flag surface (`--quick`, `--check`, `--json`,
//! `--jobs`, ...) with the other binaries, plus `--faults N` and
//! `--fault-seed S`.

use tlr_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse_chaos();
    let pool = opts.pool();
    if opts.check {
        tlr_bench::checks::run(
            "exp_robustness",
            tlr_bench::checks::exp_robustness,
            &pool,
            opts.json.as_deref(),
        );
        return;
    }
    let sweep = tlr_bench::sweeps::robustness(&opts, &pool);
    sweep.print();
    if let Some(path) = &opts.json {
        tlr_bench::write_json_file(path, &sweep.json());
    }
}
