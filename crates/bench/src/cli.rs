//! Shared command-line parsing for the figure/table/exp binaries.
//!
//! Every binary accepts the same core surface — `--quick`, `--check`,
//! `--procs`, `--seeds`, `--csv`, `--json`, `--out`, `--jobs` — which
//! used to be re-parsed (and drift-prone) in each `main`. [`Args`]
//! centralizes it; binaries with extra flags (`tlr-trace`'s workload
//! selection, `exp_robustness`'s `--faults`/`--fault-seed`) layer them
//! on top with [`Args::parse_with`] without re-implementing the core.

use std::path::PathBuf;

use tlr_sim::config::{Engine, Interconnect, PolicyKind};
use tlr_sim::fault::FaultConfig;
use tlr_sim::pool::Pool;

/// Default root seed for the chaos sweep's fault streams (arbitrary,
/// fixed so `exp_robustness` output is reproducible out of the box).
pub const DEFAULT_FAULT_SEED: u64 = 0xc4a0_5eed;

/// The shared flag surface, printed by `--help`. Binaries with extra
/// flags print their own section first and append this one.
pub const CORE_USAGE: &str = "\
shared flags:
  --quick         smaller work totals (CI-sized, ~seconds per series)
  --check         run the golden-shape check instead of the sweep
  --procs A,B,..  processor counts to sweep
  --seeds N       seeds to average over
  --csv PATH      also write the results as CSV
  --json PATH     also write the results as JSON
  --out PATH      generic output path
  --jobs N        worker threads (default: TLR_JOBS or host parallelism)
  --engine E      simulation engine: event (default) | cycle
  --interconnect I  coherence interconnect: snooping (bus, <= 16 procs)
                  | directory (home-node banks, <= 256 procs);
                  binaries pick their own default
  --profile       collect utilization timelines, engine self-profiling,
                  and saturation columns (off: byte-identical output)
  --policy P      conflict policy: timestamp (default, the paper's
                  ordering) | backoff | karma | lazy-sub";

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Processor counts to sweep (x-axis of Figures 8-10).
    pub procs: Vec<usize>,
    /// Work scale divisor: 1 for the default, larger for `--quick`.
    pub quick: bool,
    /// Number of seeds to average over (the Alameldeen methodology:
    /// perturbed runs instead of a single sample).
    pub seeds: u64,
    /// Optional path to also write the results as CSV (for plotting).
    pub csv: Option<PathBuf>,
    /// Optional path to also write the results as JSON (for tooling;
    /// with `--check`, the check verdict is written instead).
    pub json: Option<PathBuf>,
    /// Optional generic output path (`--out`; `tlr-trace` writes its
    /// Perfetto trace here).
    pub out: Option<PathBuf>,
    /// Run the binary's golden-shape check instead of the full sweep.
    pub check: bool,
    /// Worker count for the parallel execution engine (`--jobs N`);
    /// `None` falls back to `TLR_JOBS` or the host parallelism.
    pub jobs: Option<usize>,
    /// Maximum fault intensity for chaos sweeps (`--faults`, parsed
    /// only by [`Args::parse_chaos`]; `exp_robustness` sweeps levels
    /// `0..=faults`).
    pub faults: u32,
    /// Root seed for the fault streams (`--fault-seed`, parsed only by
    /// [`Args::parse_chaos`]).
    pub fault_seed: u64,
    /// Simulation engine (`--engine event|cycle`); the discrete-event
    /// engine is the default, the cycle-stepped oracle is kept for
    /// differential checks and benchmarking.
    pub engine: Engine,
    /// Coherence interconnect (`--interconnect snooping|directory`).
    /// The snooping bus is the paper's 16-way machine; the home-node
    /// directory scales to 256 processors (`exp_scalability` defaults
    /// to it). Every entry of `procs` must fit the selected
    /// interconnect's `max_procs`.
    pub interconnect: Interconnect,
    /// Enable the profiling layer (`--profile`): every machine the
    /// binary builds collects the utilization timeline and engine
    /// self-profile, and sweep outputs grow saturation columns.
    /// Off by default — unprofiled output is byte-identical to a
    /// build without the profiler.
    pub profile: bool,
    /// Conflict policy (`--policy timestamp|backoff|karma|lazy-sub`):
    /// which contention manager every machine the binary builds uses.
    /// The default, timestamp order, is the paper's algorithm and is
    /// byte-identical to a build without the policy layer.
    pub policy: PolicyKind,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            procs: vec![1, 2, 4, 8, 12, 16],
            quick: false,
            seeds: 1,
            csv: None,
            json: None,
            out: None,
            check: false,
            jobs: None,
            faults: FaultConfig::MAX_INTENSITY,
            fault_seed: DEFAULT_FAULT_SEED,
            engine: Engine::default(),
            interconnect: Interconnect::Snooping,
            profile: false,
            policy: PolicyKind::Timestamp,
        }
    }
}

/// Cursor over the raw argument tokens, handed to the `extra` hook of
/// [`Args::parse_with`] so binary-specific flags can pull their
/// values with the same error style as the core flags.
pub struct ArgStream {
    tokens: Vec<String>,
    i: usize,
}

impl ArgStream {
    /// Next token, consumed as the value of `flag`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message when the value is missing.
    pub fn value(&mut self, flag: &str) -> String {
        let v = self.tokens.get(self.i).unwrap_or_else(|| panic!("{flag} needs a value"));
        self.i += 1;
        v.clone()
    }
}

impl Args {
    /// Parses the core flag surface from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        Self::parse_with(|_, _| false)
    }

    /// Parses the core surface plus the chaos flags `--faults N`
    /// (maximum intensity level) and `--fault-seed S`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_chaos() -> Self {
        Self::parse_with(chaos_flags)
    }

    /// Parses the process arguments, offering each flag to `extra`
    /// first (so binaries can both add flags and override a core
    /// flag's meaning); unclaimed flags fall through to the core
    /// parser. `extra` returns whether it consumed the flag.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_with(extra: impl FnMut(&mut Args, Flag<'_>) -> bool) -> Self {
        Self::parse_with_defaults(Args::default(), extra)
    }

    /// [`Args::parse_with`] starting from binary-specific `defaults`
    /// instead of [`Args::default`] — `exp_scalability` defaults to
    /// the home-node directory and a 32–256-processor sweep, which the
    /// shared bus-sized defaults cannot express.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_with_defaults(
        defaults: Args,
        extra: impl FnMut(&mut Args, Flag<'_>) -> bool,
    ) -> Self {
        let opts = Self::parse_tokens_with(defaults, std::env::args().skip(1).collect(), extra);
        // Thread the engine/interconnect choices to every
        // MachineConfig the sweep helpers construct. Only real process
        // arguments reach here — [`Args::parse_tokens`] leaves the
        // globals alone so tests (which share one process) pick them
        // via the config builder instead.
        tlr_sim::config::set_default_engine(opts.engine);
        tlr_sim::config::set_default_profile(opts.profile);
        tlr_sim::config::set_default_interconnect(opts.interconnect);
        tlr_sim::config::set_default_policy(opts.policy);
        opts
    }

    /// [`Args::parse_with`] over an explicit token list (tests).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_tokens(
        tokens: Vec<String>,
        extra: impl FnMut(&mut Args, Flag<'_>) -> bool,
    ) -> Self {
        Self::parse_tokens_with(Args::default(), tokens, extra)
    }

    /// [`Args::parse_tokens`] starting from binary-specific `defaults`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments, including a
    /// `--procs` entry above the selected interconnect's processor
    /// maximum.
    pub fn parse_tokens_with(
        defaults: Args,
        tokens: Vec<String>,
        mut extra: impl FnMut(&mut Args, Flag<'_>) -> bool,
    ) -> Self {
        let mut opts = defaults;
        let mut s = ArgStream { tokens, i: 0 };
        while s.i < s.tokens.len() {
            let arg = s.tokens[s.i].clone();
            s.i += 1;
            if extra(&mut opts, Flag { name: &arg, stream: &mut s }) {
                continue;
            }
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--check" => opts.check = true,
                "--procs" => {
                    opts.procs = s
                        .value("--procs")
                        .split(',')
                        .map(|p| p.parse().unwrap_or_else(|_| panic!("bad proc count {p:?}")))
                        .collect();
                }
                "--seeds" => {
                    opts.seeds = s.value("--seeds").parse().expect("bad seed count");
                    assert!(opts.seeds >= 1, "--seeds must be at least 1");
                }
                "--csv" => opts.csv = Some(PathBuf::from(s.value("--csv"))),
                "--json" => opts.json = Some(PathBuf::from(s.value("--json"))),
                "--out" => opts.out = Some(PathBuf::from(s.value("--out"))),
                "--jobs" => {
                    let n: usize = s.value("--jobs").parse().expect("bad job count");
                    assert!(n >= 1, "--jobs must be at least 1");
                    opts.jobs = Some(n);
                }
                "--engine" => {
                    opts.engine = Engine::parse(&s.value("--engine")).unwrap_or_else(|e| panic!("{e}"));
                }
                "--interconnect" => {
                    opts.interconnect = Interconnect::parse(&s.value("--interconnect"))
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                "--profile" => opts.profile = true,
                "--policy" => {
                    opts.policy =
                        PolicyKind::parse(&s.value("--policy")).unwrap_or_else(|e| panic!("{e}"));
                }
                "--help" | "-h" => {
                    println!("{CORE_USAGE}");
                    std::process::exit(0);
                }
                other => {
                    panic!(
                        "unknown argument {other:?} (supported: --quick, --check, --procs, \
                         --seeds, --csv, --json, --out, --jobs, --engine, --interconnect, \
                         --profile, --policy, plus any binary-specific flags)"
                    )
                }
            }
        }
        for &p in &opts.procs {
            assert!(
                p <= opts.interconnect.max_procs(),
                "--procs {p} exceeds the {} interconnect's {}-processor maximum{}",
                opts.interconnect,
                opts.interconnect.max_procs(),
                if opts.interconnect == Interconnect::Snooping {
                    " (pass --interconnect directory for larger machines)"
                } else {
                    ""
                }
            );
        }
        opts
    }

    /// Scales a default work total down for quick mode.
    pub fn scale(&self, full: u64) -> u64 {
        if self.quick {
            (full / 16).max(64)
        } else {
            full
        }
    }

    /// The worker pool these options select (`--jobs`, then `TLR_JOBS`,
    /// then the host's available parallelism).
    pub fn pool(&self) -> Pool {
        Pool::new(tlr_sim::pool::resolve_jobs(self.jobs))
    }

    /// The fault configuration at one intensity `level` of the chaos
    /// sweep, rooted at this invocation's `--fault-seed`.
    pub fn fault_config(&self, level: u32) -> FaultConfig {
        FaultConfig::intensity(self.fault_seed, level)
    }
}

/// One flag offered to an [`Args::parse_with`] hook: its name and the
/// stream to pull values from.
pub struct Flag<'a> {
    /// The flag token, e.g. `--workload`.
    pub name: &'a str,
    /// Cursor for consuming the flag's value(s).
    pub stream: &'a mut ArgStream,
}

impl Flag<'_> {
    /// Consumes and returns this flag's value.
    ///
    /// # Panics
    ///
    /// Panics with a usage message when the value is missing.
    pub fn value(&mut self) -> String {
        let name = self.name.to_string();
        self.stream.value(&name)
    }
}

/// The `extra` hook implementing `--faults` / `--fault-seed`.
fn chaos_flags(opts: &mut Args, mut flag: Flag<'_>) -> bool {
    match flag.name {
        "--faults" => {
            opts.faults = flag.value().parse().expect("bad fault intensity");
            assert!(
                opts.faults <= FaultConfig::MAX_INTENSITY,
                "--faults must be at most {}",
                FaultConfig::MAX_INTENSITY
            );
            true
        }
        "--fault-seed" => {
            let v = flag.value();
            opts.fault_seed = v
                .strip_prefix("0x")
                .map_or_else(|| v.parse(), |h| u64::from_str_radix(h, 16))
                .expect("bad fault seed");
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn core_flags_parse() {
        let a = Args::parse_tokens(
            toks("--quick --check --procs 1,2,4 --seeds 3 --jobs 2 --json x.json --out t.json"),
            |_, _| false,
        );
        assert!(a.quick && a.check);
        assert_eq!(a.procs, vec![1, 2, 4]);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.jobs, Some(2));
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("x.json")));
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("t.json")));
    }

    #[test]
    fn engine_flag_parses_both_engines_and_defaults_to_event() {
        assert_eq!(Args::parse_tokens(vec![], |_, _| false).engine, Engine::EventDriven);
        let a = Args::parse_tokens(toks("--engine cycle"), |_, _| false);
        assert_eq!(a.engine, Engine::CycleStepped);
        let b = Args::parse_tokens(toks("--engine event-driven"), |_, _| false);
        assert_eq!(b.engine, Engine::EventDriven);
        let c = Args::parse_tokens(toks("--engine cycle-stepped --quick"), |_, _| false);
        assert_eq!(c.engine, Engine::CycleStepped);
        assert!(c.quick);
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn bad_engine_value_is_rejected() {
        Args::parse_tokens(toks("--engine warp"), |_, _| false);
    }

    #[test]
    fn policy_flag_parses_all_kinds_and_defaults_to_timestamp() {
        assert_eq!(Args::parse_tokens(vec![], |_, _| false).policy, PolicyKind::Timestamp);
        for (tok, want) in [
            ("timestamp", PolicyKind::Timestamp),
            ("backoff", PolicyKind::Backoff),
            ("karma", PolicyKind::Karma),
            ("lazy-sub", PolicyKind::LazySub),
        ] {
            let a = Args::parse_tokens(toks(&format!("--policy {tok}")), |_, _| false);
            assert_eq!(a.policy, want, "--policy {tok}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn bad_policy_value_is_rejected() {
        Args::parse_tokens(toks("--policy coinflip"), |_, _| false);
    }

    #[test]
    fn profile_flag_parses_and_defaults_off() {
        assert!(!Args::parse_tokens(vec![], |_, _| false).profile);
        let a = Args::parse_tokens(toks("--profile --quick"), |_, _| false);
        assert!(a.profile && a.quick);
    }

    #[test]
    fn defaults_match_the_old_bench_opts() {
        let a = Args::parse_tokens(vec![], |_, _| false);
        assert_eq!(a.procs, vec![1, 2, 4, 8, 12, 16]);
        assert!(!a.quick && !a.check);
        assert_eq!(a.seeds, 1);
        assert_eq!(a.jobs, None);
        assert_eq!(a.faults, FaultConfig::MAX_INTENSITY);
        assert_eq!(a.fault_seed, DEFAULT_FAULT_SEED);
        assert_eq!(a.interconnect, Interconnect::Snooping);
    }

    #[test]
    fn interconnect_flag_parses_and_lifts_the_proc_ceiling() {
        let a = Args::parse_tokens(toks("--interconnect directory --procs 32,64,256"), |_, _| false);
        assert_eq!(a.interconnect, Interconnect::Directory);
        assert_eq!(a.procs, vec![32, 64, 256]);
        let b = Args::parse_tokens(toks("--interconnect bus --procs 16"), |_, _| false);
        assert_eq!(b.interconnect, Interconnect::Snooping);
    }

    #[test]
    #[should_panic(expected = "exceeds the snooping interconnect's 16-processor maximum")]
    fn procs_above_the_bus_limit_are_rejected() {
        Args::parse_tokens(toks("--procs 32"), |_, _| false);
    }

    #[test]
    #[should_panic(expected = "exceeds the directory interconnect's 256-processor maximum")]
    fn procs_above_the_directory_limit_are_rejected() {
        Args::parse_tokens(toks("--interconnect directory --procs 512"), |_, _| false);
    }

    #[test]
    #[should_panic(expected = "unknown interconnect")]
    fn bad_interconnect_value_is_rejected() {
        Args::parse_tokens(toks("--interconnect mesh"), |_, _| false);
    }

    #[test]
    fn binary_defaults_seed_the_parse_and_flags_still_override() {
        let scalability = || Args {
            procs: vec![32, 64, 128, 256],
            interconnect: Interconnect::Directory,
            ..Default::default()
        };
        let a = Args::parse_tokens_with(scalability(), vec![], |_, _| false);
        assert_eq!(a.procs, vec![32, 64, 128, 256]);
        assert_eq!(a.interconnect, Interconnect::Directory);
        let b = Args::parse_tokens_with(scalability(), toks("--procs 8,48 --quick"), |_, _| false);
        assert_eq!(b.procs, vec![8, 48]);
        assert!(b.quick);
        assert_eq!(b.interconnect, Interconnect::Directory, "defaults survive other flags");
    }

    #[test]
    #[should_panic(expected = "pass --interconnect directory for larger machines")]
    fn binary_defaults_still_validate_the_proc_ceiling() {
        // Forcing the bus back on under a 32-proc default sweep must
        // fail loudly, not overflow the broadcast fabric.
        let defaults = Args { procs: vec![32, 64], ..Default::default() };
        Args::parse_tokens_with(defaults, vec![], |_, _| false);
    }

    #[test]
    fn chaos_flags_parse_decimal_and_hex() {
        let a = Args::parse_tokens(toks("--faults 2 --fault-seed 0xdead --quick"), chaos_flags);
        assert_eq!(a.faults, 2);
        assert_eq!(a.fault_seed, 0xdead);
        assert!(a.quick);
        let b = Args::parse_tokens(toks("--fault-seed 17"), chaos_flags);
        assert_eq!(b.fault_seed, 17);
        assert_eq!(b.fault_config(0), FaultConfig::off());
        assert_eq!(b.fault_config(2), FaultConfig::intensity(17, 2));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flags_are_rejected() {
        Args::parse_tokens(toks("--bogus"), |_, _| false);
    }

    #[test]
    #[should_panic(expected = "--faults must be at most")]
    fn overlarge_fault_intensity_is_rejected() {
        Args::parse_tokens(toks("--faults 9"), chaos_flags);
    }

    #[test]
    fn extra_hook_wins_over_core() {
        // A binary may claim a core flag for itself (tlr-trace's
        // single-valued --procs).
        let mut seen = None;
        let a = Args::parse_tokens(toks("--procs 7 --quick"), |_, mut f| {
            if f.name == "--procs" {
                seen = Some(f.value());
                true
            } else {
                false
            }
        });
        assert_eq!(seen.as_deref(), Some("7"));
        assert_eq!(a.procs, vec![1, 2, 4, 8, 12, 16], "core never saw it");
        assert!(a.quick);
    }

    #[test]
    fn scaling() {
        let quick = Args { quick: true, ..Default::default() };
        let full = Args::default();
        assert_eq!(full.scale(1 << 14), 1 << 14);
        assert_eq!(quick.scale(1 << 14), 1 << 10);
        assert_eq!(quick.scale(100), 64, "quick floor");
    }
}
