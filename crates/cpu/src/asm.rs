//! A tiny assembler with labels and a register allocator.
//!
//! Workload generators build programs through this builder; labels
//! are resolved to absolute instruction indices at
//! [`Asm::finish`] time.
//!
//! # Example
//!
//! ```
//! use tlr_cpu::asm::Asm;
//!
//! // A countdown loop.
//! let mut a = Asm::new("countdown");
//! let n = a.reg();
//! let zero = a.reg();
//! a.li(n, 10);
//! a.li(zero, 0);
//! let top = a.here();
//! a.addi(n, n, -1);
//! a.bne(n, zero, top);
//! a.done();
//! let p = a.finish();
//! assert!(p.len() > 0);
//! ```

use crate::isa::{Op, Program, Reg, NUM_REGS};

/// A forward or backward branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Program builder.
#[derive(Debug)]
pub struct Asm {
    name: String,
    ops: Vec<Op>,
    /// label id -> resolved instruction index
    labels: Vec<Option<u32>>,
    /// (op index, label id) fixups for forward references
    fixups: Vec<(usize, usize)>,
    next_reg: u8,
}

impl Asm {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        Asm { name: name.into(), ops: Vec::new(), labels: Vec::new(), fixups: Vec::new(), next_reg: 0 }
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    ///
    /// Panics when all 32 registers are taken.
    pub fn reg(&mut self) -> Reg {
        assert!((self.next_reg as usize) < NUM_REGS, "out of registers");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates an unbound label for forward branches.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.ops.len() as u32);
    }

    /// Creates a label bound to the current position (for backward
    /// branches).
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn push_branch(&mut self, label: Label, make: impl FnOnce(u32) -> Op) {
        match self.labels[label.0] {
            Some(t) => self.push(make(t)),
            None => {
                self.fixups.push((self.ops.len(), label.0));
                self.push(make(0));
            }
        }
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: u64) {
        self.push(Op::Li(rd, imm));
    }

    /// `rd = rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.push(Op::Mov(rd, rs));
    }

    /// `rd = ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.push(Op::Add(rd, ra, rb));
    }

    /// `rd = ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.push(Op::AddI(rd, ra, imm));
    }

    /// `rd = ra - rb`
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.push(Op::Sub(rd, ra, rb));
    }

    /// `rd = ra * rb`
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.push(Op::Mul(rd, ra, rb));
    }

    /// `rd = ra & rb`
    pub fn and(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.push(Op::And(rd, ra, rb));
    }

    /// `rd = ra | rb`
    pub fn or(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.push(Op::Or(rd, ra, rb));
    }

    /// `rd = ra ^ rb`
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.push(Op::Xor(rd, ra, rb));
    }

    /// `rd = ra << sh`
    pub fn shli(&mut self, rd: Reg, ra: Reg, sh: u8) {
        self.push(Op::ShlI(rd, ra, sh));
    }

    /// `rd = ra >> sh`
    pub fn shri(&mut self, rd: Reg, ra: Reg, sh: u8) {
        self.push(Op::ShrI(rd, ra, sh));
    }

    /// `rd = MEM[ra + off]`
    pub fn load(&mut self, rd: Reg, ra: Reg, off: i64) {
        self.push(Op::Load(rd, ra, off));
    }

    /// `MEM[ra + off] = rs`
    pub fn store(&mut self, rs: Reg, ra: Reg, off: i64) {
        self.push(Op::Store(rs, ra, off));
    }

    /// `rd = MEM[ra + off]`, link set.
    pub fn ll(&mut self, rd: Reg, ra: Reg, off: i64) {
        self.push(Op::LoadLinked(rd, ra, off));
    }

    /// `flag = try { MEM[ra + off] = rs }`
    pub fn sc(&mut self, flag: Reg, rs: Reg, ra: Reg, off: i64) {
        self.push(Op::StoreCond(flag, rs, ra, off));
    }

    /// Branch if equal.
    pub fn beq(&mut self, ra: Reg, rb: Reg, l: Label) {
        self.push_branch(l, |t| Op::Beq(ra, rb, t));
    }

    /// Branch if not equal.
    pub fn bne(&mut self, ra: Reg, rb: Reg, l: Label) {
        self.push_branch(l, |t| Op::Bne(ra, rb, t));
    }

    /// Branch if less than (unsigned).
    pub fn blt(&mut self, ra: Reg, rb: Reg, l: Label) {
        self.push_branch(l, |t| Op::Blt(ra, rb, t));
    }

    /// Branch if greater or equal (unsigned).
    pub fn bge(&mut self, ra: Reg, rb: Reg, l: Label) {
        self.push_branch(l, |t| Op::Bge(ra, rb, t));
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, l: Label) {
        self.push_branch(l, Op::Jmp);
    }

    /// Fixed compute delay.
    pub fn delay(&mut self, cycles: u32) {
        self.push(Op::Delay(cycles));
    }

    /// Uniform random compute delay in `[min, max]`.
    pub fn rand_delay(&mut self, min: u32, max: u32) {
        assert!(min <= max, "invalid delay range");
        self.push(Op::RandDelay(min, max));
    }

    /// Non-undoable operation.
    pub fn io(&mut self) {
        self.push(Op::Io);
    }

    /// Memory fence.
    pub fn fence(&mut self) {
        self.push(Op::Fence);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.push(Op::Nop);
    }

    /// Thread end.
    pub fn done(&mut self) {
        self.push(Op::Done);
    }

    /// Current instruction count (next op's index).
    pub fn position(&self) -> usize {
        self.ops.len()
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn finish(mut self) -> Program {
        for (op_idx, label_id) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label_id]
                .unwrap_or_else(|| panic!("label {label_id} referenced but never bound"));
            self.ops[op_idx] = match self.ops[op_idx] {
                Op::Beq(a, b, _) => Op::Beq(a, b, target),
                Op::Bne(a, b, _) => Op::Bne(a, b, target),
                Op::Blt(a, b, _) => Op::Blt(a, b, target),
                Op::Bge(a, b, _) => Op::Bge(a, b, target),
                Op::Jmp(_) => Op::Jmp(target),
                other => unreachable!("fixup on non-branch {other:?}"),
            };
        }
        Program::new(self.name, self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_resolves() {
        let mut a = Asm::new("t");
        let r = a.reg();
        a.li(r, 0);
        let top = a.here();
        a.nop();
        a.jmp(top);
        let p = a.finish();
        assert_eq!(p.op(2), Some(Op::Jmp(1)));
    }

    #[test]
    fn forward_branch_resolves() {
        let mut a = Asm::new("t");
        let r = a.reg();
        let end = a.label();
        a.beq(r, r, end);
        a.nop();
        a.bind(end);
        a.done();
        let p = a.finish();
        assert_eq!(p.op(0), Some(Op::Beq(Reg(0), Reg(0), 2)));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Asm::new("t");
        let l = a.label();
        a.jmp(l);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new("t");
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn register_allocation_is_sequential() {
        let mut a = Asm::new("t");
        assert_eq!(a.reg(), Reg(0));
        assert_eq!(a.reg(), Reg(1));
    }

    #[test]
    #[should_panic(expected = "out of registers")]
    fn register_exhaustion_panics() {
        let mut a = Asm::new("t");
        for _ in 0..33 {
            a.reg();
        }
    }

    #[test]
    fn position_tracks_ops() {
        let mut a = Asm::new("t");
        assert_eq!(a.position(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.position(), 2);
    }
}
