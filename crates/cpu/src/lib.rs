//! Processor model for the TLR reproduction.
//!
//! Workloads are programs in a small RISC-like instruction set
//! ([`isa::Op`]) built with the [`asm::Asm`] assembler; the in-order
//! [`core::Core`] executes them one instruction per cycle, emitting
//! memory accesses that the node's coherence controller (in
//! `tlr-core`) services.
//!
//! Synchronization uses load-linked/store-conditional, the paper's
//! primitive (Table 2). The core supports register checkpointing and
//! restoration, which SLE/TLR use for misspeculation recovery: the
//! checkpoint is taken at the eliding store-conditional, so a restart
//! naturally replays the lock-acquire sequence.
//!
//! # Example
//!
//! ```
//! use tlr_cpu::asm::Asm;
//! use tlr_cpu::isa::Reg;
//!
//! // A program that adds 2 + 3 and stores the result to address 64.
//! let mut a = Asm::new("add");
//! let (r1, r2, ra) = (Reg(1), Reg(2), Reg(3));
//! a.li(r1, 2);
//! a.li(r2, 3);
//! a.add(r1, r1, r2);
//! a.li(ra, 64);
//! a.store(r1, ra, 0);
//! a.done();
//! let program = a.finish();
//! assert_eq!(program.name(), "add");
//! ```

pub mod asm;
pub mod core;
pub mod isa;

pub use crate::core::{AccessKind, Core, CoreCheckpoint, CoreStep, MemAccess};
pub use asm::Asm;
pub use isa::{Op, Program, Reg};
