//! The simulated instruction set.
//!
//! A deliberately small RISC-like ISA: 32 integer registers, aligned
//! 64-bit loads and stores, load-linked/store-conditional (the
//! paper's synchronization primitive, Table 2), branches, and a few
//! simulation pseudo-ops ([`Op::Delay`], [`Op::RandDelay`] for the
//! fairness methodology of §5.1, [`Op::Io`] for operations that
//! cannot be undone, §2.2).

use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// A register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Validates the register index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn index(self) -> usize {
        assert!((self.0 as usize) < NUM_REGS, "register {self} out of range");
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One instruction. Branch targets are absolute instruction indices
/// (the assembler resolves labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `rd = imm`
    Li(Reg, u64),
    /// `rd = rs`
    Mov(Reg, Reg),
    /// `rd = ra + rb`
    Add(Reg, Reg, Reg),
    /// `rd = ra + imm`
    AddI(Reg, Reg, i64),
    /// `rd = ra - rb`
    Sub(Reg, Reg, Reg),
    /// `rd = ra * rb` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `rd = ra & rb`
    And(Reg, Reg, Reg),
    /// `rd = ra | rb`
    Or(Reg, Reg, Reg),
    /// `rd = ra ^ rb`
    Xor(Reg, Reg, Reg),
    /// `rd = ra << sh`
    ShlI(Reg, Reg, u8),
    /// `rd = ra >> sh` (logical)
    ShrI(Reg, Reg, u8),
    /// `rd = MEM[ra + off]`
    Load(Reg, Reg, i64),
    /// `MEM[ra + off] = rs` — `Store(rs, ra, off)`
    Store(Reg, Reg, i64),
    /// `rd = MEM[ra + off]`, setting the link register.
    LoadLinked(Reg, Reg, i64),
    /// `flag = try { MEM[ra + off] = rs }` — `StoreCond(flag, rs, ra, off)`.
    /// `flag` is 1 on success, 0 on failure.
    StoreCond(Reg, Reg, Reg, i64),
    /// Branch to `target` if `ra == rb`.
    Beq(Reg, Reg, u32),
    /// Branch to `target` if `ra != rb`.
    Bne(Reg, Reg, u32),
    /// Branch to `target` if `ra < rb` (unsigned).
    Blt(Reg, Reg, u32),
    /// Branch to `target` if `ra >= rb` (unsigned).
    Bge(Reg, Reg, u32),
    /// Unconditional branch.
    Jmp(u32),
    /// Consume `n` cycles of computation.
    Delay(u32),
    /// Consume a uniformly random number of cycles in `[min, max]`
    /// (the post-release fairness delay of §5.1).
    RandDelay(u32, u32),
    /// An operation that cannot be undone (e.g. I/O): forces TLR to
    /// fall back to lock acquisition when executed speculatively.
    Io,
    /// Memory fence: drains the store buffer.
    Fence,
    /// No operation.
    Nop,
    /// Thread finished.
    Done,
}

impl Op {
    /// Whether this instruction performs a memory access the
    /// coherence controller must service.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Op::Load(..) | Op::Store(..) | Op::LoadLinked(..) | Op::StoreCond(..) | Op::Fence
        )
    }
}

/// An assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    ops: Vec<Op>,
}

impl Program {
    /// Creates a program from resolved instructions.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range — the assembler
    /// never produces such programs; this guards hand-built vectors.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        let len = ops.len() as u32;
        for (i, op) in ops.iter().enumerate() {
            let target = match *op {
                Op::Beq(_, _, t) | Op::Bne(_, _, t) | Op::Blt(_, _, t) | Op::Bge(_, _, t)
                | Op::Jmp(t) => Some(t),
                _ => None,
            };
            if let Some(t) = target {
                assert!(t < len, "instruction {i}: branch target {t} out of range ({len} ops)");
            }
        }
        Program { name: name.into(), ops }
    }

    /// The program's name (used in traces and panics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn op(&self, pc: u32) -> Option<Op> {
        self.ops.get(pc as usize).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All instructions.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_op_classification() {
        assert!(Op::Load(Reg(0), Reg(1), 0).is_memory());
        assert!(Op::Store(Reg(0), Reg(1), 0).is_memory());
        assert!(Op::LoadLinked(Reg(0), Reg(1), 0).is_memory());
        assert!(Op::StoreCond(Reg(0), Reg(1), Reg(2), 0).is_memory());
        assert!(Op::Fence.is_memory());
        assert!(!Op::Add(Reg(0), Reg(1), Reg(2)).is_memory());
        assert!(!Op::Done.is_memory());
    }

    #[test]
    fn program_lookup() {
        let p = Program::new("t", vec![Op::Nop, Op::Done]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.op(0), Some(Op::Nop));
        assert_eq!(p.op(1), Some(Op::Done));
        assert_eq!(p.op(2), None);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "branch target")]
    fn out_of_range_branch_rejected() {
        Program::new("bad", vec![Op::Jmp(5)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        Reg(32).index();
    }

    #[test]
    fn display() {
        assert_eq!(Reg(7).to_string(), "r7");
    }
}
