//! The in-order processor core.
//!
//! Executes one instruction per cycle; ALU operations complete
//! immediately, memory operations are handed to the node's coherence
//! controller as [`MemAccess`]es and block the core until completed
//! (stores usually complete in one cycle by entering the store
//! buffer). The core supports checkpoint/restore of its architectural
//! state, which SLE/TLR use for misspeculation recovery (§2.2:
//! "The processor register state is saved for recovery in the event
//! of a misspeculation").
//!
//! This is a simplification of the paper's 8-wide out-of-order core
//! (see `DESIGN.md`): all four evaluated schemes run on the identical
//! core model, preserving the relative results.

use tlr_mem::addr::Addr;
use tlr_sim::rng::SimRng;

use crate::isa::{Op, Program, Reg, NUM_REGS};

/// The kind of a memory access emitted by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load into `dst`.
    Load {
        /// Destination register.
        dst: Reg,
    },
    /// A store of `val`.
    Store {
        /// The value to store.
        val: u64,
    },
    /// A load-linked into `dst`.
    LoadLinked {
        /// Destination register.
        dst: Reg,
    },
    /// A store-conditional of `val`; `flag` receives 1/0.
    StoreCond {
        /// The value to store on success.
        val: u64,
        /// Success flag destination.
        flag: Reg,
    },
    /// A memory fence (drain the store buffer). Carries no address.
    Fence,
}

impl AccessKind {
    /// Whether the access writes memory.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store { .. } | AccessKind::StoreCond { .. })
    }
}

/// A memory access the coherence controller must service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// What to do.
    pub kind: AccessKind,
    /// Target address (unused for `Fence`).
    pub addr: Addr,
    /// The program counter of the instruction, used by the PC-indexed
    /// predictors (SLE silent store-pair, §3.1.2 read-modify-write).
    pub pc: u32,
}

/// What the core did this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStep {
    /// Executed internal work (ALU op, delay cycle).
    Busy,
    /// Is blocked waiting for an earlier access/IO to complete.
    Waiting,
    /// Issued a memory access; the core is now blocked until the
    /// matching `complete_*` call.
    Access(MemAccess),
    /// Reached an [`Op::Io`]: the controller decides (fall back if
    /// speculating) and then calls [`Core::complete_io`].
    Io,
    /// The program has finished.
    Done,
}

/// A saved architectural state for misspeculation recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreCheckpoint {
    regs: [u64; NUM_REGS],
    pc: u32,
}

impl CoreCheckpoint {
    /// The checkpointed program counter (points at the elided
    /// store-conditional).
    pub fn pc(&self) -> u32 {
        self.pc
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ready,
    Delaying(u64),
    Blocked,
    Done,
}

/// The in-order core.
#[derive(Debug, Clone)]
pub struct Core {
    regs: [u64; NUM_REGS],
    pc: u32,
    program: std::sync::Arc<Program>,
    state: State,
    pending: Option<MemAccess>,
    /// Line address the link register monitors, if valid.
    link: Option<tlr_mem::addr::LineAddr>,
    rng: SimRng,
    /// Dynamic instructions executed (including squashed re-runs).
    pub instructions: u64,
}

impl Core {
    /// Creates a core executing `program` with the given RNG stream
    /// (for [`Op::RandDelay`]).
    pub fn new(program: std::sync::Arc<Program>, rng: SimRng) -> Self {
        Core {
            regs: [0; NUM_REGS],
            pc: 0,
            program,
            state: State::Ready,
            pending: None,
            link: None,
            rng,
            instructions: 0,
        }
    }

    /// Reads a register (tests and controllers).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (used by harnesses to pass per-thread
    /// parameters).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The program this core executes (the event engine inspects it
    /// for fast-forwardable wait loops).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Whether the program has finished.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Whether the core is blocked on an access.
    pub fn is_blocked(&self) -> bool {
        self.state == State::Blocked
    }

    /// Whether the core will fetch a new instruction next tick (not
    /// blocked, delaying, or done).
    pub fn is_ready(&self) -> bool {
        self.state == State::Ready
    }

    /// Applies the net effect of `instructions` already-simulated
    /// instructions ending at `pc`, without executing them. The
    /// event engine's spin fast-forward uses this to replay a stable
    /// `load; branch` wait loop arithmetically; the caller must have
    /// proven the skipped instructions change no architectural state
    /// other than the instruction count and the program counter.
    ///
    /// # Panics
    ///
    /// Panics if the core is not ready (a blocked, delaying, or done
    /// core cannot have been executing a loop).
    pub fn fast_forward(&mut self, instructions: u64, pc: u32) {
        assert!(self.is_ready(), "fast-forward on a non-ready core");
        self.instructions += instructions;
        self.pc = pc;
    }

    /// The line the link register currently monitors.
    pub fn link(&self) -> Option<tlr_mem::addr::LineAddr> {
        self.link
    }

    /// Clears the link register (the controller calls this when the
    /// monitored line is invalidated or evicted).
    pub fn clear_link(&mut self) {
        self.link = None;
    }

    /// Captures the architectural state for misspeculation recovery.
    /// Taken when an elision begins, with `pc` still pointing at the
    /// eliding store-conditional, so a restore replays the acquire.
    pub fn checkpoint(&self) -> CoreCheckpoint {
        CoreCheckpoint { regs: self.regs, pc: self.pc }
    }

    /// Restores a checkpoint: registers and pc are rolled back, any
    /// blocked access is squashed, and the link register is cleared.
    pub fn restore(&mut self, cp: &CoreCheckpoint) {
        self.regs = cp.regs;
        self.pc = cp.pc;
        self.state = State::Ready;
        self.pending = None;
        self.link = None;
    }

    /// Executes one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the program falls off its end without a
    /// [`Op::Done`], or on a store-conditional whose pending access
    /// protocol is violated — both indicate workload bugs.
    pub fn tick(&mut self) -> CoreStep {
        match self.state {
            State::Done => return CoreStep::Done,
            State::Blocked => return CoreStep::Waiting,
            State::Delaying(left) => {
                self.state = if left <= 1 { State::Ready } else { State::Delaying(left - 1) };
                return CoreStep::Busy;
            }
            State::Ready => {}
        }
        let op = self
            .program
            .op(self.pc)
            .unwrap_or_else(|| panic!("{}: pc {} past end without Done", self.program.name(), self.pc));
        self.instructions += 1;
        let pc = self.pc;
        match op {
            Op::Li(rd, v) => {
                self.regs[rd.index()] = v;
                self.advance()
            }
            Op::Mov(rd, rs) => {
                self.regs[rd.index()] = self.regs[rs.index()];
                self.advance()
            }
            Op::Add(rd, a, b) => self.alu(rd, a, b, u64::wrapping_add),
            Op::AddI(rd, a, imm) => {
                self.regs[rd.index()] = self.regs[a.index()].wrapping_add(imm as u64);
                self.advance()
            }
            Op::Sub(rd, a, b) => self.alu(rd, a, b, u64::wrapping_sub),
            Op::Mul(rd, a, b) => self.alu(rd, a, b, u64::wrapping_mul),
            Op::And(rd, a, b) => self.alu(rd, a, b, |x, y| x & y),
            Op::Or(rd, a, b) => self.alu(rd, a, b, |x, y| x | y),
            Op::Xor(rd, a, b) => self.alu(rd, a, b, |x, y| x ^ y),
            Op::ShlI(rd, a, sh) => {
                self.regs[rd.index()] = self.regs[a.index()] << sh;
                self.advance()
            }
            Op::ShrI(rd, a, sh) => {
                self.regs[rd.index()] = self.regs[a.index()] >> sh;
                self.advance()
            }
            Op::Load(rd, ra, off) => self.access(AccessKind::Load { dst: rd }, ra, off, pc),
            Op::Store(rs, ra, off) => {
                let val = self.regs[rs.index()];
                self.access(AccessKind::Store { val }, ra, off, pc)
            }
            Op::LoadLinked(rd, ra, off) => {
                self.access(AccessKind::LoadLinked { dst: rd }, ra, off, pc)
            }
            Op::StoreCond(flag, rs, ra, off) => {
                let val = self.regs[rs.index()];
                self.access(AccessKind::StoreCond { val, flag }, ra, off, pc)
            }
            Op::Beq(a, b, t) => self.branch(self.regs[a.index()] == self.regs[b.index()], t),
            Op::Bne(a, b, t) => self.branch(self.regs[a.index()] != self.regs[b.index()], t),
            Op::Blt(a, b, t) => self.branch(self.regs[a.index()] < self.regs[b.index()], t),
            Op::Bge(a, b, t) => self.branch(self.regs[a.index()] >= self.regs[b.index()], t),
            Op::Jmp(t) => {
                self.pc = t;
                CoreStep::Busy
            }
            Op::Delay(n) => {
                self.pc += 1;
                if n > 1 {
                    self.state = State::Delaying(n as u64 - 1);
                }
                CoreStep::Busy
            }
            Op::RandDelay(min, max) => {
                let n = self.rng.range(min as u64, max as u64);
                self.pc += 1;
                if n > 1 {
                    self.state = State::Delaying(n - 1);
                }
                CoreStep::Busy
            }
            Op::Io => {
                self.state = State::Blocked;
                self.pending = None;
                CoreStep::Io
            }
            Op::Fence => self.access(AccessKind::Fence, Reg(0), 0, pc),
            Op::Nop => self.advance(),
            Op::Done => {
                self.state = State::Done;
                CoreStep::Done
            }
        }
    }

    fn alu(&mut self, rd: Reg, a: Reg, b: Reg, f: impl FnOnce(u64, u64) -> u64) -> CoreStep {
        self.regs[rd.index()] = f(self.regs[a.index()], self.regs[b.index()]);
        self.advance()
    }

    fn advance(&mut self) -> CoreStep {
        self.pc += 1;
        CoreStep::Busy
    }

    fn branch(&mut self, taken: bool, target: u32) -> CoreStep {
        self.pc = if taken { target } else { self.pc + 1 };
        CoreStep::Busy
    }

    fn access(&mut self, kind: AccessKind, ra: Reg, off: i64, pc: u32) -> CoreStep {
        let addr = if matches!(kind, AccessKind::Fence) {
            Addr(0)
        } else {
            Addr(self.regs[ra.index()].wrapping_add(off as u64))
        };
        let acc = MemAccess { kind, addr, pc };
        self.pending = Some(acc);
        self.state = State::Blocked;
        CoreStep::Access(acc)
    }

    /// The access the core is blocked on, if any.
    pub fn pending(&self) -> Option<MemAccess> {
        self.pending
    }

    fn unblock(&mut self) {
        assert!(self.state == State::Blocked, "completion while not blocked");
        self.pending = None;
        self.state = State::Ready;
        self.pc += 1;
    }

    /// Completes a pending load (or load-linked) with `val`. For a
    /// load-linked, also arms the link register on the loaded line.
    ///
    /// # Panics
    ///
    /// Panics if the pending access is not a load.
    pub fn complete_load(&mut self, val: u64) {
        let acc = self.pending.expect("no pending access");
        match acc.kind {
            AccessKind::Load { dst } => self.regs[dst.index()] = val,
            AccessKind::LoadLinked { dst } => {
                self.regs[dst.index()] = val;
                self.link = Some(acc.addr.line());
            }
            other => panic!("complete_load on {other:?}"),
        }
        self.unblock();
    }

    /// Completes a pending store.
    ///
    /// # Panics
    ///
    /// Panics if the pending access is not a store.
    pub fn complete_store(&mut self) {
        let acc = self.pending.expect("no pending access");
        assert!(
            matches!(acc.kind, AccessKind::Store { .. }),
            "complete_store on {:?}",
            acc.kind
        );
        self.unblock();
    }

    /// Completes a pending store-conditional with its outcome,
    /// clearing the link register.
    ///
    /// # Panics
    ///
    /// Panics if the pending access is not a store-conditional.
    pub fn complete_sc(&mut self, success: bool) {
        let acc = self.pending.expect("no pending access");
        match acc.kind {
            AccessKind::StoreCond { flag, .. } => {
                self.regs[flag.index()] = success as u64;
                self.link = None;
            }
            other => panic!("complete_sc on {other:?}"),
        }
        self.unblock();
    }

    /// Completes a pending fence.
    ///
    /// # Panics
    ///
    /// Panics if the pending access is not a fence.
    pub fn complete_fence(&mut self) {
        let acc = self.pending.expect("no pending access");
        assert!(matches!(acc.kind, AccessKind::Fence), "complete_fence on {:?}", acc.kind);
        self.unblock();
    }

    /// Halts the core immediately (thread kill, §4 of the paper's
    /// stability discussion). Any pending access is discarded.
    pub fn halt(&mut self) {
        self.state = State::Done;
        self.pending = None;
        self.link = None;
    }

    /// Completes an [`Op::Io`] operation.
    pub fn complete_io(&mut self) {
        assert!(self.state == State::Blocked && self.pending.is_none(), "no pending io");
        self.state = State::Ready;
        self.pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use std::sync::Arc;

    fn run_alu(build: impl FnOnce(&mut Asm)) -> Core {
        let mut a = Asm::new("t");
        build(&mut a);
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        for _ in 0..10_000 {
            match core.tick() {
                CoreStep::Done => break,
                CoreStep::Busy => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(core.is_done());
        core
    }

    #[test]
    fn alu_ops_compute() {
        let c = run_alu(|a| {
            let (x, y, z) = (a.reg(), a.reg(), a.reg());
            a.li(x, 6);
            a.li(y, 7);
            a.mul(z, x, y);
            a.addi(z, z, 8);
            a.shri(z, z, 1);
        });
        assert_eq!(c.reg(Reg(2)), 25);
    }

    #[test]
    fn loop_terminates() {
        let c = run_alu(|a| {
            let (n, zero, acc) = (a.reg(), a.reg(), a.reg());
            a.li(n, 5);
            a.li(zero, 0);
            a.li(acc, 0);
            let top = a.here();
            a.addi(acc, acc, 2);
            a.addi(n, n, -1);
            a.bne(n, zero, top);
        });
        assert_eq!(c.reg(Reg(2)), 10);
    }

    #[test]
    fn delay_consumes_exact_cycles() {
        let mut a = Asm::new("t");
        a.delay(5);
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        let mut busy = 0;
        loop {
            match core.tick() {
                CoreStep::Busy => busy += 1,
                CoreStep::Done => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(busy, 5);
    }

    #[test]
    fn rand_delay_within_bounds() {
        for seed in 0..20 {
            let mut a = Asm::new("t");
            a.rand_delay(3, 6);
            a.done();
            let mut core = Core::new(Arc::new(a.finish()), SimRng::new(seed));
            let mut busy = 0;
            loop {
                match core.tick() {
                    CoreStep::Busy => busy += 1,
                    CoreStep::Done => break,
                    other => panic!("{other:?}"),
                }
            }
            assert!((3..=6).contains(&busy), "delay {busy} outside [3,6]");
        }
    }

    #[test]
    fn load_blocks_until_completed() {
        let mut a = Asm::new("t");
        let (rd, ra) = (a.reg(), a.reg());
        a.li(ra, 128);
        a.load(rd, ra, 8);
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        assert_eq!(core.tick(), CoreStep::Busy);
        let step = core.tick();
        let CoreStep::Access(acc) = step else { panic!("{step:?}") };
        assert_eq!(acc.addr, Addr(136));
        assert!(matches!(acc.kind, AccessKind::Load { dst } if dst == Reg(0)));
        assert_eq!(core.tick(), CoreStep::Waiting);
        assert!(core.is_blocked());
        core.complete_load(99);
        assert_eq!(core.reg(Reg(0)), 99);
        assert_eq!(core.tick(), CoreStep::Done);
    }

    #[test]
    fn ll_sets_link_and_sc_reports_flag() {
        let mut a = Asm::new("t");
        let (rd, ra, flag, val) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.li(ra, 192);
        a.li(val, 1);
        a.ll(rd, ra, 0);
        a.sc(flag, val, ra, 0);
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        core.tick();
        core.tick();
        let CoreStep::Access(_) = core.tick() else { panic!() };
        core.complete_load(0);
        assert_eq!(core.link(), Some(Addr(192).line()));
        let CoreStep::Access(acc) = core.tick() else { panic!() };
        assert!(matches!(acc.kind, AccessKind::StoreCond { val: 1, .. }));
        core.complete_sc(true);
        assert_eq!(core.reg(Reg(2)), 1);
        assert_eq!(core.link(), None, "sc clears the link");
    }

    #[test]
    fn checkpoint_restore_replays_from_sc() {
        let mut a = Asm::new("t");
        let (ra, val, flag) = (a.reg(), a.reg(), a.reg());
        a.li(ra, 64);
        a.li(val, 1);
        a.sc(flag, val, ra, 0);
        a.addi(val, val, 100);
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        core.tick();
        core.tick();
        let CoreStep::Access(acc) = core.tick() else { panic!() };
        assert_eq!(acc.pc, 2);
        let cp = core.checkpoint();
        assert_eq!(cp.pc(), 2);
        core.complete_sc(true);
        core.tick(); // the addi
        assert_eq!(core.reg(Reg(1)), 101);
        core.restore(&cp);
        assert_eq!(core.pc(), 2);
        assert_eq!(core.reg(Reg(1)), 1, "register rolled back");
        let CoreStep::Access(acc2) = core.tick() else { panic!() };
        assert_eq!(acc2.pc, 2, "re-issues the store-conditional");
    }

    #[test]
    fn io_blocks_until_completed() {
        let mut a = Asm::new("t");
        a.io();
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        assert_eq!(core.tick(), CoreStep::Io);
        assert_eq!(core.tick(), CoreStep::Waiting);
        core.complete_io();
        assert_eq!(core.tick(), CoreStep::Done);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn missing_done_panics() {
        let mut a = Asm::new("t");
        a.nop();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(1));
        core.tick();
        core.tick();
    }

    #[test]
    fn instruction_count_tracks_dynamic_ops() {
        let c = run_alu(|a| {
            let r = a.reg();
            a.li(r, 1);
            a.nop();
        });
        // li + nop + done
        assert_eq!(c.instructions, 3);
    }
}
