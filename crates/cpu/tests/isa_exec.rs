//! Exhaustive execution tests for every ISA operation.

use std::sync::Arc;

use tlr_cpu::{Asm, Core, CoreStep, Reg};
use tlr_sim::SimRng;

fn run(build: impl FnOnce(&mut Asm)) -> Core {
    let mut a = Asm::new("isa");
    build(&mut a);
    a.done();
    let mut core = Core::new(Arc::new(a.finish()), SimRng::new(7));
    for _ in 0..100_000 {
        match core.tick() {
            CoreStep::Done => return core,
            CoreStep::Busy => {}
            other => panic!("memory-free program hit {other:?}"),
        }
    }
    panic!("program did not finish");
}

#[test]
fn mov_copies() {
    let c = run(|a| {
        let (x, y) = (a.reg(), a.reg());
        a.li(x, 77);
        a.mov(y, x);
        a.li(x, 1);
    });
    assert_eq!(c.reg(Reg(1)), 77);
    assert_eq!(c.reg(Reg(0)), 1);
}

#[test]
fn add_sub_wrap() {
    let c = run(|a| {
        let (x, y, s, d) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.li(x, u64::MAX);
        a.li(y, 2);
        a.add(s, x, y); // wraps to 1
        a.li(x, 0);
        a.sub(d, x, y); // wraps to MAX-1
    });
    assert_eq!(c.reg(Reg(2)), 1);
    assert_eq!(c.reg(Reg(3)), u64::MAX - 1);
}

#[test]
fn addi_negative_offsets() {
    let c = run(|a| {
        let x = a.reg();
        a.li(x, 10);
        a.addi(x, x, -3);
        a.addi(x, x, -20); // wraps below zero
    });
    assert_eq!(c.reg(Reg(0)), 10u64.wrapping_sub(23));
}

#[test]
fn mul_wraps() {
    let c = run(|a| {
        let (x, y, p) = (a.reg(), a.reg(), a.reg());
        a.li(x, u64::MAX);
        a.li(y, 3);
        a.mul(p, x, y);
    });
    assert_eq!(c.reg(Reg(2)), u64::MAX.wrapping_mul(3));
}

#[test]
fn bitwise_ops() {
    let c = run(|a| {
        let (x, y, r_and, r_or, r_xor) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
        a.li(x, 0b1100);
        a.li(y, 0b1010);
        a.and(r_and, x, y);
        a.or(r_or, x, y);
        a.xor(r_xor, x, y);
    });
    assert_eq!(c.reg(Reg(2)), 0b1000);
    assert_eq!(c.reg(Reg(3)), 0b1110);
    assert_eq!(c.reg(Reg(4)), 0b0110);
}

#[test]
fn shifts() {
    let c = run(|a| {
        let (x, l, r) = (a.reg(), a.reg(), a.reg());
        a.li(x, 0x8000_0000_0000_0001);
        a.shli(l, x, 1); // MSB drops out
        a.shri(r, x, 1); // logical: zero-fill
    });
    assert_eq!(c.reg(Reg(1)), 2);
    assert_eq!(c.reg(Reg(2)), 0x4000_0000_0000_0000);
}

#[test]
fn branch_edges_unsigned() {
    // blt/bge are unsigned: MAX is not < 1.
    let c = run(|a| {
        let (x, y, out) = (a.reg(), a.reg(), a.reg());
        a.li(x, u64::MAX);
        a.li(y, 1);
        a.li(out, 0);
        let skip = a.label();
        a.blt(x, y, skip); // not taken
        a.li(out, 1);
        a.bind(skip);
        let skip2 = a.label();
        a.bge(x, y, skip2); // taken
        a.li(out, 99); // skipped
        a.bind(skip2);
    });
    assert_eq!(c.reg(Reg(2)), 1);
}

#[test]
fn beq_bne_equal_values() {
    let c = run(|a| {
        let (x, y, out) = (a.reg(), a.reg(), a.reg());
        a.li(x, 5);
        a.li(y, 5);
        a.li(out, 0);
        let t1 = a.label();
        a.beq(x, y, t1); // taken
        a.li(out, 99);
        a.bind(t1);
        let t2 = a.label();
        a.bne(x, y, t2); // not taken
        a.addi(out, out, 7);
        a.bind(t2);
    });
    assert_eq!(c.reg(Reg(2)), 7);
}

#[test]
fn nested_loops() {
    // 6 * 4 inner iterations.
    let c = run(|a| {
        let (i, j, acc, zero) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.li(zero, 0);
        a.li(acc, 0);
        a.li(i, 6);
        let outer = a.here();
        a.li(j, 4);
        let inner = a.here();
        a.addi(acc, acc, 1);
        a.addi(j, j, -1);
        a.bne(j, zero, inner);
        a.addi(i, i, -1);
        a.bne(i, zero, outer);
    });
    assert_eq!(c.reg(Reg(2)), 24);
}

#[test]
fn nop_is_inert_and_cheap() {
    let mut a = Asm::new("nops");
    for _ in 0..5 {
        a.nop();
    }
    a.done();
    let mut core = Core::new(Arc::new(a.finish()), SimRng::new(0));
    let mut cycles = 0;
    while core.tick() != CoreStep::Done {
        cycles += 1;
    }
    assert_eq!(cycles, 5, "one cycle per nop");
}

#[test]
fn delay_zero_and_one_take_one_cycle() {
    for n in [0u32, 1] {
        let mut a = Asm::new("d");
        a.delay(n);
        a.done();
        let mut core = Core::new(Arc::new(a.finish()), SimRng::new(0));
        let mut busy = 0;
        while core.tick() != CoreStep::Done {
            busy += 1;
        }
        assert_eq!(busy, 1, "Delay({n}) costs one issue cycle");
    }
}

#[test]
fn halt_stops_mid_program() {
    let mut a = Asm::new("h");
    let x = a.reg();
    a.li(x, 1);
    let top = a.here();
    a.addi(x, x, 1);
    a.jmp(top); // endless
    a.done();
    let mut core = Core::new(Arc::new(a.finish()), SimRng::new(0));
    for _ in 0..50 {
        core.tick();
    }
    assert!(!core.is_done());
    core.halt();
    assert!(core.is_done());
    assert_eq!(core.tick(), CoreStep::Done);
}
