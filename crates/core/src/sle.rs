//! Speculative Lock Elision support (Rajwar & Goodman [30], used by
//! TLR as its enabling mechanism).
//!
//! SLE identifies critical sections "by exploiting silent store-pairs:
//! a pair of store operations where the second store undoes the
//! effects of the first store" (§2.2). For a test&test&set lock the
//! first store is the successful store-conditional writing the held
//! value and the second is the ordinary store restoring the free
//! value.
//!
//! The [`StorePairPredictor`] is trained by observing actual lock
//! acquire/release executions (one un-elided execution per static lock
//! site), then predicts elision at the acquiring store-conditional's
//! PC. Repeated SLE failures at a site lower its confidence, which is
//! how plain SLE "detects frequent data conflicts, turns off
//! speculation, and falls back to the BASE scheme" (§6.2).

use tlr_mem::addr::Addr;
use tlr_sim::Cycle;

/// Reasons a transaction ends without committing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// Lost a data conflict (restart, keep timestamp under TLR).
    Conflict,
    /// A shared-state block with an access bit set was invalidated
    /// and could not be deferred (§3.1.2).
    SharerInvalidation,
    /// Another thread wrote the elided lock variable itself.
    LockWrite,
    /// Speculative buffering resources exhausted (§3.3) — fall back.
    Resource,
    /// An operation that cannot be undone (I/O) — fall back.
    Io,
    /// Elision nesting depth exceeded — fall back.
    Nesting,
    /// The thread was de-scheduled or killed (§4 stability).
    Descheduled,
    /// Annulled by the fault-injection layer (chaos runs): behaves as
    /// a conflict the node lost at an adversarially chosen cycle, so
    /// the elision is retried, never abandoned.
    Injected,
}

impl AbortKind {
    /// Whether this abort forces actually acquiring the lock rather
    /// than retrying the elision.
    pub fn forces_fallback(self) -> bool {
        matches!(self, AbortKind::Resource | AbortKind::Io | AbortKind::Nesting)
    }
}

/// One elided lock within the current transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElidedLock {
    /// Address of the lock variable.
    pub addr: Addr,
    /// The lock's free value, read by the load-linked and to be
    /// restored by the release store (making the pair silent).
    pub free_value: u64,
    /// The value the elided store-conditional would have written.
    pub held_value: u64,
    /// PC of the eliding store-conditional (predictor index).
    pub pc: u32,
    /// Whether the matching release store has been seen.
    pub closed: bool,
}

/// A candidate silent store-pair being watched during *non-elided*
/// execution, used to train the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCandidate {
    /// Address written by the atomic store.
    pub addr: Addr,
    /// Value the location held before the store.
    pub old_value: u64,
    /// PC of the store-conditional.
    pub pc: u32,
}

/// PC-indexed predictor of elidable lock acquires (Table 2: 64-entry
/// silent store-pair predictor).
#[derive(Debug, Clone)]
pub struct StorePairPredictor {
    /// Direct-mapped entries: (pc, confidence 0..=3).
    table: Vec<Option<(u32, u8)>>,
    /// Open candidates awaiting their silent second store.
    candidates: Vec<PairCandidate>,
    enabled: bool,
}

/// Maximum simultaneously watched candidates (matches the elision
/// nesting depth).
const MAX_CANDIDATES: usize = 8;

impl StorePairPredictor {
    /// Creates a predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, enabled: bool) -> Self {
        assert!(entries.is_power_of_two(), "predictor entries must be a power of two");
        StorePairPredictor { table: vec![None; entries], candidates: Vec::new(), enabled }
    }

    fn slot(&self, pc: u32) -> usize {
        pc as usize & (self.table.len() - 1)
    }

    /// Whether the store-conditional at `pc` should be elided.
    pub fn should_elide(&self, pc: u32) -> bool {
        self.enabled
            && matches!(self.table[self.slot(pc)], Some((p, conf)) if p == pc && conf >= 2)
    }

    /// Observes a *real* (non-elided) successful store-conditional
    /// that changed `addr` from `old_value`, opening a pair candidate.
    pub fn observe_atomic_store(&mut self, pc: u32, addr: Addr, old_value: u64, new_value: u64) {
        if !self.enabled || old_value == new_value {
            return;
        }
        if self.candidates.len() == MAX_CANDIDATES {
            self.candidates.remove(0);
        }
        self.candidates.push(PairCandidate { addr, old_value, pc });
    }

    /// Observes an ordinary committed store; if it silently undoes an
    /// open candidate, the candidate's PC is trained.
    pub fn observe_store(&mut self, addr: Addr, value: u64) {
        if !self.enabled {
            return;
        }
        if let Some(pos) =
            self.candidates.iter().position(|c| c.addr == addr && c.old_value == value)
        {
            let pc = self.candidates.remove(pos).pc;
            let s = self.slot(pc);
            match &mut self.table[s] {
                Some((p, conf)) if *p == pc => *conf = (*conf + 2).min(3),
                e => *e = Some((pc, 2)),
            }
        }
    }

    /// Lowers confidence after an elision at `pc` failed (SLE's
    /// adaptive fallback under frequent conflicts).
    pub fn elision_failed(&mut self, pc: u32) {
        let s = self.slot(pc);
        if let Some((p, conf)) = &mut self.table[s] {
            if *p == pc {
                *conf = conf.saturating_sub(1);
            }
        }
    }

    /// Raises confidence after a successful lock-free commit.
    pub fn elision_succeeded(&mut self, pc: u32) {
        let s = self.slot(pc);
        match &mut self.table[s] {
            Some((p, conf)) if *p == pc => *conf = (*conf + 1).min(3),
            _ => {}
        }
    }

    /// Discards open pair candidates (e.g. on a context switch).
    pub fn clear_candidates(&mut self) {
        self.candidates.clear();
    }
}

/// The state of one in-flight lock-free transaction.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Core checkpoint for misspeculation recovery.
    pub checkpoint: tlr_cpu::CoreCheckpoint,
    /// Stack of elided locks (outermost first).
    pub elided: Vec<ElidedLock>,
    /// Whether the transaction has entered its commit phase (all
    /// pairs closed; waiting for write-buffer lines to be writable).
    pub committing: bool,
    /// Cycle the transaction (first attempt) started.
    pub started_at: Cycle,
    /// Cycle the commit phase was entered, once `committing` is set
    /// (observability: commit latency = commit cycle − this).
    pub commit_entered_at: Option<Cycle>,
    /// Number of conflict-induced restarts so far (the timestamp is
    /// retained across these).
    pub restarts: u32,
    /// Lazy-subscription flag: an elided lock line was invalidated (or
    /// supplied away) mid-transaction instead of aborting eagerly; the
    /// commit must re-fetch and re-check every elided lock word before
    /// it may proceed. Only ever set by the lazy-subscription policy.
    pub lock_recheck: bool,
}

impl Txn {
    /// Starts a transaction at the first elided lock.
    pub fn new(checkpoint: tlr_cpu::CoreCheckpoint, first: ElidedLock, now: Cycle) -> Self {
        Txn {
            checkpoint,
            elided: vec![first],
            committing: false,
            started_at: now,
            commit_entered_at: None,
            restarts: 0,
            lock_recheck: false,
        }
    }

    /// Whether a store of `value` to `addr` is the release store of an
    /// open elided lock; if so marks it closed and returns `true`.
    pub fn try_close(&mut self, addr: Addr, value: u64) -> bool {
        if let Some(e) = self
            .elided
            .iter_mut()
            .rev()
            .find(|e| !e.closed && e.addr == addr && e.free_value == value)
        {
            e.closed = true;
            true
        } else {
            false
        }
    }

    /// Whether `addr` is one of the currently *open* elided locks.
    pub fn is_open_lock(&self, addr: Addr) -> bool {
        self.elided.iter().any(|e| !e.closed && e.addr == addr)
    }

    /// Whether every elided pair has been closed (commit may begin).
    pub fn all_closed(&self) -> bool {
        self.elided.iter().all(|e| e.closed)
    }

    /// Current open nesting depth.
    pub fn open_depth(&self) -> usize {
        self.elided.iter().filter(|e| !e.closed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut StorePairPredictor, pc: u32, addr: Addr) {
        p.observe_atomic_store(pc, addr, 0, 1);
        p.observe_store(addr, 0);
    }

    #[test]
    fn predictor_trains_on_silent_pair() {
        let mut p = StorePairPredictor::new(64, true);
        assert!(!p.should_elide(10));
        train(&mut p, 10, Addr(64));
        assert!(p.should_elide(10));
    }

    #[test]
    fn non_silent_store_does_not_train() {
        let mut p = StorePairPredictor::new(64, true);
        p.observe_atomic_store(10, Addr(64), 0, 1);
        p.observe_store(Addr(64), 7); // writes a third value
        assert!(!p.should_elide(10));
    }

    #[test]
    fn unchanged_atomic_store_is_not_a_pair_start() {
        let mut p = StorePairPredictor::new(64, true);
        p.observe_atomic_store(10, Addr(64), 1, 1);
        p.observe_store(Addr(64), 1);
        assert!(!p.should_elide(10));
    }

    #[test]
    fn failures_decay_confidence_then_retrain() {
        let mut p = StorePairPredictor::new(64, true);
        train(&mut p, 10, Addr(64));
        p.elision_failed(10);
        assert!(!p.should_elide(10), "confidence dropped below threshold");
        p.elision_succeeded(10); // e.g. a later fallback-free run
        assert!(p.should_elide(10));
    }

    #[test]
    fn disabled_predictor_inert() {
        let mut p = StorePairPredictor::new(64, false);
        train(&mut p, 10, Addr(64));
        assert!(!p.should_elide(10));
    }

    #[test]
    fn candidate_buffer_bounded() {
        let mut p = StorePairPredictor::new(64, true);
        for i in 0..(MAX_CANDIDATES as u32 + 4) {
            p.observe_atomic_store(i, Addr(64 * (i as u64 + 1)), 0, 1);
        }
        // Oldest candidates dropped; the newest still trains.
        p.observe_store(Addr(64 * (MAX_CANDIDATES as u64 + 4)), 0);
        assert!(p.should_elide(MAX_CANDIDATES as u32 + 3));
    }

    #[test]
    fn abort_kinds_fallback_classification() {
        assert!(!AbortKind::Conflict.forces_fallback());
        assert!(!AbortKind::LockWrite.forces_fallback());
        assert!(!AbortKind::SharerInvalidation.forces_fallback());
        assert!(AbortKind::Resource.forces_fallback());
        assert!(AbortKind::Io.forces_fallback());
        assert!(AbortKind::Nesting.forces_fallback());
        assert!(!AbortKind::Injected.forces_fallback(), "chaos aborts must retry, not fall back");
    }

    fn mk_lock(addr: u64, pc: u32) -> ElidedLock {
        ElidedLock { addr: Addr(addr), free_value: 0, held_value: 1, pc, closed: false }
    }

    #[test]
    fn txn_close_matches_value_and_addr() {
        let cp_src = {
            use std::sync::Arc;
            let mut a = tlr_cpu::Asm::new("t");
            a.done();
            tlr_cpu::Core::new(Arc::new(a.finish()), tlr_sim::SimRng::new(0))
        };
        let mut t = Txn::new(cp_src.checkpoint(), mk_lock(64, 1), 0);
        assert!(t.is_open_lock(Addr(64)));
        assert!(!t.try_close(Addr(64), 5), "wrong value is not the release");
        assert!(!t.try_close(Addr(128), 0), "wrong address");
        assert!(t.try_close(Addr(64), 0));
        assert!(t.all_closed());
        assert!(!t.is_open_lock(Addr(64)));
        assert!(!t.try_close(Addr(64), 0), "already closed");
    }

    #[test]
    fn txn_nesting_closes_innermost_first() {
        let cp_src = {
            use std::sync::Arc;
            let mut a = tlr_cpu::Asm::new("t");
            a.done();
            tlr_cpu::Core::new(Arc::new(a.finish()), tlr_sim::SimRng::new(0))
        };
        let mut t = Txn::new(cp_src.checkpoint(), mk_lock(64, 1), 0);
        t.elided.push(mk_lock(128, 2));
        assert_eq!(t.open_depth(), 2);
        assert!(t.try_close(Addr(128), 0));
        assert!(!t.all_closed());
        assert!(t.try_close(Addr(64), 0));
        assert!(t.all_closed());
    }
}
