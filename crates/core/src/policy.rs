//! Pluggable conflict-resolution policy (the contention-management
//! lab of ROADMAP item 5).
//!
//! The paper fixes *timestamp-order* conflict resolution (§3.1.1), but
//! its retention mechanism — deferral queues, markers, probes, NACKs —
//! is policy-agnostic. [`ConflictPolicy`] names the four decision
//! points where the machine previously hardwired
//! [`Timestamp::wins_over`](tlr_mem::timestamp::Timestamp::wins_over):
//!
//! 1. **Ordered-request refusal** ([`ConflictPolicy::nack_requester`])
//!    — at the bus ordering point under NACK retention, does the
//!    owner annul the incoming request?
//! 2. **Deferral-time retention**
//!    ([`ConflictPolicy::holder_retains`]) — at the owner holding the
//!    data, is the conflicting request deferred (win) or serviced
//!    with a restart (loss)?
//! 3. **Probe win/lose** ([`ConflictPolicy::challenger_preempts`] and
//!    [`ConflictPolicy::outranks`]) — does an incoming conflict
//!    priority force a pending holder to yield, and which of several
//!    queued challengers is forwarded upstream?
//! 4. **Retry pacing** ([`ConflictPolicy::retry_pacing`]) — how long
//!    a NACKed requester waits before re-arbitrating, and whether it
//!    restarts its own transaction to break a potential cycle.
//!
//! Every comparison takes [`Prio`] values — the paper's timestamp plus
//! a contention-manager credit — so policies that rank by something
//! other than age (karma) ride the same wires.
//!
//! # Liveness analysis (see DESIGN.md §15 for the long form)
//!
//! *Timestamp* ([`TimestampOrder`]): the paper's argument — timestamps
//! are a total order over live transactions, retained across restarts,
//! so waits-for cycles are impossible and the oldest transaction is
//! never aborted (livelock-free, starvation-free).
//!
//! *Karma* ([`KarmaSize`]): priority = the largest footprint any
//! aborted attempt reached, timestamp tiebreak. The credit is
//! deliberately **constant within an attempt** (updated only *at*
//! abort): a time-varying footprint would let two nodes each rank
//! above the other on different comparisons mid-flight, and mutual
//! deferral is a deadlock the cycle budget would report as livelock.
//! And it is a **max, not a running sum**: a sum grows without bound,
//! so the loser of every round comes back outranking the winner and
//! two symmetric contenders flip priority and kill each other forever
//! (observed on the linked-list workload at small processor counts).
//! A max is bounded by the transaction's own footprint, so it
//! saturates; once saturated, (karma desc, timestamp) is a *fixed*
//! total order over the contenders and the paper's progress argument
//! goes through unchanged.
//!
//! *Backoff* ([`SeededBackoff`]): requester-always-loses cannot defer
//! (two holders deferring each other would deadlock) and cannot purely
//! NACK (two requesters NACKing each other's misses cross-retry
//! forever), so it forces NACK retention, never retains at deferral
//! time once a conflict slips past the ordering point, and paces
//! retries with a salted, seeded exponential delay plus a
//! self-restart after repeated refusals — probabilistic cycle
//! breaking. It is *not* starvation-free by construction; the fault
//! matrix's cycle-budget progress check adjudicates it empirically.
//!
//! *Lazy subscription* ([`LazySubscription`]): identical to timestamp
//! order for *data* conflicts; only the elided **lock lines** change
//! behavior — a write to the lock no longer aborts eagerly, the
//! transaction instead re-fetches and re-checks every elided lock word
//! at commit (Dice et al.'s lazy-subscription SLE, made safe here by
//! keeping data conflicts eagerly resolved). Safety is adjudicated by
//! the serializability oracle.

use tlr_mem::timestamp::Prio;
use tlr_sim::config::{PolicyKind, RetentionPolicy};
use tlr_sim::SimRng;

/// What a NACKed requester does when its backoff is being scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPacing {
    /// Re-arbitrate for the bus after `delay` cycles.
    Retry {
        /// Cycles to wait before re-issuing the request.
        delay: u64,
    },
    /// Re-arbitrate after `delay` cycles *and* abort the requester's
    /// own transaction now (backoff's probabilistic cycle breaker:
    /// after repeated refusals the loser restarts from scratch, so two
    /// mutually-refusing transactions eventually desynchronize).
    Restart {
        /// Cycles to wait before re-issuing the request.
        delay: u64,
    },
}

/// Deterministic inputs available to retry pacing. Everything is
/// derived from simulation state — no wall clock, no global RNG — so
/// both engines compute identical schedules.
#[derive(Debug, Clone, Copy)]
pub struct RetryEnv {
    /// The machine seed (`MachineConfig::seed`).
    pub seed: u64,
    /// The NACKed requester.
    pub node: usize,
    /// The contested line address.
    pub line: u64,
    /// How many times this MSHR entry has been NACKed (≥ 1 on the
    /// first call; survives transaction aborts).
    pub attempt: u32,
    /// The configured data-network latency (the legacy backoff base).
    pub base: u64,
}

/// A conflict-resolution policy: pure decision logic, no state. The
/// machine keeps one `&'static` instance and consults it at every
/// decision point; all state a policy needs (karma credits, retry
/// counts, the lazy-subscription flag) lives in the node/MSHR/message
/// structures and is threaded in as [`Prio`] values or via
/// [`RetryEnv`].
pub trait ConflictPolicy: Sync + std::fmt::Debug {
    /// Which [`PolicyKind`] this implementation realizes.
    fn kind(&self) -> PolicyKind;

    /// Deferral-time retention: does the holder (`ours`) retain the
    /// block against the conflicting request (`theirs`), deferring its
    /// response until commit? A `false` is a loss: service and
    /// restart.
    fn holder_retains(&self, ours: Prio, theirs: Prio, bits: u32) -> bool;

    /// Order-point refusal under NACK retention: does the owner
    /// (`ours`) annul the incoming request (`theirs`)? Defaults to the
    /// deferral-time decision.
    fn nack_requester(&self, ours: Prio, theirs: Prio, bits: u32) -> bool {
        self.holder_retains(ours, theirs, bits)
    }

    /// Probe side: does the conflicting priority (`theirs`, chasing
    /// the data from downstream) force a node ranked `ours` to yield /
    /// propagate the probe?
    fn challenger_preempts(&self, theirs: Prio, ours: Prio, bits: u32) -> bool;

    /// Arbitration among queued challengers when at most one probe is
    /// forwarded upstream: is `a` ranked strictly above `b`?
    fn outranks(&self, a: Prio, b: Prio, bits: u32) -> bool;

    /// §3.2 enforcement before a new transactional miss: does the
    /// deferred entry (`theirs`) oblige the holder (`ours`) to lose
    /// now? Defaults to the probe-side comparison.
    fn deferred_blocks_miss(&self, theirs: Prio, ours: Prio, bits: u32) -> bool {
        self.challenger_preempts(theirs, ours, bits)
    }

    /// The retention mechanism actually run, given the configured one.
    /// Backoff forces NACK retention (deferral under
    /// requester-always-loses deadlocks); every other policy honours
    /// the configuration.
    fn effective_retention(&self, configured: RetentionPolicy) -> RetentionPolicy {
        configured
    }

    /// Pacing for a NACKed request. The default reproduces the legacy
    /// schedule byte-for-byte: `base + rng.below(32)` drawn from the
    /// machine RNG.
    fn retry_pacing(&self, env: &RetryEnv, rng: &mut SimRng) -> RetryPacing {
        let _ = env.attempt;
        RetryPacing::Retry { delay: env.base + rng.below(32) }
    }

    /// Whether elided-lock lines are lazily subscribed: mid-txn lock
    /// writes set a commit-time re-check instead of aborting.
    fn lazy_subscription(&self) -> bool {
        false
    }

    /// Whether nodes accrue karma credits at abort (and attach them to
    /// outgoing requests).
    fn uses_karma(&self) -> bool {
        false
    }
}

/// The paper's §3.1.1 policy: earlier timestamp wins, everywhere.
/// Every comparison below is a literal transcription of the expression
/// previously hardwired at the corresponding `machine.rs` site, so the
/// default policy is byte-identical to the pre-trait machine.
#[derive(Debug)]
pub struct TimestampOrder;

impl ConflictPolicy for TimestampOrder {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Timestamp
    }

    fn holder_retains(&self, ours: Prio, theirs: Prio, bits: u32) -> bool {
        ours.ts.wins_over(theirs.ts, bits)
    }

    fn challenger_preempts(&self, theirs: Prio, ours: Prio, bits: u32) -> bool {
        theirs.ts.wins_over(ours.ts, bits)
    }

    fn outranks(&self, a: Prio, b: Prio, bits: u32) -> bool {
        a.ts.wins_over(b.ts, bits)
    }
}

/// Requester-always-loses with seeded exponential backoff.
///
/// The holder refuses every conflicting request at the bus ordering
/// point (NACK retention is forced); the refused requester waits
/// `base + uniform(32 << min(attempt, 6))` cycles — drawn from its own
/// salted [`SimRng`], so the schedule is deterministic per
/// (seed, node, line, attempt) and decorrelated across contenders —
/// and after [`SeededBackoff::RESTART_AFTER`] consecutive refusals it
/// also aborts its own transaction, the probabilistic cycle breaker.
#[derive(Debug)]
pub struct SeededBackoff;

impl SeededBackoff {
    /// Refusals tolerated before the requester restarts itself.
    pub const RESTART_AFTER: u32 = 4;

    /// Largest exponent of the delay window (`32 << 6` = 2048 cycles).
    pub const MAX_SHIFT: u32 = 6;
}

impl ConflictPolicy for SeededBackoff {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Backoff
    }

    /// A conflict that slips past the ordering point (e.g. a request
    /// queued behind a miss whose holder only later became
    /// transactional) must not be deferred: two holders deferring each
    /// other under holder-always-wins is a deadlock. Mirroring stock
    /// NACK-retention semantics at snoop time, the holder loses.
    fn holder_retains(&self, _ours: Prio, _theirs: Prio, _bits: u32) -> bool {
        false
    }

    /// At the ordering point the holder always refuses.
    fn nack_requester(&self, _ours: Prio, _theirs: Prio, _bits: u32) -> bool {
        true
    }

    /// No probe ever needs to travel: holders never yield to probes.
    fn challenger_preempts(&self, _theirs: Prio, _ours: Prio, _bits: u32) -> bool {
        false
    }

    fn outranks(&self, a: Prio, b: Prio, bits: u32) -> bool {
        a.ts.wins_over(b.ts, bits)
    }

    fn effective_retention(&self, _configured: RetentionPolicy) -> RetentionPolicy {
        RetentionPolicy::Nack
    }

    fn retry_pacing(&self, env: &RetryEnv, _rng: &mut SimRng) -> RetryPacing {
        // Salted draw: independent of the machine RNG stream, distinct
        // per (seed, node, line, attempt) so simultaneous losers
        // desynchronize instead of colliding again.
        let salt = env
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (env.node as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ env.line.wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ (u64::from(env.attempt) << 32);
        let mut r = SimRng::new(salt);
        let window = 32u64 << env.attempt.min(Self::MAX_SHIFT);
        let delay = env.base + r.below(window);
        if env.attempt >= Self::RESTART_AFTER {
            RetryPacing::Restart { delay }
        } else {
            RetryPacing::Retry { delay }
        }
    }
}

/// Karma-style size priority: the transaction that has already wasted
/// the most speculative work wins; timestamps break ties.
///
/// The credit is the largest read+write-set footprint any of a node's
/// aborted attempts reached (a max, not a sum — see the module docs
/// for why a sum livelocks; reset at commit or fallback), attached to
/// every outgoing transactional request. Because it only changes *at*
/// abort — when all retained ownerships are released anyway — the
/// ranking is constant among concurrently live attempts, and because
/// it is bounded it saturates, which keeps the win relation a
/// consistent, eventually-fixed total order.
#[derive(Debug)]
pub struct KarmaSize;

impl KarmaSize {
    fn beats(a: Prio, b: Prio, bits: u32) -> bool {
        if a.karma != b.karma {
            a.karma > b.karma
        } else {
            a.ts.wins_over(b.ts, bits)
        }
    }
}

impl ConflictPolicy for KarmaSize {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Karma
    }

    fn holder_retains(&self, ours: Prio, theirs: Prio, bits: u32) -> bool {
        Self::beats(ours, theirs, bits)
    }

    fn challenger_preempts(&self, theirs: Prio, ours: Prio, bits: u32) -> bool {
        Self::beats(theirs, ours, bits)
    }

    fn outranks(&self, a: Prio, b: Prio, bits: u32) -> bool {
        Self::beats(a, b, bits)
    }

    fn uses_karma(&self) -> bool {
        true
    }
}

/// Lazy-subscription SLE: timestamp order for data conflicts, but
/// elided lock lines are surrendered without aborting — the commit
/// re-fetches and re-checks every elided lock word instead.
#[derive(Debug)]
pub struct LazySubscription;

impl ConflictPolicy for LazySubscription {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LazySub
    }

    fn holder_retains(&self, ours: Prio, theirs: Prio, bits: u32) -> bool {
        ours.ts.wins_over(theirs.ts, bits)
    }

    fn challenger_preempts(&self, theirs: Prio, ours: Prio, bits: u32) -> bool {
        theirs.ts.wins_over(ours.ts, bits)
    }

    fn outranks(&self, a: Prio, b: Prio, bits: u32) -> bool {
        a.ts.wins_over(b.ts, bits)
    }

    fn lazy_subscription(&self) -> bool {
        true
    }
}

/// The four built-in policies, as shared statics: policies are
/// stateless, so one instance serves every machine in the process
/// (pooled sweeps run many concurrently).
static TIMESTAMP: TimestampOrder = TimestampOrder;
static BACKOFF: SeededBackoff = SeededBackoff;
static KARMA: KarmaSize = KarmaSize;
static LAZY_SUB: LazySubscription = LazySubscription;

/// Resolves a [`PolicyKind`] to its implementation.
pub fn policy_for(kind: PolicyKind) -> &'static dyn ConflictPolicy {
    match kind {
        PolicyKind::Timestamp => &TIMESTAMP,
        PolicyKind::Backoff => &BACKOFF,
        PolicyKind::Karma => &KARMA,
        PolicyKind::LazySub => &LAZY_SUB,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_mem::timestamp::Timestamp;

    fn p(clock: u64, node: usize, karma: u32) -> Prio {
        Prio::new(Timestamp::new(clock, node), karma)
    }

    #[test]
    fn policy_for_round_trips_every_kind() {
        for k in PolicyKind::ALL {
            assert_eq!(policy_for(k).kind(), k);
        }
    }

    #[test]
    fn timestamp_order_matches_wins_over_literally() {
        let pol = policy_for(PolicyKind::Timestamp);
        for (a, b) in [(p(1, 0, 0), p(2, 1, 0)), (p(5, 3, 9), p(5, 4, 0)), (p(7, 2, 0), p(3, 1, 5))] {
            let bits = 16;
            assert_eq!(pol.holder_retains(a, b, bits), a.ts.wins_over(b.ts, bits));
            assert_eq!(pol.challenger_preempts(a, b, bits), a.ts.wins_over(b.ts, bits));
            assert_eq!(pol.outranks(a, b, bits), a.ts.wins_over(b.ts, bits));
            assert_eq!(pol.deferred_blocks_miss(a, b, bits), a.ts.wins_over(b.ts, bits));
            assert_eq!(pol.nack_requester(a, b, bits), a.ts.wins_over(b.ts, bits));
        }
        assert_eq!(pol.effective_retention(RetentionPolicy::Deferral), RetentionPolicy::Deferral);
        assert_eq!(pol.effective_retention(RetentionPolicy::Nack), RetentionPolicy::Nack);
        assert!(!pol.lazy_subscription());
        assert!(!pol.uses_karma());
    }

    #[test]
    fn timestamp_retry_pacing_is_the_legacy_draw() {
        let pol = policy_for(PolicyKind::Timestamp);
        let env = RetryEnv { seed: 42, node: 3, line: 9, attempt: 5, base: 12 };
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let got = pol.retry_pacing(&env, &mut a);
        let want = RetryPacing::Retry { delay: 12 + b.below(32) };
        assert_eq!(got, want, "must consume exactly one below(32) from the machine rng");
    }

    #[test]
    fn backoff_refuses_at_order_but_never_retains_or_probes() {
        let pol = policy_for(PolicyKind::Backoff);
        let (a, b) = (p(1, 0, 0), p(2, 1, 0));
        assert!(pol.nack_requester(a, b, 16));
        assert!(pol.nack_requester(b, a, 16), "even a younger holder refuses");
        assert!(!pol.holder_retains(a, b, 16), "escaped conflicts degrade to holder loss");
        assert!(!pol.challenger_preempts(a, b, 16));
        assert_eq!(pol.effective_retention(RetentionPolicy::Deferral), RetentionPolicy::Nack);
    }

    #[test]
    fn backoff_pacing_is_seeded_exponential_and_restarts() {
        let pol = policy_for(PolicyKind::Backoff);
        let mut rng = SimRng::new(0);
        let before = rng.below(u64::MAX);
        let mut rng2 = SimRng::new(0);
        let before2 = rng2.below(u64::MAX);
        assert_eq!(before, before2);
        // Deterministic per env, machine RNG untouched.
        let env = RetryEnv { seed: 9, node: 1, line: 64, attempt: 1, base: 10 };
        let d1 = pol.retry_pacing(&env, &mut rng);
        let d2 = pol.retry_pacing(&env, &mut rng2);
        assert_eq!(d1, d2);
        assert_eq!(rng.below(u64::MAX), rng2.below(u64::MAX), "machine rng stream untouched");
        match d1 {
            RetryPacing::Retry { delay } => assert!((10..10 + 64).contains(&delay)),
            RetryPacing::Restart { .. } => panic!("attempt 1 must not restart"),
        }
        // Window grows with attempts, capped, and late attempts restart.
        let late = RetryEnv { attempt: SeededBackoff::RESTART_AFTER, ..env };
        assert!(matches!(pol.retry_pacing(&late, &mut rng), RetryPacing::Restart { .. }));
        let huge = RetryEnv { attempt: 40, ..env };
        match pol.retry_pacing(&huge, &mut rng) {
            RetryPacing::Restart { delay } => {
                assert!(delay < 10 + (32u64 << SeededBackoff::MAX_SHIFT), "window capped");
            }
            RetryPacing::Retry { .. } => panic!("attempt 40 must restart"),
        }
    }

    #[test]
    fn karma_orders_by_credit_then_timestamp() {
        let pol = policy_for(PolicyKind::Karma);
        assert!(pol.uses_karma());
        let big = p(9, 1, 50);
        let old = p(1, 0, 2);
        assert!(pol.holder_retains(big, old, 16), "more wasted work wins despite younger ts");
        assert!(!pol.holder_retains(old, big, 16));
        assert!(pol.challenger_preempts(big, old, 16));
        // Equal credit falls back to timestamp order.
        let a = p(1, 0, 7);
        let b = p(2, 1, 7);
        assert!(pol.holder_retains(a, b, 16));
        assert!(!pol.holder_retains(b, a, 16));
        // The relation is a strict total order on distinct priorities:
        // exactly one side wins.
        for (x, y) in [(big, old), (a, b), (p(3, 0, 1), p(3, 1, 1))] {
            assert_ne!(pol.outranks(x, y, 16), pol.outranks(y, x, 16));
        }
    }

    #[test]
    fn lazy_subscription_is_timestamp_plus_lock_laziness() {
        let pol = policy_for(PolicyKind::LazySub);
        assert!(pol.lazy_subscription());
        let (a, b) = (p(1, 0, 0), p(2, 1, 0));
        assert!(pol.holder_retains(a, b, 16));
        assert!(!pol.holder_retains(b, a, 16));
        assert_eq!(pol.effective_retention(RetentionPolicy::Deferral), RetentionPolicy::Deferral);
    }
}
