//! Operating-system interaction model (§4).
//!
//! The paper's stability discussion centres on how critical sections
//! behave when the OS intervenes: "If the lock owner is de-scheduled
//! by the operating system, other threads waiting for the lock cannot
//! proceed... In high concurrency environments, all threads may wait
//! until the de-scheduled thread runs again." TLR makes the execution
//! non-blocking: "If a process is de-scheduled, a misspeculation is
//! triggered and the lock is left free with all speculative updates
//! within the critical section discarded."
//!
//! [`run_preemptive`] drives a [`Machine`] under a round-robin
//! preemptive scheduler: every quantum, one processor's thread is
//! de-scheduled for a fixed window (an OS activity burst: interrupt
//! handling, another process's timeslice) and then resumed. §3.3 also
//! notes the scheduling quantum as a resource constraint: "it must be
//! possible to execute the critical section within a single quantum"
//! for the lock-free guarantee to hold — a preempted transaction is
//! discarded and retried.

use tlr_sim::config::Engine;
use tlr_sim::{Cycle, NodeId};

use crate::machine::{Machine, SimTimeout};

/// Preemption parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preemption {
    /// Cycles between preemptions (the scheduling quantum).
    pub quantum: Cycle,
    /// Cycles a preempted thread stays off its processor.
    pub pause: Cycle,
}

impl Preemption {
    /// A quantum/pause pair.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: Cycle, pause: Cycle) -> Self {
        assert!(quantum > 0, "quantum must be non-zero");
        Preemption { quantum, pause }
    }
}

/// Statistics from a preemptive run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreemptionReport {
    /// Number of preemptions performed.
    pub preemptions: u64,
    /// Preemptions that interrupted an in-flight transaction
    /// (discarding its speculative state, §4's restartable critical
    /// sections).
    pub preempted_in_txn: u64,
}

/// Runs the machine to quiescence under round-robin preemption: every
/// `p.quantum` cycles the next processor (skipping finished threads)
/// is de-scheduled for `p.pause` cycles.
///
/// # Errors
///
/// Returns [`SimTimeout`] if the machine exceeds its cycle budget.
pub fn run_preemptive(machine: &mut Machine, p: Preemption) -> Result<PreemptionReport, SimTimeout> {
    let procs = machine.config().num_procs;
    let max_cycles = machine.config().max_cycles;
    let event_driven = machine.config().engine == Engine::EventDriven;
    let mut report = PreemptionReport::default();
    let mut next_victim: NodeId = 0;
    let mut paused: Option<(NodeId, Cycle)> = None;
    let mut next_preempt = machine.cycle() + p.quantum;
    while !machine.is_quiesced() {
        if machine.cycle() >= max_cycles {
            machine.settle_idle_charges();
            return Err(SimTimeout { cycle: machine.cycle() });
        }
        if let Some((victim, resume_at)) = paused {
            if machine.cycle() >= resume_at {
                machine.reschedule(victim);
                paused = None;
            }
        }
        if paused.is_none() && machine.cycle() >= next_preempt {
            // Pick the next unfinished thread, if any.
            let victim = (0..procs)
                .map(|k| (next_victim + k) % procs)
                .find(|&v| !machine.is_done(v));
            if let Some(v) = victim {
                report.preemptions += 1;
                if machine.in_txn(v) {
                    report.preempted_in_txn += 1;
                }
                machine.deschedule(v);
                paused = Some((v, machine.cycle() + p.pause));
                next_victim = (v + 1) % procs;
            }
            next_preempt = machine.cycle() + p.quantum;
        }
        if event_driven {
            // Event jumps must land exactly on every cycle at which
            // this loop intervenes, so bound them by the armed
            // deadline: the resume cycle while a thread is paused
            // (preemption checks are deferred until then, exactly as
            // in the stepped loop), else the next preemption boundary.
            // Each bound is strictly in the future: the checks above
            // fired and reset any that were due.
            let bound = max_cycles.min(match paused {
                Some((_, resume_at)) => resume_at,
                None => next_preempt,
            });
            machine.advance_within(bound);
        } else {
            machine.step();
        }
    }
    if let Some((victim, _)) = paused {
        machine.reschedule(victim);
    }
    machine.settle_idle_charges();
    machine.finalize_stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_parameters_validated() {
        let p = Preemption::new(1000, 200);
        assert_eq!(p.quantum, 1000);
        assert_eq!(p.pause, 200);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_quantum_rejected() {
        Preemption::new(0, 10);
    }
}
