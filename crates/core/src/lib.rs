//! Transactional Lock Removal (TLR).
//!
//! This crate implements the paper's primary contribution — Rajwar &
//! Goodman, *Transactional Lock-Free Execution of Lock-Based
//! Programs*, ASPLOS 2002 — on top of the substrate crates:
//!
//! * [`sle`] — Speculative Lock Elision: the silent store-pair
//!   predictor, elision stack and misspeculation classification;
//! * [`rmw`] — the PC-indexed read-modify-write predictor of §3.1.2;
//! * [`node`] — per-processor coherence-controller state (Figure 5);
//! * [`machine`] — the simulated multiprocessor running the TLR
//!   algorithm of Figure 3: timestamped transactional misses,
//!   deferral of later-timestamp conflicting requests, marker/probe
//!   priority propagation (§3.1.1), the single-block relaxation
//!   (§3.2), resource fallback (§3.3) and the §4 stability hooks;
//! * [`run`] — the workload harness used by tests, examples and the
//!   benchmark suite.
//!
//! # Quickstart
//!
//! ```
//! use std::collections::HashSet;
//! use std::sync::Arc;
//! use tlr_core::Machine;
//! use tlr_cpu::Asm;
//! use tlr_mem::Addr;
//! use tlr_sim::config::{MachineConfig, Scheme};
//!
//! // One processor stores 42 and reads it back.
//! let mut a = Asm::new("demo");
//! let (v, addr) = (a.reg(), a.reg());
//! a.li(v, 42);
//! a.li(addr, 0x1000);
//! a.store(v, addr, 0);
//! a.done();
//!
//! let cfg = MachineConfig::paper_default(Scheme::Tlr, 1);
//! let mut m = Machine::new(cfg, vec![Arc::new(a.finish())], HashSet::new());
//! m.run().expect("quiesces");
//! assert_eq!(m.final_word(Addr(0x1000)), 42);
//! ```

pub mod machine;
pub mod node;
pub mod os;
pub mod policy;
pub mod rmw;
pub mod run;
pub mod sle;

pub use machine::{Machine, SimTimeout};
pub use os::{run_preemptive, Preemption, PreemptionReport};
pub use policy::{
    policy_for, ConflictPolicy, KarmaSize, LazySubscription, SeededBackoff, TimestampOrder,
};
pub use rmw::RmwPredictor;
pub use run::{build_machine, run_workload, RunReport, WorkloadSpec};
pub use sle::{AbortKind, ElidedLock, StorePairPredictor, Txn};

// Re-export the timestamp types: conceptually they belong to TLR
// (§2.1.2) even though they live in `tlr-mem` so coherence messages
// can carry them.
pub use tlr_mem::timestamp::{LogicalClock, Prio, Timestamp};
