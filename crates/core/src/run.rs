//! Run harness: build a [`Machine`] from a workload description, run
//! it to quiescence, validate the final memory state, and report.
//!
//! Workloads are described by the [`WorkloadSpec`] trait (implemented
//! in `tlr-workloads`): per-processor programs, an initial memory
//! image, the set of lock addresses (for Figure 11's stall
//! attribution), and a validation function checking that the run was
//! serializable (the paper validated executions with a shadow
//! functional simulator; we check final-state invariants directly).

use std::collections::HashSet;
use std::sync::Arc;

use tlr_cpu::Program;
use tlr_mem::addr::Addr;
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_sim::prof::Profiler;
use tlr_sim::MachineStats;

use crate::machine::Machine;

/// A workload the harness can run: programs, memory image, lock set,
/// and a final-state validator.
///
/// Programs receive the [`Scheme`] because the paper's MCS
/// configuration runs a different binary (MCS queue locks) while
/// BASE/SLE/TLR share one test&test&set binary (§5).
///
/// Workloads are `Send + Sync` so sweep cells referencing one workload
/// can fan out across the [`tlr_sim::pool`] worker threads; every
/// implementation is a plain parameter struct, so this costs nothing.
pub trait WorkloadSpec: Send + Sync {
    /// Workload name (used in benchmark output).
    fn name(&self) -> &str;

    /// One program per processor.
    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>>;

    /// Initial memory image as (address, value) words.
    fn memory_image(&self) -> Vec<(Addr, u64)>;

    /// Addresses of lock variables (statistics attribution only).
    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr>;

    /// Validates the final memory state; returns a description of the
    /// violation if the run was not serializable.
    ///
    /// # Errors
    ///
    /// Returns a human-readable explanation of the first violated
    /// invariant.
    fn validate(&self, machine: &Machine) -> Result<(), String>;
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Configuration label (scheme).
    pub scheme: tlr_sim::config::Scheme,
    /// Processor count.
    pub procs: usize,
    /// Collected statistics; `stats.parallel_cycles` is the paper's
    /// wall-clock metric.
    pub stats: MachineStats,
    /// Outcome of the workload's serializability validation.
    pub validation: Result<(), String>,
    /// The run profile, when [`MachineConfig::profile`] enabled one
    /// (utilization timeline, wake-source histogram, engine
    /// self-profiling counters). `None` on unprofiled runs.
    pub profile: Option<Box<Profiler>>,
}

impl RunReport {
    /// Parallel execution cycles (the y-axis of Figures 8-10).
    pub fn cycles(&self) -> u64 {
        self.stats.parallel_cycles
    }

    /// Whether the workload's validation passed: the non-panicking
    /// sibling of [`RunReport::assert_valid`], for drivers (chaos
    /// sweeps, fuzzers) that collect failures instead of aborting.
    pub fn is_valid(&self) -> bool {
        self.validation.is_ok()
    }

    /// Panics with a diagnostic if validation failed (used by tests
    /// and benches; a failed validation means the simulated hardware
    /// broke serializability).
    pub fn assert_valid(&self) {
        if let Err(e) = &self.validation {
            panic!("{} [{} x{}]: serializability violation: {e}", self.workload, self.scheme, self.procs);
        }
    }
}

/// Builds the machine for a workload without running it (used by
/// tests that need mid-run control, e.g. the §4 stability scenarios).
pub fn build_machine(cfg: &MachineConfig, workload: &dyn WorkloadSpec) -> Machine {
    let mut machine =
        Machine::new(cfg.clone(), workload.programs(cfg.scheme), workload.lock_addrs(cfg.scheme));
    for (addr, val) in workload.memory_image() {
        machine.init_word(addr, val);
    }
    machine
}

/// Runs a workload to completion under the given configuration.
///
/// # Panics
///
/// Panics if the simulation fails to quiesce within the configured
/// cycle budget (a livelock, which TLR's guarantees rule out — so a
/// budget overrun is a simulator bug or a pathological configuration).
pub fn run_workload(cfg: &MachineConfig, workload: &dyn WorkloadSpec) -> RunReport {
    let mut machine = build_machine(cfg, workload);
    machine
        .run()
        .unwrap_or_else(|e| panic!("{} [{} x{}]: {e}", workload.name(), cfg.scheme, cfg.num_procs));
    let validation = workload.validate(&machine);
    RunReport {
        workload: workload.name().to_string(),
        scheme: cfg.scheme,
        procs: cfg.num_procs,
        stats: machine.stats().clone(),
        validation,
        profile: machine.take_profile(),
    }
}
