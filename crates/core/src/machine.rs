//! The simulated multiprocessor machine.
//!
//! Assembles N [`Node`]s (core + L1 + victim cache + buffers + TLR
//! controller), the ordered broadcast address bus, the point-to-point
//! data network, and the shared L2/memory into the target system of
//! §5.3 / Table 2, and runs the TLR algorithm of Figure 3 on top of
//! the plain MOESI protocol:
//!
//! * lock elision at predicted store-conditionals (SLE),
//! * timestamped transactional misses,
//! * deferral of later-timestamp conflicting requests at the owner,
//! * marker/probe propagation along coherence chains (§3.1.1),
//! * the §3.2 single-block timestamp relaxation,
//! * resource-exhaustion fallback to actual lock acquisition (§3.3),
//! * restartable critical sections and de-scheduling (§4).
//!
//! The machine runs under one of two engines (selected by
//! [`tlr_sim::config::Engine`]): the legacy cycle-stepped loop, which
//! ticks every component every cycle, and the default discrete-event
//! engine, which jumps the clock straight to the next scheduled wake
//! and lazily charges idle-cycle statistics. Both are fully
//! deterministic for a given configuration and seed and produce
//! byte-identical statistics and traces (see `DESIGN.md` §12).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use tlr_cpu::{AccessKind, Core, CoreStep, MemAccess, Op, Program};
use tlr_mem::addr::{Addr, LineAddr};
use tlr_mem::line::{CacheLine, Moesi};
use tlr_mem::mshr::{Intervention, MshrEntry};
use tlr_mem::msg::{BusReqKind, BusRequest, DataGrant, NetMsg};
use tlr_mem::protocol;
use tlr_mem::timestamp::{Prio, Timestamp};
use tlr_mem::{Bus, Directory, MemorySystem, Network};
use tlr_sim::config::{Engine, Interconnect, MachineConfig, UntimestampedPolicy};
use tlr_sim::fault::FaultPlan;
use tlr_sim::prof::{Gauges, Profiler, WakeSource};
use tlr_sim::trace::{Trace, TraceKind};
use tlr_sim::{Cycle, MachineStats, NodeId, SimRng};

use crate::node::{DeferredReq, Node, PendingWriteback, SnoopEvent, Wait};
use crate::policy::{policy_for, ConflictPolicy, RetryEnv, RetryPacing};
use crate::sle::{AbortKind, ElidedLock, Txn};

/// Cycles an [`tlr_cpu::Op::Io`] operation takes outside speculation.
const IO_LATENCY: u64 = 30;

/// Error returned when a run exceeds the configured cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTimeout {
    /// The cycle at which the run was abandoned.
    pub cycle: Cycle,
}

impl std::fmt::Display for SimTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation did not quiesce within {} cycles", self.cycle)
    }
}

impl std::error::Error for SimTimeout {}

/// Machine-global context threaded through the controller logic so a
/// node can be mutated while the shared structures stay reachable.
struct Ctx<'a> {
    cfg: &'a MachineConfig,
    now: Cycle,
    net: &'a mut Network<NetMsg>,
    memsys: &'a mut MemorySystem,
    bus: &'a mut Bus,
    /// The home directory, when the machine runs the directory
    /// interconnect; coherence requests then travel point-to-point to
    /// their home bank instead of arbitrating for the bus.
    dir: Option<&'a mut Directory>,
    /// The protocol-owner ledger; kept in the context for policy
    /// extensions that must follow bus order when touching it.
    #[allow(dead_code)]
    owner: &'a mut HashMap<LineAddr, NodeId>,
    stats: &'a mut MachineStats,
    trace: &'a mut Trace,
    rng: &'a mut SimRng,
    lock_addrs: &'a HashSet<Addr>,
    /// The conflict-resolution policy every decision point consults
    /// (stateless; resolved once from `cfg.policy`).
    policy: &'static dyn ConflictPolicy,
    /// Spurious-abort stream, present only on chaos runs; its own RNG,
    /// so the machine's `rng` sequences are untouched by fault draws.
    fault: Option<&'a mut FaultPlan>,
}

impl Ctx<'_> {
    fn data_latency(&mut self) -> u64 {
        self.cfg.latency.data_network + self.rng.below(self.cfg.latency_jitter + 1)
    }

    fn ts_bits(&self) -> u32 {
        self.cfg.timestamp_bits
    }

    /// Routes a coherence request to the machine's ordering fabric:
    /// bus arbitration on snooping machines, a request flight to the
    /// home bank on directory machines. The single choke point for
    /// every request issued by a node.
    fn send_req(&mut self, node: NodeId, req: BusRequest) {
        match self.dir.as_deref_mut() {
            Some(d) => d.send(self.now, req),
            None => self.bus.enqueue(node, req),
        }
    }

    /// Whether the chaos layer annuls the open transaction at this
    /// node-cycle. `false` (without advancing anything) when faults
    /// are off.
    fn fault_fires_spurious_abort(&mut self) -> bool {
        self.fault.as_mut().is_some_and(|f| f.spurious_abort_fires())
    }
}

/// Whether `TLR_DEBUG` diagnostics are enabled (checked once).
fn debug_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("TLR_DEBUG").is_some())
}

macro_rules! dbglog {
    ($($t:tt)*) => {
        if debug_enabled() { eprintln!($($t)*); }
    };
}

/// What one cycle of an idle node would have charged to its stats had
/// the cycle-stepped engine ticked it. The event engine caches this at
/// classification time and settles `charge x window` on wake, so the
/// per-node cycle breakdown stays byte-identical to the stepped run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdleCharge {
    /// No counter moves (paused nodes).
    Nothing,
    /// `done_cycles` (finished thread waiting for the others).
    Done,
    /// `data_stall_cycles`.
    DataStall,
    /// `lock_stall_cycles`.
    LockStall,
    /// `store_buffer_full_cycles`.
    SbFull,
    /// `commit_wait_cycles` (committing, write set not yet writable).
    CommitWait,
}

/// The event engine's per-node schedule state.
///
/// A node is `Active` when its next tick can make progress (execute an
/// instruction, drain a buffer, issue or retry a request, draw fault
/// randomness) and must therefore run every cycle, exactly as under
/// the cycle-stepped engine. It is `Idle` when its tick is provably a
/// pure stall-accounting no-op until some external event (a fill, a
/// snoop, a timer) arrives; such cycles are skipped and their charge
/// settled lazily. Misclassifying toward `Active` is always safe — a
/// live tick replicates the stepped engine bit for bit — so every
/// uncertain case classifies as `Active`.
#[derive(Debug, Clone, Copy)]
enum NodeSched {
    /// Ticks every cycle.
    Active,
    /// Skipped until woken; `since` is the last cycle this node ran.
    Idle {
        /// Idle charges are settled through this cycle already.
        since: Cycle,
        /// Per-cycle stat charge for the skipped window.
        charge: IdleCharge,
        /// Self-wake deadline (restart penalty, I/O completion), if
        /// any; external events may wake the node sooner.
        timer: Option<Cycle>,
    },
    /// Fast-forwarded spin loop (`load` from a resident line whose
    /// value keeps a backward branch taken): the node is executing,
    /// but every iteration's effect is a fixed counter delta, so the
    /// skipped ticks are replayed arithmetically on wake. The loop can
    /// only exit when the spun-on line changes, and any such change
    /// arrives as a snoop or delivery — a wake.
    Spin {
        /// Charges are settled through this cycle already.
        since: Cycle,
        /// The per-iteration deltas proven at detection time.
        info: SpinInfo,
    },
}

/// Per-iteration facts about a detected spin loop, captured when the
/// node enters [`NodeSched::Spin`]. See [`Machine::detect_spin`] for
/// the proof obligations.
#[derive(Debug, Clone, Copy)]
struct SpinInfo {
    /// Whether the virtual tick at `since + 1` executes the load
    /// (`true`) or the backward branch (`false`); subsequent ticks
    /// alternate.
    next_is_load: bool,
    /// The spun-on address is a lock variable: the load tick charges
    /// `lock_busy_cycles` instead of `busy_cycles`.
    is_lock: bool,
    /// The line is resident in the victim cache, so each load also
    /// counts a `victim_hits`.
    victim_hit: bool,
    /// The spun-on line, for replaying the predictor's load history.
    line: LineAddr,
    /// Program counter of the load instruction (the branch is at
    /// `load_pc + 1`).
    load_pc: u32,
}

/// Whether draining the store buffer is provably a no-op: nothing
/// buffered, or the head store's fill is already in flight (the drain
/// returns without touching the bus, caches, or RNG until that fill
/// lands — a wake event).
fn sb_drain_idle(node: &Node) -> bool {
    let Some((addr, _)) = node.sb.head() else { return true };
    let line = addr.line();
    let writable = node.line(line).is_some_and(|l| l.state.writable());
    !writable && node.mshrs.get(line).is_some()
}

/// Whether retrying pending transactional exclusive upgrades is
/// provably a no-op: every pending line is still unwritable with its
/// fill in flight, so the retry requeues them unchanged.
fn pending_x_idle(node: &Node) -> bool {
    node.txn_pending_x.iter().all(|&line| {
        !node.line(line).is_some_and(|l| l.state.writable()) && node.mshrs.get(line).is_some()
    })
}

/// The simulated multiprocessor.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    cycle: Cycle,
    nodes: Vec<Node>,
    bus: Bus,
    /// The banked home directory; `Some` only under
    /// [`Interconnect::Directory`]. The bus then stays empty for the
    /// whole run and the directory is the ordering fabric.
    dir: Option<Directory>,
    net: Network<NetMsg>,
    memsys: MemorySystem,
    /// Protocol-owner ledger: the node last granted exclusive (or
    /// clean-exclusive) ownership. Absent means memory owns the line.
    /// In the real broadcast system every snooper derives this from
    /// the observed request stream; centralizing it changes no
    /// ordering or timing (see `DESIGN.md`).
    owner: HashMap<LineAddr, NodeId>,
    stats: MachineStats,
    trace: Trace,
    rng: SimRng,
    lock_addrs: HashSet<Addr>,
    /// The conflict-resolution policy (stateless, shared static),
    /// resolved from `cfg.policy` at construction.
    policy: &'static dyn ConflictPolicy,
    /// Spurious-abort fault stream; `None` unless chaos is enabled.
    fault: Option<FaultPlan>,
    /// Snooped bus transactions awaiting their due cycle. One global
    /// queue: snoops are broadcast, so every node observes the same
    /// events at the same cycles; the per-node `supplier` designation
    /// lives in the event itself.
    snoops: VecDeque<SnoopEvent>,
    /// Event-engine schedule state per node. Stays all-`Active` under
    /// the cycle-stepped engine (and for externally stepped machines),
    /// which makes the lazy settling a no-op there.
    sched: Vec<NodeSched>,
    /// Scratch: which nodes run in the current event step.
    woken: Vec<bool>,
    /// Scratch: this cycle's network deliveries (capacity reuse).
    net_scratch: Vec<NetMsg>,
    /// Scratch: this cycle's directory-ordered requests (capacity
    /// reuse; empty on snooping machines).
    dir_scratch: Vec<BusRequest>,
    /// Scratch: burst mode's active-node set (capacity reuse).
    burst_scratch: Vec<usize>,
    /// Scratch: per-node involvement flags for the snoop being
    /// processed (capacity reuse).
    snoop_touch: Vec<bool>,
    /// Event-engine work counters (steps taken, node ticks run) for
    /// performance diagnostics. Not part of [`MachineStats`].
    engine_steps: u64,
    engine_live_ticks: u64,
    /// Engine self-profiling counters (closed-form settle and burst
    /// usage), copied into the profiler at finalize. Plain u64 adds on
    /// paths that already do bookkeeping, so they stay unconditional.
    idle_settles: u64,
    idle_settle_cycles: u64,
    spin_settles: u64,
    spin_settle_cycles: u64,
    burst_entries: u64,
    burst_cycles: u64,
    burst_ticks: u64,
    /// The profiler, present only when [`tlr_sim::prof::ProfConfig`]
    /// enables it; `None` costs one pointer test per step.
    prof: Option<Box<Profiler>>,
}

impl Machine {
    /// Builds a machine running one program per processor.
    ///
    /// `lock_addrs` is the set of lock-variable addresses, used only
    /// for the Figure 11 stall attribution — the hardware itself never
    /// consults it.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs differs from
    /// `cfg.num_procs`, or the configured line size is not 64 bytes.
    pub fn new(cfg: MachineConfig, programs: Vec<Arc<Program>>, lock_addrs: HashSet<Addr>) -> Self {
        assert_eq!(programs.len(), cfg.num_procs, "one program per processor required");
        assert_eq!(cfg.line_bytes(), tlr_mem::LINE_BYTES, "line size fixed at 64 bytes");
        assert!(
            cfg.num_procs <= cfg.interconnect.max_procs(),
            "{} processors exceed the {} interconnect's supported maximum of {} \
             (use Interconnect::Directory for larger machines)",
            cfg.num_procs,
            cfg.interconnect.label(),
            cfg.interconnect.max_procs(),
        );
        let mut rng = SimRng::new(cfg.seed);
        let nodes = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Node::new(i, Core::new(p, rng.fork(i as u64)), &cfg))
            .collect::<Vec<_>>();
        let mut stats = MachineStats::new(cfg.num_procs);
        let mut bus = Bus::new(cfg.num_procs, cfg.latency.bus_occupancy);
        let mut dir = (cfg.interconnect == Interconnect::Directory).then(|| {
            let banks = if cfg.dir_banks == 0 { cfg.num_procs } else { cfg.dir_banks };
            Directory::new(cfg.num_procs, banks, cfg.latency.bus_occupancy, cfg.req_network)
        });
        let stats_dir_banks = dir.as_ref().map_or(0, |d| d.banks());
        stats.dir.banks = stats_dir_banks as u64;
        let mut net = Network::new();
        if cfg.faults.enabled {
            bus.set_fault(cfg.faults.bus_fault());
            net.set_fault(cfg.faults.net_fault());
            if let Some(d) = &mut dir {
                // The directory's request network gets its own jitter
                // stream so the data network's draws are untouched.
                d.set_fault(cfg.faults.net_fault());
            }
            // Capacity squeezes are static configuration; record what
            // was withheld so degradation curves can report it.
            for i in 0..cfg.num_procs {
                stats.faults.victim_entries_withheld += (cfg.victim_entries
                    - cfg.faults.effective_victim_entries(i, cfg.victim_entries))
                    as u64;
                stats.faults.write_buffer_lines_withheld += (cfg.write_buffer_lines
                    - cfg.faults.effective_write_buffer_lines(i, cfg.write_buffer_lines))
                    as u64;
                stats.faults.deferral_entries_withheld += (cfg.deferred_queue_entries
                    - cfg.faults.effective_deferred_queue_entries(i, cfg.deferred_queue_entries))
                    as u64;
            }
        }
        Machine {
            bus,
            dir,
            net,
            memsys: MemorySystem::new(cfg.l2_sets, cfg.l2_ways, cfg.latency.l2, cfg.latency.memory),
            owner: HashMap::new(),
            stats,
            trace: Trace::new(),
            rng,
            lock_addrs,
            policy: policy_for(cfg.policy),
            nodes,
            cycle: 0,
            fault: cfg.faults.plan(),
            sched: vec![NodeSched::Active; cfg.num_procs],
            snoops: VecDeque::new(),
            woken: vec![false; cfg.num_procs],
            net_scratch: Vec::new(),
            dir_scratch: Vec::new(),
            burst_scratch: Vec::new(),
            snoop_touch: Vec::new(),
            engine_steps: 0,
            engine_live_ticks: 0,
            idle_settles: 0,
            idle_settle_cycles: 0,
            spin_settles: 0,
            spin_settle_cycles: 0,
            burst_entries: 0,
            burst_cycles: 0,
            burst_ticks: 0,
            prof: cfg.profile.profiler().map(|mut p| {
                p.bus_occupancy = cfg.latency.bus_occupancy;
                p.dir_banks = stats_dir_banks;
                p
            }),
            cfg,
        }
    }

    /// Writes one word of the initial memory image.
    pub fn init_word(&mut self, addr: Addr, val: u64) {
        self.memsys.init_word(addr, val);
    }

    /// Enables event tracing (used by the worked-example tests).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Enables event tracing with a bounded ring capacity (`tlr-trace`
    /// and long fuzz runs).
    pub fn enable_trace_with_capacity(&mut self, capacity: usize) {
        self.trace = Trace::enabled_with_capacity(capacity);
    }

    /// Reconstructs the transaction-span view of the event trace.
    pub fn span_log(&self) -> tlr_sim::SpanLog {
        tlr_sim::SpanLog::build(&self.trace)
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Run statistics collected so far.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Sets an initial register of one core (harnesses pass per-thread
    /// parameters this way).
    pub fn set_reg(&mut self, node: NodeId, reg: tlr_cpu::Reg, val: u64) {
        self.nodes[node].core.set_reg(reg, val);
    }

    /// Reads a register of one core (tests and demos).
    pub fn reg(&self, node: NodeId, reg: tlr_cpu::Reg) -> u64 {
        self.nodes[node].core.reg(reg)
    }

    /// Whether node `id` is currently executing a speculative
    /// lock-free transaction.
    pub fn in_txn(&self, id: NodeId) -> bool {
        self.nodes[id].txn.is_some()
    }

    /// Whether node `id`'s thread has finished.
    pub fn is_done(&self, id: NodeId) -> bool {
        self.nodes[id].core.is_done()
    }

    /// Whether every thread has finished and the memory system is
    /// idle.
    pub fn is_quiesced(&self) -> bool {
        self.nodes.iter().all(|n| {
            n.core.is_done()
                && n.sb.is_empty()
                && n.mshrs.is_empty()
                && n.pending_wb.is_empty()
                && n.deferred.is_empty()
                && n.nack_retries.is_empty()
                && n.txn.is_none()
        }) && self.bus.pending() == 0
            && self.net.is_empty()
            && self.snoops.is_empty()
            && self.dir.as_ref().is_none_or(Directory::is_empty)
    }

    /// Runs until quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimTimeout`] if the configured `max_cycles` budget is
    /// exhausted first (livelock would show up here; TLR's guarantees
    /// make that a bug, and the integration tests rely on it).
    pub fn run(&mut self) -> Result<(), SimTimeout> {
        match self.cfg.engine {
            Engine::CycleStepped => self.run_cycle_stepped(),
            Engine::EventDriven => self.run_event_driven(),
        }
    }

    /// The legacy engine: every component ticks every cycle. Kept as
    /// the in-repo oracle the event engine is differentially tested
    /// against.
    fn run_cycle_stepped(&mut self) -> Result<(), SimTimeout> {
        while !self.is_quiesced() {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimTimeout { cycle: self.cycle });
            }
            self.step();
        }
        self.finalize_stats();
        Ok(())
    }

    /// The discrete-event engine: the clock jumps straight to the next
    /// scheduled wake; skipped idle cycles are charged lazily.
    fn run_event_driven(&mut self) -> Result<(), SimTimeout> {
        while !self.is_quiesced() {
            if self.cycle >= self.cfg.max_cycles {
                // The stepped engine charged idle nodes through the
                // final cycle before giving up; settle to match.
                self.settle_idle_charges();
                return Err(SimTimeout { cycle: self.cycle });
            }
            self.advance_within(self.cfg.max_cycles);
        }
        self.settle_idle_charges();
        self.finalize_stats();
        if std::env::var_os("TLR_ENGINE_DEBUG").is_some() {
            let n = self.nodes.len() as u64;
            eprintln!(
                "[engine] cycles={} steps={} live_ticks={} (full-tick equivalent {}; \
                 step ratio {:.3}, tick ratio {:.3})",
                self.cycle,
                self.engine_steps,
                self.engine_live_ticks,
                self.cycle * n,
                self.engine_steps as f64 / self.cycle.max(1) as f64,
                self.engine_live_ticks as f64 / (self.cycle * n).max(1) as f64,
            );
        }
        Ok(())
    }

    /// One event-engine advance: jumps to the earliest scheduled wake,
    /// clamped to `bound` (external driver loops — preemption, cycle
    /// budgets — pass the next cycle at which *they* must intervene).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `bound` is not in the future.
    pub fn advance_within(&mut self, bound: Cycle) {
        debug_assert!(bound > self.cycle, "advance bound must be in the future");
        let next = self.next_event_cycle();
        let target = next.map_or(bound, |(t, _)| t.min(bound)).max(self.cycle + 1);
        if let Some(p) = self.prof.as_deref_mut() {
            p.engine.record_wake(match next {
                Some((t, src)) if t <= bound => src,
                _ => WakeSource::Bound,
            });
        }
        self.step_event(target);
        self.burst_within(bound);
        self.maybe_sample();
    }

    /// Burst mode: after a full step, as long as the only runnable
    /// components are `Active` nodes — no due snoop, idle timer, NACK
    /// retry, bus arbitration, or delivery anywhere before a horizon —
    /// tick just those nodes cycle by cycle without the per-step
    /// machinery (wake bookkeeping, bus/network polls, snoop scans).
    /// This is where the event engine wins on compute phases: a lone
    /// lock holder grinding through its critical section costs one
    /// core tick per cycle instead of a full machine sweep.
    ///
    /// Soundness: snoops and deliveries are only created at the bus
    /// ordering point and on the data network, and both are quiet
    /// below the horizon — so sleeping nodes cannot gain new wake
    /// sources and their cached classes stay valid. Active nodes may
    /// enqueue bus requests or send messages, which is why the bus and
    /// network horizons are re-polled every burst cycle. Nodes that
    /// classify out of `Active` fold their fresh timers into the
    /// horizon and drop from the set; nodes can only *join* the active
    /// set through a wake, which ends the burst.
    fn burst_within(&mut self, bound: Cycle) {
        // Cheap bail-outs first: this runs after every step, and in
        // bus- or network-saturated phases the next cycle always has
        // machine-level work, so the scan below would be wasted.
        if self.cycle + 1 >= bound
            || self.bus.pending() > 0
            || self.dir.as_ref().is_some_and(|d| d.pending() > 0)
            || self.net.next_ready().is_some_and(|c| c <= self.cycle + 2)
        {
            return;
        }
        // Fault-injection tracing records per-cycle injection deltas in
        // `step_event`'s epilogue; burst cycles would misplace them.
        if self.cfg.faults.enabled && self.trace.is_enabled() {
            return;
        }
        let mut active = std::mem::take(&mut self.burst_scratch);
        active.clear();
        active.extend(
            (0..self.nodes.len()).filter(|&i| matches!(self.sched[i], NodeSched::Active)),
        );
        if active.is_empty() {
            self.burst_scratch = active;
            return;
        }
        let (burst_from, ticks_before) = (self.cycle, self.engine_live_ticks);
        // The passive horizon: the snoop queue is FIFO in due cycle
        // and cannot grow during the burst, and sleeping nodes' timers
        // cannot move, so this part is computed once.
        let mut horizon = bound;
        if let Some(ev) = self.snoops.front() {
            horizon = horizon.min(ev.due);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeSched::Idle { timer, .. } = self.sched[i] {
                if let Some(t) = timer {
                    horizon = horizon.min(t);
                }
                if !n.core.is_done() && !n.paused {
                    if let Some(t) = n.nack_retries.next_due() {
                        horizon = horizon.min(t);
                    }
                }
            }
        }
        loop {
            let mut h = horizon;
            if let Some(c) = self.bus.next_order_cycle(self.cycle) {
                h = h.min(c);
            }
            if let Some(d) = &self.dir {
                if let Some(c) = d.next_order_cycle(self.cycle) {
                    h = h.min(c);
                }
            }
            if let Some(c) = self.net.next_ready() {
                h = h.min(c.max(self.cycle + 1));
            }
            let next = self.cycle + 1;
            if next >= h {
                break;
            }
            self.cycle = next;
            self.engine_steps += 1;
            // A core finishing may complete quiescence; the driver
            // loop checks that between advances, so the burst must
            // yield before running any further cycle.
            self.engine_live_ticks += active.len() as u64;
            let finished = self.with_ctx(|nodes, ctx| {
                let mut finished = false;
                for &i in &active {
                    tick_node(&mut nodes[i], ctx);
                    let n = &nodes[i];
                    finished |= n.core.is_done() && n.done_at.is_none();
                }
                finished
            });
            let mut w = 0;
            for k in 0..active.len() {
                let i = active[k];
                match self.classify(i, self.cycle) {
                    NodeSched::Active => {
                        active[w] = i;
                        w += 1;
                    }
                    s => {
                        if let NodeSched::Idle { timer: Some(t), .. } = s {
                            horizon = horizon.min(t);
                        }
                        let n = &self.nodes[i];
                        if !n.core.is_done() && !n.paused {
                            if let Some(t) = n.nack_retries.next_due() {
                                horizon = horizon.min(t);
                            }
                        }
                        self.sched[i] = s;
                    }
                }
            }
            active.truncate(w);
            if active.is_empty() || finished {
                break;
            }
        }
        if self.cycle > burst_from {
            self.burst_entries += 1;
            self.burst_cycles += self.cycle - burst_from;
            self.burst_ticks += self.engine_live_ticks - ticks_before;
        }
        self.burst_scratch = active;
    }

    /// Settles cached idle charges through the current cycle for every
    /// idle node. Event-engine exit paths (quiescence, timeout, and
    /// external driver loops such as [`crate::os::run_preemptive`])
    /// must call this before reading [`Machine::stats`]; under the
    /// cycle-stepped engine it is a no-op.
    pub fn settle_idle_charges(&mut self) {
        for i in 0..self.nodes.len() {
            self.settle_through(i, self.cycle);
        }
    }

    /// The earliest cycle at which anything in the machine can make
    /// progress — tagged with the wake source that pins it, for the
    /// profiler's wake histogram — or `None` when no wake is scheduled
    /// (then the run is either quiesced or timed out). Ties keep the
    /// first source considered, so the attribution is deterministic.
    fn next_event_cycle(&self) -> Option<(Cycle, WakeSource)> {
        let floor = self.cycle + 1;
        // Any active node forces a step at the very next cycle; no
        // other source can schedule anything earlier.
        if self.sched.iter().any(|s| matches!(s, NodeSched::Active)) {
            return Some((floor, WakeSource::ActiveFloor));
        }
        let mut next: Option<(Cycle, WakeSource)> = None;
        let mut consider = |c: Cycle, src: WakeSource| {
            let c = c.max(floor);
            if next.map_or(true, |(n, _)| c < n) {
                next = Some((c, src));
            }
        };
        if let Some(c) = self.bus.next_order_cycle(self.cycle) {
            consider(c, WakeSource::Bus);
        }
        if let Some(d) = &self.dir {
            if let Some(c) = d.next_order_cycle(self.cycle) {
                consider(c, WakeSource::Directory);
            }
        }
        if let Some(c) = self.net.next_ready() {
            consider(c, WakeSource::Network);
        }
        // Snoops process unconditionally (phase 3 runs even for done
        // and paused nodes), and wake a spinner's only exit path.
        if let Some(ev) = self.snoops.front() {
            consider(ev.due, WakeSource::SnoopFront);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            match self.sched[i] {
                NodeSched::Active => consider(floor, WakeSource::ActiveFloor),
                NodeSched::Idle { timer, .. } => {
                    if let Some(t) = timer {
                        consider(t, WakeSource::IdleTimer);
                    }
                    // NACK retries only fire inside a live node tick,
                    // which done and paused nodes never reach — waking
                    // them for a retry would spin to no effect.
                    if !n.core.is_done() && !n.paused {
                        if let Some(t) = n.nack_retries.next_due() {
                            consider(t, WakeSource::RetryTimer);
                        }
                    }
                }
                // A spinner advances by pure arithmetic; only the
                // change that ends the spin — always a snoop or a
                // delivery — needs a scheduled step.
                NodeSched::Spin { .. } => {}
            }
        }
        next
    }

    /// Whether node `i` must run a full tick at the current cycle
    /// independent of cross-node wake events. Due snoops alone do
    /// *not* make a node due: they are processed lazily in phase 3
    /// and only promote the node if the snoop changed its class.
    fn node_due(&self, i: usize) -> bool {
        match self.sched[i] {
            NodeSched::Active => true,
            NodeSched::Idle { timer, .. } => {
                let n = &self.nodes[i];
                timer.is_some_and(|t| t <= self.cycle)
                    || (!n.core.is_done()
                        && !n.paused
                        && n.nack_retries.next_due().is_some_and(|t| t <= self.cycle))
            }
            // A spin loop only exits when the spun-on line changes,
            // which always arrives as a snoop or delivery.
            NodeSched::Spin { .. } => false,
        }
    }

    /// Settles node `i`'s cached idle charge (or fast-forwards its
    /// spin loop) for the skipped window up to and including
    /// `through`. No-op for active nodes.
    fn settle_through(&mut self, i: usize, through: Cycle) {
        match self.sched[i] {
            NodeSched::Active => {}
            NodeSched::Idle { since, charge, .. } => {
                if through <= since {
                    return;
                }
                let dt = through - since;
                self.idle_settles += 1;
                self.idle_settle_cycles += dt;
                let ns = self.stats.node_mut(i);
                match charge {
                    // A paused node's tick is a pure return; the
                    // skipped window is still elapsed time and the
                    // cycle-accounting identity needs it charged.
                    IdleCharge::Nothing => ns.paused_cycles += dt,
                    IdleCharge::Done => ns.done_cycles += dt,
                    IdleCharge::DataStall => ns.data_stall_cycles += dt,
                    IdleCharge::LockStall => ns.lock_stall_cycles += dt,
                    IdleCharge::SbFull => ns.store_buffer_full_cycles += dt,
                    IdleCharge::CommitWait => ns.commit_wait_cycles += dt,
                }
                if let NodeSched::Idle { since, .. } = &mut self.sched[i] {
                    *since = through;
                }
            }
            NodeSched::Spin { since, info } => {
                if through <= since {
                    return;
                }
                let w = through - since;
                self.spin_settles += 1;
                self.spin_settle_cycles += w;
                // Ticks alternate load/branch starting with
                // `info.next_is_load` at `since + 1`.
                let first = u64::from(info.next_is_load);
                let loads = (w + first) / 2;
                let branches = w - loads;
                // Parity of the tick at `through` decides where the
                // core resumes: after a load the branch is next
                // (pc = load_pc + 1), after a branch the load is
                // (pc = load_pc).
                let ends_on_load = if info.next_is_load { w % 2 == 1 } else { w % 2 == 0 };
                let pc = if ends_on_load { info.load_pc + 1 } else { info.load_pc };
                let node = &mut self.nodes[i];
                node.core.fast_forward(w, pc);
                node.rmw_pred.replay_spin_loads(info.load_pc, info.line, loads);
                let instructions = node.core.instructions;
                let ns = self.stats.node_mut(i);
                ns.loads += loads;
                ns.l1_hits += loads;
                if info.victim_hit {
                    ns.victim_hits += loads;
                }
                if info.is_lock {
                    ns.lock_busy_cycles += loads;
                } else {
                    ns.busy_cycles += loads;
                }
                ns.busy_cycles += branches;
                // Each skipped tick would have refreshed the committed
                // instruction count.
                ns.instructions = instructions;
                if let NodeSched::Spin { since, info } = &mut self.sched[i] {
                    *since = through;
                    info.next_is_load = !ends_on_load;
                }
            }
        }
    }

    /// Promotes node `i` to live for the current cycle: the skipped
    /// window ends at `cycle - 1` (this cycle's tick charges itself).
    fn make_live(&mut self, i: usize) {
        self.settle_through(i, self.cycle - 1);
        self.sched[i] = NodeSched::Active;
    }

    /// An external driver mutated node `i` at the current cycle
    /// *between* steps (deschedule, kill, reschedule): settle the idle
    /// window through now and force the node live so the next step
    /// observes the change.
    fn external_touch(&mut self, i: usize) {
        self.settle_through(i, self.cycle);
        self.sched[i] = NodeSched::Active;
    }

    /// Classifies node `i`, mirroring `node_tick`'s branch order
    /// exactly: each arm either proves the next tick is a pure
    /// stall-accounting no-op (idle, with the charge that tick would
    /// have made) or keeps the node live. See the [`NodeSched`] safety
    /// note: every uncertain case stays `Active`.
    ///
    /// `anchor` is the cycle through which the node's charges are
    /// already settled: the current cycle when classifying after a
    /// live tick, the previous cycle when re-classifying a sleeping
    /// node after lazily processing its due snoops (its tick at the
    /// current cycle was skipped and will be charged by settling).
    fn classify(&self, i: usize, anchor: Cycle) -> NodeSched {
        let node = &self.nodes[i];
        let now = self.cycle;
        let idle = |charge, timer| NodeSched::Idle { since: anchor, charge, timer };
        let stall = |is_lock: bool| if is_lock { IdleCharge::LockStall } else { IdleCharge::DataStall };
        if node.core.is_done() {
            // First done tick records `done_at`; afterwards the tick
            // charges `done_cycles` and drains the store buffer.
            if node.done_at.is_none() || !sb_drain_idle(node) {
                return NodeSched::Active;
            }
            return idle(IdleCharge::Done, None);
        }
        if node.paused {
            return idle(IdleCharge::Nothing, None);
        }
        // Chaos runs draw one spurious-abort value per tick of a node
        // with an open non-committing transaction; skipping any such
        // tick would shift the fault stream.
        if self.fault.is_some() && node.txn.as_ref().is_some_and(|t| !t.committing) {
            return NodeSched::Active;
        }
        if !pending_x_idle(node) || !sb_drain_idle(node) {
            return NodeSched::Active;
        }
        if node.txn.as_ref().is_some_and(|t| t.committing) {
            let ready = node.txn_pending_x.is_empty()
                && node
                    .wb
                    .entries()
                    .iter()
                    .all(|e| node.line(e.line).is_some_and(|l| l.state.writable()));
            if ready {
            }
            return if ready { NodeSched::Active } else { idle(IdleCharge::CommitWait, None) };
        }
        if now < node.stall_until {
            return idle(IdleCharge::DataStall, Some(node.stall_until));
        }
        match node.wait {
            None => match self.detect_spin(i) {
                Some(info) => NodeSched::Spin { since: anchor, info },
                None => {
                    NodeSched::Active
                }
            },
            Some(Wait::Fill { is_lock, .. }) => idle(stall(is_lock), None),
            Some(Wait::StoreBufFull) => {
                // `sb_drain_idle` held above, so the buffer cannot
                // shrink until the head's fill lands (a wake).
                if node.sb.is_full() {
                    idle(IdleCharge::SbFull, None)
                } else {
                    NodeSched::Active
                }
            }
            Some(Wait::MshrFull { is_lock }) => {
                if node.mshrs.is_full() {
                    idle(stall(is_lock), None)
                } else {
                    NodeSched::Active
                }
            }
            Some(Wait::Drain { is_lock }) => {
                if node.sb.is_empty() {
                    NodeSched::Active
                } else {
                    idle(stall(is_lock), None)
                }
            }
            Some(Wait::Commit) => NodeSched::Active,
            Some(Wait::Io { until }) => {
                if now >= until {
                    NodeSched::Active
                } else {
                    idle(IdleCharge::DataStall, Some(until))
                }
            }
        }
    }

    /// Tries to prove node `i` sits in a stable two-instruction wait
    /// loop — a plain `load` from a resident line followed by a
    /// conditional branch back to the load, taken as long as the
    /// loaded value holds (the test&test&set and MCS spin idioms).
    ///
    /// Such ticks execute real instructions, so they cannot be idled —
    /// but their effect is a fixed per-iteration counter delta, which
    /// [`Machine::settle_through`] replays arithmetically. The proof
    /// obligations, each checked here:
    ///
    /// * the node is otherwise quiescent: no transaction (so no chaos
    ///   draw), no wait record, empty store buffer / MSHRs / NACK
    ///   timers / pending upgrades — the pre-dispatch phases of
    ///   `node_tick` are no-ops and the loop draws no randomness and
    ///   records no trace events;
    /// * the loaded value equals the destination register already (a
    ///   register fixed point, so the branch outcome never changes);
    /// * the load is not load-linked (those arm the link register and
    ///   order against the store buffer);
    /// * skipped hits leave cache state unchanged: an L1 hit only
    ///   re-touches an already-MRU line and a victim hit never
    ///   reorders. (The RMW predictor's load history *does* change,
    ///   but identically-repeated loads saturate it, so settling
    ///   replays them exactly via `replay_spin_loads`.)
    ///
    /// The loop can then only exit when the spun-on line changes, and
    /// in an invalidation protocol every such change arrives as a
    /// snoop or delivery — a wake.
    fn detect_spin(&self, i: usize) -> Option<SpinInfo> {
        let node = &self.nodes[i];
        if node.txn.is_some()
            || node.wait.is_some()
            || !node.sb.is_empty()
            || !node.mshrs.is_empty()
            || !node.nack_retries.is_empty()
            || !node.txn_pending_x.is_empty()
            || !node.core.is_ready()
        {
            return None;
        }
        let prog = node.core.program();
        let pc = node.core.pc();
        // Anchor on the load: the core is either about to execute it
        // (post-branch) or about to execute the branch (post-load).
        let (load_pc, next_is_load) = match prog.op(pc) {
            Some(Op::Load(..)) => (pc, true),
            Some(Op::Beq(..) | Op::Bne(..) | Op::Blt(..) | Op::Bge(..)) if pc > 0 => {
                (pc - 1, false)
            }
            _ => {
                return None;
            }
        };
        let Some(Op::Load(rd, ra, off)) = prog.op(load_pc) else {
            return None;
        };
        let reg = |r| node.core.reg(r);
        let taken_target = match prog.op(load_pc + 1) {
            Some(Op::Beq(a, b, t)) if reg(a) == reg(b) => t,
            Some(Op::Bne(a, b, t)) if reg(a) != reg(b) => t,
            Some(Op::Blt(a, b, t)) if reg(a) < reg(b) => t,
            Some(Op::Bge(a, b, t)) if reg(a) >= reg(b) => t,
            _ => {
                return None;
            }
        };
        if taken_target != load_pc {
            return None;
        }
        let addr = Addr(reg(ra).wrapping_add(off as u64));
        let line = addr.line();
        let Some(l) = node.line(line) else {
            return None;
        };
        if reg(rd) != l.data.word(addr) {
            return None;
        }
        let victim_hit = !node.l1.contains(line);
        if !victim_hit && !node.l1.is_mru(line) {
            return None;
        }
        Some(SpinInfo {
            next_is_load,
            is_lock: self.lock_addrs.contains(&addr),
            victim_hit,
            line,
            load_pc,
        })
    }

    /// Advances the machine to cycle `target`, running the same four
    /// phases as [`Machine::step`] but only for live components. Nodes
    /// not woken were classified idle and draw no randomness, record
    /// no events, and change no state — their skipped cycles are
    /// settled from the cached charge when they next wake.
    fn step_event(&mut self, target: Cycle) {
        debug_assert!(target > self.cycle);
        self.cycle = target;
        self.engine_steps += 1;
        let fault_traced = self.cfg.faults.enabled && self.trace.is_enabled();
        let (net_before, bus_before) = if fault_traced {
            (
                self.net.fault_injections()
                    + self.dir.as_ref().map_or(0, |d| d.fault_injections()),
                self.bus.fault_injections(),
            )
        } else {
            (0, 0)
        };
        for w in self.woken.iter_mut() {
            *w = false;
        }
        // 1. Order at most one address-bus transaction (or, on
        //    directory machines, up to one request per free home
        //    bank); the ordering point mutates the requester (and the
        //    NACKing owner), so `order_request` marks them woken.
        self.order_phase();
        // 2. Deliver data-network messages; each delivery mutates its
        //    destination. Drained through a reused scratch buffer —
        //    snapshot semantics (messages sent while handling these
        //    deliveries wait for the next cycle) without a per-step
        //    allocation.
        let mut msgs = std::mem::take(&mut self.net_scratch);
        while let Some(msg) = self.net.pop_ready(self.cycle) {
            msgs.push(msg);
        }
        for msg in msgs.drain(..) {
            self.woken[msg.destination()] = true;
            self.handle_net(msg);
        }
        self.net_scratch = msgs;
        // Promote everything that must run this cycle.
        for i in 0..self.nodes.len() {
            if self.woken[i] || self.node_due(i) {
                self.make_live(i);
                self.woken[i] = true;
            }
        }
        // 3. Due snoops, processed at each involved node in node
        //    order (snoop handlers may record trace events and send
        //    network messages, so the stepped engine's order must be
        //    preserved; bus dues are strictly increasing, so at most
        //    one event is due per step and the per-event node loop
        //    matches the per-node event loop exactly). A sleeping
        //    involved node settles its skipped window first (the snoop
        //    may change the very state its cached class was proved
        //    against), then re-classifies: if the snoop made it
        //    runnable it joins this cycle's tick phase, otherwise it
        //    stays asleep anchored at `cycle - 1` so the tick it skips
        //    this cycle is charged on the next settle. Uninvolved
        //    nodes are untouched by the event (see [`node_involved`]),
        //    so their cached class — and their settle anchor — stay
        //    valid as-is.
        while self.snoops.front().is_some_and(|ev| ev.due <= self.cycle) {
            let ev = self.snoops.pop_front().unwrap();
            let mut touch = std::mem::take(&mut self.snoop_touch);
            touch.clear();
            touch.extend(self.nodes.iter().map(|n| node_involved(n, &ev)));
            // Settling first is order-safe: it touches only own-node
            // counters and draws no randomness, records no events.
            for i in 0..self.nodes.len() {
                if touch[i] && !self.woken[i] {
                    self.settle_through(i, self.cycle - 1);
                }
            }
            self.with_ctx(|nodes, ctx| {
                for (node, &t) in nodes.iter_mut().zip(touch.iter()) {
                    if t {
                        snoop_one(node, ctx, &ev);
                    }
                }
            });
            for i in 0..self.nodes.len() {
                if touch[i] && !self.woken[i] {
                    match self.classify(i, self.cycle - 1) {
                        NodeSched::Active => {
                            self.sched[i] = NodeSched::Active;
                            self.woken[i] = true;
                        }
                        other => self.sched[i] = other,
                    }
                }
            }
            self.snoop_touch = touch;
        }
        let woken = std::mem::take(&mut self.woken);
        let live = self.with_ctx(|nodes, ctx| {
            let mut live = 0u64;
            for (node, &w) in nodes.iter_mut().zip(woken.iter()) {
                if w {
                    live += 1;
                    tick_node(node, ctx);
                }
            }
            live
        });
        self.engine_live_ticks += live;
        self.woken = woken;
        for i in 0..self.nodes.len() {
            if self.woken[i] {
                self.sched[i] = self.classify(i, self.cycle);
            }
        }
        if fault_traced {
            let bus_delta = self.bus.fault_injections() - bus_before;
            if bus_delta > 0 {
                self.trace.record(
                    self.cycle,
                    0,
                    TraceKind::FaultInjected { kind: "bus_arbitration", payload: bus_delta },
                );
            }
            let net_delta = self.net.fault_injections()
                + self.dir.as_ref().map_or(0, |d| d.fault_injections())
                - net_before;
            if net_delta > 0 {
                self.trace.record(
                    self.cycle,
                    0,
                    TraceKind::FaultInjected { kind: "net_delay", payload: net_delta },
                );
            }
        }
    }

    /// Takes one instantaneous reading of the shared structures for
    /// the profiler. The scheduling mix comes from [`Machine::classify`]
    /// (pure), so both engines report the same mix at the same cycle
    /// regardless of the cached `sched` state.
    fn prof_gauges(&self) -> Gauges {
        let (mut active, mut idle, mut spin) = (0usize, 0usize, 0usize);
        for i in 0..self.nodes.len() {
            match self.classify(i, self.cycle) {
                NodeSched::Active => active += 1,
                NodeSched::Idle { .. } => idle += 1,
                NodeSched::Spin { .. } => spin += 1,
            }
        }
        Gauges {
            bus_ordered: self.bus.ordered_count(),
            dir_ordered: self.dir.as_ref().map_or(0, |d| d.ordered_count()),
            dir_depth: self.dir.as_ref().map_or(0, |d| d.pending()),
            net_sent: self.net.sent_count(),
            net_depth: self.net.len(),
            snoop_depth: self.snoops.len(),
            mshrs: self.nodes.iter().map(|n| n.mshrs.len()).sum(),
            deferred: self.nodes.iter().map(|n| n.deferred.len()).sum(),
            active_nodes: active,
            idle_nodes: idle,
            spin_nodes: spin,
        }
    }

    /// Closes a timeline epoch if the clock has crossed the next
    /// boundary. One pointer test when profiling is off.
    fn maybe_sample(&mut self) {
        if self.prof.as_deref().is_some_and(|p| self.cycle >= p.next_boundary()) {
            let g = self.prof_gauges();
            if let Some(p) = self.prof.as_deref_mut() {
                p.sample(self.cycle, g);
            }
        }
    }

    /// Detaches the profiler (with its engine counters filled in) for
    /// reporting. `None` unless the configuration enabled profiling.
    /// Call after the run; the remaining machine keeps no profile.
    pub fn take_profile(&mut self) -> Option<Box<Profiler>> {
        if self.prof.is_some() {
            let g = self.prof_gauges();
            let elapsed = self.cycle;
            let (steps, live) = match self.cfg.engine {
                Engine::EventDriven => (self.engine_steps, self.engine_live_ticks),
                // The stepped loop has no steps to skip: every cycle is
                // a step and every node ticks.
                Engine::CycleStepped => (self.cycle, self.cycle * self.nodes.len() as u64),
            };
            if let Some(p) = self.prof.as_deref_mut() {
                p.finish(elapsed, g);
                p.engine.steps = steps;
                p.engine.live_ticks = live;
                p.engine.skipped_cycles = elapsed.saturating_sub(steps);
                p.engine.burst_entries = self.burst_entries;
                p.engine.burst_cycles = self.burst_cycles;
                p.engine.burst_ticks = self.burst_ticks;
                p.engine.spin_settles = self.spin_settles;
                p.engine.spin_settle_cycles = self.spin_settle_cycles;
                p.engine.idle_settles = self.idle_settles;
                p.engine.idle_settle_cycles = self.idle_settle_cycles;
            }
        }
        self.prof.take()
    }

    /// Fills in end-of-run aggregates (the parallel cycle count).
    /// Called automatically by [`Machine::run`]; external driver loops
    /// (e.g. [`crate::os::run_preemptive`]) call it after quiescence.
    pub fn finalize_stats(&mut self) {
        self.stats.parallel_cycles =
            self.nodes.iter().filter_map(|n| n.done_at).max().unwrap_or(self.cycle);
        self.stats.elapsed_cycles = self.cycle;
        // Directory request-network jitter rides the same knob as data
        // network jitter, so both count as net delays.
        self.stats.faults.net_delays = self.net.fault_injections()
            + self.dir.as_ref().map_or(0, |d| d.fault_injections());
        self.stats.faults.bus_reorders = self.bus.fault_injections();
        if let Some(d) = &self.dir {
            self.stats.dir.requests_ordered = d.ordered_count();
            self.stats.dir.requests_sent = d.sent_count();
        }
        // Every started elision must have ended exactly one way; drift
        // here means a counter was forgotten somewhere in this file.
        #[cfg(debug_assertions)]
        if self.nodes.iter().all(|n| n.txn.is_none()) {
            if let Err(e) = self.stats.check_txn_accounting() {
                panic!("{e}");
            }
        }
        // Every elapsed node-cycle must be charged to exactly one
        // category. Only checkable once all idle charges are settled,
        // which quiescence-path callers guarantee.
        #[cfg(debug_assertions)]
        if self.is_quiesced() {
            if let Err(e) = self.stats.check_cycle_accounting() {
                panic!("{e}");
            }
        }
    }

    /// The architecturally current value of a word after (or during)
    /// a run: a dirty cached copy wins over the memory system.
    pub fn final_word(&self, addr: Addr) -> u64 {
        let line = addr.line();
        for n in &self.nodes {
            if let Some(l) = n.line(line) {
                if l.state.dirty() || l.state == Moesi::Exclusive || l.state == Moesi::Modified {
                    return l.data.word(addr);
                }
            }
            if let Some(p) = n.pending_wb.iter().find(|p| p.line == line && !p.cancelled) {
                return p.data.word(addr);
            }
        }
        // Fall back to any clean shared copy, then the memory system.
        for n in &self.nodes {
            if let Some(l) = n.line(line) {
                if l.state.is_valid() {
                    return l.data.word(addr);
                }
            }
        }
        self.memsys.word(addr)
    }

    /// De-schedules a thread (§4): an in-flight transaction is
    /// discarded (the lock stays free), then the core stops ticking
    /// until [`Machine::reschedule`].
    pub fn deschedule(&mut self, id: NodeId) {
        self.external_touch(id);
        self.with_ctx(|nodes, ctx| {
            let node = &mut nodes[id];
            if node.txn.is_some() {
                abort_txn(node, ctx, AbortKind::Descheduled, None);
            }
            node.paused = true;
        });
    }

    /// Resumes a de-scheduled thread.
    pub fn reschedule(&mut self, id: NodeId) {
        self.external_touch(id);
        self.nodes[id].paused = false;
    }

    /// Kills a thread (§4 restartable critical sections): speculative
    /// updates are discarded, deferred requests are serviced, and the
    /// core halts. Shared state is left consistent.
    pub fn kill(&mut self, id: NodeId) {
        self.external_touch(id);
        self.with_ctx(|nodes, ctx| {
            let node = &mut nodes[id];
            if node.txn.is_some() {
                abort_txn(node, ctx, AbortKind::Descheduled, None);
            }
            node.core.halt();
            node.wait = None;
            node.waiting_access = None;
        });
    }

    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut [Node], &mut Ctx) -> R) -> R {
        let mut ctx = Ctx {
            cfg: &self.cfg,
            now: self.cycle,
            net: &mut self.net,
            memsys: &mut self.memsys,
            bus: &mut self.bus,
            dir: self.dir.as_mut(),
            owner: &mut self.owner,
            stats: &mut self.stats,
            trace: &mut self.trace,
            rng: &mut self.rng,
            lock_addrs: &self.lock_addrs,
            policy: self.policy,
            fault: self.fault.as_mut(),
        };
        f(&mut self.nodes, &mut ctx)
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        // Fabric fault hooks count injections internally; traced chaos
        // runs surface each cycle's delta as events at node 0.
        let fault_traced = self.cfg.faults.enabled && self.trace.is_enabled();
        let (net_before, bus_before) = if fault_traced {
            (
                self.net.fault_injections()
                    + self.dir.as_ref().map_or(0, |d| d.fault_injections()),
                self.bus.fault_injections(),
            )
        } else {
            (0, 0)
        };
        // 1. Order at most one address-bus transaction (or up to one
        //    per free home bank on directory machines).
        self.order_phase();
        // 2. Deliver data-network messages.
        let msgs = self.net.drain_ready(self.cycle);
        for msg in msgs {
            self.handle_net(msg);
        }
        // 3. Process due snoops at each involved node, then tick each
        //    node. One context serves a whole phase — rebuilding it
        //    per node dominated the profile at full scale.
        while self.snoops.front().is_some_and(|ev| ev.due <= self.cycle) {
            let ev = self.snoops.pop_front().unwrap();
            self.with_ctx(|nodes, ctx| {
                for node in nodes.iter_mut() {
                    if node_involved(node, &ev) {
                        snoop_one(node, ctx, &ev);
                    }
                }
            });
        }
        self.with_ctx(|nodes, ctx| {
            for node in nodes.iter_mut() {
                tick_node(node, ctx);
            }
        });
        if fault_traced {
            let bus_delta = self.bus.fault_injections() - bus_before;
            if bus_delta > 0 {
                self.trace.record(
                    self.cycle,
                    0,
                    TraceKind::FaultInjected { kind: "bus_arbitration", payload: bus_delta },
                );
            }
            let net_delta = self.net.fault_injections()
                + self.dir.as_ref().map_or(0, |d| d.fault_injections())
                - net_before;
            if net_delta > 0 {
                self.trace.record(
                    self.cycle,
                    0,
                    TraceKind::FaultInjected { kind: "net_delay", payload: net_delta },
                );
            }
        }
        self.maybe_sample();
    }

    /// Runs this cycle's ordering point(s): the single address-bus
    /// slot, or — on directory machines — every home bank whose
    /// occupancy window has expired, in bank-index order. The fixed
    /// bank order keeps the cycle-stepped and event engines' RNG draw
    /// sequences identical.
    fn order_phase(&mut self) {
        if let Some(d) = self.dir.as_mut() {
            let mut ordered = std::mem::take(&mut self.dir_scratch);
            ordered.clear();
            d.tick_into(self.cycle, &mut ordered);
            for req in ordered.drain(..) {
                self.order_request(req);
            }
            self.dir_scratch = ordered;
        } else if let Some(req) = self.bus.tick(self.cycle) {
            self.order_request(req);
        }
    }

    /// Handles an address-bus transaction at its ordering point.
    fn order_request(&mut self, req: BusRequest) {
        let now = self.cycle;
        // The ordering point mutates the requester's state (writeback
        // retirement, self-supply cancellation, the owner ledger): the
        // event engine must run it this cycle.
        self.woken[req.requester] = true;
        self.stats.bus.arbitration_wait_cycles += now.saturating_sub(req.enqueued_at);
        match req.kind {
            BusReqKind::WriteBack => {
                self.stats.bus.writebacks += 1;
                let node = &mut self.nodes[req.requester];
                if let Some(pos) = node.pending_wb.iter().position(|p| p.line == req.line) {
                    let p = node.pending_wb.remove(pos);
                    if !p.cancelled {
                        self.memsys.writeback(req.line, p.data);
                        match self.dir.as_mut() {
                            Some(d) => d.retire_writeback(req.line, req.requester),
                            None => {
                                if self.owner.get(&req.line) == Some(&req.requester) {
                                    self.owner.remove(&req.line);
                                }
                            }
                        }
                    }
                }
            }
            BusReqKind::GetS | BusReqKind::GetX => {
                if debug_enabled() {
                    eprintln!(
                        "[{}] ORDER n{} {:?} line={} owner={:?}",
                        now, req.requester, req.kind, req.line.0, self.owner.get(&req.line)
                    );
                }
                if req.kind == BusReqKind::GetX {
                    self.stats.bus.get_x += 1;
                } else {
                    self.stats.bus.get_s += 1;
                }
                // The bus ordering point snoops every cache, so the
                // sharer scan is exact; the directory consults its
                // (conservatively imprecise) sharer vector instead and
                // yields the directed target set for the snoop phase.
                let (supplier, other_sharers, self_owner, targets) = match self.dir.as_ref() {
                    Some(d) => {
                        let dec = d.peek_order(&req);
                        let self_owner = d.owner(req.line) == Some(req.requester);
                        (dec.supplier, dec.other_sharers, self_owner, Some(dec.targets))
                    }
                    None => {
                        let other_sharers = self.nodes.iter().enumerate().any(|(j, n)| {
                            j != req.requester && n.line_state(req.line).is_valid()
                        });
                        let supplier = match self.owner.get(&req.line) {
                            Some(&o) if o != req.requester => Some(o),
                            _ => None,
                        };
                        let self_owner = self.owner.get(&req.line) == Some(&req.requester);
                        (supplier, other_sharers, self_owner, None)
                    }
                };
                // NACK retention (§3): the owner's refusal is asserted
                // at the ordering point — the transaction is annulled,
                // no ownership transfers, every snooper ignores it.
                // The policy may override the configured retention
                // (backoff forces NACKs: deferral deadlocks under
                // requester-always-loses).
                if self.policy.effective_retention(self.cfg.retention)
                    == tlr_sim::config::RetentionPolicy::Nack
                {
                    if let Some(o) = supplier {
                        // The refusal check advances the owner's
                        // logical clock either way.
                        self.woken[o] = true;
                        if self.nack_at_order(o, &req) {
                            let deliver = now + self.cfg.latency.snoop;
                            self.net.send(
                                deliver,
                                NetMsg::Nack { to: req.requester, line: req.line },
                            );
                            return;
                        }
                    }
                }
                // Ledger update at the ordering point. (A NACKed
                // request returns above without reaching this, so an
                // annulled transaction transfers no state in either
                // fabric.)
                match self.dir.as_mut() {
                    Some(d) => d.commit_order(&req),
                    None => {
                        if req.kind == BusReqKind::GetX || (supplier.is_none() && !other_sharers) {
                            self.owner.insert(req.line, req.requester);
                        }
                    }
                }
                if supplier.is_none() {
                    dbglog!("[{}] MEMSUPPLY line={} to={} self_owner={}", now, req.line.0, req.requester, self_owner);
                    // The requester's own un-ordered writeback holds
                    // newer data than memory: serve (and cancel) it.
                    if let Some(p) = self.nodes[req.requester].pending_wb_mut(req.line) {
                        p.cancelled = true;
                        let data = p.data;
                        let deliver = now + self.cfg.latency.snoop + 1;
                        self.net.send(
                            deliver,
                            NetMsg::Data {
                                to: req.requester,
                                line: req.line,
                                data,
                                grant: DataGrant::Modified,
                                from_cache: true,
                            },
                        );
                        let due = now + self.cfg.latency.snoop;
                        self.snoops.push_back(SnoopEvent {
                            due,
                            order_cycle: now,
                            req,
                            supplier: None,
                            other_sharers,
                            targets,
                        });
                        return;
                    }
                    // A requester that is itself the ledger owner holds
                    // a dirty-but-unwritable (Owned) copy: this is an
                    // upgrade, granted without a data transfer — memory
                    // may be stale. Its own data rides along so the
                    // fill path stays uniform.
                    let self_upgrade = self_owner
                        .then(|| self.nodes[req.requester].line(req.line).map(|l| l.data))
                        .flatten();
                    if let Some(data) = self_upgrade {
                        // One cycle after the requester processes its
                        // own ordering snoop, so the fill records the
                        // correct coherence position.
                        let deliver = now + self.cfg.latency.snoop + 1;
                        self.net.send(
                            deliver,
                            NetMsg::Data {
                                to: req.requester,
                                line: req.line,
                                data,
                                grant: DataGrant::Modified,
                                from_cache: true,
                            },
                        );
                    } else {
                        // Memory-side supply.
                        let (data, res) = self.memsys.supply(req.line);
                        if res.l2_hit {
                            self.stats.l2_supplies += 1;
                        } else {
                            self.stats.memory_supplies += 1;
                        }
                        let grant = protocol::fill_grant(req.kind, other_sharers, false);
                        let jitter = self.rng.below(self.cfg.latency_jitter + 1);
                        let deliver = now
                            + self.cfg.latency.snoop
                            + res.latency
                            + self.cfg.latency.data_network
                            + jitter;
                        self.net.send(
                            deliver,
                            NetMsg::Data { to: req.requester, line: req.line, data, grant, from_cache: false },
                        );
                    }
                }
                let due = now + self.cfg.latency.snoop;
                self.snoops.push_back(SnoopEvent {
                    due,
                    order_cycle: now,
                    req,
                    supplier,
                    other_sharers,
                    targets,
                });
            }
            BusReqKind::Upgrade => {
                unreachable!("upgrades are modeled as GetX (see node documentation)")
            }
        }
    }

    /// Decides, at the bus ordering point, whether owner `o` refuses
    /// the request (NACK retention): it must be inside a transaction
    /// the request conflicts with, hold the block with data *or* have
    /// its own transactional fill for it in flight, and win the
    /// timestamp comparison outright (no §3.2 relaxation — a NACKed
    /// earlier-timestamp waiter would starve).
    ///
    /// The in-flight case matters for forward progress: without it,
    /// two transactions conflicting on two blocks can perpetually
    /// steal each block from each other during the fill window —
    /// neither request can be refused at the ordering point, and by
    /// snoop time a win degrades to a loss (see `owner_conflict`), so
    /// both sides restart forever. Resolving conflicts against
    /// outstanding requests exactly like conflicts against held
    /// blocks (§3.1.1) restores the timestamp order.
    fn nack_at_order(&mut self, o: NodeId, req: &BusRequest) -> bool {
        let bits = self.cfg.timestamp_bits;
        let policy = self.policy;
        let node = &mut self.nodes[o];
        if node.txn.is_none() {
            return false;
        }
        // A lazily-subscribed lock line is never retained: the holder
        // surrenders it and re-checks the lock word at commit.
        if policy.lazy_subscription() && is_lock_line(node, req.line) {
            return false;
        }
        match node.mshrs.get(req.line) {
            Some(m) => {
                if m.ts.is_none() || !(req.kind.is_exclusive() || m.exclusive) {
                    return false;
                }
            }
            None => {
                let Some(l) = node.line(req.line) else { return false };
                if !l.state.retainable() || !l.conflicts_with(req.kind.is_exclusive()) {
                    return false;
                }
            }
        }
        let wins = match req.ts {
            None => {
                self.cfg.untimestamped_policy == UntimestampedPolicy::DeferAsLowestPriority
            }
            Some(in_ts) => {
                node.clock.observe_conflicting(in_ts);
                let ours = Prio::new(node.timestamp(), node.karma);
                policy.nack_requester(ours, Prio::new(in_ts, req.karma), bits)
            }
        };
        if wins {
            self.stats.node_mut(o).nacks_sent += 1;
            self.stats.obs.conflicts.record(req.line.0);
            self.trace.record(
                self.cycle,
                o,
                TraceKind::NackSent { line: req.line.0, to: req.requester },
            );
        }
        wins
    }

    /// Delivers one data-network message.
    fn handle_net(&mut self, msg: NetMsg) {
        self.with_ctx(|nodes, ctx| deliver_one(nodes, ctx, msg));
    }
}

/// Delivers one data-network message to its destination node.
fn deliver_one(nodes: &mut [Node], ctx: &mut Ctx, msg: NetMsg) {
    let to = msg.destination();
    dbglog!("[{}] n{} NET {}", ctx.now, to, msg.label());
    let node = &mut nodes[to];
    match msg {
        NetMsg::Data { line, data, grant, from_cache, .. } => {
            handle_fill(node, ctx, line, data, grant, from_cache)
        }
        NetMsg::Marker { from, line, .. } => handle_marker(node, ctx, line, from),
        NetMsg::Nack { line, .. } => handle_nack(node, ctx, line),
        NetMsg::Probe { line, ts, karma, .. } => handle_probe(node, ctx, line, Prio::new(ts, karma)),
    }
}

/// Whether a snooped transaction can touch this node at all.
///
/// An uninvolved node — not the requester, not the designated
/// supplier, no MSHRs, no parked writebacks, no copy of the line —
/// provably no-ops through every branch of [`snoop_one`] (no state
/// change, no stats, no trace, no randomness), so skipping the call
/// is exact.
fn node_involved(node: &Node, ev: &SnoopEvent) -> bool {
    // Directory requests are directed, not broadcast: only the nodes
    // in the ordering decision's target set ever see the snoop. Within
    // the targets the broadcast predicate below still applies — a
    // stale sharer bit (silent clean eviction) names a node that
    // no-ops through `snoop_one`, and the predicate proves it.
    if let Some(t) = &ev.targets {
        if !t.contains(node.id) {
            return false;
        }
    }
    ev.req.requester == node.id
        || ev.supplier == Some(node.id)
        || !node.mshrs.is_empty()
        || !node.pending_wb.is_empty()
        || node.line(ev.req.line).is_some()
}

/// One cycle of a node: buffer drains, commit progress, core
/// execution, with the cycle-accounting backstop. The dispatch below
/// charges at most one stall/busy category per tick; the transition
/// ticks it leaves uncharged (recording `done_at`, completing a
/// commit, an injected abort, issuing a miss, dispatching I/O) are
/// one-offs that belong to no ongoing activity, so they are swept
/// into `other_cycles` — and a paused node's skipped tick into
/// `paused_cycles` — keeping every category's historical value intact
/// while the per-node sum lands exactly on the run's elapsed cycles
/// ([`tlr_sim::stats::NodeStats::check_cycle_accounting`]).
fn tick_node(node: &mut Node, ctx: &mut Ctx) {
    let before = ctx.stats.node_mut(node.id).attributed_cycles();
    tick_node_inner(node, ctx);
    let ns = ctx.stats.node_mut(node.id);
    let delta = ns.attributed_cycles() - before;
    debug_assert!(delta <= 1, "node {} tick charged {delta} cycle categories", node.id);
    if delta == 0 {
        if node.paused && !node.core.is_done() {
            ns.paused_cycles += 1;
        } else {
            ns.other_cycles += 1;
        }
    }
}

fn tick_node_inner(node: &mut Node, ctx: &mut Ctx) {
    if node.core.is_done() {
        if node.done_at.is_none() {
            node.done_at = Some(ctx.now);
        } else {
            ctx.stats.node_mut(node.id).done_cycles += 1;
        }
        drain_store_buffer(node, ctx);
        return;
    }
    if node.paused {
        return;
    }
    // Chaos: annul an open (non-committing) transaction at a
    // seed-chosen node-cycle. Guarded on transaction state, so
    // the fault stream advances deterministically; skipping
    // committing transactions mirrors the hardware, where a
    // transaction past its commit point can no longer abort.
    if node.txn.as_ref().is_some_and(|t| !t.committing) && ctx.fault_fires_spurious_abort()
    {
        ctx.stats.faults.spurious_aborts += 1;
        ctx.trace.record(
            ctx.now,
            node.id,
            TraceKind::FaultInjected { kind: "spurious_abort", payload: 0 },
        );
        abort_txn(node, ctx, AbortKind::Injected, None);
        return;
    }
    retry_nacked(node, ctx);
    retry_txn_pending_x(node, ctx);
    drain_store_buffer(node, ctx);
    if node.txn.as_ref().is_some_and(|t| t.committing) {
        try_commit(node, ctx);
        if node.txn.is_some() {
            ctx.stats.node_mut(node.id).commit_wait_cycles += 1;
        }
        return;
    }
    if ctx.now < node.stall_until {
        ctx.stats.node_mut(node.id).data_stall_cycles += 1;
        return;
    }
    if node.wait.is_some() {
        retry_wait(node, ctx);
        return;
    }
    node.instr_snapshot();
    match node.core.tick() {
        CoreStep::Busy => ctx.stats.node_mut(node.id).busy_cycles += 1,
        CoreStep::Waiting => {
            // Core blocked without a wait record: only possible
            // transiently; charge as a data stall.
            ctx.stats.node_mut(node.id).data_stall_cycles += 1;
        }
        CoreStep::Access(acc) => handle_access(node, ctx, acc),
        CoreStep::Io => {
            if node.txn.is_some() {
                abort_txn(node, ctx, AbortKind::Io, None);
            } else {
                node.wait = Some(Wait::Io { until: ctx.now + IO_LATENCY });
            }
        }
        CoreStep::Done => {
            assert!(
                node.txn.is_none(),
                "thread {} finished inside a critical section",
                node.id
            );
        }
    }
    node.commit_instructions(ctx.stats);
}

impl Node {
    fn instr_snapshot(&mut self) {
        // placeholder for symmetric bookkeeping; instruction counts are
        // read from the core on commit below.
    }

    fn commit_instructions(&mut self, stats: &mut MachineStats) {
        stats.node_mut(self.id).instructions = self.core.instructions;
    }
}

// ---------------------------------------------------------------------------
// Controller logic (free functions over Node + Ctx).
// ---------------------------------------------------------------------------

/// Issues a miss: allocates an MSHR and queues the bus request.
/// Returns `false` when the MSHR file is full.
fn issue_miss(node: &mut Node, ctx: &mut Ctx, line: LineAddr, exclusive: bool, ts: Option<Timestamp>) -> bool {
    if node.mshrs.is_full() || node.mshrs.get(line).is_some() {
        return false;
    }
    let e = node.mshrs.alloc(MshrEntry::new(line, exclusive, ts)).expect("mshr alloc");
    e.issued = true;
    dbglog!("[{}] n{} issue_miss line={} x={}", ctx.now, node.id, line.0, exclusive);
    ctx.send_req(
        node.id,
        BusRequest {
            requester: node.id,
            line,
            kind: if exclusive { BusReqKind::GetX } else { BusReqKind::GetS },
            ts,
            karma: if ts.is_some() { node.karma } else { 0 },
            wb_data: None,
            enqueued_at: ctx.now,
        },
    );
    ctx.stats.node_mut(node.id).l1_misses += 1;
    true
}

/// Installs a line into the L1, spilling evictions into the victim
/// cache and dirty victim evictions into the writeback path.
///
/// Returns `Err(())` when a transactional line would be lost (the
/// caller must abandon the elision, §3.3).
fn install_line(node: &mut Node, ctx: &mut Ctx, entry: CacheLine) -> Result<(), ()> {
    // Never allow two copies of one line to coexist across the L1 and
    // victim cache: drop any stale resident copy first.
    node.l1.take(entry.line);
    node.victim.take(entry.line);
    let Some(evicted) = node.l1.insert(entry) else { return Ok(()) };
    let Some(evicted2) = node.victim.insert(evicted) else { return Ok(()) };
    // The victim cache overflowed; evicted2 leaves the hierarchy.
    if node.core.link() == Some(evicted2.line) {
        node.core.clear_link();
    }
    // Transactional lines are parked in the writeback buffer even when
    // clean: the node may still owe a deferred response for them.
    if evicted2.state.dirty() || evicted2.spec_accessed() {
        node.pending_wb.push(PendingWriteback { line: evicted2.line, data: evicted2.data, cancelled: false });
        ctx.send_req(
            node.id,
            BusRequest {
                requester: node.id,
                line: evicted2.line,
                kind: BusReqKind::WriteBack,
                ts: None,
                karma: 0,
                wb_data: Some(evicted2.data),
                enqueued_at: ctx.now,
            },
        );
    }
    if evicted2.spec_accessed() {
        return Err(());
    }
    Ok(())
}

/// Supplies a line to a requester from this node's cached copy,
/// applying the protocol transition.
fn supply_from_line(node: &mut Node, ctx: &mut Ctx, line: LineAddr, to: NodeId, exclusive: bool) {
    let kind = if exclusive { BusReqKind::GetX } else { BusReqKind::GetS };
    let delay = ctx.data_latency();
    if node.line(line).is_none() {
        // The line was evicted into the writeback buffer while we
        // still owed a (deferred) response: supply from there.
        let p = node
            .pending_wb_mut(line)
            .unwrap_or_else(|| panic!("supplying line {line} that is not resident"));
        let data = p.data;
        if exclusive {
            p.cancelled = true;
        }
        let grant = if exclusive { DataGrant::Modified } else { DataGrant::Shared };
        ctx.net.send(ctx.now + delay, NetMsg::Data { to, line, data, grant, from_cache: true });
        ctx.stats.cache_to_cache_transfers += 1;
        return;
    }
    let l = node
        .line_mut(line)
        .unwrap_or_else(|| panic!("supplying line {line} that is not resident"));
    let outcome = protocol::snoop(l.state, kind);
    debug_assert!(outcome.supply, "supply_from_line on non-owning state {:?}", l.state);
    let data = l.data;
    let grant = if exclusive { DataGrant::Modified } else { DataGrant::Shared };
    if outcome.next == Moesi::Invalid {
        let la = l.line;
        node.l1.take(la);
        node.victim.take(la);
        if node.core.link() == Some(la) {
            node.core.clear_link();
        }
    } else {
        l.state = outcome.next;
    }
    dbglog!("[{}] n{} SUPPLY line={} to={} x={}", ctx.now, node.id, line.0, to, exclusive);
    ctx.net.send(ctx.now + delay, NetMsg::Data { to, line, data, grant, from_cache: true });
    ctx.stats.cache_to_cache_transfers += 1;
}

/// Services the whole deferred queue in order (transaction end, or a
/// lost conflict: "service earlier deferred requests in-order").
fn service_deferred_all(node: &mut Node, ctx: &mut Ctx) {
    while let Some(d) = node.deferred.pop_front() {
        ctx.trace.record(ctx.now, node.id, TraceKind::ServiceDeferred { line: d.line.0, to: d.from });
        supply_from_line(node, ctx, d.line, d.from, d.exclusive);
    }
}

/// Ends the current transaction without committing. `line` attributes
/// the abort to the conflicting block when one is known.
fn abort_txn(node: &mut Node, ctx: &mut Ctx, kind: AbortKind, line: Option<LineAddr>) {
    let Some(txn) = node.txn.take() else { return };
    let ns = ctx.stats.node_mut(node.id);
    match kind {
        AbortKind::Conflict => ns.restarts_conflict += 1,
        AbortKind::SharerInvalidation => ns.restarts_sharer_invalidation += 1,
        AbortKind::LockWrite => ns.restarts_lock_write += 1,
        AbortKind::Resource => ns.fallbacks_resource += 1,
        AbortKind::Io => ns.fallbacks_io += 1,
        AbortKind::Nesting => ns.fallbacks_nesting += 1,
        AbortKind::Descheduled => ns.aborts_descheduled += 1,
        AbortKind::Injected => ns.aborts_injected += 1,
    }
    // All speculative work since this attempt began is discarded.
    ns.wasted_cycles += ctx.now.saturating_sub(txn.started_at);
    let outer_pc = txn.elided[0].pc;
    let sle_conflict_fallback = !ctx.cfg.scheme.tlr_enabled()
        && matches!(kind, AbortKind::Conflict | AbortKind::SharerInvalidation);
    if kind.forces_fallback() || sle_conflict_fallback {
        if sle_conflict_fallback {
            ctx.stats.node_mut(node.id).fallbacks_conflict += 1;
        }
        // The critical section gives up on elision: sample how many
        // restarts it absorbed first (the conflict that triggers an
        // SLE fallback is itself counted as a restart).
        let absorbed = node.restart_streak + u32::from(sle_conflict_fallback);
        ctx.stats.obs.restarts_per_txn.record(absorbed as u64);
        node.restart_streak = 0;
        node.suppress_elide_at = Some(outer_pc);
        node.sle_pred.elision_failed(outer_pc);
        ctx.trace.record(
            ctx.now,
            node.id,
            TraceKind::TxnFallback {
                reason: match kind {
                    AbortKind::Resource => "resource",
                    AbortKind::Io => "io",
                    AbortKind::Nesting => "nesting",
                    _ => "conflict",
                },
            },
        );
    } else {
        if kind == AbortKind::Descheduled {
            // The critical section will re-run from scratch later.
            node.restart_streak = 0;
        } else {
            node.restart_streak += 1;
        }
        ctx.trace.record(
            ctx.now,
            node.id,
            TraceKind::TxnRestart { line: line.map_or(0, |l| l.0) },
        );
    }
    dbglog!("[{}] n{} ABORT {:?}", ctx.now, node.id, kind);
    if kind == AbortKind::SharerInvalidation {
        node.sharer_inval_streak += 1;
    } else if kind.forces_fallback() {
        node.sharer_inval_streak = 0;
    }
    if ctx.policy.uses_karma() {
        if kind.forces_fallback() || sle_conflict_fallback {
            node.karma = 0;
        } else {
            // Size priority: karma is the *largest* footprint any
            // aborted attempt reached, not a running sum. Frozen for
            // the whole next attempt (consistent order among live
            // txns) and bounded by the transaction's footprint, so it
            // saturates — a running sum would let the loser of every
            // round come back outranking the winner, and two symmetric
            // contenders would flip priority and kill each other
            // forever.
            let (r, w) = node.spec_footprint();
            node.karma = node.karma.max(r.saturating_add(w));
        }
    }
    node.core.restore(&txn.checkpoint);
    node.wait = None;
    node.waiting_access = None;
    node.stall_until = ctx.now + ctx.cfg.latency.restart_penalty;
    node.wb.clear();
    node.clear_spec_bits();
    node.txn_pending_x.clear();
    node.sle_pred.clear_candidates();
    // "Give up any retained ownerships."
    service_deferred_all(node, ctx);
}

/// Attempts to finish a committing transaction: all write-buffer lines
/// must be resident and writable; then buffered words become visible
/// atomically, deferred requests are serviced in order, and the
/// logical clock advances (Figure 3, step 4).
fn try_commit(node: &mut Node, ctx: &mut Ctx) {
    retry_txn_pending_x(node, ctx);
    let ready = node.txn_pending_x.is_empty()
        && node
            .wb
            .entries()
            .iter()
            .all(|e| node.line(e.line).is_some_and(|l| l.state.writable()));
    if !ready {
        return;
    }
    if node.txn.as_ref().is_some_and(|t| t.lock_recheck) {
        // Lazy subscription: a lock line was touched by a remote
        // writer during the attempt; revalidate every elided lock at
        // commit instead of having aborted eagerly.
        match revalidate_elided_locks(node, ctx) {
            LockRecheck::Valid => {}
            LockRecheck::Waiting => return,
            LockRecheck::Held => {
                abort_txn(node, ctx, AbortKind::LockWrite, None);
                return;
            }
        }
    }
    let txn = node.txn.take().expect("commit without transaction");
    for e in node.wb.entries().to_vec() {
        let id = node.id;
        let l = node.line_mut(e.line).expect("writable line vanished at commit");
        tlr_mem::WriteBuffer::apply_entry(&e, &mut l.data);
        l.state = Moesi::Modified;
        let w0 = l.data.0[0];
        dbglog!("[{}] n{} COMMIT line={} w0={:#x}", ctx.now, id, e.line.0, w0);
    }
    // Footprint scan before the spec bits are cleared; the cache walk
    // only runs when the trace is on.
    let (read_set, write_set) =
        if ctx.trace.is_enabled() { node.spec_footprint() } else { (0, 0) };
    node.wb.clear();
    node.clear_spec_bits();
    for el in &txn.elided {
        node.sle_pred.elision_succeeded(el.pc);
    }
    node.sharer_inval_streak = 0;
    if ctx.policy.uses_karma() {
        node.karma = 0;
    }
    let commit_wait = txn.commit_entered_at.map_or(0, |c| ctx.now.saturating_sub(c));
    ctx.stats.node_mut(node.id).commits += 1;
    ctx.stats.obs.cs_length.record(ctx.now.saturating_sub(txn.started_at));
    ctx.stats.obs.commit_latency.record(commit_wait);
    ctx.stats.obs.restarts_per_txn.record(node.restart_streak as u64);
    node.restart_streak = 0;
    // Service the deferral queue before the commit event so the
    // ServiceDeferred instants nest inside the committing span.
    service_deferred_all(node, ctx);
    ctx.trace.record(
        ctx.now,
        node.id,
        TraceKind::TxnCommit { read_set, write_set, commit_wait },
    );
    node.clock.advance();
    // The release store that triggered the commit now completes.
    node.core.complete_store();
    node.wait = None;
    node.waiting_access = None;
}

/// Outcome of the commit-time lock revalidation under lazy
/// subscription.
enum LockRecheck {
    /// Every elided lock is resident and free: commit may proceed.
    Valid,
    /// A lock line is not resident; a refetch was issued and commit
    /// retries once it lands.
    Waiting,
    /// A lock word no longer holds its free value: someone acquired
    /// the lock for real, so the speculative work must be discarded.
    Held,
}

/// Lazy-subscription commit check: instead of aborting on any remote
/// lock write during the attempt, the transaction validates at commit
/// that every elided lock is still free. A resident copy is
/// coherence-current, so residency plus a value check suffices;
/// validated lines get their spec-read bit re-armed so a racing lock
/// write between validation and the atomic commit still aborts.
fn revalidate_elided_locks(node: &mut Node, ctx: &mut Ctx) -> LockRecheck {
    let locks: Vec<(Addr, u64)> = node
        .txn
        .as_ref()
        .expect("recheck without transaction")
        .elided
        .iter()
        .map(|e| (e.addr, e.free_value))
        .collect();
    for &(addr, _) in &locks {
        let line = addr.line();
        if node.line(line).is_none() {
            if node.mshrs.get(line).is_none() {
                let ts = Some(node.timestamp());
                issue_miss(node, ctx, line, false, ts);
            }
            return LockRecheck::Waiting;
        }
    }
    for &(addr, free) in &locks {
        let line = addr.line();
        let l = node.line_mut(line).expect("checked resident above");
        if l.data.word(addr) != free {
            return LockRecheck::Held;
        }
        l.spec_read = true;
    }
    if let Some(t) = node.txn.as_mut() {
        t.lock_recheck = false;
    }
    LockRecheck::Valid
}

/// Retries exclusive-ownership requests for transactional stores that
/// could not be issued earlier (MSHR pressure or a shared fill in
/// flight).
fn retry_txn_pending_x(node: &mut Node, ctx: &mut Ctx) {
    if node.txn_pending_x.is_empty() {
        return;
    }
    let ts = node.txn.as_ref().map(|_| node.timestamp());
    let lines = std::mem::take(&mut node.txn_pending_x);
    for line in lines {
        if node.line(line).is_some_and(|l| l.state.writable()) {
            continue;
        }
        if node.mshrs.get(line).is_some() {
            // A shared fill is in flight; we must re-request exclusive
            // after it lands.
            node.txn_pending_x.push(line);
            continue;
        }
        if enforce_ts_order_before_miss(node, ctx, line) {
            return; // transaction aborted; remaining lines are moot
        }
        if !issue_miss(node, ctx, line, true, ts) {
            node.txn_pending_x.push(line);
        }
    }
}

/// Drains at most one store-buffer entry into the cache per cycle.
fn drain_store_buffer(node: &mut Node, ctx: &mut Ctx) {
    let Some((addr, val)) = node.sb.head() else { return };
    let line = addr.line();
    if let Some(l) = node.line_mut(line) {
        if l.state.writable() {
            l.data.set_word(addr, val);
            l.state = Moesi::Modified;
            node.sb.pop();
            dbglog!("[{}] n{} STORE [{:#x}]={:#x}", ctx.now, node.id, addr.0, val);
            return;
        }
    }
    if node.mshrs.get(line).is_some() {
        return; // fill in flight
    }
    if node.line(line).is_none() {
        if let Some(p) = node.pending_wb_mut(line) {
            // Re-acquire a line parked in the writeback buffer.
            p.cancelled = true;
            let data = p.data;
            let mut entry = CacheLine::new(line, Moesi::Modified, data);
            entry.acquired_at = ctx.now;
            let _ = install_line(node, ctx, entry);
            return;
        }
    }
    issue_miss(node, ctx, line, true, None);
}

/// Decides a transactional conflict at a node that currently owns the
/// contested block (Figure 3, step 3).
enum ConflictDecision {
    Defer { relaxed: bool },
    Lose,
}

fn decide_conflict(node: &mut Node, ctx: &mut Ctx, line: LineAddr, incoming: Option<Prio>) -> ConflictDecision {
    if !ctx.cfg.scheme.tlr_enabled() {
        // Plain SLE: any conflict restarts and falls back to the lock.
        return ConflictDecision::Lose;
    }
    match incoming {
        None => match ctx.cfg.untimestamped_policy {
            // Un-timestamped requests are assumed to have the latest
            // timestamp in the system (lowest priority).
            UntimestampedPolicy::DeferAsLowestPriority => ConflictDecision::Defer { relaxed: false },
            UntimestampedPolicy::Restart => ConflictDecision::Lose,
        },
        Some(inp) => {
            node.clock.observe_conflicting(inp.ts);
            let ours = Prio::new(node.timestamp(), node.karma);
            if ctx.policy.holder_retains(ours, inp, ctx.ts_bits()) {
                ConflictDecision::Defer { relaxed: false }
            } else if ctx.cfg.scheme.relax_single_block()
                && ctx.policy.effective_retention(ctx.cfg.retention)
                    == tlr_sim::config::RetentionPolicy::Deferral
                && !node.mshrs.has_transactional_miss()
                && node.txn_pending_x.is_empty()
                && !node.defers_other_lines(line)
            {
                // The relaxation is deferral-specific: a deferred
                // earlier-timestamp request is still queued and will
                // be answered at commit; a NACKed one would be refused
                // indefinitely, breaking starvation freedom.
                // §3.2: deadlock is impossible with a single contended
                // block, so the timestamp-induced restart is avoided.
                ConflictDecision::Defer { relaxed: true }
            } else {
                ConflictDecision::Lose
            }
        }
    }
}

/// Handles a conflicting request at the owner that holds the data.
fn owner_conflict(node: &mut Node, ctx: &mut Ctx, req: &BusRequest) {
    let line = req.line;
    let exclusive = req.kind.is_exclusive();
    // If we have our own exclusive request in flight for this line
    // (an Owned-copy upgrade), the incoming request was ordered
    // *before* ours: deferring it would make our own upgrade wait on
    // our own commit. We must lose.
    let upgrade_in_flight = node.mshrs.get(line).is_some();
    // Lazy subscription: an elided lock line is surrendered without
    // aborting or deferring; the commit re-checks the lock word.
    if !upgrade_in_flight && ctx.policy.lazy_subscription() && is_lock_line(node, line) {
        if let Some(t) = node.txn.as_mut() {
            t.lock_recheck = true;
        }
        supply_from_line(node, ctx, line, req.requester, exclusive);
        return;
    }
    let decision = if upgrade_in_flight {
        ConflictDecision::Lose
    } else {
        decide_conflict(node, ctx, line, req.ts.map(|t| Prio::new(t, req.karma)))
    };
    let decision = match decision {
        // Under NACK retention the refusal must happen at the bus
        // ordering point (order_request); by snoop time the transfer
        // is architecturally committed, so a late win degrades to a
        // loss (service and restart).
        ConflictDecision::Defer { .. }
            if ctx.policy.effective_retention(ctx.cfg.retention)
                == tlr_sim::config::RetentionPolicy::Nack =>
        {
            ConflictDecision::Lose
        }
        d => d,
    };
    match decision {
        ConflictDecision::Defer { relaxed } if node.deferred.len() < node.deferred_cap => {
            node.deferred.push_back(DeferredReq {
                line,
                from: req.requester,
                exclusive,
                ts: req.ts,
                karma: req.karma,
            });
            let depth = node.deferred.len() as u32;
            let ns = ctx.stats.node_mut(node.id);
            ns.requests_deferred += 1;
            ns.markers_sent += 1;
            if relaxed {
                ns.single_block_relaxations += 1;
            }
            ctx.stats.obs.deferral_depth.record(depth as u64);
            ctx.stats.obs.conflicts.record(line.0);
            ctx.trace.record(
                ctx.now,
                node.id,
                TraceKind::Defer { line: line.0, from: req.requester, depth },
            );
            let delay = ctx.data_latency();
            ctx.net.send(delay + ctx.now, NetMsg::Marker { to: req.requester, from: node.id, line });
        }
        _ => {
            // Lose (or deferred queue full): service earlier deferred
            // requests in order, then the conflicting request, then
            // restart.
            ctx.stats.node_mut(node.id).conflicts_lost += 1;
            ctx.stats.obs.conflicts.record(line.0);
            ctx.trace.record(ctx.now, node.id, TraceKind::ConflictLost { line: line.0, to: req.requester });
            service_deferred_all(node, ctx);
            supply_from_line(node, ctx, line, req.requester, exclusive);
            abort_txn(node, ctx, AbortKind::Conflict, Some(line));
        }
    }
}

/// Processes one snooped bus transaction at this node.
fn snoop_one(node: &mut Node, ctx: &mut Ctx, ev: &SnoopEvent) {
    let req = &ev.req;
    let line = req.line;
    let exclusive = req.kind.is_exclusive();
    let supplier = ev.supplier == Some(node.id);
    if req.requester == node.id {
        if let Some(m) = node.mshrs.get_mut(line) {
            m.ordered = true;
            m.ordered_at = ev.order_cycle;
        }
        return;
    }
    // 1a. We have an ordered shared miss outstanding and a later
    //     exclusive request is passing by (routed to someone else):
    //     our fill will be stale the moment it arrives.
    if !supplier && exclusive {
        if let Some(m) = node.mshrs.get_mut(line) {
            if m.ordered && !m.exclusive {
                m.invalidate_after_fill = true;
            }
        }
    }
    // 1b. Our own ordered request precedes this one and the ledger
    //     routed it to us: it chains at our MSHR.
    if supplier && node.mshrs.get(line).is_some_and(|m| m.ordered) {
        let our_exclusive;
        let our_ts;
        {
            let m = node.mshrs.get_mut(line).unwrap();
            our_exclusive = m.exclusive;
            our_ts = m.ts;
            m.interventions.push_back(Intervention {
                from: req.requester,
                exclusive,
                ts: req.ts,
                karma: req.karma,
            });
        }
        ctx.stats.node_mut(node.id).markers_sent += 1;
        ctx.trace.record(ctx.now, node.id, TraceKind::Marker { line: line.0, to: req.requester });
        let delay = ctx.data_latency();
        ctx.net.send(ctx.now + delay, NetMsg::Marker { to: req.requester, from: node.id, line });
        // Probe propagation (§3.1.1): if our transactional request is
        // going to lose to the incoming one, push the conflict
        // upstream toward the data holder.
        if node.txn.is_some() && our_ts.is_some() {
            let conflict = exclusive || our_exclusive;
            if conflict {
                if let Some(in_ts) = req.ts {
                    node.clock.observe_conflicting(in_ts);
                    let ours = Prio::new(node.timestamp(), node.karma);
                    let inp = Prio::new(in_ts, req.karma);
                    if ctx.policy.challenger_preempts(inp, ours, ctx.ts_bits()) {
                        let m = node.mshrs.get_mut(line).unwrap();
                        if let Some(up) = m.marker_from {
                            ctx.stats.node_mut(node.id).probes_sent += 1;
                            ctx.trace.record(ctx.now, node.id, TraceKind::Probe { line: line.0, to: up });
                            let delay = ctx.data_latency();
                            ctx.net.send(
                                ctx.now + delay,
                                NetMsg::Probe { to: up, line, ts: inp.ts, karma: inp.karma },
                            );
                        } else {
                            m.pending_probe = Some(inp);
                        }
                    }
                }
            }
        }
        return;
    }
    // 2. Line resident?
    if node.line(line).is_some() {
        let (state, conflicts, acquired_at) = {
            let l = node.line(line).unwrap();
            (l.state, node.txn.is_some() && l.conflicts_with(exclusive), l.acquired_at)
        };
        // Stale snoop: this copy was produced by a request ordered
        // *after* the snooped one, which was therefore satisfied by
        // the chain upstream of us. It cannot touch this copy.
        if acquired_at > ev.order_cycle {
            if supplier {
                redirect_to_memory(ctx, req, ev.other_sharers);
            }
            return;
        }
        if supplier && state.supplies() {
            if conflicts && state.retainable() {
                owner_conflict(node, ctx, req);
            } else {
                supply_from_line(node, ctx, line, req.requester, exclusive);
            }
            return;
        }
        if state.supplies() {
            // We hold the line exclusively but the ledger routed this
            // request elsewhere: we are in the middle of a coherence
            // chain, our successor is already recorded (deferred or as
            // an intervention), and this later request will be
            // satisfied downstream of us. Not our business.
            return;
        }
        // Plain snooper: state is Shared.
        if conflicts {
            // A shared block's invalidation cannot be deferred
            // (§3.1.2): misspeculate. A write to the elided lock
            // itself means another thread is *acquiring* it — restart
            // and re-elide once it is free again (§2.2), without
            // punishing the elision predictor. Under lazy subscription
            // a lock write instead arms the commit-time re-check.
            if is_lock_line(node, line) {
                if ctx.policy.lazy_subscription() {
                    if let Some(t) = node.txn.as_mut() {
                        t.lock_recheck = true;
                    }
                } else {
                    abort_txn(node, ctx, AbortKind::LockWrite, Some(line));
                }
            } else {
                abort_txn(node, ctx, AbortKind::SharerInvalidation, Some(line));
            }
        }
        let outcome = protocol::snoop(state, req.kind);
        if outcome.next == Moesi::Invalid {
            node.l1.take(line);
            node.victim.take(line);
            // The link register is cleared only by writes ordered
            // *before* our own pending exclusive request: if our GetX
            // is already ordered, this (later) request cannot break
            // the LL/SC atomicity of the store-conditional whose write
            // occupies our ordering slot.
            let our_x_ordered =
                node.mshrs.get(line).is_some_and(|m| m.ordered && m.exclusive);
            if node.core.link() == Some(line) && !our_x_ordered {
                node.core.clear_link();
            }
        } else if let Some(l) = node.line_mut(line) {
            l.state = outcome.next;
        }
        if supplier {
            redirect_to_memory(ctx, req, ev.other_sharers);
        }
        return;
    }
    // 3. Parked in the writeback buffer?
    if node.pending_wb_mut(line).is_some() {
        if supplier {
            let p = node.pending_wb_mut(line).unwrap();
            let data = p.data;
            if exclusive {
                p.cancelled = true;
            }
            let grant = if exclusive { DataGrant::Modified } else { DataGrant::Shared };
            let delay = ctx.data_latency();
            ctx.net.send(ctx.now + delay, NetMsg::Data { to: req.requester, line, data, grant, from_cache: true });
            ctx.stats.cache_to_cache_transfers += 1;
        }
        return;
    }
    // 4. Nothing here; if the ledger pointed at us it is stale (a
    //    silently evicted clean line): memory supplies.
    if supplier {
        redirect_to_memory(ctx, req, ev.other_sharers);
    }
}

/// Supplies a request from the memory side after a stale-owner snoop
/// miss.
fn redirect_to_memory(ctx: &mut Ctx, req: &BusRequest, other_sharers: bool) {
    dbglog!("[{}] REDIRECT line={} to={} kind={:?}", ctx.now, req.line.0, req.requester, req.kind);
    let _ = other_sharers;
    let (data, res) = ctx.memsys.supply(req.line);
    if res.l2_hit {
        ctx.stats.l2_supplies += 1;
    } else {
        ctx.stats.memory_supplies += 1;
    }
    // A redirect means the ledger-designated cache could not supply —
    // other caches may have picked up Shared copies since the request
    // was ordered, so a shared request must never be granted
    // Exclusive here (the order-time sharers snapshot is stale).
    let grant = protocol::fill_grant(req.kind, true, false);
    let delay = res.latency + ctx.data_latency();
    ctx.net.send(
        ctx.now + delay,
        NetMsg::Data { to: req.requester, line: req.line, data, grant, from_cache: false },
    );
}

/// Handles an arriving data response: installs the line, completes the
/// blocked core access, then services the intervention chain in order.
fn handle_fill(
    node: &mut Node,
    ctx: &mut Ctx,
    line: LineAddr,
    data: tlr_mem::LineData,
    grant: DataGrant,
    from_cache: bool,
) {
    let _ = from_cache;
    dbglog!("[{}] n{} FILL line={} grant={:?} ivs={} w2={:#x}", ctx.now, node.id, line.0, grant, node.mshrs.get(line).map(|m| m.interventions.len()).unwrap_or(99), data.0[2]);
    let mshr = node.mshrs.remove(line).expect("fill without MSHR");
    // Replace any existing copy (e.g. the Shared copy an exclusive
    // request upgraded over), carrying over its transactional access
    // bits — the upgrade is part of the same transaction. A dirty
    // local copy also keeps its data: it is newer than anything the
    // memory side could have supplied. The link register is *not*
    // cleared by our own upgrade.
    let old_copy = node.l1.take(line).or_else(|| node.victim.take(line));
    let mut entry = CacheLine::new(line, protocol::grant_state(grant), data);
    entry.acquired_at = if mshr.ordered { mshr.ordered_at } else { ctx.now };
    if let Some(old) = old_copy {
        if old.state.dirty() {
            entry.data = old.data;
        }
        entry.spec_read = old.spec_read;
        entry.spec_written = old.spec_written;
    }
    if node.txn.is_some() && node.wb.contains_line(line) {
        entry.spec_written = true;
    }
    if install_line(node, ctx, entry).is_err() {
        // A transactional line fell out of the victim cache: resource
        // fallback (§3.3). Speculative bits are cleared by the abort,
        // so the installed line stays resident as a normal line.
        abort_txn(node, ctx, AbortKind::Resource, Some(line));
    }
    // Complete the blocked core access, if it targets this line.
    if let (Some(acc), Some(Wait::Fill { line: wline, is_lock })) = (node.waiting_access, node.wait) {
        if wline == line {
            complete_access_after_fill(node, ctx, acc, line, is_lock);
        }
    }
    // Retire store-buffer entries that were waiting for this fill
    // *atomically with it* — otherwise a snoop arriving between the
    // fill and the next drain tick could steal the line before the
    // store lands, and under contention that race can repeat forever.
    loop {
        let before = node.sb.len();
        drain_store_buffer(node, ctx);
        if node.sb.len() == before {
            break;
        }
    }
    // A later exclusive request was ordered while this shared miss was
    // in flight: the waiting access consumed the (coherence-ordered-
    // correct) value above; the copy itself is already stale.
    if mshr.invalidate_after_fill {
        let was_spec = node.line(line).is_some_and(|l| l.spec_accessed());
        let lock = is_lock_line(node, line);
        node.l1.take(line);
        node.victim.take(line);
        if node.core.link() == Some(line) {
            node.core.clear_link();
        }
        if was_spec && node.txn.is_some() {
            if lock && ctx.policy.lazy_subscription() {
                // Lazy subscription: the overtaking lock write arms
                // the commit-time re-check instead of aborting.
                if let Some(t) = node.txn.as_mut() {
                    t.lock_recheck = true;
                }
            } else {
                let kind = if lock { AbortKind::LockWrite } else { AbortKind::SharerInvalidation };
                abort_txn(node, ctx, kind, Some(line));
            }
        }
    }
    // Service the intervention chain in order.
    process_interventions(node, ctx, line, mshr.interventions.into_iter().collect());
}

fn complete_access_after_fill(node: &mut Node, ctx: &mut Ctx, acc: MemAccess, line: LineAddr, is_lock: bool) {
    let _ = is_lock;
    match acc.kind {
        AccessKind::Load { .. } | AccessKind::LoadLinked { .. } => {
            let in_txn = node.txn.is_some();
            let l = node.line_mut(line).expect("filled line resident");
            if in_txn {
                l.spec_read = true;
            }
            let v = l.data.word(acc.addr);
            node.core.complete_load(v);
            if matches!(acc.kind, AccessKind::Load { .. }) {
                node.rmw_pred.record_load(acc.pc, line);
            }
            ctx.stats.node_mut(node.id).loads += 1;
        }
        AccessKind::StoreCond { val, .. } => {
            if node.core.link() != Some(line) {
                node.core.complete_sc(false);
                ctx.stats.node_mut(node.id).sc_fail += 1;
                node.wait = None;
                node.waiting_access = None;
                return;
            }
            if !node.line(line).is_some_and(|l| l.state.writable()) {
                // The fill that completed was a shared grant (the SC
                // piggybacked on an earlier GetS miss): exclusive
                // ownership is still required before the write.
                if node.mshrs.get(line).is_some() || issue_miss(node, ctx, line, true, None) {
                    // keep waiting on the new exclusive fill
                } else {
                    node.wait = Some(Wait::MshrFull { is_lock });
                }
                return;
            }
            {
                let l = node.line_mut(line).expect("filled line resident");
                let old = l.data.word(acc.addr);
                l.data.set_word(acc.addr, val);
                l.state = Moesi::Modified;
                dbglog!("[{}] n{} SCf [{:#x}]={:#x} (old {:#x})", ctx.now, node.id, acc.addr.0, val, old);
                node.core.complete_sc(true);
                let ns = ctx.stats.node_mut(node.id);
                ns.sc_success += 1;
                ns.stores += 1;
                node.sle_pred.observe_atomic_store(acc.pc, acc.addr, old, val);
                if node.suppress_elide_at == Some(acc.pc) {
                    node.suppress_elide_at = None;
                }
                if ctx.lock_addrs.contains(&acc.addr) {
                    ctx.trace.record(ctx.now, node.id, TraceKind::LockAcquired { lock_addr: acc.addr.0 });
                }
            }
        }
        AccessKind::Store { .. } | AccessKind::Fence => {
            unreachable!("stores and fences never block on fills")
        }
    }
    node.wait = None;
    node.waiting_access = None;
}

/// Services interventions queued behind a completed miss, applying the
/// same conflict rules as direct snoops.
fn process_interventions(node: &mut Node, ctx: &mut Ctx, line: LineAddr, ivs: Vec<Intervention>) {
    for (idx, iv) in ivs.iter().enumerate() {
        let conflicts = node.txn.is_some()
            && node.line(line).is_some_and(|l| l.conflicts_with(iv.exclusive));
        if !conflicts {
            chain_supply(node, ctx, line, iv);
            continue;
        }
        // Lazy subscription: a chained request for an elided lock line
        // is supplied without aborting; the commit re-checks the word.
        if ctx.policy.lazy_subscription() && is_lock_line(node, line) {
            if let Some(t) = node.txn.as_mut() {
                t.lock_recheck = true;
            }
            chain_supply(node, ctx, line, iv);
            continue;
        }
        // Note: even under NACK retention, interventions use the
        // deferral machinery — they were ordered into the coherence
        // chain before this node had data, i.e. before any NACK could
        // have been asserted at the bus. Only order-point refusals
        // (`nack_at_order`) implement the NACK policy proper.
        match decide_conflict(node, ctx, line, iv.ts.map(|t| Prio::new(t, iv.karma))) {
            ConflictDecision::Defer { relaxed } if node.deferred.len() < node.deferred_cap => {
                node.deferred.push_back(DeferredReq {
                    line,
                    from: iv.from,
                    exclusive: iv.exclusive,
                    ts: iv.ts,
                    karma: iv.karma,
                });
                let depth = node.deferred.len() as u32;
                let ns = ctx.stats.node_mut(node.id);
                ns.requests_deferred += 1;
                if relaxed {
                    ns.single_block_relaxations += 1;
                }
                ctx.stats.obs.deferral_depth.record(depth as u64);
                ctx.stats.obs.conflicts.record(line.0);
                ctx.trace.record(
                    ctx.now,
                    node.id,
                    TraceKind::Defer { line: line.0, from: iv.from, depth },
                );
                // The marker was already sent when the intervention was
                // queued.
            }
            _ => {
                ctx.stats.node_mut(node.id).conflicts_lost += 1;
                ctx.stats.obs.conflicts.record(line.0);
                ctx.trace.record(ctx.now, node.id, TraceKind::ConflictLost { line: line.0, to: iv.from });
                service_deferred_all(node, ctx);
                chain_supply(node, ctx, line, iv);
                abort_txn(node, ctx, AbortKind::Conflict, Some(line));
                // Remaining interventions are serviced outside any
                // transaction.
                for later in &ivs[idx + 1..] {
                    chain_supply(node, ctx, line, later);
                }
                return;
            }
        }
    }
}

/// Supplies an intervention from the current copy, even when the local
/// state would not normally supply (request-response decoupling: the
/// chain made us the temporary owner).
fn chain_supply(node: &mut Node, ctx: &mut Ctx, line: LineAddr, iv: &Intervention) {
    let delay = ctx.data_latency();
    if node.line(line).is_none() {
        // The line was evicted into the writeback buffer, or (under
        // NACK retention, where retried orderings can stack several
        // exclusive interventions on one MSHR) already handed to an
        // earlier intervener.
        if let Some(p) = node.pending_wb_mut(line) {
            let data = p.data;
            if iv.exclusive {
                p.cancelled = true;
            }
            let grant = if iv.exclusive { DataGrant::Modified } else { DataGrant::Shared };
            ctx.net.send(ctx.now + delay, NetMsg::Data { to: iv.from, line, data, grant, from_cache: true });
            ctx.stats.cache_to_cache_transfers += 1;
            return;
        }
        debug_assert!(
            ctx.cfg.retention == tlr_sim::config::RetentionPolicy::Nack,
            "chain supply for line {line} that is not resident"
        );
        ctx.stats.node_mut(node.id).nacks_sent += 1;
        ctx.net.send(ctx.now + delay, NetMsg::Nack { to: iv.from, line });
        return;
    }
    let l = node
        .line_mut(line)
        .unwrap_or_else(|| panic!("chain supply for line {line} that is not resident"));
    let data = l.data;
    let grant = if iv.exclusive { DataGrant::Modified } else { DataGrant::Shared };
    if iv.exclusive {
        node.l1.take(line);
        node.victim.take(line);
        if node.core.link() == Some(line) {
            node.core.clear_link();
        }
    } else if l.state == Moesi::Modified {
        l.state = Moesi::Owned;
    } else if l.state == Moesi::Exclusive {
        l.state = Moesi::Shared;
    }
    dbglog!("[{}] n{} CHAIN line={} to={} x={} w2={:#x}", ctx.now, node.id, line.0, iv.from, iv.exclusive, data.0[2]);
    ctx.net.send(ctx.now + delay, NetMsg::Data { to: iv.from, line, data, grant, from_cache: true });
    ctx.stats.cache_to_cache_transfers += 1;
}

/// Handles an arriving marker: remembers the upstream neighbour and
/// forwards any pending probe (or a losing queued intervention's
/// timestamp) toward it.
fn handle_marker(node: &mut Node, ctx: &mut Ctx, line: LineAddr, from: NodeId) {
    let in_txn = node.txn.is_some();
    let ours = Prio::new(node.timestamp(), node.karma);
    let bits = ctx.ts_bits();
    let policy = ctx.policy;
    let Some(m) = node.mshrs.get_mut(line) else { return };
    m.marker_from = Some(from);
    let mut fwd: Option<Prio> = m.pending_probe.take();
    if in_txn && m.ts.is_some() {
        let our_exclusive = m.exclusive;
        for iv in &m.interventions {
            if let Some(ts) = iv.ts {
                let cand = Prio::new(ts, iv.karma);
                if (iv.exclusive || our_exclusive)
                    && policy.challenger_preempts(cand, ours, bits)
                    && fwd.is_none_or(|f| policy.outranks(cand, f, bits))
                {
                    fwd = Some(cand);
                }
            }
        }
    }
    if let Some(pr) = fwd {
        ctx.stats.node_mut(node.id).probes_sent += 1;
        ctx.trace.record(ctx.now, node.id, TraceKind::Probe { line: line.0, to: from });
        let delay = ctx.data_latency();
        ctx.net.send(ctx.now + delay, NetMsg::Probe { to: from, line, ts: pr.ts, karma: pr.karma });
    }
}

/// Handles an arriving probe (§3.1.1): a conflicting earlier
/// timestamp is chasing the data. If we hold the block and are
/// deferring, we lose and release; if we are also pending, forward the
/// probe upstream.
fn handle_probe(node: &mut Node, ctx: &mut Ctx, line: LineAddr, prio: Prio) {
    ctx.stats.node_mut(node.id).probes_received += 1;
    if node.txn.is_none() {
        return;
    }
    node.clock.observe_conflicting(prio.ts);
    let ours = Prio::new(node.timestamp(), node.karma);
    if !ctx.policy.challenger_preempts(prio, ours, ctx.ts_bits()) {
        return; // we have priority; the prober waits
    }
    if node.deferred.iter().any(|d| d.line == line) {
        ctx.stats.node_mut(node.id).conflicts_lost += 1;
        ctx.stats.obs.conflicts.record(line.0);
        ctx.trace.record(ctx.now, node.id, TraceKind::ConflictLost { line: line.0, to: usize::MAX });
        service_deferred_all(node, ctx);
        abort_txn(node, ctx, AbortKind::Conflict, Some(line));
    } else if let Some(m) = node.mshrs.get_mut(line) {
        if let Some(up) = m.marker_from {
            ctx.stats.node_mut(node.id).probes_sent += 1;
            let delay = ctx.data_latency();
            ctx.net.send(ctx.now + delay, NetMsg::Probe { to: up, line, ts: prio.ts, karma: prio.karma });
        } else {
            m.pending_probe = Some(prio);
        }
    }
}

/// Retries the wait the core is blocked on.
fn retry_wait(node: &mut Node, ctx: &mut Ctx) {
    match node.wait.expect("retry without wait") {
        Wait::Fill { is_lock, .. } => charge_stall(node, ctx, is_lock),
        Wait::StoreBufFull => {
            if node.sb.is_full() {
                ctx.stats.node_mut(node.id).store_buffer_full_cycles += 1;
            } else {
                redo_access(node, ctx);
            }
        }
        Wait::MshrFull { is_lock } => {
            if node.mshrs.is_full() {
                charge_stall(node, ctx, is_lock);
            } else {
                redo_access(node, ctx);
            }
        }
        Wait::Drain { is_lock } => {
            if node.sb.is_empty() {
                redo_access(node, ctx);
            } else {
                charge_stall(node, ctx, is_lock);
            }
        }
        Wait::Commit => unreachable!("commit wait handled before core dispatch"),
        Wait::Io { until } => {
            if ctx.now >= until {
                node.core.complete_io();
                node.wait = None;
            } else {
                ctx.stats.node_mut(node.id).data_stall_cycles += 1;
            }
        }
    }
}

fn charge_stall(node: &mut Node, ctx: &mut Ctx, is_lock: bool) {
    let ns = ctx.stats.node_mut(node.id);
    if is_lock {
        ns.lock_stall_cycles += 1;
    } else {
        ns.data_stall_cycles += 1;
    }
}

fn redo_access(node: &mut Node, ctx: &mut Ctx) {
    node.wait = None;
    let acc = node.waiting_access.take().expect("redo without access");
    handle_access(node, ctx, acc);
}

fn charge_busy(node: &mut Node, ctx: &mut Ctx, is_lock: bool) {
    let ns = ctx.stats.node_mut(node.id);
    if is_lock {
        ns.lock_busy_cycles += 1;
    } else {
        ns.busy_cycles += 1;
    }
}

/// Sends a negative acknowledgement for `line` to `to` and reverts
/// protocol ownership to this node (NACK retention, §3).
/// Handles an incoming NACK (the request's bus transaction was
/// annulled at the ordering point, so no chain ever formed behind
/// it): simply retry after a randomized backoff.
fn handle_nack(node: &mut Node, ctx: &mut Ctx, line: LineAddr) {
    ctx.stats.node_mut(node.id).nacks_received += 1;
    if node.mshrs.get(line).is_some() {
        let attempt = {
            let m = node.mshrs.get_mut(line).expect("checked above");
            m.retries += 1;
            m.retries
        };
        let env = RetryEnv {
            seed: ctx.cfg.seed,
            node: node.id,
            line: line.0,
            attempt,
            base: ctx.cfg.latency.data_network,
        };
        match ctx.policy.retry_pacing(&env, ctx.rng) {
            RetryPacing::Retry { delay } => {
                node.nack_retries.schedule(ctx.now + delay, line);
            }
            RetryPacing::Restart { delay } => {
                // Backoff's probabilistic cycle breaker: the repeated
                // loser restarts its own transaction (the MSHR and its
                // retry count survive, so the delay keeps growing).
                node.nack_retries.schedule(ctx.now + delay, line);
                abort_txn(node, ctx, AbortKind::Conflict, Some(line));
            }
        }
    }
}

/// Re-issues NACKed requests whose backoff has expired.
fn retry_nacked(node: &mut Node, ctx: &mut Ctx) {
    for line in node.nack_retries.take_due(ctx.now) {
        if let Some(m) = node.mshrs.get(line) {
            ctx.send_req(
                node.id,
                BusRequest {
                    requester: node.id,
                    line,
                    kind: if m.exclusive { BusReqKind::GetX } else { BusReqKind::GetS },
                    ts: m.ts,
                    karma: if m.ts.is_some() { node.karma } else { 0 },
                    wb_data: None,
                    enqueued_at: ctx.now,
                },
            );
        }
    }
}

/// Whether `line` holds one of the transaction's elided lock words.
fn is_lock_line(node: &Node, line: LineAddr) -> bool {
    node.txn
        .as_ref()
        .is_some_and(|t| t.elided.iter().any(|e| e.addr.line() == line))
}

/// §3.2 enforcement: the single-block relaxation may have deferred a
/// request with an *earlier* timestamp; that is deadlock-free only
/// while the transaction touches no other contested block. The moment
/// it is about to generate another transactional miss, strict
/// timestamp order must be restored: lose the held conflict now.
/// Returns `true` if the transaction was aborted (the caller's access
/// was squashed by the restore).
fn enforce_ts_order_before_miss(node: &mut Node, ctx: &mut Ctx, line: LineAddr) -> bool {
    if node.txn.is_none() || node.deferred.is_empty() {
        return false;
    }
    let ours = Prio::new(node.timestamp(), node.karma);
    // Losing cases: (a) a deferred request has a higher priority
    // (the §3.2 relaxation must now yield), or (b) the new exclusive
    // request targets a line we are deferring — it would be ordered
    // *behind* the deferred requester and wait on our own commit.
    let must_lose = node.deferred.iter().any(|d| {
        d.line == line
            || d.ts.is_some_and(|t| {
                ctx.policy.deferred_blocks_miss(Prio::new(t, d.karma), ours, ctx.ts_bits())
            })
    });
    if !must_lose {
        return false;
    }
    ctx.stats.node_mut(node.id).conflicts_lost += 1;
    ctx.stats.obs.conflicts.record(line.0);
    service_deferred_all(node, ctx);
    abort_txn(node, ctx, AbortKind::Conflict, Some(line));
    true
}

/// Dispatches a fresh core memory access.
fn handle_access(node: &mut Node, ctx: &mut Ctx, acc: MemAccess) {
    let is_lock = ctx.lock_addrs.contains(&acc.addr);
    match acc.kind {
        AccessKind::Fence => {
            if node.sb.is_empty() {
                node.core.complete_fence();
                charge_busy(node, ctx, false);
            } else {
                node.wait = Some(Wait::Drain { is_lock: false });
                node.waiting_access = Some(acc);
            }
        }
        AccessKind::Load { .. } | AccessKind::LoadLinked { .. } => {
            handle_load(node, ctx, acc, is_lock)
        }
        AccessKind::Store { val } => handle_store(node, ctx, acc, val, is_lock),
        AccessKind::StoreCond { val, .. } => handle_sc(node, ctx, acc, val, is_lock),
    }
}

fn handle_load(node: &mut Node, ctx: &mut Ctx, acc: MemAccess, is_lock: bool) {
    let line = acc.addr.line();
    let is_ll = matches!(acc.kind, AccessKind::LoadLinked { .. });
    let in_txn = node.txn.is_some();
    ctx.stats.node_mut(node.id).loads += 1;
    if is_ll {
        ctx.stats.node_mut(node.id).ll_ops += 1;
        // LL orders after older stores to the same line (link
        // semantics require observing memory, not the store buffer).
        if node.sb.has_store_to_line(line) {
            ctx.stats.node_mut(node.id).loads -= 1;
            node.wait = Some(Wait::Drain { is_lock });
            node.waiting_access = Some(acc);
            return;
        }
    }
    // Transactional loads see the transaction's own buffered stores.
    if in_txn {
        if let Some(v) = node.wb.read_word(acc.addr) {
            node.core.complete_load(v);
            if !is_ll {
                node.rmw_pred.record_load(acc.pc, line);
            }
            ctx.stats.node_mut(node.id).l1_hits += 1;
            charge_busy(node, ctx, is_lock);
            return;
        }
    } else if !is_ll {
        if let Some(v) = node.sb.forward(acc.addr) {
            node.core.complete_load(v);
            node.rmw_pred.record_load(acc.pc, line);
            ctx.stats.node_mut(node.id).l1_hits += 1;
            charge_busy(node, ctx, is_lock);
            return;
        }
    }
    if node.line(line).is_some() {
        let hit_in_victim = !node.l1.contains(line);
        let l = node.line_mut(line).unwrap();
        if in_txn {
            l.spec_read = true;
        }
        let state = l.state;
        let v = l.data.word(acc.addr);
        node.core.complete_load(v);
        if !is_ll {
            node.rmw_pred.record_load(acc.pc, line);
        }
        let ns = ctx.stats.node_mut(node.id);
        ns.l1_hits += 1;
        if hit_in_victim {
            ns.victim_hits += 1;
        }
        // Escalation (§3.1.2): after repeated shared-block
        // invalidations, convert read-shared transactional blocks to
        // owned state so external requests become deferrable. The
        // elided lock line itself stays shared — upgrading it would
        // needlessly restart every other eliding processor.
        if in_txn
            && ctx.cfg.scheme.tlr_enabled()
            && node.reads_exclusive()
            && state == Moesi::Shared
            && !is_lock_line(node, line)
            && node.mshrs.get(line).is_none()
            && !enforce_ts_order_before_miss(node, ctx, line)
        {
            let ts = Some(node.timestamp());
            issue_miss(node, ctx, line, true, ts);
        }
        charge_busy(node, ctx, is_lock);
        return;
    }
    if node.pending_wb_mut(line).is_some() {
        // Re-acquire the dirty line from the writeback buffer.
        let p = node.pending_wb_mut(line).unwrap();
        p.cancelled = true;
        let data = p.data;
        let mut entry = CacheLine::new(line, Moesi::Modified, data);
        entry.acquired_at = ctx.now;
        if in_txn {
            entry.spec_read = true;
        }
        let v = data.word(acc.addr);
        if install_line(node, ctx, entry).is_err() {
            abort_txn(node, ctx, AbortKind::Resource, Some(line));
            return;
        }
        node.core.complete_load(v);
        if !is_ll {
            node.rmw_pred.record_load(acc.pc, line);
        }
        charge_busy(node, ctx, is_lock);
        return;
    }
    // Miss.
    if node.mshrs.get(line).is_some() {
        node.wait = Some(Wait::Fill { line, is_lock });
        node.waiting_access = Some(acc);
        return;
    }
    if node.mshrs.is_full() {
        node.wait = Some(Wait::MshrFull { is_lock });
        node.waiting_access = Some(acc);
        return;
    }
    if in_txn && enforce_ts_order_before_miss(node, ctx, line) {
        return;
    }
    let escalated = in_txn
        && ctx.cfg.scheme.tlr_enabled()
        && node.reads_exclusive()
        && !is_lock_line(node, line);
    let exclusive = node.rmw_pred.predicts_store(acc.pc) || escalated;
    if exclusive {
        ctx.stats.node_mut(node.id).rmw_upgraded_loads += 1;
    }
    let ts = if in_txn { Some(node.timestamp()) } else { None };
    issue_miss(node, ctx, line, exclusive, ts);
    node.wait = Some(Wait::Fill { line, is_lock });
    node.waiting_access = Some(acc);
}

fn handle_store(node: &mut Node, ctx: &mut Ctx, acc: MemAccess, val: u64, is_lock: bool) {
    let line = acc.addr.line();
    ctx.stats.node_mut(node.id).stores += 1;
    if node.txn.is_some() {
        // Release-store detection: the second, silent store of the
        // elided pair.
        let closed = node.txn.as_mut().unwrap().try_close(acc.addr, val);
        if closed {
            if ctx.lock_addrs.contains(&acc.addr) {
                ctx.trace.record(ctx.now, node.id, TraceKind::LockReleased { lock_addr: acc.addr.0 });
            }
            if node.txn.as_ref().unwrap().all_closed() {
                // Transaction end: hold the release store until commit.
                let txn = node.txn.as_mut().unwrap();
                txn.committing = true;
                txn.commit_entered_at = Some(ctx.now);
                node.wait = Some(Wait::Commit);
                node.waiting_access = Some(acc);
                try_commit(node, ctx);
            } else {
                node.core.complete_store();
                charge_busy(node, ctx, is_lock);
            }
            return;
        }
        // Ordinary speculative data store: buffer in the write buffer
        // and request exclusive ownership asynchronously.
        if node.wb.write(acc.addr, val).is_err() {
            abort_txn(node, ctx, AbortKind::Resource, Some(line));
            return;
        }
        node.rmw_pred.record_store(line);
        let mut need_exclusive = true;
        if let Some(l) = node.line_mut(line) {
            l.spec_written = true;
            if l.state.writable() {
                need_exclusive = false;
            }
        }
        if need_exclusive && !node.line(line).is_some_and(|l| l.state.writable()) {
            if node.mshrs.get(line).is_none() && enforce_ts_order_before_miss(node, ctx, line) {
                return;
            }
            let ts = Some(node.timestamp());
            if node.mshrs.get(line).is_some_and(|m| m.exclusive) {
                // Exclusive request already in flight.
            } else if node.mshrs.get(line).is_some() || !issue_miss(node, ctx, line, true, ts) {
                node.txn_pending_x.push(line);
            }
        }
        node.core.complete_store();
        charge_busy(node, ctx, is_lock);
        return;
    }
    // Non-speculative store: retire into the store buffer.
    if node.sb.is_full() {
        node.wait = Some(Wait::StoreBufFull);
        node.waiting_access = Some(acc);
        return;
    }
    node.sb.push(acc.addr, val);
    node.rmw_pred.record_store(line);
    node.sle_pred.observe_store(acc.addr, val);
    if ctx.lock_addrs.contains(&acc.addr) {
        ctx.trace.record(ctx.now, node.id, TraceKind::LockReleased { lock_addr: acc.addr.0 });
    }
    node.core.complete_store();
    charge_busy(node, ctx, is_lock);
}

fn handle_sc(node: &mut Node, ctx: &mut Ctx, acc: MemAccess, val: u64, is_lock: bool) {
    let line = acc.addr.line();
    // The SC marks its line as a lock word: the read-modify-write
    // predictor must never turn spin loads of it into exclusive
    // fetches (§3.1.2 optimizes data inside critical sections).
    node.rmw_pred.record_atomic(line);
    // Atomic operations drain the store buffer first.
    if !node.sb.is_empty() {
        node.wait = Some(Wait::Drain { is_lock });
        node.waiting_access = Some(acc);
        return;
    }
    let in_txn = node.txn.is_some();
    let link_ok = node.core.link() == Some(line);
    let cur_val = node.line(line).map(|l| l.data.word(acc.addr));
    // --- Elision decision (Figure 3, step 2) ---
    let may_elide = ctx.cfg.scheme.elision_enabled()
        && node.suppress_elide_at != Some(acc.pc)
        && node.sle_pred.should_elide(acc.pc)
        && link_ok
        && cur_val.is_some_and(|old| old != val);
    if may_elide {
        let old = cur_val.unwrap();
        if let Some(txn) = node.txn.as_mut() {
            if txn.open_depth() < ctx.cfg.max_elision_depth {
                // Nested elision.
                txn.elided.push(ElidedLock {
                    addr: acc.addr,
                    free_value: old,
                    held_value: val,
                    pc: acc.pc,
                    closed: false,
                });
                node.line_mut(line).expect("lock line resident").spec_read = true;
                node.core.complete_sc(true);
                ctx.stats.node_mut(node.id).sc_elided += 1;
                charge_busy(node, ctx, is_lock);
                return;
            }
            // Nesting exhausted: "the inner lock is treated as data"
            // (§4) — fall through to the transactional-write path.
        } else {
            let cp = node.core.checkpoint();
            node.txn = Some(Txn::new(
                cp,
                ElidedLock {
                    addr: acc.addr,
                    free_value: old,
                    held_value: val,
                    pc: acc.pc,
                    closed: false,
                },
                ctx.now,
            ));
            node.line_mut(line).expect("lock line resident").spec_read = true;
            node.core.complete_sc(true);
            let ns = ctx.stats.node_mut(node.id);
            ns.sc_elided += 1;
            ns.elisions_started += 1;
            ctx.trace.record(ctx.now, node.id, TraceKind::TxnStart { lock_addr: acc.addr.0 });
            charge_busy(node, ctx, is_lock);
            return;
        }
    }
    if in_txn {
        // A store-conditional executed inside a transaction that is
        // not (or cannot be) elided is a speculative data write.
        if !link_ok {
            node.core.complete_sc(false);
            ctx.stats.node_mut(node.id).sc_fail += 1;
            charge_busy(node, ctx, is_lock);
            return;
        }
        if node.wb.write(acc.addr, val).is_err() {
            abort_txn(node, ctx, AbortKind::Resource, Some(line));
            return;
        }
        node.rmw_pred.record_store(line);
        let needs_issue = match node.line_mut(line) {
            Some(l) => {
                l.spec_written = true;
                !l.state.writable() && node.mshrs.get(line).is_none()
            }
            None => node.mshrs.get(line).is_none(),
        };
        if needs_issue {
            if enforce_ts_order_before_miss(node, ctx, line) {
                return;
            }
            let ts = Some(node.timestamp());
            if !issue_miss(node, ctx, line, true, ts) {
                node.txn_pending_x.push(line);
            }
        }
        node.core.complete_sc(true);
        ctx.stats.node_mut(node.id).sc_success += 1;
        charge_busy(node, ctx, is_lock);
        return;
    }
    // --- Real (non-elided) store-conditional ---
    if !link_ok {
        node.core.complete_sc(false);
        ctx.stats.node_mut(node.id).sc_fail += 1;
        charge_busy(node, ctx, is_lock);
        return;
    }
    if node.line(line).is_some_and(|l| l.state.writable()) {
        let l = node.line_mut(line).unwrap();
        let old = l.data.word(acc.addr);
        l.data.set_word(acc.addr, val);
        l.state = Moesi::Modified;
        dbglog!("[{}] n{} SC [{:#x}]={:#x} (old {:#x})", ctx.now, node.id, acc.addr.0, val, old);
        node.core.complete_sc(true);
        let ns = ctx.stats.node_mut(node.id);
        ns.sc_success += 1;
        ns.stores += 1;
        node.sle_pred.observe_atomic_store(acc.pc, acc.addr, old, val);
        if node.suppress_elide_at == Some(acc.pc) {
            node.suppress_elide_at = None;
        }
        if ctx.lock_addrs.contains(&acc.addr) {
            ctx.trace.record(ctx.now, node.id, TraceKind::LockAcquired { lock_addr: acc.addr.0 });
        }
        charge_busy(node, ctx, is_lock);
        return;
    }
    // Need exclusive ownership first.
    if node.mshrs.get(line).is_some() {
        node.wait = Some(Wait::Fill { line, is_lock });
        node.waiting_access = Some(acc);
        return;
    }
    if node.mshrs.is_full() {
        node.wait = Some(Wait::MshrFull { is_lock });
        node.waiting_access = Some(acc);
        return;
    }
    issue_miss(node, ctx, line, true, None);
    node.wait = Some(Wait::Fill { line, is_lock });
    node.waiting_access = Some(acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_cpu::Asm;
    use tlr_sim::config::Scheme;

    type ProgramBuilder = Box<dyn FnOnce(&mut Asm)>;

    fn machine_with(scheme: Scheme, builders: Vec<ProgramBuilder>) -> Machine {
        let n = builders.len();
        let mut cfg = MachineConfig::small(scheme, n);
        cfg.max_cycles = 2_000_000;
        let programs = builders
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let mut a = Asm::new(format!("p{i}"));
                b(&mut a);
                a.done();
                Arc::new(a.finish())
            })
            .collect();
        Machine::new(cfg, programs, HashSet::new())
    }

    #[test]
    fn single_node_store_then_load_roundtrip() {
        let mut m = machine_with(
            Scheme::Base,
            vec![Box::new(|a: &mut Asm| {
                let (v, addr, out) = (a.reg(), a.reg(), a.reg());
                a.li(addr, 0x1000);
                a.li(v, 77);
                a.store(v, addr, 0);
                a.load(out, addr, 0);
                a.li(addr, 0x2000);
                a.store(out, addr, 0);
            })],
        );
        m.run().unwrap();
        assert_eq!(m.final_word(Addr(0x1000)), 77);
        assert_eq!(m.final_word(Addr(0x2000)), 77);
    }

    #[test]
    fn initial_image_is_visible() {
        let mut m = machine_with(
            Scheme::Base,
            vec![Box::new(|a: &mut Asm| {
                let (addr, v, dst) = (a.reg(), a.reg(), a.reg());
                a.li(addr, 0x40);
                a.load(v, addr, 0);
                a.li(dst, 0x2000);
                a.store(v, dst, 0);
            })],
        );
        m.init_word(Addr(0x40), 1234);
        m.run().unwrap();
        assert_eq!(m.final_word(Addr(0x2000)), 1234);
    }

    #[test]
    fn two_nodes_transfer_modified_line() {
        // Node 0 stores, node 1 spins until it observes the value.
        let mut m = machine_with(
            Scheme::Base,
            vec![
                Box::new(|a: &mut Asm| {
                    let (v, addr) = (a.reg(), a.reg());
                    a.li(addr, 0x1000);
                    a.li(v, 9);
                    a.store(v, addr, 0);
                }),
                Box::new(|a: &mut Asm| {
                    let (v, addr, nine) = (a.reg(), a.reg(), a.reg());
                    a.li(addr, 0x1000);
                    a.li(nine, 9);
                    let spin = a.here();
                    a.load(v, addr, 0);
                    a.bne(v, nine, spin);
                }),
            ],
        );
        m.run().unwrap();
        assert_eq!(m.final_word(Addr(0x1000)), 9);
        assert!(m.stats().cache_to_cache_transfers + m.stats().memory_supplies > 0);
    }

    #[test]
    fn ll_sc_increments_atomically_across_nodes() {
        // Two nodes each perform 50 LL/SC increments of one word.
        let builder = |a: &mut Asm| {
            let (count, zero, addr, v, flag, one) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
            a.li(count, 50);
            a.li(zero, 0);
            a.li(one, 1);
            a.li(addr, 0x1000);
            let top = a.here();
            let retry = a.here();
            a.ll(v, addr, 0);
            a.add(v, v, one);
            a.sc(flag, v, addr, 0);
            a.beq(flag, zero, retry);
            a.addi(count, count, -1);
            a.bne(count, zero, top);
        };
        let mut m = machine_with(Scheme::Base, vec![Box::new(builder), Box::new(builder)]);
        m.run().unwrap();
        assert_eq!(m.final_word(Addr(0x1000)), 100);
    }

    #[test]
    fn quiesce_waits_for_store_buffer_and_writebacks() {
        let mut m = machine_with(
            Scheme::Base,
            vec![Box::new(|a: &mut Asm| {
                let (v, addr) = (a.reg(), a.reg());
                a.li(v, 5);
                // Store to many distinct lines to force evictions and
                // writebacks in the small test cache.
                for i in 0..64u64 {
                    a.li(addr, 0x1_0000 + i * 64);
                    a.store(v, addr, 0);
                }
            })],
        );
        m.run().unwrap();
        for i in 0..64u64 {
            assert_eq!(m.final_word(Addr(0x1_0000 + i * 64)), 5, "line {i}");
        }
    }

    #[test]
    fn timeout_reported() {
        let mut m = machine_with(
            Scheme::Base,
            vec![Box::new(|a: &mut Asm| {
                let (z, addr, v) = (a.reg(), a.reg(), a.reg());
                a.li(z, 0);
                a.li(addr, 0x40);
                let spin = a.here();
                a.load(v, addr, 0);
                a.beq(v, z, spin); // spins forever on zero
            })],
        );
        // Shrink the budget.
        m.cfg.max_cycles = 5_000;
        let err = m.run().unwrap_err();
        assert!(err.cycle >= 5_000);
        assert!(err.to_string().contains("did not quiesce"));
    }
}
