//! The instruction-based read-modify-write predictor (§3.1.2).
//!
//! "Load operations within a critical section are recorded and any
//! store operations within the critical section to the same address
//! results in the predictor update occurring corresponding to the
//! appropriate load operation. ... The predictor is indexed by
//! instruction address." A predicted load fetches its line in
//! exclusive state directly, avoiding the later upgrade whose
//! invalidations cannot be deferred and would otherwise misspeculate
//! sharers.
//!
//! The paper uses a 128-entry PC-indexed predictor for *all*
//! experiments (BASE, SLE, TLR and MCS); the `exp_rmw_predictor`
//! harness reproduces the §6.3 BASE vs BASE-no-opt comparison by
//! disabling it.

use tlr_mem::addr::LineAddr;

/// How many recent loads are remembered for matching stores against.
const HISTORY: usize = 16;

/// How many lock lines (targets of store-conditionals) are remembered
/// and excluded from training.
const ATOMIC_EXCLUSIONS: usize = 8;

/// PC-indexed read-modify-write predictor with a small recent-load
/// history used for training.
///
/// Lines targeted by store-conditionals are excluded: the predictor
/// optimizes read-modify-write of *data* within critical sections,
/// not the lock acquire/release idiom itself (turning a spin load
/// into an exclusive fetch would defeat test&test&set's local
/// spinning).
#[derive(Debug, Clone)]
pub struct RmwPredictor {
    /// Direct-mapped table of load PCs predicted to be followed by a
    /// store to the same line. Entries hold (pc, confidence).
    table: Vec<Option<(u32, u8)>>,
    /// Recently committed loads: (pc, line).
    recent_loads: Vec<(u32, LineAddr)>,
    /// Recently observed store-conditional target lines (lock words).
    atomic_lines: Vec<LineAddr>,
    enabled: bool,
}

impl RmwPredictor {
    /// Creates a predictor with `entries` table slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, enabled: bool) -> Self {
        assert!(entries.is_power_of_two(), "predictor entries must be a power of two");
        RmwPredictor {
            table: vec![None; entries],
            recent_loads: Vec::new(),
            atomic_lines: Vec::new(),
            enabled,
        }
    }

    fn slot(&self, pc: u32) -> usize {
        pc as usize & (self.table.len() - 1)
    }

    /// Records a committed (plain) load so later stores can train
    /// against it. Load-linked operations are not recorded.
    pub fn record_load(&mut self, pc: u32, line: LineAddr) {
        if !self.enabled || self.atomic_lines.contains(&line) {
            return;
        }
        if self.recent_loads.len() == HISTORY {
            self.recent_loads.remove(0);
        }
        self.recent_loads.push((pc, line));
    }

    /// Replays `count` identical spin-loop loads in one call — exactly
    /// equivalent to `count` [`RmwPredictor::record_load`]`(pc, line)`
    /// calls, because after [`HISTORY`] identical pushes the history
    /// holds only `(pc, line)` and further pushes change nothing. The
    /// event engine uses this to settle a fast-forwarded spin window.
    pub fn replay_spin_loads(&mut self, pc: u32, line: LineAddr, count: u64) {
        for _ in 0..count.min(HISTORY as u64) {
            self.record_load(pc, line);
        }
    }

    /// Records a store-conditional target: the line is a lock word,
    /// excluded from training so spin loads never fetch exclusive.
    pub fn record_atomic(&mut self, line: LineAddr) {
        if !self.enabled || self.atomic_lines.contains(&line) {
            return;
        }
        if self.atomic_lines.len() == ATOMIC_EXCLUSIONS {
            self.atomic_lines.remove(0);
        }
        self.atomic_lines.push(line);
        self.recent_loads.retain(|&(_, l)| l != line);
    }

    /// Records a committed store: any recent load of the same line
    /// trains the predictor for that load's PC.
    pub fn record_store(&mut self, line: LineAddr) {
        if !self.enabled || self.atomic_lines.contains(&line) {
            return;
        }
        let mut trained = Vec::new();
        self.recent_loads.retain(|&(pc, l)| {
            if l == line {
                trained.push(pc);
                false
            } else {
                true
            }
        });
        for pc in trained {
            let s = self.slot(pc);
            match &mut self.table[s] {
                Some((p, conf)) if *p == pc => *conf = (*conf + 1).min(3),
                e => *e = Some((pc, 1)),
            }
        }
    }

    /// Whether a load at `pc` should fetch exclusive ownership
    /// directly.
    pub fn predicts_store(&self, pc: u32) -> bool {
        if !self.enabled {
            return false;
        }
        matches!(self.table[self.slot(pc)], Some((p, conf)) if p == pc && conf >= 1)
    }

    /// Weakens the prediction for `pc` (a predicted-exclusive load
    /// that was never followed by a store wastes ownership).
    pub fn mispredicted(&mut self, pc: u32) {
        let s = self.slot(pc);
        if let Some((p, conf)) = &mut self.table[s] {
            if *p == pc {
                if *conf <= 1 {
                    self.table[s] = None;
                } else {
                    *conf -= 1;
                }
            }
        }
    }

    /// Number of trained entries (the paper reports usage: radiosity
    /// used just under 100 of 128, others fewer than 30).
    pub fn trained_entries(&self) -> usize {
        self.table.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_on_load_then_store_to_same_line() {
        let mut p = RmwPredictor::new(8, true);
        assert!(!p.predicts_store(5));
        p.record_load(5, LineAddr(100));
        p.record_store(LineAddr(100));
        assert!(p.predicts_store(5));
        assert_eq!(p.trained_entries(), 1);
    }

    #[test]
    fn no_training_on_unrelated_store() {
        let mut p = RmwPredictor::new(8, true);
        p.record_load(5, LineAddr(100));
        p.record_store(LineAddr(200));
        assert!(!p.predicts_store(5));
    }

    #[test]
    fn history_is_bounded() {
        let mut p = RmwPredictor::new(64, true);
        p.record_load(1, LineAddr(1));
        for i in 0..HISTORY as u32 {
            p.record_load(10 + i, LineAddr(500 + i as u64));
        }
        // The oldest load (pc 1) has fallen out of the history.
        p.record_store(LineAddr(1));
        assert!(!p.predicts_store(1));
    }

    #[test]
    fn misprediction_decays_and_clears() {
        let mut p = RmwPredictor::new(8, true);
        p.record_load(3, LineAddr(9));
        p.record_store(LineAddr(9));
        assert!(p.predicts_store(3));
        p.mispredicted(3);
        assert!(!p.predicts_store(3));
        // Retrains after more evidence.
        p.record_load(3, LineAddr(9));
        p.record_store(LineAddr(9));
        assert!(p.predicts_store(3));
    }

    #[test]
    fn disabled_predictor_never_predicts() {
        let mut p = RmwPredictor::new(8, false);
        p.record_load(5, LineAddr(100));
        p.record_store(LineAddr(100));
        assert!(!p.predicts_store(5));
        assert_eq!(p.trained_entries(), 0);
    }

    #[test]
    fn atomic_lines_are_excluded_from_training() {
        let mut p = RmwPredictor::new(8, true);
        // A spin load of a lock line, then the SC marks the line.
        p.record_load(5, LineAddr(100));
        p.record_atomic(LineAddr(100));
        // The release store to the lock line must not train pc 5.
        p.record_store(LineAddr(100));
        assert!(!p.predicts_store(5));
        // Even loads recorded after the exclusion are ignored.
        p.record_load(6, LineAddr(100));
        p.record_store(LineAddr(100));
        assert!(!p.predicts_store(6));
        // Data lines are unaffected.
        p.record_load(7, LineAddr(200));
        p.record_store(LineAddr(200));
        assert!(p.predicts_store(7));
    }

    #[test]
    fn atomic_exclusion_list_is_bounded() {
        let mut p = RmwPredictor::new(8, true);
        for i in 0..(ATOMIC_EXCLUSIONS as u64 + 4) {
            p.record_atomic(LineAddr(i));
        }
        // The oldest exclusion fell out; line 0 trains again.
        p.record_load(1, LineAddr(0));
        p.record_store(LineAddr(0));
        assert!(p.predicts_store(1));
    }

    #[test]
    fn aliasing_replaces_entry() {
        let mut p = RmwPredictor::new(2, true);
        p.record_load(0, LineAddr(1));
        p.record_store(LineAddr(1));
        assert!(p.predicts_store(0));
        // pc 2 aliases slot 0.
        p.record_load(2, LineAddr(3));
        p.record_store(LineAddr(3));
        assert!(p.predicts_store(2));
        assert!(!p.predicts_store(0), "aliased entry was replaced");
    }
}
