//! Per-processor node state: core, L1, victim cache, buffers, MSHRs,
//! predictors, logical clock, transaction state and the deferred
//! request queue of Figure 5.
//!
//! Nodes are passive containers; the coherence-controller *logic*
//! operating on them lives in [`crate::machine`], because most
//! decisions need machine-global context (the bus, the data network,
//! the owner ledger).

use std::collections::VecDeque;

use tlr_cpu::{Core, MemAccess};
use tlr_mem::addr::LineAddr;
use tlr_mem::line::{CacheLine, LineData, Moesi};
use tlr_mem::mshr::{MshrFile, RetryTimers};
use tlr_mem::storebuf::StoreBuffer;
use tlr_mem::timestamp::{LogicalClock, Timestamp};
use tlr_mem::victim::VictimCache;
use tlr_mem::wb::WriteBuffer;
use tlr_mem::{Cache, BusRequest};
use tlr_sim::config::MachineConfig;
use tlr_sim::{Cycle, NodeId};

use crate::rmw::RmwPredictor;
use crate::sle::{StorePairPredictor, Txn};

/// An incoming request whose response this node is deferring until
/// its transaction commits (or aborts): the hardware queue of
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredReq {
    /// The contested block.
    pub line: LineAddr,
    /// The waiting requester.
    pub from: NodeId,
    /// Whether the waiting request is exclusive.
    pub exclusive: bool,
    /// The waiting request's timestamp.
    pub ts: Option<Timestamp>,
    /// The waiting request's contention-manager credit (karma policy
    /// only; 0 otherwise).
    pub karma: u32,
}

/// Why the core is blocked, used for retrying and for Figure 11's
/// stall attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Waiting for a fill of `line`; `is_lock` when the target address
    /// is a lock variable.
    Fill {
        /// The missing line.
        line: LineAddr,
        /// Whether the blocked access targets a lock variable.
        is_lock: bool,
    },
    /// Store stalled on a full store buffer.
    StoreBufFull,
    /// Store/SC stalled on a full MSHR file.
    MshrFull {
        /// Whether the blocked access targets a lock variable.
        is_lock: bool,
    },
    /// Store-conditional or fence draining the store buffer.
    Drain {
        /// Whether the blocked access targets a lock variable.
        is_lock: bool,
    },
    /// The release store is waiting for the transaction commit (all
    /// write-buffer lines writable).
    Commit,
    /// An I/O operation completes at the given cycle.
    Io {
        /// Completion cycle.
        until: Cycle,
    },
}

/// A dirty line evicted from the victim cache, parked here until its
/// WriteBack transaction is ordered (it can still supply snoops).
#[derive(Debug, Clone)]
pub struct PendingWriteback {
    /// The evicted line.
    pub line: LineAddr,
    /// Its dirty data.
    pub data: LineData,
    /// Set when a later request was supplied from this buffer and the
    /// writeback must not overwrite the new owner's data.
    pub cancelled: bool,
}

/// A snooped bus transaction awaiting processing at this node
/// (delivered `snoop` cycles after bus order).
#[derive(Debug, Clone)]
pub struct SnoopEvent {
    /// Cycle at which the snoop is processed.
    pub due: Cycle,
    /// Cycle at which the request was ordered on the bus (its
    /// coherence-order position).
    pub order_cycle: Cycle,
    /// The ordered request.
    pub req: BusRequest,
    /// The node the owner ledger designated as supplier, if any.
    pub supplier: Option<NodeId>,
    /// Whether other caches held valid copies at order time (grant
    /// computation).
    pub other_sharers: bool,
    /// The directed snoop target set, when the request was ordered by
    /// the home-node directory. `None` on bus machines (broadcast:
    /// every cache snoops).
    pub targets: Option<tlr_mem::NodeSet>,
}

/// One processor node.
#[derive(Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// The processor core.
    pub core: Core,
    /// L1 data cache.
    pub l1: Cache,
    /// Victim cache (§3.3).
    pub victim: VictimCache,
    /// Speculative write buffer.
    pub wb: WriteBuffer,
    /// Non-speculative store buffer (TSO).
    pub sb: StoreBuffer,
    /// Outstanding misses.
    pub mshrs: MshrFile,
    /// Deferred incoming requests (Figure 5's hardware queue).
    pub deferred: VecDeque<DeferredReq>,
    /// Capacity of the deferred queue.
    pub deferred_cap: usize,
    /// In-flight transaction, if any.
    pub txn: Option<Txn>,
    /// The transaction timestamp, frozen at transaction start and
    /// reused across restarts (§2.1.2).
    pub clock: LogicalClock,
    /// Silent store-pair predictor (SLE).
    pub sle_pred: StorePairPredictor,
    /// Read-modify-write predictor (§3.1.2).
    pub rmw_pred: RmwPredictor,
    /// Why the core is blocked, if it is.
    pub wait: Option<Wait>,
    /// The access the core is blocked on (kept for completion).
    pub waiting_access: Option<MemAccess>,
    /// Suppress elision once for the SC at this PC (fallback: "expose
    /// the elided writes and exit speculative mode").
    pub suppress_elide_at: Option<u32>,
    /// Core stalled until this cycle (restart penalty).
    pub stall_until: Cycle,
    /// De-scheduled by the OS (§4 stability experiments).
    pub paused: bool,
    /// Dirty victim-cache evictions awaiting WriteBack order.
    pub pending_wb: Vec<PendingWriteback>,
    /// Transactional stores whose exclusive request could not be
    /// issued yet (MSHR pressure / pending shared fill); retried each
    /// cycle and required before commit.
    pub txn_pending_x: Vec<LineAddr>,
    /// NACKed requests awaiting retry after a randomized backoff.
    pub nack_retries: RetryTimers,
    /// Consecutive restarts caused by undeferrable invalidations of
    /// shared-state blocks. After repeated violations the node
    /// escalates: transactional reads fetch exclusive ownership so
    /// that external requests become deferrable, which §3.1.2 notes
    /// "guarantees a successful TLR execution".
    pub sharer_inval_streak: u32,
    /// Restarts absorbed since the current critical section first
    /// started eliding (observability: the restarts-per-transaction
    /// histogram samples and resets this on commit/fallback).
    pub restart_streak: u32,
    /// Contention-manager credit under the karma policy: the
    /// accumulated speculative footprint of this node's *aborted*
    /// attempts. Accumulated at abort (so it is constant within an
    /// attempt — see `tlr_core::policy`), reset at commit or lock
    /// fallback, and always 0 under every other policy.
    pub karma: u32,
    /// Cycle the core finished, if it has.
    pub done_at: Option<Cycle>,
}

impl Node {
    /// Builds a node from the machine configuration.
    pub fn new(id: NodeId, core: Core, cfg: &MachineConfig) -> Self {
        Node {
            id,
            core,
            l1: Cache::new(cfg.l1_sets, cfg.l1_ways),
            victim: VictimCache::new(cfg.faults.effective_victim_entries(id, cfg.victim_entries)),
            wb: WriteBuffer::new(
                cfg.faults.effective_write_buffer_lines(id, cfg.write_buffer_lines),
            ),
            sb: StoreBuffer::new(cfg.store_buffer_entries),
            mshrs: MshrFile::new(cfg.mshrs),
            deferred: VecDeque::new(),
            deferred_cap: cfg
                .faults
                .effective_deferred_queue_entries(id, cfg.deferred_queue_entries),
            txn: None,
            clock: LogicalClock::new(id, cfg.timestamp_bits),
            sle_pred: StorePairPredictor::new(
                cfg.sle_predictor_entries,
                cfg.scheme.elision_enabled(),
            ),
            rmw_pred: RmwPredictor::new(cfg.rmw_predictor_entries, cfg.rmw_predictor_enabled),
            wait: None,
            waiting_access: None,
            suppress_elide_at: None,
            stall_until: 0,
            paused: false,
            pending_wb: Vec::new(),
            txn_pending_x: Vec::new(),
            nack_retries: RetryTimers::new(),
            sharer_inval_streak: 0,
            restart_streak: 0,
            karma: 0,
            done_at: None,
        }
    }

    /// The node's current transaction timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.clock.timestamp()
    }

    /// Looks up a line in L1 or victim cache.
    pub fn line(&self, line: LineAddr) -> Option<&CacheLine> {
        self.l1.peek(line).or_else(|| self.victim.peek(line))
    }

    /// Mutable lookup in L1 or victim cache.
    pub fn line_mut(&mut self, line: LineAddr) -> Option<&mut CacheLine> {
        if self.l1.contains(line) {
            return self.l1.get_mut(line);
        }
        self.victim.peek_mut(line)
    }

    /// The coherence state of a line ([`Moesi::Invalid`] when absent).
    pub fn line_state(&self, line: LineAddr) -> Moesi {
        self.line(line).map_or(Moesi::Invalid, |l| l.state)
    }

    /// Clears transactional access bits everywhere (transaction end —
    /// the `end_defer` of Figure 5).
    pub fn clear_spec_bits(&mut self) {
        self.l1.clear_spec_bits();
        self.victim.clear_spec_bits();
    }

    /// Whether repeated shared-block invalidations have escalated
    /// this node's transactional reads to exclusive fetches (§3.1.2).
    pub fn reads_exclusive(&self) -> bool {
        self.sharer_inval_streak >= 2
    }

    /// Whether this node has deferred requests for any line other
    /// than `line` (the §3.2 single-block eligibility check).
    pub fn defers_other_lines(&self, line: LineAddr) -> bool {
        self.deferred.iter().any(|d| d.line != line)
    }

    /// Finds a (non-cancelled) pending writeback for `line`.
    pub fn pending_wb_mut(&mut self, line: LineAddr) -> Option<&mut PendingWriteback> {
        self.pending_wb.iter_mut().find(|p| p.line == line && !p.cancelled)
    }

    /// Counts the transactional footprint: lines with the speculative
    /// read/write bit set across L1 and victim cache. A cache scan —
    /// callers gate it on tracing being enabled.
    pub fn spec_footprint(&self) -> (u32, u32) {
        let mut reads = 0;
        let mut writes = 0;
        for l in self.l1.iter().chain(self.victim.iter()) {
            if l.spec_read {
                reads += 1;
            }
            if l.spec_written {
                writes += 1;
            }
        }
        (reads, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tlr_sim::config::Scheme;
    use tlr_sim::SimRng;

    fn mk_node() -> Node {
        let cfg = MachineConfig::small(Scheme::Tlr, 2);
        let mut a = tlr_cpu::Asm::new("t");
        a.done();
        let core = Core::new(Arc::new(a.finish()), SimRng::new(0));
        Node::new(0, core, &cfg)
    }

    #[test]
    fn line_lookup_spans_l1_and_victim() {
        let mut n = mk_node();
        assert_eq!(n.line_state(LineAddr(1)), Moesi::Invalid);
        n.l1.insert(CacheLine::new(LineAddr(1), Moesi::Shared, LineData::zeroed()));
        n.victim.insert(CacheLine::new(LineAddr(2), Moesi::Modified, LineData::zeroed()));
        assert_eq!(n.line_state(LineAddr(1)), Moesi::Shared);
        assert_eq!(n.line_state(LineAddr(2)), Moesi::Modified);
        assert!(n.line_mut(LineAddr(2)).is_some());
    }

    #[test]
    fn clear_spec_bits_spans_both_structures() {
        let mut n = mk_node();
        let mut a = CacheLine::new(LineAddr(1), Moesi::Shared, LineData::zeroed());
        a.spec_read = true;
        n.l1.insert(a);
        let mut b = CacheLine::new(LineAddr(2), Moesi::Modified, LineData::zeroed());
        b.spec_written = true;
        n.victim.insert(b);
        n.clear_spec_bits();
        assert!(!n.line(LineAddr(1)).unwrap().spec_accessed());
        assert!(!n.line(LineAddr(2)).unwrap().spec_accessed());
    }

    #[test]
    fn single_block_eligibility() {
        let mut n = mk_node();
        n.deferred.push_back(DeferredReq { line: LineAddr(5), from: 1, exclusive: true, ts: None, karma: 0 });
        assert!(!n.defers_other_lines(LineAddr(5)));
        assert!(n.defers_other_lines(LineAddr(6)));
    }

    #[test]
    fn pending_writeback_lookup_skips_cancelled() {
        let mut n = mk_node();
        n.pending_wb.push(PendingWriteback { line: LineAddr(3), data: LineData::zeroed(), cancelled: true });
        assert!(n.pending_wb_mut(LineAddr(3)).is_none());
        n.pending_wb.push(PendingWriteback { line: LineAddr(3), data: LineData::zeroed(), cancelled: false });
        assert!(n.pending_wb_mut(LineAddr(3)).is_some());
    }
}
