//! Focused coherence-protocol scenarios on small machines: MOESI
//! state movement, cache-to-cache supply, writeback paths, victim
//! cache behaviour, intervention chains, and LL/SC semantics under
//! contention. These pin down the substrate the TLR results stand on.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_core::Machine;
use tlr_cpu::{Asm, Program};
use tlr_mem::Addr;
use tlr_sim::config::{MachineConfig, Scheme};

fn program(name: &str, build: impl FnOnce(&mut Asm)) -> Arc<Program> {
    let mut a = Asm::new(name);
    build(&mut a);
    a.done();
    Arc::new(a.finish())
}

fn machine(cfg: MachineConfig, programs: Vec<Arc<Program>>) -> Machine {
    Machine::new(cfg, programs, HashSet::new())
}

fn small(procs: usize) -> MachineConfig {
    let mut cfg = MachineConfig::small(Scheme::Base, procs);
    cfg.max_cycles = 10_000_000;
    cfg
}

#[test]
fn producer_consumer_handoff() {
    // P0 produces a value then raises a flag; P1 spins on the flag and
    // copies the value out: TSO store ordering through the store
    // buffer must make the value visible before the flag.
    let p0 = program("producer", |a| {
        let (v, addr) = (a.reg(), a.reg());
        a.li(v, 1234);
        a.li(addr, 0x1000);
        a.store(v, addr, 0); // datum
        a.li(v, 1);
        a.li(addr, 0x2000);
        a.store(v, addr, 0); // flag
    });
    let p1 = program("consumer", |a| {
        let (v, flag, data, out, zero) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
        a.li(zero, 0);
        a.li(flag, 0x2000);
        let spin = a.here();
        a.load(v, flag, 0);
        a.beq(v, zero, spin);
        a.li(data, 0x1000);
        a.load(v, data, 0);
        a.li(out, 0x3000);
        a.store(v, out, 0);
    });
    let mut m = machine(small(2), vec![p0, p1]);
    m.run().unwrap();
    assert_eq!(m.final_word(Addr(0x3000)), 1234, "TSO ordering: datum visible before flag");
}

#[test]
fn read_sharing_then_single_writer() {
    // All four read a line (shared copies), then one writes it: the
    // writer's value must be what any later reader sees.
    let reader = |out: u64| {
        program("reader", move |a| {
            let (v, addr, o) = (a.reg(), a.reg(), a.reg());
            a.li(addr, 0x1000);
            a.load(v, addr, 0);
            a.delay(200); // sit on the shared copy for a while
            a.load(v, addr, 0);
            a.li(o, out);
            a.store(v, o, 0);
        })
    };
    let writer = program("writer", |a| {
        let (v, addr) = (a.reg(), a.reg());
        a.li(addr, 0x1000);
        a.load(v, addr, 0);
        a.delay(60);
        a.li(v, 7);
        a.store(v, addr, 0);
    });
    let mut m = machine(small(4), vec![reader(0x4000), reader(0x5000), reader(0x6000), writer]);
    m.init_word(Addr(0x1000), 3);
    m.run().unwrap();
    assert_eq!(m.final_word(Addr(0x1000)), 7);
    for out in [0x4000u64, 0x5000, 0x6000] {
        let got = m.final_word(Addr(out));
        assert!(got == 3 || got == 7, "reader saw a coherent value, got {got}");
    }
}

#[test]
fn dirty_data_survives_capacity_evictions() {
    // Write more distinct lines than the tiny L1 + victim cache hold:
    // every dirty line must round-trip through the writeback path.
    let lines = 256u64;
    let p = program("writer", move |a| {
        let (v, addr, end) = (a.reg(), a.reg(), a.reg());
        a.li(addr, 0x10000);
        a.li(end, 0x10000 + lines * 64);
        a.li(v, 0);
        let top = a.here();
        a.store(v, addr, 0);
        a.addi(v, v, 1);
        a.addi(addr, addr, 64);
        a.blt(addr, end, top);
    });
    let mut m = machine(small(1), vec![p]);
    m.run().unwrap();
    for i in 0..lines {
        assert_eq!(m.final_word(Addr(0x10000 + i * 64)), i, "line {i}");
    }
}

#[test]
fn dirty_line_transfers_between_writers() {
    // Two nodes alternately increment many words in the same line set,
    // forcing repeated M-state migration.
    let worker = |which: u64| {
        program("bouncer", move |a| {
            let (v, addr, n, zero) = (a.reg(), a.reg(), a.reg(), a.reg());
            a.li(zero, 0);
            a.li(n, 50);
            let top = a.here();
            a.li(addr, 0x1000 + which * 8);
            a.load(v, addr, 0);
            a.addi(v, v, 1);
            a.store(v, addr, 0);
            a.rand_delay(1, 6);
            a.addi(n, n, -1);
            a.bne(n, zero, top);
        })
    };
    let mut m = machine(small(2), vec![worker(0), worker(1)]);
    m.run().unwrap();
    // Same cache line, different words: both counts must be exact
    // despite constant line migration (no lost updates, no false-
    // sharing corruption).
    assert_eq!(m.final_word(Addr(0x1000)), 50);
    assert_eq!(m.final_word(Addr(0x1008)), 50);
    assert!(m.stats().cache_to_cache_transfers > 10, "line actually migrated");
}

#[test]
fn ll_sc_fails_after_remote_write() {
    // P0 LLs a word, waits, then SCs: P1's interleaved write must make
    // the SC fail.
    let p0 = program("ll-sc", |a| {
        let (v, addr, flag, val) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.li(addr, 0x1000);
        a.ll(v, addr, 0);
        a.delay(600); // plenty of time for P1's write
        a.li(val, 111);
        a.sc(flag, val, addr, 0);
        a.li(addr, 0x2000);
        a.store(flag, addr, 0); // record the SC outcome
    });
    let p1 = program("intruder", |a| {
        let (v, addr) = (a.reg(), a.reg());
        a.delay(100);
        a.li(v, 222);
        a.li(addr, 0x1000);
        a.store(v, addr, 0);
    });
    let mut m = machine(small(2), vec![p0, p1]);
    m.run().unwrap();
    assert_eq!(m.final_word(Addr(0x2000)), 0, "SC must fail after an intervening write");
    assert_eq!(m.final_word(Addr(0x1000)), 222, "the intruder's write survives");
}

#[test]
fn ll_sc_succeeds_without_interference() {
    let p0 = program("ll-sc", |a| {
        let (v, addr, flag, val) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.li(addr, 0x1000);
        a.ll(v, addr, 0);
        a.li(val, 111);
        a.sc(flag, val, addr, 0);
        a.li(addr, 0x2000);
        a.store(flag, addr, 0);
    });
    let mut m = machine(small(1), vec![p0]);
    m.run().unwrap();
    assert_eq!(m.final_word(Addr(0x2000)), 1);
    assert_eq!(m.final_word(Addr(0x1000)), 111);
}

#[test]
fn fence_drains_store_buffer() {
    let p = program("fenced", |a| {
        let (v, addr) = (a.reg(), a.reg());
        for i in 0..8u64 {
            a.li(v, i + 1);
            a.li(addr, 0x1000 + i * 64);
            a.store(v, addr, 0);
        }
        a.fence();
        // After the fence the values must already be in the cache;
        // read one back through a fresh register.
        a.li(addr, 0x1000);
        a.load(v, addr, 0);
        a.li(addr, 0x3000);
        a.store(v, addr, 0);
    });
    let mut m = machine(small(1), vec![p]);
    m.run().unwrap();
    assert_eq!(m.final_word(Addr(0x3000)), 1);
}

#[test]
fn many_concurrent_misses_use_mshrs() {
    // A strided read sweep issues independent misses; with 16 MSHRs
    // the core is limited by its single outstanding access, but store
    // drains overlap.
    let p = program("sweep", |a| {
        let (v, addr, end, acc, out) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
        a.li(acc, 0);
        a.li(addr, 0x20000);
        a.li(end, 0x20000 + 64 * 64);
        let top = a.here();
        a.load(v, addr, 0);
        a.add(acc, acc, v);
        a.addi(addr, addr, 64);
        a.blt(addr, end, top);
        a.li(out, 0x3000);
        a.store(acc, out, 0);
    });
    let mut m = machine(small(1), vec![p]);
    for i in 0..64u64 {
        m.init_word(Addr(0x20000 + i * 64), i);
    }
    m.run().unwrap();
    assert_eq!(m.final_word(Addr(0x3000)), (0..64).sum::<u64>());
}

#[test]
fn word_granularity_within_line_is_preserved() {
    // Each of 8 words in one line written by a different "phase";
    // all writes must merge correctly.
    let p = program("words", |a| {
        let (v, addr) = (a.reg(), a.reg());
        for w in 0..8u64 {
            a.li(v, 100 + w);
            a.li(addr, 0x1000 + w * 8);
            a.store(v, addr, 0);
        }
    });
    let mut m = machine(small(1), vec![p]);
    m.run().unwrap();
    for w in 0..8u64 {
        assert_eq!(m.final_word(Addr(0x1000 + w * 8)), 100 + w);
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let build = || {
        let worker = |k: u64| {
            program("w", move |a| {
                let (v, addr, n, zero) = (a.reg(), a.reg(), a.reg(), a.reg());
                a.li(zero, 0);
                a.li(n, 40);
                let top = a.here();
                a.li(addr, 0x1000 + (k % 4) * 64);
                a.load(v, addr, 0);
                a.addi(v, v, 1);
                a.store(v, addr, 0);
                a.rand_delay(1, 9);
                a.addi(n, n, -1);
                a.bne(n, zero, top);
            })
        };
        machine(small(3), vec![worker(0), worker(1), worker(2)])
    };
    let mut a = build();
    let mut b = build();
    a.run().unwrap();
    b.run().unwrap();
    assert_eq!(a.stats().parallel_cycles, b.stats().parallel_cycles);
    assert_eq!(a.stats().bus.total(), b.stats().bus.total());
}

#[test]
fn bus_counts_track_traffic_kinds() {
    let p0 = program("writer", |a| {
        let (v, addr) = (a.reg(), a.reg());
        a.li(v, 5);
        a.li(addr, 0x1000);
        a.store(v, addr, 0);
    });
    let p1 = program("reader", |a| {
        let (v, addr, zero) = (a.reg(), a.reg(), a.reg());
        a.li(zero, 0);
        a.li(addr, 0x1000);
        let spin = a.here();
        a.load(v, addr, 0);
        a.beq(v, zero, spin);
    });
    let mut m = machine(small(2), vec![p0, p1]);
    m.run().unwrap();
    let bus = &m.stats().bus;
    assert!(bus.get_x >= 1, "the store needed exclusive ownership");
    assert!(bus.get_s >= 1, "the reader issued shared requests");
}

#[test]
fn sixteen_nodes_all_to_all_increments() {
    // Stress: 16 nodes, 4 shared words, LL/SC increments — the full
    // paper-scale node count on the coherence fabric.
    let worker = |k: usize| {
        program("w16", move |a| {
            let (v, addr, n, zero, flag) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
            a.li(zero, 0);
            a.li(n, 12);
            let top = a.here();
            let retry = a.here();
            a.li(addr, 0x1000 + ((k % 4) as u64) * 64);
            a.ll(v, addr, 0);
            a.addi(v, v, 1);
            a.sc(flag, v, addr, 0);
            a.beq(flag, zero, retry);
            a.rand_delay(1, 7);
            a.addi(n, n, -1);
            a.bne(n, zero, top);
        })
    };
    let mut cfg = MachineConfig::paper_default(Scheme::Base, 16);
    cfg.max_cycles = 50_000_000;
    let mut m = machine(cfg, (0..16).map(worker).collect());
    m.run().unwrap();
    for w in 0..4u64 {
        assert_eq!(m.final_word(Addr(0x1000 + w * 64)), 4 * 12, "word {w}");
    }
}
