//! Span-layer tests replaying the paper's worked examples and
//! asserting the reconstructed transaction span tree.
//!
//! * Figure 4: two processors writing blocks A and B in reverse
//!   order. The earlier timestamp wins, defers the loser's request
//!   *inside its own span*, and services it at commit; the loser's
//!   restarts show up as `Restarted` spans chained by attempt number.
//! * Figure 6: three processors forming a cyclic wait across rotated
//!   block orders, broken by marker/probe propagation — probe events
//!   attach to the span of the processor that is losing (it pushes
//!   the earlier timestamp upstream), never to a bystander.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_core::Machine;
use tlr_cpu::{Asm, Program};
use tlr_mem::Addr;
use tlr_sim::config::{MachineConfig, Scheme};
use tlr_sim::fault::FaultConfig;
use tlr_sim::trace::TraceKind;
use tlr_sim::{SpanLog, SpanOutcome};
use tlr_sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;

/// A critical section writing the given blocks in order, `iters`
/// times, with a dwell between writes to widen the conflict window
/// (the same shape as `tests/paper_examples.rs`).
fn writer(blocks: &[u64], iters: u64, dwell: u32) -> Arc<Program> {
    let mut a = Asm::new(format!("writer-{blocks:?}"));
    let lock = a.reg();
    let n = a.reg();
    let v = a.reg();
    let addr = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    for (i, &b) in blocks.iter().enumerate() {
        if i > 0 {
            a.delay(dwell);
        }
        a.li(addr, b);
        a.load(v, addr, 0);
        a.addi(v, v, 1);
        a.store(v, addr, 0);
    }
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 10);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn run_traced(programs: Vec<Arc<Program>>) -> Machine {
    let mut cfg = MachineConfig::paper_default(Scheme::Tlr, programs.len());
    cfg.max_cycles = 20_000_000;
    let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
    m.enable_trace();
    m.run().expect("TLR guarantees forward progress");
    m
}

/// Structural invariants every reconstructed span log must satisfy:
/// events stay within their span's bounds and on their span's node,
/// and — after quiescence with an ample ring buffer — every span has
/// a terminal outcome and the tallies agree with the counters.
fn assert_well_formed(log: &SpanLog, m: &Machine) {
    assert_eq!(log.dropped_events, 0, "ring buffer must not wrap at this scale");
    assert!(!log.spans.is_empty(), "traced run must produce spans");
    for s in &log.spans {
        assert!(!matches!(s.outcome, SpanOutcome::Open), "quiesced machine leaves no open span");
        assert!(s.end >= s.start, "span ends after it starts");
        for e in &s.events {
            assert_eq!(e.node, s.node, "attached event belongs to the span's node");
            assert!(
                e.cycle >= s.start && e.cycle <= s.end,
                "event at {} outside span [{}, {}]",
                e.cycle,
                s.start,
                s.end
            );
        }
    }
    let stats = m.stats();
    assert_eq!(log.commits() as u64, stats.total_commits(), "span commits match the counters");
    assert_eq!(log.restarts() as u64, stats.total_restarts(), "span restarts match the counters");
}

#[test]
fn figure4_deferral_nests_under_winners_span() {
    const A: u64 = 0x2000;
    const B: u64 = 0x3000;
    const ITERS: u64 = 16;
    let m = run_traced(vec![writer(&[A, B], ITERS, 15), writer(&[B, A], ITERS, 15)]);
    assert_eq!(m.final_word(Addr(A)), 2 * ITERS);
    assert_eq!(m.final_word(Addr(B)), 2 * ITERS);

    let log = m.span_log();
    assert_well_formed(&log, &m);

    // The winner retains ownership: deferrals are recorded inside the
    // retaining processor's span and name the *other* processor.
    let deferring: Vec<_> = log.spans.iter().filter(|s| s.deferrals() > 0).collect();
    assert!(!deferring.is_empty(), "reverse-order writers must defer inside a span");
    for s in &deferring {
        for e in &s.events {
            if let TraceKind::Defer { from, .. } = e.kind {
                assert_ne!(from, s.node, "a processor cannot defer its own request");
            }
        }
    }

    // A committed span that absorbed a deferral services it before
    // the span closes (the ServiceDeferred instant nests inside), and
    // the service answers the processor whose request was deferred.
    let committed_deferring = deferring
        .iter()
        .find(|s| matches!(s.outcome, SpanOutcome::Committed { .. }))
        .expect("at least one deferral is absorbed by a committing winner");
    let deferred_from: Vec<usize> = committed_deferring
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Defer { from, .. } => Some(from),
            _ => None,
        })
        .collect();
    let served_to: Vec<usize> = committed_deferring
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::ServiceDeferred { to, .. } => Some(to),
            _ => None,
        })
        .collect();
    for from in &deferred_from {
        assert!(
            served_to.contains(from),
            "span deferred P{from} but never serviced it before committing: {}",
            log.dump()
        );
    }

    // The loser's restarts chain: within one processor's span list,
    // a Restarted span is followed by the retry with attempt + 1, and
    // a Committed span resets the chain to attempt 0.
    assert!(log.restarts() > 0, "the reverse-order loser must restart");
    for node in 0..2 {
        let spans: Vec<_> = log.spans_for(node).collect();
        for pair in spans.windows(2) {
            match pair[0].outcome {
                SpanOutcome::Restarted { .. } => assert_eq!(
                    pair[1].attempt,
                    pair[0].attempt + 1,
                    "retry after a restart increments the attempt"
                ),
                _ => assert_eq!(pair[1].attempt, 0, "a fresh critical section starts at attempt 0"),
            }
        }
    }
    assert!(
        log.spans.iter().any(|s| s.attempt > 0),
        "restarts must surface as attempt > 0 retries"
    );
}

#[test]
fn injected_aborts_surface_as_restarted_spans_that_chain() {
    const A: u64 = 0x2000;
    const ITERS: u64 = 48;
    // Chaos with ONLY the spurious-abort knob: ~0.5% per in-transaction
    // node-cycle, so a run this long is all but guaranteed to fire, and
    // no other fault reshapes the trace.
    let mut faults = FaultConfig::off();
    faults.enabled = true;
    faults.seed = 0xc4a05;
    faults.spurious_abort_chance = 5000;

    let programs = vec![writer(&[A], ITERS, 8), writer(&[A], ITERS, 8)];
    let mut cfg = MachineConfig::paper_default(Scheme::Tlr, programs.len());
    cfg.max_cycles = 20_000_000;
    cfg.faults = faults;
    let mut m = Machine::new(cfg, programs, HashSet::from([Addr(LOCK)]));
    m.enable_trace();
    m.run().expect("TLR guarantees forward progress even under chaos aborts");
    assert_eq!(m.final_word(Addr(A)), 2 * ITERS, "chaos must not lose increments");

    let stats = m.stats();
    let injected = stats.sum(|n| n.aborts_injected);
    assert!(injected > 0, "0.5%/cycle chaos on a contended counter must inject aborts");
    assert_eq!(
        stats.faults.spurious_aborts, injected,
        "the fault layer's tally and the per-node abort counters agree"
    );

    let log = m.span_log();
    assert_eq!(log.dropped_events, 0, "ring buffer must not wrap at this scale");
    // Injected aborts end spans as Restarted (never a fallback —
    // sle.rs pins `!AbortKind::Injected.forces_fallback()`), so the
    // span tally is conflict restarts plus the injected ones.
    assert_eq!(
        log.restarts() as u64,
        stats.total_restarts() + injected,
        "injected aborts surface as Restarted spans alongside conflict restarts"
    );

    // Each injection site is visible in-span: the FaultInjected
    // instant lands inside the span it annuls, and that span restarts.
    let chaos_spans: Vec<_> = log
        .spans
        .iter()
        .filter(|s| {
            s.events.iter().any(
                |e| matches!(e.kind, TraceKind::FaultInjected { kind: "spurious_abort", .. }),
            )
        })
        .collect();
    assert!(
        !chaos_spans.is_empty(),
        "every injected abort is recorded inside the span it annuls:\n{}",
        log.dump()
    );
    for s in &chaos_spans {
        assert!(
            matches!(s.outcome, SpanOutcome::Restarted { .. }),
            "a chaos-annulled span restarts (never falls back): {:?}",
            s.outcome
        );
    }

    // And the restart chains into a retry: within one processor's span
    // list a Restarted span is followed by attempt + 1, so the chaos
    // abort re-enters the same attempt chain as a genuine conflict.
    for node in 0..2 {
        let spans: Vec<_> = log.spans_for(node).collect();
        for pair in spans.windows(2) {
            match pair[0].outcome {
                SpanOutcome::Restarted { .. } => assert_eq!(
                    pair[1].attempt,
                    pair[0].attempt + 1,
                    "retry after an injected restart increments the attempt"
                ),
                _ => assert_eq!(pair[1].attempt, 0, "a fresh critical section starts at attempt 0"),
            }
        }
    }
    assert!(
        log.spans.iter().any(|s| s.attempt > 0),
        "injected restarts must surface as attempt > 0 retries"
    );
}

#[test]
fn figure6_probes_attach_to_the_losing_span() {
    const A: u64 = 0x2000;
    const B: u64 = 0x3000;
    const C: u64 = 0x4000;
    const ITERS: u64 = 24;
    let m = run_traced(vec![
        writer(&[A, B, C], ITERS, 12),
        writer(&[B, C, A], ITERS, 12),
        writer(&[C, A, B], ITERS, 12),
    ]);
    for addr in [A, B, C] {
        assert_eq!(m.final_word(Addr(addr)), 3 * ITERS, "block 0x{addr:x}");
    }

    let log = m.span_log();
    assert_well_formed(&log, &m);

    // Every processor commits transactions of its own (no starvation).
    for node in 0..3 {
        assert!(
            log.spans_for(node).any(|s| matches!(s.outcome, SpanOutcome::Committed { .. })),
            "node {node} must commit spans"
        );
    }

    // §3.1.1: the cyclic wait announces itself via markers, and a
    // probe is sent by a processor that observed an earlier timestamp
    // chasing it — i.e. probes sit on the span of a loser, aimed at
    // another processor, never reflexively.
    assert!(m.stats().sum(|n| n.markers_sent) > 0, "chains must announce themselves via markers");
    let probe_spans: Vec<_> = log.spans.iter().filter(|s| s.probes() > 0).collect();
    assert!(
        !probe_spans.is_empty(),
        "rotated three-way conflicts must push probes upstream:\n{}",
        log.dump()
    );
    for s in &probe_spans {
        for e in &s.events {
            if let TraceKind::Probe { to, .. } = e.kind {
                assert_ne!(to, s.node, "a probe chases another processor's data");
            }
        }
    }
}
