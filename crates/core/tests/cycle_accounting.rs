//! Cycle-accounting identity tests: every node-cycle is charged to
//! exactly one attribution category, so each node's category sum
//! equals the run's elapsed cycles
//! ([`tlr_sim::stats::MachineStats::check_cycle_accounting`]).
//!
//! The identity is debug-asserted at quiescence inside the machine;
//! these tests audit it *explicitly* — across schemes, across both
//! engines, under fault injection (where injected aborts, squeezed
//! buffers, and network jitter reshuffle the stall mix), and under
//! preemptive scheduling (where descheduled threads accrue
//! `paused_cycles`, the category no other path exercises).

use std::collections::HashSet;
use std::sync::Arc;

use tlr_core::{run_preemptive, Machine, Preemption};
use tlr_cpu::{Asm, Program};
use tlr_mem::Addr;
use tlr_sim::config::{Engine, Interconnect, MachineConfig, Scheme};
use tlr_sim::fault::FaultConfig;
use tlr_sync::tatas::{self, TatasRegs};

const LOCK: u64 = 0x100;
const COUNTER: u64 = 0x2000;

/// A TATAS-guarded counter incrementer (the single-counter microshape
/// from the paper's Figure 8, built inline because `tlr-core` cannot
/// depend on `tlr-workloads`).
fn incrementer(iters: u64) -> Arc<Program> {
    let mut a = Asm::new("incrementer");
    let lock = a.reg();
    let n = a.reg();
    let v = a.reg();
    let addr = a.reg();
    let r = TatasRegs::alloc(&mut a);
    tatas::init_regs(&mut a, &r);
    a.li(lock, LOCK);
    a.li(addr, COUNTER);
    a.li(n, iters);
    let top = a.here();
    tatas::acquire(&mut a, lock, &r);
    a.load(v, addr, 0);
    a.addi(v, v, 1);
    a.store(v, addr, 0);
    tatas::release(&mut a, lock, &r);
    a.rand_delay(2, 10);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

fn machine(scheme: Scheme, engine: Engine, faults: FaultConfig, procs: usize, iters: u64) -> Machine {
    machine_on(Interconnect::Snooping, scheme, engine, faults, procs, iters)
}

fn machine_on(
    interconnect: Interconnect,
    scheme: Scheme,
    engine: Engine,
    faults: FaultConfig,
    procs: usize,
    iters: u64,
) -> Machine {
    let mut cfg = MachineConfig::paper_default(scheme, procs);
    cfg.engine = engine;
    cfg.interconnect = interconnect;
    cfg.faults = faults;
    cfg.max_cycles = 50_000_000;
    Machine::new(cfg, vec![incrementer(iters); procs], HashSet::from([Addr(LOCK)]))
}

/// Runs the machine to quiescence and audits the identity plus the
/// workload's ground truth (the counter must still be exact — the
/// accounting layer must never perturb execution).
fn audit(mut m: Machine, procs: usize, iters: u64, what: &str) -> Machine {
    m.run().unwrap_or_else(|e| panic!("{what}: {e}"));
    let stats = m.stats();
    assert!(stats.elapsed_cycles > 0, "{what}: run must consume cycles");
    stats.check_cycle_accounting().unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(
        stats.total_attributed_cycles(),
        stats.elapsed_cycles * procs as u64,
        "{what}: aggregate attribution covers every node-cycle"
    );
    assert_eq!(m.final_word(Addr(COUNTER)), procs as u64 * iters, "{what}: counter ground truth");
    m
}

#[test]
fn identity_holds_across_schemes_and_engines() {
    const PROCS: usize = 4;
    const ITERS: u64 = 32;
    for scheme in [Scheme::Base, Scheme::Sle, Scheme::Tlr] {
        for engine in [Engine::EventDriven, Engine::CycleStepped] {
            audit(
                machine(scheme, engine, FaultConfig::off(), PROCS, ITERS),
                PROCS,
                ITERS,
                &format!("{scheme} / {engine:?}"),
            );
        }
    }
}

#[test]
fn identity_holds_under_fault_injection() {
    const PROCS: usize = 4;
    const ITERS: u64 = 48;
    for engine in [Engine::EventDriven, Engine::CycleStepped] {
        let m = audit(
            machine(Scheme::Tlr, engine, FaultConfig::intensity(0xc4a05, 3), PROCS, ITERS),
            PROCS,
            ITERS,
            &format!("tlr chaos / {engine:?}"),
        );
        // Level-3 chaos on a contended counter must actually fire
        // (otherwise this test silently degrades to the clean case).
        assert!(
            m.stats().faults.spurious_aborts > 0,
            "intensity-3 chaos on a contended counter must inject aborts"
        );
    }
}

#[test]
fn identity_holds_on_directory_machines_past_the_bus_limit() {
    // 64 and 128 processors are unreachable on the snooping bus; the
    // directory cells audit the identity at machine widths where the
    // event engine's settling paths (idle charges, spin fast-forward)
    // do the bulk of the accounting. Both engines, with and without
    // chaos.
    for (procs, iters) in [(64usize, 8u64), (128, 4)] {
        for engine in [Engine::EventDriven, Engine::CycleStepped] {
            for faults in [FaultConfig::off(), FaultConfig::intensity(0xd1c7_acc7, 2)] {
                let what = format!(
                    "directory {procs}p / {engine:?} / faults={}",
                    faults.enabled
                );
                audit(
                    machine_on(Interconnect::Directory, Scheme::Tlr, engine, faults, procs, iters),
                    procs,
                    iters,
                    &what,
                );
            }
        }
    }
}

#[test]
fn identity_holds_under_preemption_and_charges_paused_cycles() {
    const PROCS: usize = 4;
    const ITERS: u64 = 64;
    for engine in [Engine::EventDriven, Engine::CycleStepped] {
        let mut m = machine(Scheme::Tlr, engine, FaultConfig::off(), PROCS, ITERS);
        let report = run_preemptive(&mut m, Preemption::new(400, 150))
            .unwrap_or_else(|e| panic!("preemptive tlr / {engine:?}: {e}"));
        assert!(report.preemptions > 0, "quantum 400 must preempt this run");
        let stats = m.stats();
        stats
            .check_cycle_accounting()
            .unwrap_or_else(|e| panic!("preemptive tlr / {engine:?}: {e}"));
        assert!(
            stats.sum(|n| n.paused_cycles) > 0,
            "descheduled threads must accrue paused_cycles"
        );
        assert_eq!(
            m.final_word(Addr(COUNTER)),
            PROCS as u64 * ITERS,
            "preemption must not lose increments"
        );
    }
}
