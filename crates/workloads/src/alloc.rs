//! Padded memory layout.
//!
//! "Where appropriate, the data structures are padded to eliminate
//! false sharing" (§5.2). Every allocation from [`Layout`] starts on
//! its own 64-byte cache line; multi-line allocations are contiguous.
//! Address 0 is never handed out (workloads use 0 as a null pointer).

use tlr_mem::addr::{Addr, LINE_BYTES};

/// A bump allocator over the simulated physical address space that
/// aligns every allocation to a cache line.
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

impl Layout {
    /// Starts allocating at a fixed non-zero base.
    pub fn new() -> Self {
        Layout { next: 0x1_0000 }
    }

    /// Starts allocating at `base` (rounded up to a line).
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero (0 is the null pointer).
    pub fn with_base(base: u64) -> Self {
        assert!(base != 0, "base must be non-zero");
        Layout { next: base.next_multiple_of(LINE_BYTES) }
    }

    /// Allocates one padded word: a word at the start of its own
    /// cache line.
    pub fn word(&mut self) -> Addr {
        self.lines(1)
    }

    /// Allocates `n` contiguous cache lines, returning the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn lines(&mut self, n: u64) -> Addr {
        assert!(n > 0, "cannot allocate zero lines");
        let a = Addr(self.next);
        self.next += n * LINE_BYTES;
        a
    }

    /// Allocates an array of `n` padded words (each on its own line),
    /// returning their addresses.
    pub fn padded_words(&mut self, n: usize) -> Vec<Addr> {
        (0..n).map(|_| self.word()).collect()
    }

    /// Allocates an array of `n` words packed densely (8 per line),
    /// returning the base address. Used when the paper's structure is
    /// *not* padded (e.g. mp3d's lock array exceeding the L1).
    pub fn packed_words(&mut self, n: u64) -> Addr {
        let lines = n.div_ceil(8).max(1);
        self.lines(lines)
    }

    /// The next free address (for tests).
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_land_on_distinct_lines() {
        let mut l = Layout::new();
        let a = l.word();
        let b = l.word();
        assert_ne!(a.line(), b.line());
        assert_eq!(a.0 % LINE_BYTES, 0);
        assert_ne!(a.0, 0);
    }

    #[test]
    fn lines_are_contiguous() {
        let mut l = Layout::new();
        let a = l.lines(3);
        let b = l.word();
        assert_eq!(b.0 - a.0, 3 * LINE_BYTES);
    }

    #[test]
    fn packed_words_share_lines() {
        let mut l = Layout::new();
        let base = l.packed_words(16);
        assert_eq!(Addr(base.0 + 8).line(), base.line());
        // 16 words = 2 lines consumed.
        let next = l.word();
        assert_eq!(next.0 - base.0, 2 * LINE_BYTES);
    }

    #[test]
    fn with_base_rounds_up() {
        let mut l = Layout::with_base(100);
        assert_eq!(l.word().0, 128);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_base_rejected() {
        Layout::with_base(0);
    }
}
