//! The three microbenchmarks of §5.1.
//!
//! Each captures a distinct locking / critical-section data-conflict
//! behaviour:
//!
//! * [`multiple_counter`] — coarse-grain locking, **no** data
//!   conflicts: n counters protected by a single lock, each processor
//!   updates only its own counter (Figure 8).
//! * [`single_counter`] — fine-grain, **high** conflicts: one counter,
//!   one lock, everyone increments the same cache line (Figure 9).
//! * [`doubly_linked_list`] — fine-grain, **dynamic** conflicts: a
//!   lock-protected deque where enqueuers and dequeuers can run
//!   concurrently only when the queue is non-empty (Figure 10).
//!
//! Methodology (§5.1, after Kumar et al.): each data point performs
//! the *same total work* regardless of processor count, and a random
//! delay after each lock release gives other processors a fair chance
//! to acquire before a local re-acquire.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_core::run::WorkloadSpec;
use tlr_core::Machine;
use tlr_cpu::asm::Asm;
use tlr_cpu::Program;
use tlr_mem::addr::Addr;
use tlr_sim::config::Scheme;

use crate::alloc::Layout;
use crate::common::{acquire, release, LockKind, Locks, SyncRegs};

/// Post-release fairness delay bounds (cycles), per the §5.1
/// methodology.
const FAIR_DELAY: (u32, u32) = (4, 40);

// ---------------------------------------------------------------------------
// multiple-counter: coarse-grain / no-conflicts (Figure 8)
// ---------------------------------------------------------------------------

/// The multiple-counter microbenchmark (one lock, per-processor
/// counters).
#[derive(Debug, Clone)]
pub struct MultipleCounter {
    procs: usize,
    iters_per_proc: u64,
    locks: Locks,
    counters: Vec<Addr>,
}

/// Builds the multiple-counter workload: `total_increments` split
/// evenly over `procs` processors, each incrementing its own padded
/// counter under one shared lock.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn multiple_counter(procs: usize, total_increments: u64) -> MultipleCounter {
    assert!(procs > 0, "need at least one processor");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 1, procs);
    let counters = layout.padded_words(procs);
    MultipleCounter { procs, iters_per_proc: total_increments / procs as u64, locks, counters }
}

fn counter_program(
    name: String,
    kind: LockKind,
    lock: Addr,
    qnode: Addr,
    counter: Addr,
    iters: u64,
) -> Arc<Program> {
    let mut a = Asm::new(name);
    let r = SyncRegs::alloc(&mut a);
    let lock_r = a.reg();
    let qnode_r = a.reg();
    let counter_r = a.reg();
    let n = a.reg();
    let v = a.reg();
    r.init(&mut a);
    a.li(lock_r, lock.0);
    a.li(qnode_r, qnode.0);
    a.li(counter_r, counter.0);
    a.li(n, iters);
    let top = a.here();
    acquire(&mut a, kind, lock_r, qnode_r, &r);
    a.load(v, counter_r, 0);
    a.addi(v, v, 1);
    a.store(v, counter_r, 0);
    release(&mut a, kind, lock_r, qnode_r, &r);
    a.rand_delay(FAIR_DELAY.0, FAIR_DELAY.1);
    a.addi(n, n, -1);
    a.bne(n, r.zero, top);
    a.done();
    Arc::new(a.finish())
}

impl WorkloadSpec for MultipleCounter {
    fn name(&self) -> &str {
        "multiple-counter"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs)
            .map(|i| {
                counter_program(
                    format!("multiple-counter-{i}"),
                    kind,
                    self.locks.words[0],
                    self.locks.qnodes[i],
                    self.counters[i],
                    self.iters_per_proc,
                )
            })
            .collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        for (i, &c) in self.counters.iter().enumerate() {
            let got = m.final_word(c);
            if got != self.iters_per_proc {
                return Err(format!("counter {i}: {got} != {}", self.iters_per_proc));
            }
        }
        check_lock_free(m, self.locks.words[0])
    }
}

// ---------------------------------------------------------------------------
// single-counter: fine-grain / high-conflicts (Figure 9)
// ---------------------------------------------------------------------------

/// The single-counter microbenchmark (one lock, one shared counter).
#[derive(Debug, Clone)]
pub struct SingleCounter {
    procs: usize,
    iters_per_proc: u64,
    locks: Locks,
    counter: Addr,
}

/// Builds the single-counter workload: `total_increments` split over
/// `procs` processors, all incrementing one shared counter under one
/// lock. No exploitable parallelism exists; the benchmark measures
/// serialization efficiency.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn single_counter(procs: usize, total_increments: u64) -> SingleCounter {
    assert!(procs > 0, "need at least one processor");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 1, procs);
    let counter = layout.word();
    SingleCounter { procs, iters_per_proc: total_increments / procs as u64, locks, counter }
}

impl WorkloadSpec for SingleCounter {
    fn name(&self) -> &str {
        "single-counter"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs)
            .map(|i| {
                counter_program(
                    format!("single-counter-{i}"),
                    kind,
                    self.locks.words[0],
                    self.locks.qnodes[i],
                    self.counter,
                    self.iters_per_proc,
                )
            })
            .collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        let expect = self.iters_per_proc * self.procs as u64;
        let got = m.final_word(self.counter);
        if got != expect {
            return Err(format!("counter: {got} != {expect}"));
        }
        check_lock_free(m, self.locks.words[0])
    }
}

// ---------------------------------------------------------------------------
// doubly-linked list: fine-grain / dynamic conflicts (Figure 10)
// ---------------------------------------------------------------------------

/// Node field offsets: `next` and `prev` share the node's single
/// cache line (nodes are padded to a line each, §5.2).
const NEXT: i64 = 0;
const PREV: i64 = 8;

/// The doubly-linked-list microbenchmark: dequeue from `Head`,
/// enqueue at `Tail`, both under one lock.
#[derive(Debug, Clone)]
pub struct DoublyLinkedList {
    procs: usize,
    pairs_per_proc: u64,
    locks: Locks,
    head: Addr,
    tail: Addr,
    nodes: Vec<Addr>,
}

/// Builds the doubly-linked-list workload: `total_pairs`
/// dequeue+enqueue pairs split over `procs` processors. The list
/// starts with one node per processor.
///
/// "When the queue is non-empty, each transaction modifies Head or
/// Tail, but not both, so enqueuers can execute without interference
/// from dequeuers ... This concurrency is difficult to exploit in any
/// simple way using locks."
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn doubly_linked_list(procs: usize, total_pairs: u64) -> DoublyLinkedList {
    assert!(procs > 0, "need at least one processor");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 1, procs);
    let head = layout.word();
    let tail = layout.word();
    // A few extra nodes beyond one per processor keep the queue from
    // constantly bouncing off empty.
    let nodes = layout.padded_words(procs + 2);
    DoublyLinkedList {
        procs,
        pairs_per_proc: total_pairs / procs as u64,
        locks,
        head,
        tail,
        nodes,
    }
}

impl DoublyLinkedList {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("dll-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let lock_r = a.reg();
        let qnode_r = a.reg();
        let head_r = a.reg();
        let tail_r = a.reg();
        let n = a.reg();
        let h = a.reg(); // dequeued node
        let x = a.reg(); // scratch pointer
        r.init(&mut a);
        a.li(lock_r, self.locks.words[0].0);
        a.li(qnode_r, self.locks.qnodes[i].0);
        a.li(head_r, self.head.0);
        a.li(tail_r, self.tail.0);
        a.li(n, self.pairs_per_proc);

        let top = a.here();
        // ---- dequeue from Head ----
        acquire(&mut a, kind, lock_r, qnode_r, &r);
        a.load(h, head_r, 0);
        let empty = a.label();
        a.beq(h, r.zero, empty);
        a.load(x, h, NEXT); // x = h->next
        a.store(x, head_r, 0); // Head = x
        let deq_done = a.label();
        let fix_prev = a.label();
        a.bne(x, r.zero, fix_prev);
        // Removed the last item: Tail = null as well.
        a.store(r.zero, tail_r, 0);
        a.jmp(deq_done);
        a.bind(fix_prev);
        a.store(r.zero, x, PREV); // x->prev = null
        a.bind(deq_done);
        release(&mut a, kind, lock_r, qnode_r, &r);
        a.rand_delay(FAIR_DELAY.0, FAIR_DELAY.1);

        // ---- enqueue h at Tail ----
        acquire(&mut a, kind, lock_r, qnode_r, &r);
        a.store(r.zero, h, NEXT); // h->next = null
        a.load(x, tail_r, 0);
        let was_empty = a.label();
        let enq_done = a.label();
        a.beq(x, r.zero, was_empty);
        a.store(x, h, PREV); // h->prev = tail
        a.store(h, x, NEXT); // tail->next = h
        a.store(h, tail_r, 0); // Tail = h
        a.jmp(enq_done);
        a.bind(was_empty);
        a.store(r.zero, h, PREV);
        a.store(h, head_r, 0);
        a.store(h, tail_r, 0);
        a.bind(enq_done);
        release(&mut a, kind, lock_r, qnode_r, &r);
        a.rand_delay(FAIR_DELAY.0, FAIR_DELAY.1);

        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();

        // Empty queue: back off briefly and retry the dequeue.
        a.bind(empty);
        release(&mut a, kind, lock_r, qnode_r, &r);
        a.rand_delay(8, 64);
        a.jmp(top);
        Arc::new(a.finish())
    }
}

impl WorkloadSpec for DoublyLinkedList {
    fn name(&self) -> &str {
        "doubly-linked-list"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        // Initial list: nodes[0] <-> nodes[1] <-> ... <-> nodes[k-1]
        let mut img = Vec::new();
        let k = self.nodes.len();
        img.push((self.head, self.nodes[0].0));
        img.push((self.tail, self.nodes[k - 1].0));
        for (i, &node) in self.nodes.iter().enumerate() {
            let next = if i + 1 < k { self.nodes[i + 1].0 } else { 0 };
            let prev = if i > 0 { self.nodes[i - 1].0 } else { 0 };
            img.push((Addr(node.0 + NEXT as u64), next));
            img.push((Addr(node.0 + PREV as u64), prev));
        }
        img
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        check_lock_free(m, self.locks.words[0])?;
        // Walk the list forward, checking structure and conservation.
        let expected: HashSet<u64> = self.nodes.iter().map(|a| a.0).collect();
        let mut seen = HashSet::new();
        let mut cur = m.final_word(self.head);
        let mut prev = 0u64;
        while cur != 0 {
            if !expected.contains(&cur) {
                return Err(format!("list contains foreign node 0x{cur:x}"));
            }
            if !seen.insert(cur) {
                return Err(format!("cycle at node 0x{cur:x}"));
            }
            let got_prev = m.final_word(Addr(cur + PREV as u64));
            if got_prev != prev {
                return Err(format!("node 0x{cur:x}: prev 0x{got_prev:x} != 0x{prev:x}"));
            }
            prev = cur;
            cur = m.final_word(Addr(cur + NEXT as u64));
        }
        let tail = m.final_word(self.tail);
        if tail != prev {
            return Err(format!("Tail 0x{tail:x} != last node 0x{prev:x}"));
        }
        if seen.len() != expected.len() {
            return Err(format!("{} nodes on list, expected {}", seen.len(), expected.len()));
        }
        Ok(())
    }
}

fn check_lock_free(m: &Machine, lock: Addr) -> Result<(), String> {
    let v = m.final_word(lock);
    if v != 0 {
        return Err(format!("lock word {lock} left as {v}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_core::run::run_workload;
    use tlr_sim::config::MachineConfig;

    fn cfg(scheme: Scheme, procs: usize) -> MachineConfig {
        let mut c = MachineConfig::paper_default(scheme, procs);
        c.max_cycles = 100_000_000;
        c
    }

    #[test]
    fn multiple_counter_all_schemes() {
        for scheme in Scheme::ALL {
            let w = multiple_counter(4, 128);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn single_counter_all_schemes() {
        for scheme in Scheme::ALL {
            let w = single_counter(4, 128);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn dll_all_schemes() {
        for scheme in Scheme::ALL {
            let w = doubly_linked_list(4, 64);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn dll_single_proc_drains_to_empty_and_back() {
        // With one processor and one node... the initial list has
        // procs + 2 = 3 nodes; exercise many pairs.
        let w = doubly_linked_list(1, 50);
        run_workload(&cfg(Scheme::Tlr, 1), &w).assert_valid();
    }

    #[test]
    fn tlr_elides_in_multiple_counter() {
        let w = multiple_counter(4, 256);
        let rep = run_workload(&cfg(Scheme::Tlr, 4), &w);
        rep.assert_valid();
        // Nearly every critical section should commit lock-free.
        assert!(rep.stats.total_commits() > 200, "commits: {}", rep.stats.total_commits());
    }

    #[test]
    fn work_is_split_evenly() {
        let w = multiple_counter(8, 1 << 10);
        assert_eq!(w.iters_per_proc, 128);
        let s = single_counter(16, 1 << 10);
        assert_eq!(s.iters_per_proc, 64);
    }
}
