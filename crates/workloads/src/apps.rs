//! Synthetic application kernels standing in for the SPLASH /
//! SPLASH-2 programs of §5.2 (Table 1).
//!
//! We cannot run the original binaries on this simulator, so each
//! kernel reproduces the *locking and critical-section structure* the
//! paper attributes to its namesake — the properties Figure 11's
//! analysis actually depends on:
//!
//! | kernel | Table 1 critical sections | behaviour reproduced |
//! |---|---|---|
//! | [`barnes`] | tree node locks | contended octree-build: per-node locks, hot near the root, real data conflicts |
//! | [`cholesky`] | task queue & column locks | column-write critical sections that periodically overflow the speculative write buffer (§6.3 reports 3.7% resource fallbacks) |
//! | [`mp3d`] | cell locks | very frequent, largely uncontended per-cell locks whose footprint exceeds the L1; also the coarse-grain variant of the §6.3 experiment |
//! | [`radiosity`] | task queue & buffer locks | one highly contended central task-queue lock |
//! | [`water_nsq`] | global structure locks | frequent, uncontended global locks separated by compute |
//! | [`ocean_cont`] | counter locks | rare counter locks amid large private data sweeps |
//! | [`raytrace`] | work list & counter locks | moderately contended work-list plus a shared counter |
//!
//! Each kernel validates its final state by replaying its
//! deterministic in-IR pseudo-random choices in Rust, which checks the
//! serializability of every critical section the run executed.

use std::collections::HashSet;
use std::sync::Arc;

use tlr_core::run::WorkloadSpec;
use tlr_core::Machine;
use tlr_cpu::asm::Asm;
use tlr_cpu::isa::Reg;
use tlr_cpu::Program;
use tlr_mem::addr::Addr;
use tlr_sim::config::Scheme;

use crate::alloc::Layout;
use crate::common::{acquire, release, LockKind, Locks, SyncRegs};

/// LCG multiplier (Knuth's MMIX constants) used by the in-IR
/// pseudo-random index generation; the validators replay it in Rust.
const LCG_MUL: u64 = 6364136223846793005;
const LCG_ADD: u64 = 1442695040888963407;

/// One step of the IR-side LCG: `state = state * LCG_MUL + LCG_ADD`,
/// then `dst = (state >> 33) & mask`.
fn emit_lcg_index(a: &mut Asm, state: Reg, mul: Reg, add: Reg, mask: Reg, dst: Reg) {
    a.mul(state, state, mul);
    a.add(state, state, add);
    a.shri(dst, state, 33);
    a.and(dst, dst, mask);
}

/// The Rust-side replay of [`emit_lcg_index`].
fn lcg_index(state: &mut u64, mask: u64) -> u64 {
    *state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
    (*state >> 33) & mask
}

fn per_proc_seed(i: usize) -> u64 {
    0x5eed_0000_0000 + i as u64 * 0x9e37
}

// ---------------------------------------------------------------------------
// mp3d: frequent, largely uncontended per-cell locks (Table 1: cell locks)
// ---------------------------------------------------------------------------

/// The mp3d-like kernel: particles move between cells; each move
/// locks a pseudo-randomly chosen cell and updates its occupancy.
///
/// "Mp3d has frequent lock accesses but these locks are largely
/// uncontended. The 128K data cache is unable to hold all locks and
/// hence the processor suffers miss latency to locks." (§6.3) — the
/// lock array is packed (not padded) and sized so its footprint plus
/// the cell data exceeds the L1.
#[derive(Debug, Clone)]
pub struct Mp3d {
    procs: usize,
    iters_per_proc: u64,
    cells: u64,
    /// Single coarse lock instead of per-cell locks (§6.3's
    /// coarse-grain vs fine-grain experiment).
    coarse: bool,
    locks: Locks,
    coarse_lock: Locks,
    cell_base: Addr,
}

/// Builds the mp3d kernel with per-cell (fine-grain) locks.
///
/// # Panics
///
/// Panics if `procs` is zero or `cells` is not a power of two.
pub fn mp3d(procs: usize, iters_per_proc: u64, cells: u64) -> Mp3d {
    mp3d_inner(procs, iters_per_proc, cells, false)
}

/// Builds the §6.3 coarse-grain variant: one single lock protects all
/// cells ("We replaced the individual cell locks in mp3d with a
/// single lock").
///
/// # Panics
///
/// Panics if `procs` is zero or `cells` is not a power of two.
pub fn mp3d_coarse(procs: usize, iters_per_proc: u64, cells: u64) -> Mp3d {
    mp3d_inner(procs, iters_per_proc, cells, true)
}

fn mp3d_inner(procs: usize, iters_per_proc: u64, cells: u64, coarse: bool) -> Mp3d {
    assert!(procs > 0, "need at least one processor");
    assert!(cells.is_power_of_two(), "cells must be a power of two");
    let mut layout = Layout::new();
    let locks = Locks::alloc_packed(&mut layout, cells, procs);
    let coarse_lock = Locks::alloc(&mut layout, 1, procs);
    let cell_base = layout.packed_words(cells);
    Mp3d { procs, iters_per_proc, cells, coarse, locks, coarse_lock, cell_base }
}

impl Mp3d {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("mp3d-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let state = a.reg();
        let mul = a.reg();
        let add = a.reg();
        let mask = a.reg();
        let idx = a.reg();
        let lock_r = a.reg();
        let lock_base = a.reg();
        let cell_r = a.reg();
        let cell_base = a.reg();
        let n = a.reg();
        let v = a.reg();
        let three = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(state, per_proc_seed(i));
        a.li(mul, LCG_MUL);
        a.li(add, LCG_ADD);
        a.li(mask, self.cells - 1);
        a.li(lock_base, self.locks.words[0].0);
        a.li(cell_base, self.cell_base.0);
        a.li(n, self.iters_per_proc);
        a.li(three, 3);
        let top = a.here();
        emit_lcg_index(&mut a, state, mul, add, mask, idx);
        // Byte offset of the chosen cell's lock / data word.
        a.shli(idx, idx, 3);
        if self.coarse {
            a.li(lock_r, self.coarse_lock.words[0].0);
        } else {
            a.add(lock_r, lock_base, idx);
        }
        a.add(cell_r, cell_base, idx);
        acquire(&mut a, kind, lock_r, qnode, &r);
        // Update the cell occupancy (the paper's per-cell update).
        a.load(v, cell_r, 0);
        a.addi(v, v, 1);
        a.store(v, cell_r, 0);
        release(&mut a, kind, lock_r, qnode, &r);
        a.delay(3); // brief particle-advance compute
        a.xor(v, v, three); // keep the register file busy
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }

    fn expected_cells(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.cells as usize];
        for i in 0..self.procs {
            let mut state = per_proc_seed(i);
            for _ in 0..self.iters_per_proc {
                counts[lcg_index(&mut state, self.cells - 1) as usize] += 1;
            }
        }
        counts
    }
}

impl WorkloadSpec for Mp3d {
    fn name(&self) -> &str {
        if self.coarse {
            "mp3d-coarse"
        } else {
            "mp3d"
        }
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        let mut set = self.locks.attribution_set(scheme);
        set.extend(self.coarse_lock.attribution_set(scheme));
        set
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        for (c, expect) in self.expected_cells().into_iter().enumerate() {
            let got = m.final_word(Addr(self.cell_base.0 + c as u64 * 8));
            if got != expect {
                return Err(format!("cell {c}: {got} != {expect}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// barnes: octree build with per-node tree locks (Table 1: tree node locks)
// ---------------------------------------------------------------------------

/// Tree fanout (an octree in the original; four-way here keeps the
/// hot upper levels hot at small scale).
const BARNES_FANOUT: u64 = 4;

/// The barnes-like kernel: each processor loads bodies into a shared
/// tree, locking each visited node to update it atomically. Locks
/// near the root are heavily contended and carry real data conflicts,
/// which is why the paper sees TLR restart frequently here and MCS
/// come out 4% ahead (§6.3).
#[derive(Debug, Clone)]
pub struct Barnes {
    procs: usize,
    bodies_per_proc: u64,
    levels: u32,
    locks: Locks,
    node_count: u64,
    counters: Vec<Addr>,
}

/// Builds the barnes kernel: a `levels`-deep tree (fanout 4), one
/// lock and one counter per node.
///
/// # Panics
///
/// Panics if `procs` is zero or `levels` is not in `1..=6`.
pub fn barnes(procs: usize, bodies_per_proc: u64, levels: u32) -> Barnes {
    assert!(procs > 0, "need at least one processor");
    assert!((2..=6).contains(&levels), "levels must be 2..=6");
    let node_count = (BARNES_FANOUT.pow(levels) - 1) / (BARNES_FANOUT - 1);
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, node_count as usize, procs);
    let counters = layout.padded_words(node_count as usize);
    Barnes { procs, bodies_per_proc, levels, locks, node_count, counters }
}

impl Barnes {
    /// Index of `child` under node `parent` (heap order).
    fn child_of(parent: u64, child: u64) -> u64 {
        parent * BARNES_FANOUT + 1 + child
    }

    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("barnes-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let state = a.reg();
        let mul = a.reg();
        let add = a.reg();
        let mask = a.reg();
        let pick = a.reg();
        let node = a.reg(); // current tree node index
        let lock_r = a.reg();
        let ctr_r = a.reg();
        let n = a.reg();
        let v = a.reg();
        let lvl = a.reg();
        let levels_r = a.reg();
        let fanout = a.reg();
        let tmp = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(state, per_proc_seed(i));
        a.li(mul, LCG_MUL);
        a.li(add, LCG_ADD);
        a.li(mask, BARNES_FANOUT - 1);
        a.li(n, self.bodies_per_proc);
        a.li(levels_r, self.levels as u64);
        a.li(fanout, BARNES_FANOUT);

        let body = a.here();
        // The root cell is subdivided up front (as in barnes, where
        // most locking happens below the root): descend directly into
        // a pseudo-random level-1 child.
        emit_lcg_index(&mut a, state, mul, add, mask, pick);
        a.addi(node, pick, 1);
        a.li(lvl, 1);
        let walk = a.here();
        // Lock the node; insert the body (update its counter).
        // Lock addresses are padded words 64 bytes apart from a base.
        a.li(tmp, self.locks.words[0].0);
        a.shli(lock_r, node, 6);
        a.add(lock_r, lock_r, tmp);
        a.li(tmp, self.counters[0].0);
        a.shli(ctr_r, node, 6);
        a.add(ctr_r, ctr_r, tmp);
        acquire(&mut a, kind, lock_r, qnode, &r);
        a.load(v, ctr_r, 0);
        a.addi(v, v, 1);
        a.store(v, ctr_r, 0);
        release(&mut a, kind, lock_r, qnode, &r);
        // Descend to a pseudo-random child.
        emit_lcg_index(&mut a, state, mul, add, mask, pick);
        a.mul(node, node, fanout);
        a.addi(node, node, 1);
        a.add(node, node, pick);
        a.addi(lvl, lvl, 1);
        a.blt(lvl, levels_r, walk);
        a.rand_delay(12, 48);
        a.addi(n, n, -1);
        a.bne(n, r.zero, body);
        a.done();
        Arc::new(a.finish())
    }

    fn expected_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.node_count as usize];
        for i in 0..self.procs {
            let mut state = per_proc_seed(i);
            for _ in 0..self.bodies_per_proc {
                let first = lcg_index(&mut state, BARNES_FANOUT - 1);
                let mut node = first + 1;
                for lvl in 1..self.levels {
                    counts[node as usize] += 1;
                    let pick = lcg_index(&mut state, BARNES_FANOUT - 1);
                    if lvl + 1 < self.levels {
                        node = Self::child_of(node, pick);
                    }
                }
            }
        }
        counts
    }
}

impl WorkloadSpec for Barnes {
    fn name(&self) -> &str {
        "barnes"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        for (nidx, expect) in self.expected_counts().into_iter().enumerate() {
            let got = m.final_word(self.counters[nidx]);
            if got != expect {
                return Err(format!("tree node {nidx}: {got} != {expect}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// radiosity: central task queue (Table 1: task queue & buffer locks)
// ---------------------------------------------------------------------------

/// The radiosity-like kernel: every iteration takes a task from one
/// central queue (the contended lock that "accounted for most
/// conflict-induced restarts" in §6.3), then posts a result to one of
/// a few buffer locks.
#[derive(Debug, Clone)]
pub struct Radiosity {
    procs: usize,
    tasks_per_proc: u64,
    buffers: u64,
    locks: Locks, // [0] = task queue, [1..] = buffer locks
    taken: Addr,
    buffer_counts: Vec<Addr>,
}

/// Builds the radiosity kernel with `buffers` buffer locks
/// (power of two).
///
/// # Panics
///
/// Panics if `procs` is zero or `buffers` is not a power of two.
pub fn radiosity(procs: usize, tasks_per_proc: u64, buffers: u64) -> Radiosity {
    assert!(procs > 0, "need at least one processor");
    assert!(buffers.is_power_of_two(), "buffers must be a power of two");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 1 + buffers as usize, procs);
    let taken = layout.word();
    let buffer_counts = layout.padded_words(buffers as usize);
    Radiosity { procs, tasks_per_proc, buffers, locks, taken, buffer_counts }
}

impl Radiosity {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("radiosity-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let state = a.reg();
        let mul = a.reg();
        let add = a.reg();
        let mask = a.reg();
        let idx = a.reg();
        let qlock = a.reg();
        let blocks = a.reg();
        let lock_r = a.reg();
        let taken_r = a.reg();
        let bcount = a.reg();
        let n = a.reg();
        let v = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(state, per_proc_seed(i));
        a.li(mul, LCG_MUL);
        a.li(add, LCG_ADD);
        a.li(mask, self.buffers - 1);
        a.li(qlock, self.locks.words[0].0);
        a.li(taken_r, self.taken.0);
        a.li(n, self.tasks_per_proc);
        let top = a.here();
        // Take a task from the central queue.
        acquire(&mut a, kind, qlock, qnode, &r);
        a.load(v, taken_r, 0);
        a.addi(v, v, 1);
        a.store(v, taken_r, 0);
        release(&mut a, kind, qlock, qnode, &r);
        // Process it (ray-shooting compute).
        a.rand_delay(60, 180);
        // Post the result under a pseudo-random buffer lock.
        emit_lcg_index(&mut a, state, mul, add, mask, idx);
        a.shli(idx, idx, 6); // padded locks: 64 bytes apart
        a.li(blocks, self.locks.words[1].0);
        a.add(lock_r, blocks, idx);
        a.li(bcount, self.buffer_counts[0].0);
        a.add(bcount, bcount, idx);
        acquire(&mut a, kind, lock_r, qnode, &r);
        a.load(v, bcount, 0);
        a.addi(v, v, 1);
        a.store(v, bcount, 0);
        release(&mut a, kind, lock_r, qnode, &r);
        a.rand_delay(2, 8);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }

    fn expected_buffers(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.buffers as usize];
        for i in 0..self.procs {
            let mut state = per_proc_seed(i);
            for _ in 0..self.tasks_per_proc {
                counts[lcg_index(&mut state, self.buffers - 1) as usize] += 1;
            }
        }
        counts
    }
}

impl WorkloadSpec for Radiosity {
    fn name(&self) -> &str {
        "radiosity"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        let expect_taken = self.tasks_per_proc * self.procs as u64;
        let got = m.final_word(self.taken);
        if got != expect_taken {
            return Err(format!("tasks taken: {got} != {expect_taken}"));
        }
        for (b, expect) in self.expected_buffers().into_iter().enumerate() {
            let got = m.final_word(self.buffer_counts[b]);
            if got != expect {
                return Err(format!("buffer {b}: {got} != {expect}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// water-nsq: frequent uncontended global locks (Table 1: global
// structure locks)
// ---------------------------------------------------------------------------

/// The water-nsq-like kernel: short critical sections on a handful of
/// global accumulators, visited round-robin so they are almost never
/// contended, separated by molecule-interaction compute. "Water-nsq
/// has frequent uncontended lock acquires" (§6.3) — removing the lock
/// overhead exposes the data misses instead, so the gains are small.
#[derive(Debug, Clone)]
pub struct WaterNsq {
    procs: usize,
    iters_per_proc: u64,
    globals: u64,
    compute: u32,
    locks: Locks,
    accumulators: Vec<Addr>,
}

/// Builds the water-nsq kernel with `globals` global-structure locks.
///
/// # Panics
///
/// Panics if `procs` is zero or `globals` is zero.
pub fn water_nsq(procs: usize, iters_per_proc: u64, globals: u64) -> WaterNsq {
    assert!(procs > 0, "need at least one processor");
    assert!(globals > 0, "need at least one global");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, globals as usize, procs);
    let accumulators = layout.padded_words(globals as usize);
    WaterNsq { procs, iters_per_proc, globals, compute: 80, locks, accumulators }
}

impl WaterNsq {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("water-nsq-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let g = a.reg(); // rotating global index
        let globals_r = a.reg();
        let lock_r = a.reg();
        let acc_r = a.reg();
        let n = a.reg();
        let v = a.reg();
        let tmp = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(g, i as u64 % self.globals);
        a.li(globals_r, self.globals);
        a.li(n, self.iters_per_proc);
        let top = a.here();
        // Molecule-interaction compute between synchronizations (the
        // random spread decorrelates the processors' rotations so the
        // locks stay uncontended, as in the original).
        a.rand_delay(self.compute, self.compute * 3);
        // Accumulate into global g.
        a.li(tmp, self.locks.words[0].0);
        a.shli(lock_r, g, 6);
        a.add(lock_r, lock_r, tmp);
        a.li(tmp, self.accumulators[0].0);
        a.shli(acc_r, g, 6);
        a.add(acc_r, acc_r, tmp);
        acquire(&mut a, kind, lock_r, qnode, &r);
        a.load(v, acc_r, 0);
        a.addi(v, v, 1);
        a.store(v, acc_r, 0);
        release(&mut a, kind, lock_r, qnode, &r);
        // Rotate: g = (g + 1) mod globals.
        a.addi(g, g, 1);
        let no_wrap = a.label();
        a.blt(g, globals_r, no_wrap);
        a.li(g, 0);
        a.bind(no_wrap);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }
}

impl WorkloadSpec for WaterNsq {
    fn name(&self) -> &str {
        "water-nsq"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        // Each processor contributes iters_per_proc increments spread
        // round-robin from its own starting global.
        let mut expect = vec![0u64; self.globals as usize];
        for i in 0..self.procs {
            let mut g = i as u64 % self.globals;
            for _ in 0..self.iters_per_proc {
                expect[g as usize] += 1;
                g = (g + 1) % self.globals;
            }
        }
        for (gidx, e) in expect.into_iter().enumerate() {
            let got = m.final_word(self.accumulators[gidx]);
            if got != e {
                return Err(format!("global {gidx}: {got} != {e}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ocean-cont: rare counter locks amid big private sweeps (Table 1:
// counter locks)
// ---------------------------------------------------------------------------

/// The ocean-cont-like kernel: long private grid sweeps punctuated by
/// a counter-lock update at each sweep end. Lock accesses "do not
/// contribute much to performance loss" (§6.3), so all schemes come
/// out close.
#[derive(Debug, Clone)]
pub struct OceanCont {
    procs: usize,
    sweeps_per_proc: u64,
    grid_lines: u64,
    locks: Locks,
    counters: Vec<Addr>,
    grids: Vec<Addr>,
}

/// Builds the ocean-cont kernel: per-processor private grids of
/// `grid_lines` cache lines, two shared counter locks.
///
/// # Panics
///
/// Panics if `procs` or `grid_lines` is zero.
pub fn ocean_cont(procs: usize, sweeps_per_proc: u64, grid_lines: u64) -> OceanCont {
    assert!(procs > 0, "need at least one processor");
    assert!(grid_lines > 0, "need a non-empty grid");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 2, procs);
    let counters = layout.padded_words(2);
    let grids = (0..procs).map(|_| layout.lines(grid_lines)).collect();
    OceanCont { procs, sweeps_per_proc, grid_lines, locks, counters, grids }
}

impl OceanCont {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("ocean-cont-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let grid = a.reg();
        let end = a.reg();
        let p = a.reg();
        let lock_r = a.reg();
        let ctr_r = a.reg();
        let n = a.reg();
        let v = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(grid, self.grids[i].0);
        a.li(n, self.sweeps_per_proc);
        let sweep = a.here();
        // Relaxation sweep over the private grid: read-modify-write
        // one word per line.
        a.mov(p, grid);
        a.li(end, self.grids[i].0 + self.grid_lines * 64);
        let row = a.here();
        a.load(v, p, 0);
        a.addi(v, v, 1);
        a.store(v, p, 0);
        a.addi(p, p, 64);
        a.blt(p, end, row);
        // Convergence counter under one of the two counter locks.
        let which = (i % 2) as u64;
        a.li(lock_r, self.locks.words[which as usize].0);
        a.li(ctr_r, self.counters[which as usize].0);
        acquire(&mut a, kind, lock_r, qnode, &r);
        a.load(v, ctr_r, 0);
        a.addi(v, v, 1);
        a.store(v, ctr_r, 0);
        release(&mut a, kind, lock_r, qnode, &r);
        a.addi(n, n, -1);
        a.bne(n, r.zero, sweep);
        a.done();
        Arc::new(a.finish())
    }
}

impl WorkloadSpec for OceanCont {
    fn name(&self) -> &str {
        "ocean-cont"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        let mut expect = [0u64; 2];
        for i in 0..self.procs {
            expect[i % 2] += self.sweeps_per_proc;
        }
        for (c, e) in expect.iter().enumerate() {
            let got = m.final_word(self.counters[c]);
            if got != *e {
                return Err(format!("counter {c}: {got} != {e}"));
            }
        }
        // Grid cells were swept exactly sweeps_per_proc times.
        for (i, &g) in self.grids.iter().enumerate() {
            let got = m.final_word(g);
            if got != self.sweeps_per_proc {
                return Err(format!("proc {i} grid[0]: {got} != {}", self.sweeps_per_proc));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// raytrace: work list + counter locks (Table 1)
// ---------------------------------------------------------------------------

/// The raytrace-like kernel: rays are taken off a shared work-list
/// (one lock), traced (compute), and tallied into a shared counter
/// (second lock). Moderate contention on both.
#[derive(Debug, Clone)]
pub struct Raytrace {
    procs: usize,
    rays_per_proc: u64,
    locks: Locks, // [0] = work list, [1] = ray counter
    list_pos: Addr,
    ray_count: Addr,
}

/// Builds the raytrace kernel.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn raytrace(procs: usize, rays_per_proc: u64) -> Raytrace {
    assert!(procs > 0, "need at least one processor");
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 2, procs);
    let list_pos = layout.word();
    let ray_count = layout.word();
    Raytrace { procs, rays_per_proc, locks, list_pos, ray_count }
}

impl Raytrace {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("raytrace-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let wlock = a.reg();
        let clock_ = a.reg();
        let pos_r = a.reg();
        let cnt_r = a.reg();
        let n = a.reg();
        let v = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(wlock, self.locks.words[0].0);
        a.li(clock_, self.locks.words[1].0);
        a.li(pos_r, self.list_pos.0);
        a.li(cnt_r, self.ray_count.0);
        a.li(n, self.rays_per_proc);
        let top = a.here();
        // Grab the next ray off the work list.
        acquire(&mut a, kind, wlock, qnode, &r);
        a.load(v, pos_r, 0);
        a.addi(v, v, 1);
        a.store(v, pos_r, 0);
        release(&mut a, kind, wlock, qnode, &r);
        // Trace it.
        a.rand_delay(200, 600);
        // Tally it.
        acquire(&mut a, kind, clock_, qnode, &r);
        a.load(v, cnt_r, 0);
        a.addi(v, v, 1);
        a.store(v, cnt_r, 0);
        release(&mut a, kind, clock_, qnode, &r);
        a.rand_delay(2, 8);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }
}

impl WorkloadSpec for Raytrace {
    fn name(&self) -> &str {
        "raytrace"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        let expect = self.rays_per_proc * self.procs as u64;
        for (name, addr) in [("work list", self.list_pos), ("ray counter", self.ray_count)] {
            let got = m.final_word(addr);
            if got != expect {
                return Err(format!("{name}: {got} != {expect}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// cholesky: task queue + column locks with write-buffer overflow
// (Table 1: task queue & col. locks; §6.3: 3.7% resource fallbacks)
// ---------------------------------------------------------------------------

/// The cholesky-like kernel: tasks are taken off a queue; each task
/// locks a column and writes its entries. Most columns are short, but
/// every `big_every`-th task processes a column whose footprint
/// exceeds the speculative write buffer, forcing TLR's resource
/// fallback — reproducing the §6.3 observation that "about 3.7% of
/// dynamic critical section executions resulted in resource
/// limitations for local buffering".
#[derive(Debug, Clone)]
pub struct Cholesky {
    procs: usize,
    tasks_per_proc: u64,
    columns: u64,
    small_lines: u64,
    big_lines: u64,
    big_every: u64,
    locks: Locks, // [0] = task queue, [1..] = column locks
    taken: Addr,
    col_counts: Vec<Addr>,
    col_data: Vec<Addr>,
}

/// Builds the cholesky kernel: `columns` (power of two) column locks;
/// every `big_every`-th task writes `big_lines` cache lines (sized to
/// exceed the 64-line write buffer), the rest write `small_lines`.
///
/// # Panics
///
/// Panics if `procs` is zero, `columns` is not a power of two, or
/// `big_every` is zero.
pub fn cholesky(procs: usize, tasks_per_proc: u64, columns: u64, big_every: u64) -> Cholesky {
    assert!(procs > 0, "need at least one processor");
    assert!(columns.is_power_of_two(), "columns must be a power of two");
    assert!(big_every > 0, "big_every must be non-zero");
    let small_lines = 4;
    let big_lines = 80; // > 64-entry write buffer (Table 2)
    let mut layout = Layout::new();
    let locks = Locks::alloc(&mut layout, 1 + columns as usize, procs);
    let taken = layout.word();
    let col_counts = layout.padded_words(columns as usize);
    let col_data = (0..columns).map(|_| layout.lines(big_lines)).collect();
    Cholesky {
        procs,
        tasks_per_proc,
        columns,
        small_lines,
        big_lines,
        big_every,
        locks,
        taken,
        col_counts,
        col_data,
    }
}

impl Cholesky {
    fn program(&self, i: usize, kind: LockKind) -> Arc<Program> {
        let mut a = Asm::new(format!("cholesky-{i}"));
        let r = SyncRegs::alloc(&mut a);
        let qnode = a.reg();
        let state = a.reg();
        let mul = a.reg();
        let add = a.reg();
        let mask = a.reg();
        let col = a.reg();
        let qlock = a.reg();
        let lock_r = a.reg();
        let cnt_r = a.reg();
        let p = a.reg();
        let end = a.reg();
        let n = a.reg();
        let v = a.reg();
        let iter = a.reg();
        let big_every = a.reg();
        let tmp = a.reg();
        let stride = a.reg();
        r.init(&mut a);
        a.li(qnode, self.locks.qnodes[i].0);
        a.li(state, per_proc_seed(i));
        a.li(mul, LCG_MUL);
        a.li(add, LCG_ADD);
        a.li(mask, self.columns - 1);
        a.li(qlock, self.locks.words[0].0);
        a.li(n, self.tasks_per_proc);
        a.li(iter, 0);
        a.li(big_every, self.big_every);
        a.li(stride, self.big_lines * 64);
        let top = a.here();
        // Pop a task.
        acquire(&mut a, kind, qlock, qnode, &r);
        a.li(tmp, self.taken.0);
        a.load(v, tmp, 0);
        a.addi(v, v, 1);
        a.store(v, tmp, 0);
        release(&mut a, kind, qlock, qnode, &r);
        // Pick the column and its supernode size.
        emit_lcg_index(&mut a, state, mul, add, mask, col);
        a.li(tmp, self.locks.words[1].0);
        a.shli(lock_r, col, 6);
        a.add(lock_r, lock_r, tmp);
        a.li(tmp, self.col_counts[0].0);
        a.shli(cnt_r, col, 6);
        a.add(cnt_r, cnt_r, tmp);
        // p = col_data[col]
        a.mul(p, col, stride);
        a.li(tmp, self.col_data[0].0);
        a.add(p, p, tmp);
        // end = p + lines*64 (big on every big_every-th task).
        // is_big = ((iter + 1) % big_every == 0), computed via
        // repeated subtraction-free trick: keep a countdown register.
        // Simpler: iter & (big_every-1) when big_every is a power of
        // two; require that.
        a.li(tmp, self.big_every - 1);
        a.and(tmp, iter, tmp);
        let small = a.label();
        let sized = a.label();
        a.bne(tmp, r.zero, small);
        a.li(end, self.big_lines * 64);
        a.jmp(sized);
        a.bind(small);
        a.li(end, self.small_lines * 64);
        a.bind(sized);
        a.add(end, end, p);
        // ModifyColumn: lock the column and write its entries.
        acquire(&mut a, kind, lock_r, qnode, &r);
        a.load(v, cnt_r, 0);
        a.addi(v, v, 1);
        a.store(v, cnt_r, 0);
        let row = a.here();
        a.store(v, p, 0);
        a.addi(p, p, 64);
        a.blt(p, end, row);
        release(&mut a, kind, lock_r, qnode, &r);
        a.rand_delay(2, 12);
        a.addi(iter, iter, 1);
        a.addi(n, n, -1);
        a.bne(n, r.zero, top);
        a.done();
        Arc::new(a.finish())
    }

    fn expected_col_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.columns as usize];
        for i in 0..self.procs {
            let mut state = per_proc_seed(i);
            for _ in 0..self.tasks_per_proc {
                counts[lcg_index(&mut state, self.columns - 1) as usize] += 1;
            }
        }
        counts
    }
}

impl WorkloadSpec for Cholesky {
    fn name(&self) -> &str {
        "cholesky"
    }

    fn programs(&self, scheme: Scheme) -> Vec<Arc<Program>> {
        assert!(
            self.big_every.is_power_of_two(),
            "big_every must be a power of two (IR uses a mask)"
        );
        let kind = LockKind::of(scheme);
        (0..self.procs).map(|i| self.program(i, kind)).collect()
    }

    fn memory_image(&self) -> Vec<(Addr, u64)> {
        Vec::new()
    }

    fn lock_addrs(&self, scheme: Scheme) -> HashSet<Addr> {
        self.locks.attribution_set(scheme)
    }

    fn validate(&self, m: &Machine) -> Result<(), String> {
        let expect_taken = self.tasks_per_proc * self.procs as u64;
        let got = m.final_word(self.taken);
        if got != expect_taken {
            return Err(format!("tasks taken: {got} != {expect_taken}"));
        }
        for (c, expect) in self.expected_col_counts().into_iter().enumerate() {
            let got = m.final_word(self.col_counts[c]);
            if got != expect {
                return Err(format!("column {c}: {got} != {expect}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 11 roster
// ---------------------------------------------------------------------------

/// The Figure 11 application roster with run-length scale `scale`
/// (operations per processor; the paper's full runs are hundreds of
/// millions of cycles, scaled down here — see `DESIGN.md`).
pub fn figure11_apps(procs: usize, scale: u64) -> Vec<Box<dyn WorkloadSpec>> {
    vec![
        Box::new(ocean_cont(procs, scale / 16, 256)),
        Box::new(water_nsq(procs, scale, (2 * procs as u64).next_power_of_two())),
        Box::new(raytrace(procs, scale)),
        Box::new(radiosity(procs, scale, 4)),
        Box::new(barnes(procs, scale / 2, 3)),
        Box::new(cholesky(procs, scale / 2, 16, 32)),
        Box::new(mp3d(procs, scale * 4, 8192)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_core::run::run_workload;
    use tlr_sim::config::MachineConfig;

    fn cfg(scheme: Scheme, procs: usize) -> MachineConfig {
        let mut c = MachineConfig::paper_default(scheme, procs);
        c.max_cycles = 300_000_000;
        c
    }

    #[test]
    fn mp3d_valid_across_schemes() {
        for scheme in [Scheme::Base, Scheme::Mcs, Scheme::Tlr] {
            let w = mp3d(4, 40, 64);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn mp3d_coarse_valid() {
        let w = mp3d_coarse(4, 40, 64);
        run_workload(&cfg(Scheme::Tlr, 4), &w).assert_valid();
        run_workload(&cfg(Scheme::Base, 4), &w).assert_valid();
    }

    #[test]
    fn barnes_valid_across_schemes() {
        for scheme in [Scheme::Base, Scheme::Mcs, Scheme::Tlr] {
            let w = barnes(4, 20, 3);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn radiosity_valid_across_schemes() {
        for scheme in [Scheme::Base, Scheme::Mcs, Scheme::Tlr] {
            let w = radiosity(4, 30, 4);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn water_nsq_valid() {
        for scheme in [Scheme::Base, Scheme::Tlr] {
            let w = water_nsq(4, 40, 8);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn ocean_cont_valid() {
        for scheme in [Scheme::Base, Scheme::Tlr] {
            let w = ocean_cont(4, 6, 16);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn raytrace_valid() {
        for scheme in [Scheme::Base, Scheme::Mcs, Scheme::Tlr] {
            let w = raytrace(4, 30);
            run_workload(&cfg(scheme, 4), &w).assert_valid();
        }
    }

    #[test]
    fn cholesky_valid_and_overflows_write_buffer_under_tlr() {
        let w = cholesky(4, 32, 8, 8);
        let rep = run_workload(&cfg(Scheme::Tlr, 4), &w);
        rep.assert_valid();
        let resource = rep.stats.sum(|n| n.fallbacks_resource);
        assert!(resource > 0, "big columns must exhaust the write buffer");
        run_workload(&cfg(Scheme::Base, 4), &w).assert_valid();
    }

    #[test]
    fn lcg_replay_matches_shape() {
        // The Rust replay and the IR use the same constants; spot
        // check the distribution covers the space.
        let mut s = per_proc_seed(0);
        let vals: HashSet<u64> = (0..100).map(|_| lcg_index(&mut s, 15)).collect();
        assert!(vals.len() > 8, "LCG should spread across indices");
    }
}
