//! Workloads for the TLR reproduction.
//!
//! * [`alloc`] — padded memory layout helper (the paper pads data
//!   structures to eliminate false sharing, §5.2).
//! * [`micro`] — the three microbenchmarks of §5.1:
//!   `multiple-counter` (coarse-grain/no-conflicts), `single-counter`
//!   (fine-grain/high-conflicts) and `doubly-linked list`
//!   (fine-grain/dynamic-conflicts).
//! * [`apps`] — synthetic kernels standing in for the SPLASH /
//!   SPLASH-2 applications of §5.2 (Table 1). Each reproduces the
//!   documented critical-section and locking structure of its
//!   namesake; see `DESIGN.md` for the substitution rationale.
//! * [`common`] — shared program-emission helpers (critical-section
//!   bodies over either lock implementation, per the active scheme).
//!
//! Every workload implements [`tlr_core::run::WorkloadSpec`] and
//! validates its final memory state, which directly checks the
//! serializability TLR promises.

pub mod alloc;
pub mod apps;
pub mod common;
pub mod micro;

/// Re-export for convenience: the trait all workloads implement.
pub use tlr_core::run as spec;
