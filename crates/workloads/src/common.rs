//! Shared program-emission helpers.
//!
//! Workload generators emit the same critical-section bodies over
//! either lock implementation: test&test&set for BASE/SLE/TLR runs
//! and MCS queue locks for MCS runs (§5: same benchmark, different
//! synchronization binary).

use std::collections::HashSet;

use tlr_cpu::asm::Asm;
use tlr_cpu::isa::Reg;
use tlr_mem::addr::Addr;
use tlr_sim::config::Scheme;
use tlr_sync::{mcs, tatas};

use crate::alloc::Layout;

/// Which lock implementation a program uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Test&test&set over LL/SC (BASE, SLE, TLR, TLR-strict-ts).
    Tatas,
    /// MCS queue locks (the MCS configuration).
    Mcs,
}

impl LockKind {
    /// The lock implementation a scheme's binary uses.
    pub fn of(scheme: Scheme) -> Self {
        if scheme.uses_mcs_locks() {
            LockKind::Mcs
        } else {
            LockKind::Tatas
        }
    }
}

/// Registers shared by both lock implementations. `zero` and `one`
/// hold constants after [`SyncRegs::init`].
#[derive(Debug, Clone, Copy)]
pub struct SyncRegs {
    /// Constant 0.
    pub zero: Reg,
    /// Constant 1.
    pub one: Reg,
    /// Scratch.
    pub t1: Reg,
    /// Scratch.
    pub t2: Reg,
    /// Scratch.
    pub t3: Reg,
}

impl SyncRegs {
    /// Allocates the registers.
    pub fn alloc(a: &mut Asm) -> Self {
        SyncRegs { zero: a.reg(), one: a.reg(), t1: a.reg(), t2: a.reg(), t3: a.reg() }
    }

    /// Emits the constant loads.
    pub fn init(&self, a: &mut Asm) {
        a.li(self.zero, 0);
        a.li(self.one, 1);
    }

    fn tatas(&self) -> tatas::TatasRegs {
        tatas::TatasRegs { zero: self.zero, one: self.one, t1: self.t1, t2: self.t2 }
    }

    fn mcs(&self) -> mcs::McsRegs {
        mcs::McsRegs { zero: self.zero, one: self.one, t1: self.t1, t2: self.t2, t3: self.t3 }
    }
}

/// Emits a lock acquisition. `lock` holds the lock-word (or MCS tail)
/// address; `qnode` holds this thread's queue-node address (unused
/// for test&test&set).
pub fn acquire(a: &mut Asm, kind: LockKind, lock: Reg, qnode: Reg, r: &SyncRegs) {
    match kind {
        LockKind::Tatas => tatas::acquire(a, lock, &r.tatas()),
        LockKind::Mcs => mcs::acquire(a, lock, qnode, &r.mcs()),
    }
}

/// Emits a lock release.
pub fn release(a: &mut Asm, kind: LockKind, lock: Reg, qnode: Reg, r: &SyncRegs) {
    match kind {
        LockKind::Tatas => tatas::release(a, lock, &r.tatas()),
        LockKind::Mcs => mcs::release(a, lock, qnode, &r.mcs()),
    }
}

/// Lock instances plus per-thread MCS queue nodes, laid out with
/// padding. The layout is identical for every scheme so cycle counts
/// are comparable.
#[derive(Debug, Clone)]
pub struct Locks {
    /// Lock words (test&test&set) / tail pointers (MCS).
    pub words: Vec<Addr>,
    /// Per-processor queue nodes (MCS only, but always allocated).
    pub qnodes: Vec<Addr>,
}

impl Locks {
    /// Allocates `n` padded locks and one queue node per processor.
    pub fn alloc(layout: &mut Layout, n: usize, procs: usize) -> Self {
        Locks {
            words: layout.padded_words(n),
            qnodes: (0..procs).map(|_| layout.lines(mcs::QNODE_SIZE / 64)).collect(),
        }
    }

    /// Allocates `n` locks packed 8 per cache line (un-padded, as in
    /// mp3d's per-cell lock array whose footprint exceeds the L1).
    pub fn alloc_packed(layout: &mut Layout, n: u64, procs: usize) -> Self {
        let base = layout.packed_words(n);
        Locks {
            words: (0..n).map(|i| Addr(base.0 + i * 8)).collect(),
            qnodes: (0..procs).map(|_| layout.lines(mcs::QNODE_SIZE / 64)).collect(),
        }
    }

    /// The lock-variable address set for stall attribution under the
    /// given scheme (MCS runs also count queue-node traffic as lock
    /// overhead, matching the paper's "software overhead" analysis).
    pub fn attribution_set(&self, scheme: Scheme) -> HashSet<Addr> {
        let mut set: HashSet<Addr> = self.words.iter().copied().collect();
        if scheme.uses_mcs_locks() {
            for q in &self.qnodes {
                set.insert(Addr(q.0 + mcs::LOCKED_OFF as u64));
                set.insert(Addr(q.0 + mcs::NEXT_OFF as u64));
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_kind_follows_scheme() {
        assert_eq!(LockKind::of(Scheme::Base), LockKind::Tatas);
        assert_eq!(LockKind::of(Scheme::Tlr), LockKind::Tatas);
        assert_eq!(LockKind::of(Scheme::Mcs), LockKind::Mcs);
    }

    #[test]
    fn locks_are_padded_and_distinct() {
        let mut l = Layout::new();
        let locks = Locks::alloc(&mut l, 3, 2);
        assert_eq!(locks.words.len(), 3);
        assert_eq!(locks.qnodes.len(), 2);
        let lines: HashSet<_> = locks.words.iter().map(|a| a.line()).collect();
        assert_eq!(lines.len(), 3, "each lock on its own line");
    }

    #[test]
    fn packed_locks_share_lines() {
        let mut l = Layout::new();
        let locks = Locks::alloc_packed(&mut l, 16, 1);
        assert_eq!(locks.words[0].line(), locks.words[7].line());
        assert_ne!(locks.words[0].line(), locks.words[8].line());
    }

    #[test]
    fn attribution_includes_qnodes_only_for_mcs() {
        let mut l = Layout::new();
        let locks = Locks::alloc(&mut l, 1, 2);
        let base = locks.attribution_set(Scheme::Base);
        let mcs_set = locks.attribution_set(Scheme::Mcs);
        assert_eq!(base.len(), 1);
        assert_eq!(mcs_set.len(), 1 + 2 * 2);
    }
}
