//! Satellite wall for the seed-derivation decoupling: every fuzz
//! case's RNG stream must be a pure function of (root seed, case
//! index), never of the order cases happen to execute in.
//!
//! Before the parallel execution engine, case seeds came from one
//! shared mutable `SimRng` stream, so case `i`'s seed depended on
//! cases `0..i` having been drawn first — correct serially, but any
//! reordering (a worker pool, a skipped case) would silently change
//! every subsequent case. These tests run the same case set forward,
//! reversed, and interleaved, and demand identical per-case outcomes.

use tlr_check::fuzz::schedule_case;
use tlr_check::prop::case_seed;
use tlr_check::Source;
use tlr_sim::SimRng;

const ROOT: u64 = 0x0dd5_eed5;
const CASES: u32 = 12;

/// Runs case `i` of the batch and returns everything observable about
/// it: the seed it drew, the verdict, and the recorded choice stream.
fn run_case(i: u32) -> (u64, String, Vec<u64>) {
    let seed = case_seed(ROOT, i);
    let mut src = Source::from_seed(seed);
    let verdict = match schedule_case(&mut src) {
        Ok(()) => "ok".to_string(),
        Err(e) => format!("err:{e}"),
    };
    (seed, verdict, src.choices().to_vec())
}

#[test]
fn case_seeds_match_the_sequential_stream() {
    // Back-compat anchor: `case_seed(root, i)` must equal the i-th
    // draw of the old shared stream, so reproduction lines printed by
    // earlier failures still replay the same cases.
    let mut sequential = SimRng::new(ROOT);
    for i in 0..64 {
        assert_eq!(
            case_seed(ROOT, i),
            sequential.next_u64(),
            "case {i} must draw the seed the serial stream produced"
        );
    }
}

#[test]
fn reversed_execution_changes_no_case() {
    let forward: Vec<_> = (0..CASES).map(run_case).collect();
    let mut reversed: Vec<_> = (0..CASES).rev().map(run_case).collect();
    reversed.reverse();
    for (i, (f, r)) in forward.iter().zip(&reversed).enumerate() {
        assert_eq!(f, r, "case {i} must be identical run first-to-last or last-to-first");
    }
}

#[test]
fn interleaved_execution_changes_no_case() {
    let forward: Vec<_> = (0..CASES).map(run_case).collect();
    // Evens first, then odds — a schedule no serial loop would produce.
    let mut interleaved: Vec<Option<(u64, String, Vec<u64>)>> = vec![None; CASES as usize];
    for i in (0..CASES).step_by(2).chain((1..CASES).step_by(2)) {
        interleaved[i as usize] = Some(run_case(i));
    }
    for (i, (f, shuffled)) in forward.iter().zip(&interleaved).enumerate() {
        assert_eq!(f, shuffled.as_ref().expect("every case ran"), "case {i} order-dependent");
    }
}
