//! The default-`cargo test` fuzz budget: a deterministic sweep over
//! every (scheme, retention, procs, layout) cell plus randomized
//! schedule exploration. Together these run well over 200 distinct
//! (seed, config) cases through the serializability oracle on every
//! `cargo test`.
//!
//! Budget overrides: `TLR_CHECK_CASES` scales the randomized parts,
//! `TLR_CHECK_SEED` re-seeds them (failures print both).

use tlr_check::fuzz;
use tlr_check::oracle::OracleWorkload;
use tlr_check::Source;
use tlr_sim::config::{MachineConfig, RetentionPolicy, Scheme};

/// Deterministic sweep: scheme x retention x procs x layout, each cell
/// with its own seeded workload. 5 * 2 * 3 * 2 = 60 configurations.
#[test]
fn oracle_sweep_scheme_retention_procs_layout() {
    let mut cell_seeds = tlr_sim::SimRng::new(0x0eac_1e5e);
    for scheme in Scheme::ALL {
        for retention in [RetentionPolicy::Deferral, RetentionPolicy::Nack] {
            for procs in [1usize, 2, 4] {
                for packed in [false, true] {
                    let mut cfg = MachineConfig::paper_default(scheme, procs);
                    cfg.retention = retention;
                    cfg.max_cycles = 50_000_000;
                    let mut s = Source::from_seed(cell_seeds.next_u64());
                    let mut w = OracleWorkload::arbitrary(&mut s, procs, 6);
                    w.packed = packed;
                    w.check(&cfg).unwrap_or_else(|e| {
                        panic!(
                            "sweep cell {} / {retention:?} / {procs}p / packed={packed}: {e}\n  workload: {w:?}"
                        , scheme.label())
                    });
                }
            }
        }
    }
}

/// Randomized schedule exploration against the oracle (seed, config,
/// workload all drawn per case; shrinker reports the smallest failure).
#[test]
fn fuzz_schedules_against_oracle() {
    fuzz::fuzz_schedules("schedule-fuzz-oracle", 120);
}

/// Randomized configs against the micro workloads' own validators.
#[test]
fn fuzz_micro_workloads() {
    fuzz::fuzz_micro("schedule-fuzz-micro", 60);
}
