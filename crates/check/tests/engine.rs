//! Integration coverage of the property-test engine itself: the
//! SimRng-seeded choice stream, the generator combinators, and the
//! shrinker, exercised together the way real properties use them
//! (unit tests inside the crate cover each piece in isolation).

use tlr_check::gen;
use tlr_check::shrink;
use tlr_check::{check_with, Config, Source};
use tlr_sim::SimRng;

/// Seeded sources replay the exact same composite draws — the
/// reproducibility contract behind every printed `TLR_CHECK_SEED`.
#[test]
fn seeded_draws_are_deterministic_through_combinators() {
    let draw = |seed: u64| {
        let mut s = Source::from_seed(seed);
        let v = gen::vec_of(&mut s, 0..=9, |s| s.u64_in(0..=999));
        let d = gen::distinct_vec_of(&mut s, 1..=5, |s| s.u64_in(0..=3));
        let p = *s.pick(&[10, 20, 30]);
        let b = s.bool();
        (v, d, p, b, s.choices().to_vec())
    };
    assert_eq!(draw(0xfeed), draw(0xfeed));
    assert_ne!(draw(0xfeed).4, draw(0xfeee).4, "different seeds, different streams");
}

/// Replaying a recorded stream regenerates the same values: the
/// shrinker depends on replay fidelity to interpret edited choices.
#[test]
fn replay_regenerates_recorded_values() {
    let mut live = Source::from_seed(0x5eed);
    let v1 = gen::vec_of(&mut live, 1..=7, |s| s.u64_in(5..=25));
    let b1 = live.bool();
    let mut replayed = Source::replay(live.choices());
    let v2 = gen::vec_of(&mut replayed, 1..=7, |s| s.u64_in(5..=25));
    let b2 = replayed.bool();
    assert_eq!((v1, b1), (v2, b2));
}

/// An exhausted replay stream (shrinker deleted a block) yields the
/// minimum of each requested range, never a panic.
#[test]
fn exhausted_replay_yields_minimum_values() {
    let mut s = Source::replay(&[]);
    assert_eq!(s.u64_in(7..=99), 7);
    assert_eq!(s.usize_in(2..=5), 2);
    assert!(!s.bool());
    assert!(gen::vec_of(&mut s, 0..=8, |s| s.u64_in(0..=9)).is_empty());
}

/// `distinct_vec_of` never returns duplicates, for any seed.
#[test]
fn distinct_vec_of_is_duplicate_free() {
    let mut seeds = SimRng::new(0xd157_1ac7);
    for _ in 0..200 {
        let mut s = Source::from_seed(seeds.next_u64());
        let v = gen::distinct_vec_of(&mut s, 0..=10, |s| s.u64_in(0..=4));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len(), "duplicates in {v:?}");
        assert!(v.len() <= 5, "only 5 distinct values exist, got {v:?}");
    }
}

/// End-to-end shrinking through the generator layer: a property that
/// fails on "any vector containing a value >= 50" must minimize to the
/// one-element vector [50] regardless of where the failure first
/// appears.
#[test]
fn shrinking_through_generators_reaches_the_minimum_case() {
    let prop = |s: &mut Source| {
        let v = gen::vec_of(s, 0..=20, |s| s.u64_in(0..=1000));
        v.iter().any(|&x| x >= 50)
    };
    // Find some failing seed first.
    let mut seeds = SimRng::new(0xbad_ca5e);
    let failing = loop {
        let mut s = Source::from_seed(seeds.next_u64());
        if prop(&mut s) {
            break s.choices().to_vec();
        }
    };
    let m = shrink::minimize(
        &failing,
        |cand| prop(&mut Source::replay(cand)),
        100_000,
    );
    // Minimum: one length choice (1) and one value choice mapping to 50.
    let mut replay = Source::replay(&m.choices);
    let v = gen::vec_of(&mut replay, 0..=20, |s| s.u64_in(0..=1000));
    assert_eq!(v, vec![50], "minimized to {v:?} via choices {:?}", m.choices);
}

/// The runner's shrinking proves the same thing through `check_with`:
/// the reported counterexample is minimal and the panic message carries
/// the reproduction seed.
#[test]
fn runner_reports_minimized_counterexample() {
    let result = std::panic::catch_unwind(|| {
        check_with(
            "engine-integration",
            Config { cases: 500, seed: 0x1234, max_shrink_checks: 100_000 },
            |s| {
                let v = gen::vec_of(s, 0..=20, |s| s.u64_in(0..=1000));
                if v.iter().any(|&x| x >= 50) {
                    Err(format!("bad vector {v:?}"))
                } else {
                    Ok(())
                }
            },
        );
    });
    let msg = match result {
        Err(p) => p.downcast_ref::<String>().cloned().expect("string panic payload"),
        Ok(()) => panic!("property must fail within 500 cases"),
    };
    assert!(msg.contains("TLR_CHECK_SEED=4660"), "repro seed missing: {msg}");
    assert!(msg.contains("bad vector [50]"), "not minimal: {msg}");
}

/// Shrinking terminates and preserves the failure even under a tiny
/// budget (the fuzzer's expensive-property configuration).
#[test]
fn shrinking_respects_tiny_budgets() {
    let failing: Vec<u64> = (0..100).map(|i| i * 37 + 1).collect();
    let pred = |c: &[u64]| c.iter().sum::<u64>() >= 1000;
    assert!(pred(&failing));
    for budget in [0, 1, 5, 64] {
        let m = shrink::minimize(&failing, pred, budget);
        assert!(m.checks <= budget);
        assert!(pred(&m.choices), "failure lost under budget {budget}");
    }
}

/// SimRng's forked streams (one per simulated processor) stay stable
/// when unrelated consumers are added — the property that keeps
/// workload perturbation reproducible across config changes.
#[test]
fn simrng_forks_are_stable_and_distinct() {
    let mut root = SimRng::new(99);
    let mut a = root.fork(0);
    let mut b = root.fork(1);
    let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
    let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
    assert_ne!(sa, sb, "sibling forks must not correlate");

    let mut root2 = SimRng::new(99);
    let mut a2 = root2.fork(0);
    let sa2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
    assert_eq!(sa, sa2, "fork streams depend only on root seed and tag order");
}

/// SimRng bounded draws are reasonably uniform across a wider bound
/// than the unit tests probe (guards the Lemire reduction).
#[test]
fn simrng_bounded_draws_cover_wide_ranges_uniformly() {
    let mut r = SimRng::new(0x30b1);
    let mut buckets = [0u32; 100];
    for _ in 0..100_000 {
        buckets[r.below(100) as usize] += 1;
    }
    for (i, &b) in buckets.iter().enumerate() {
        assert!((700..1300).contains(&b), "bucket {i} count {b} far from uniform");
    }
}
