//! The policy-differential wall: every pluggable conflict policy
//! (`tlr_core::policy`) is a different *contention manager* for the
//! same transactional architecture, not a different correctness
//! story. Each policy must, on both ordering fabrics and at machine
//! sizes up to the directory's scale:
//!
//! * satisfy the serializability oracle — lock-free execution stays
//!   lock-free no matter who wins a conflict;
//! * quiesce within the fault-matrix cycle budget — a policy whose
//!   win relation admits cycles (mutual deferral) or whose pacing
//!   never converges (livelock) hits the budget and fails here;
//! * keep the two simulation engines byte-identical — policy
//!   decisions must be functions of machine state, never of engine
//!   scheduling;
//! * under the timestamp default, be indistinguishable from a
//!   configuration that never mentions the policy layer at all.
//!
//! Cycle counts legitimately differ across policies — that difference
//! is the experiment in `exp_policies`; nothing here compares them.

use tlr_check::diff::check_engines;
use tlr_check::fuzz::FAULT_MATRIX_BUDGET;
use tlr_check::oracle::OracleWorkload;
use tlr_check::Source;
use tlr_core::run::run_workload;
use tlr_sim::config::{Interconnect, MachineConfig, PolicyKind, Scheme};
use tlr_sim::fault::FaultConfig;
use tlr_workloads::micro::single_counter;

/// The (fabric, processor-count) grid the wall runs on: the paper's
/// 16-way bus, the same size on the directory, and a 64-processor
/// directory machine the bus cannot reach.
const FABRICS: [(Interconnect, usize); 3] = [
    (Interconnect::Snooping, 16),
    (Interconnect::Directory, 16),
    (Interconnect::Directory, 64),
];

fn cfg_for(policy: PolicyKind, interconnect: Interconnect, procs: usize, seed: u64) -> MachineConfig {
    MachineConfig::builder()
        .scheme(Scheme::Tlr)
        .procs(procs)
        .policy(policy)
        .interconnect(interconnect)
        .seed(seed)
        .max_cycles(FAULT_MATRIX_BUDGET)
        .build()
}

/// A contended oracle workload sized to the machine: full-width
/// thread population, few iterations each, so the cycle budget means
/// starvation rather than load.
fn contended_workload(procs: usize, seed: u64) -> OracleWorkload {
    let mut src = Source::from_seed(seed);
    let iters = if procs > 16 { 2 } else { 4 };
    OracleWorkload::arbitrary_with_procs(&mut src, procs, iters)
}

#[test]
fn every_policy_passes_the_oracle_on_both_fabrics() {
    for policy in PolicyKind::ALL {
        for (interconnect, procs) in FABRICS {
            let seed = 0x90_11C7 ^ (procs as u64) << 8 ^ policy as u64;
            let w = contended_workload(procs, seed);
            let cfg = cfg_for(policy, interconnect, procs, seed.wrapping_mul(0x9e37_79b9));
            w.check(&cfg).unwrap_or_else(|e| {
                panic!("policy {policy} on {interconnect}/{procs}p: {e}\n    workload: {w:?}")
            });
        }
    }
}

#[test]
fn every_policy_keeps_the_engines_byte_identical() {
    for policy in PolicyKind::ALL {
        for (interconnect, procs) in FABRICS {
            let seed = 0xe9_61_4e ^ (procs as u64) << 8 ^ policy as u64;
            let w = contended_workload(procs, seed);
            let cfg = cfg_for(policy, interconnect, procs, seed.wrapping_mul(0x9e37_79b9));
            check_engines(|engine| {
                let mut c = cfg.clone();
                c.engine = engine;
                w.build_machine(&c)
            })
            .unwrap_or_else(|e| {
                panic!(
                    "engine divergence under policy {policy} on {interconnect}/{procs}p: {e}\n    \
                     workload: {w:?}"
                )
            });
        }
    }
}

#[test]
fn every_policy_survives_chaos_within_the_progress_budget() {
    // Fault-matrix-style adjudication per policy: all five fault kinds
    // active, intensity cycling, on both fabrics. A policy that relies
    // on a schedule accident for progress starves here and trips the
    // budget.
    for (i, policy) in PolicyKind::ALL.into_iter().enumerate() {
        for (j, (interconnect, procs)) in
            [(Interconnect::Snooping, 4usize), (Interconnect::Directory, 32)].into_iter().enumerate()
        {
            let fault_seed = 0xc4a0_5eed ^ ((i as u64) << 16) ^ ((j as u64) << 24);
            let level = 1 + (i as u32 + j as u32) % FaultConfig::MAX_INTENSITY;
            let mut src = Source::from_seed(fault_seed);
            let iters = if procs > 16 { 2 } else { 4 };
            let w = OracleWorkload::arbitrary_with_procs(&mut src, procs, iters);
            let cfg = MachineConfig::builder()
                .scheme(Scheme::Tlr)
                .procs(procs)
                .policy(policy)
                .interconnect(interconnect)
                .seed(src.next_raw())
                .max_cycles(FAULT_MATRIX_BUDGET)
                .faults(FaultConfig::intensity(fault_seed, level))
                .build();
            w.check(&cfg).unwrap_or_else(|e| {
                panic!(
                    "policy {policy} under chaos on {interconnect}/{procs}p \
                     (fault seed {fault_seed:#x}, intensity {level}): {e}\n    workload: {w:?}"
                )
            });
        }
    }
}

#[test]
fn timestamp_policy_is_invisible() {
    // A config that names the timestamp policy explicitly and one that
    // never mentions the policy layer must produce bit-identical
    // statistics — the trait indirection may not perturb a single
    // draw, stall, or counter on the default path.
    for procs in [4usize, 8] {
        let w = single_counter(procs, 256);
        let implicit = MachineConfig::paper_default(Scheme::Tlr, procs);
        let mut explicit = implicit.clone();
        explicit.policy = PolicyKind::Timestamp;
        let a = run_workload(&implicit, &w);
        let b = run_workload(&explicit, &w);
        a.assert_valid();
        assert_eq!(
            format!("{:?}", a.stats),
            format!("{:?}", b.stats),
            "x{procs}: explicit timestamp policy must be the identity"
        );
    }
}
